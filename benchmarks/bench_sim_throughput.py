"""Simulator-throughput baseline (ROADMAP item 5 gate).

Measures the wall-clock throughput of the three hot simulator paths and
writes ``benchmarks/BENCH_sim_throughput.json`` so later PRs can prove
they did not regress the simulator itself:

* ``estimate_us_per_call`` — cost of pricing an already-built trace
  (:func:`repro.gpusim.engine.estimate_trace_us` with ``memoize=False``),
  the inner loop of every tuner verification;
* ``memoized_trace_us_per_call`` — cost of the same call on the trace-memo
  hit path (ROADMAP item 5); byte-identity with the un-memoized estimate
  is asserted before timing, and the ``memoized_speedup_vs_estimate``
  ratio must stay >= 2x;
* ``scheduled_estimate_us_per_call`` — cost of the same pricing through
  the 4-stream list scheduler (``streams=4``), plus the deterministic
  ``scheduled_vs_serialized_latency`` ratio of the simulated result;
* ``verify_us_per_call`` — cost of one happens-before race check
  (:func:`repro.analyze.hb.check_schedule`) over the 4-stream schedule
  of the same trace, the per-schedule price of the conftest sanitizer
  and ``repro depgraph --verify``;
* ``trace_us_per_call`` — cost of *constructing* a layer trace
  (:func:`repro.kernels.registry.trace_dataflow`), what the surrogate
  model exists to avoid;
* ``surrogate_us_per_call`` — cost of one surrogate prediction
  (:meth:`repro.autotune.SurrogateModel.predict`), which must stay orders
  of magnitude below ``trace_us_per_call`` for online tuning to pay off;
* ``serve_rps_wallclock`` — end-to-end serve-bench requests processed per
  wall-clock second on a fixed seed;
* ``serve_traffic_rps`` — the same figure through the overload stack
  (flash-crowd traffic, two tenant classes, admission, breakers and the
  SLO autoscaler all enabled), gating the traffic-mode serving path.

Simulated results are seed-deterministic; the wall-clock numbers are
machine-dependent, so regression checks should compare ratios on the same
host.  Run with ``PYTHONPATH=src python benchmarks/bench_sim_throughput.py``.
"""

from __future__ import annotations

import json
import pathlib
import platform
import time

import numpy as np

SEED = 0
OUTPUT = pathlib.Path(__file__).parent / "BENCH_sim_throughput.json"


def _cloud(n=2000, extent=30, seed=SEED):
    rng = np.random.default_rng(seed)
    return np.unique(
        np.concatenate(
            [
                np.zeros((n, 1), np.int32),
                rng.integers(0, extent, (n, 3)).astype(np.int32),
            ],
            axis=1,
        ),
        axis=0,
    )


def _time_per_call(fn, min_seconds=0.5):
    """Mean wall-clock microseconds per call (adaptive repeat count)."""
    fn()  # warm-up
    calls = 0
    start = time.perf_counter()
    while time.perf_counter() - start < min_seconds:
        fn()
        calls += 1
    return 1e6 * (time.perf_counter() - start) / calls, calls


def bench_engine():
    from repro.analyze.depgraph import DependenceGraph
    from repro.analyze.hb import check_schedule
    from repro.autotune import LayerShape, SurrogateModel
    from repro.gpusim.engine import clear_trace_memo, estimate_trace_us
    from repro.hw.specs import get_device
    from repro.kernels.registry import Dataflow, trace_dataflow
    from repro.nn.context import LayerConfig
    from repro.opt.schedule import best_schedule
    from repro.sparse.kmap import build_kernel_map

    device = get_device("a100")
    kmap = build_kernel_map(_cloud(), kernel_size=3, stride=1)
    c_in, c_out = 64, 64
    config = LayerConfig()
    trace = trace_dataflow(
        Dataflow.IMPLICIT_GEMM, kmap, c_in, c_out, precision="fp16"
    )

    # Honest un-memoized baselines: the memo would collapse every timed
    # call after the first into a dictionary hit.
    estimate_us, estimate_calls = _time_per_call(
        lambda: estimate_trace_us(trace, device, "fp16", memoize=False)
    )
    scheduled_us, scheduled_calls = _time_per_call(
        lambda: estimate_trace_us(
            trace, device, "fp16", streams=4, memoize=False
        )
    )
    # Memoized repeated-call cost (the tuner/serving steady state): one
    # cold miss populates the entry, then every timed call is a hit.
    clear_trace_memo()
    cold = estimate_trace_us(trace, device, "fp16")
    assert cold == estimate_trace_us(trace, device, "fp16", memoize=False)
    memoized_us, memoized_calls = _time_per_call(
        lambda: estimate_trace_us(trace, device, "fp16")
    )
    assert estimate_trace_us(trace, device, "fp16") == cold
    launches = list(trace)
    graph = DependenceGraph.build(launches)
    schedule = best_schedule(launches, device, "fp16", 4, graph)
    assert check_schedule(launches, schedule, graph) == []
    verify_us, verify_calls = _time_per_call(
        lambda: check_schedule(launches, schedule, graph)
    )
    trace_us, trace_calls = _time_per_call(
        lambda: trace_dataflow(
            Dataflow.IMPLICIT_GEMM, kmap, c_in, c_out, precision="fp16"
        )
    )
    shape = LayerShape.from_kmap(kmap, c_in, c_out)
    surrogate = SurrogateModel.analytic()
    surrogate_us, surrogate_calls = _time_per_call(
        lambda: surrogate.predict(shape, config, device, "fp16")
    )
    # Deterministic simulated ratio: the 4-stream schedule of this layer
    # trace vs its serialized estimate (machine-independent).
    serialized_sim = estimate_trace_us(trace, device, "fp16", memoize=False)
    scheduled_sim = estimate_trace_us(
        trace, device, "fp16", streams=4, memoize=False
    )
    return {
        "estimate_us_per_call": round(estimate_us, 3),
        "estimate_calls": estimate_calls,
        "memoized_trace_us_per_call": round(memoized_us, 3),
        "memoized_calls": memoized_calls,
        "memoized_speedup_vs_estimate": round(estimate_us / memoized_us, 1),
        "scheduled_estimate_us_per_call": round(scheduled_us, 3),
        "scheduled_calls": scheduled_calls,
        "scheduled_vs_serialized_latency": round(
            scheduled_sim / serialized_sim, 4
        ),
        "verify_us_per_call": round(verify_us, 3),
        "verify_calls": verify_calls,
        "verified_sync_events": len(schedule.events),
        "trace_us_per_call": round(trace_us, 3),
        "trace_calls": trace_calls,
        "surrogate_us_per_call": round(surrogate_us, 3),
        "surrogate_calls": surrogate_calls,
        "surrogate_speedup_vs_trace": round(trace_us / surrogate_us, 1),
    }


def bench_serving():
    from repro.serve import ServeConfig, ServingRuntime
    from repro.serve.arrivals import PoissonArrivals, generate_requests

    requests = generate_requests(
        "SK-M-0.5",
        PoissonArrivals(rate_per_s=40, seed=SEED),
        count=32,
    )
    runtime = ServingRuntime(
        ServeConfig(device="a100", scene_scale=0.1)
    )
    start = time.perf_counter()
    result = runtime.serve(requests)
    elapsed = time.perf_counter() - start
    return {
        "requests": result.metrics.requests,
        "completed": result.metrics.completed,
        "serve_wallclock_s": round(elapsed, 3),
        "serve_rps_wallclock": round(result.metrics.requests / elapsed, 1),
        "simulated_throughput_rps": round(result.metrics.throughput_rps, 2),
    }


def bench_traffic():
    """Traffic-mode serving throughput: the overload stack end to end.

    A seeded flash crowd over two priority classes with admission,
    breakers and the autoscaler enabled — the wall-clock requests/s
    (``serve_traffic_rps``) gates the overload path the same way
    ``serve_rps_wallclock`` gates the plain path.  The simulated outputs
    (SLO attainment, scale events, cost) are seed-deterministic.
    """
    from repro.serve import (
        AutoscalePolicy,
        FaultPlan,
        ServeConfig,
        ServingRuntime,
        generate_traffic_requests,
        parse_tenants,
        parse_traffic,
    )

    trace = parse_traffic("flash:base=30,peak=300", seed=SEED)
    tenants = parse_tenants(
        "gold:prio=0,share=3,mix=SK-M-0.5,deadline=2000;"
        "bronze:prio=2,share=1,mix=SK-M-0.5,deadline=2000"
    )
    requests = generate_traffic_requests(
        trace, count=400, tenants=tenants, seed=SEED
    )
    runtime = ServingRuntime(ServeConfig(
        device="a100",
        scene_scale=0.1,
        replicas=1,
        tenants=tenants,
        slo_ms=300.0,
        breaker_failures=4,
        max_retries=3,
        faults=FaultPlan(fail_rate=0.05, seed=SEED),
        autoscale=AutoscalePolicy(
            slo_ms=300.0, min_replicas=1, max_replicas=4,
            interval_ms=100.0, window_ms=1000.0, cooldown_ms=250.0,
        ),
    ))
    start = time.perf_counter()
    metrics = runtime.serve(requests).metrics
    elapsed = time.perf_counter() - start
    return {
        "requests": metrics.requests,
        "completed": metrics.completed,
        "failed": metrics.failed,
        "scale_ups": metrics.scale_ups,
        "scale_downs": metrics.scale_downs,
        "slo_attainment_top": round(metrics.slo_attainment_top, 4),
        "cost_per_million": round(metrics.cost_per_million, 3),
        "serve_traffic_wallclock_s": round(elapsed, 3),
        "serve_traffic_rps": round(metrics.requests / elapsed, 1),
    }


def main() -> int:
    payload = {
        "seed": SEED,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "engine": bench_engine(),
        "serving": bench_serving(),
        "traffic": bench_traffic(),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\nwritten to {OUTPUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
