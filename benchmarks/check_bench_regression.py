"""Bench regression gate: compare a fresh ``BENCH_sim_throughput.json``
against a committed baseline and fail on wall-clock regressions.

Usage::

    PYTHONPATH=src python benchmarks/bench_sim_throughput.py
    python benchmarks/check_bench_regression.py BASELINE.json CANDIDATE.json

Every gated field is a mean microseconds-per-call figure; the candidate
may exceed the baseline by at most ``--max-regression`` (default 0.20,
i.e. 20%).  Getting *faster* never fails.  Wall-clock numbers are
machine-dependent: only compare runs from the same host class — after a
runner or interpreter change, regenerate the committed baseline instead
of chasing phantom regressions.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Tuple

#: (section, field) pairs gated on microseconds-per-call.
GATED_FIELDS: Tuple[Tuple[str, str], ...] = (
    ("engine", "estimate_us_per_call"),
    ("engine", "scheduled_estimate_us_per_call"),
    ("engine", "verify_us_per_call"),
    ("engine", "trace_us_per_call"),
    ("engine", "surrogate_us_per_call"),
)


def compare(
    baseline: Dict, candidate: Dict, max_regression: float
) -> List[str]:
    """Return a list of human-readable failures (empty = gate passes)."""
    failures: List[str] = []
    for section, field in GATED_FIELDS:
        try:
            base = float(baseline[section][field])
            cand = float(candidate[section][field])
        except KeyError as missing:
            failures.append(
                f"{section}.{field}: missing key {missing} "
                f"(baseline schema drift? regenerate the baseline)"
            )
            continue
        if base <= 0.0:
            failures.append(f"{section}.{field}: non-positive baseline {base}")
            continue
        ratio = cand / base
        if ratio > 1.0 + max_regression:
            failures.append(
                f"{section}.{field}: {base:.3f} -> {cand:.3f} us/call "
                f"({100 * (ratio - 1):.1f}% slower, limit "
                f"{100 * max_regression:.0f}%)"
            )
    return failures


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH json")
    parser.add_argument("candidate", help="freshly generated BENCH json")
    parser.add_argument(
        "--max-regression", type=float, default=0.20,
        help="allowed fractional slowdown per field (default 0.20)",
    )
    args = parser.parse_args(argv)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.candidate) as fh:
        candidate = json.load(fh)
    failures = compare(baseline, candidate, args.max_regression)
    for section, field in GATED_FIELDS:
        base = baseline.get(section, {}).get(field)
        cand = candidate.get(section, {}).get(field)
        print(f"{section}.{field}: baseline {base} candidate {cand}")
    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbench regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
