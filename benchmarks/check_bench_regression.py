"""Bench regression gate: compare a fresh ``BENCH_sim_throughput.json``
against a committed baseline and fail on wall-clock regressions.

Usage::

    PYTHONPATH=src python benchmarks/bench_sim_throughput.py
    python benchmarks/check_bench_regression.py BASELINE.json CANDIDATE.json

Gated fields are mean microseconds-per-call figures (lower is better)
plus wall-clock request rates (higher is better); the candidate may be
at most ``--max-regression`` (default 0.20, i.e. 20%) slower than the
baseline on each.  Getting *faster* never fails.  A gated column missing
from either file fails with a message naming the file and the column —
a new benchmark column cannot silently vanish.  Wall-clock numbers are
machine-dependent: only compare runs from the same host class — after a
runner or interpreter change, regenerate the committed baseline instead
of chasing phantom regressions.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Tuple

#: (section, field) pairs gated on microseconds-per-call (lower is better).
GATED_FIELDS: Tuple[Tuple[str, str], ...] = (
    ("engine", "estimate_us_per_call"),
    ("engine", "memoized_trace_us_per_call"),
    ("engine", "scheduled_estimate_us_per_call"),
    ("engine", "verify_us_per_call"),
    ("engine", "trace_us_per_call"),
    ("engine", "surrogate_us_per_call"),
)

#: (section, field) pairs gated on requests-per-second (higher is better).
GATED_RATES: Tuple[Tuple[str, str], ...] = (
    ("traffic", "serve_traffic_rps"),
)


def _lookup(payload: Dict, section: str, field: str, role: str) -> "float | str":
    """Value of ``section.field`` in ``payload``, or a failure message
    naming exactly which file is missing which column."""
    table = payload.get(section)
    if not isinstance(table, dict):
        return (
            f"{section}.{field}: {role} json has no {section!r} section "
            f"(has {sorted(payload)}); regenerate it with "
            f"bench_sim_throughput.py"
        )
    if field not in table:
        return (
            f"{section}.{field}: column missing from the {role} json; "
            f"the benchmark must keep writing every gated column "
            f"(has {sorted(table)})"
        )
    return float(table[field])


def compare(
    baseline: Dict, candidate: Dict, max_regression: float
) -> List[str]:
    """Return a list of human-readable failures (empty = gate passes)."""
    failures: List[str] = []
    gated = [(s, f, False) for s, f in GATED_FIELDS]
    gated += [(s, f, True) for s, f in GATED_RATES]
    for section, field, higher_is_better in gated:
        base = _lookup(baseline, section, field, "baseline")
        cand = _lookup(candidate, section, field, "candidate")
        bad = [v for v in (base, cand) if isinstance(v, str)]
        if bad:
            failures.extend(bad)
            continue
        assert isinstance(base, float) and isinstance(cand, float)
        if base <= 0.0:
            failures.append(f"{section}.{field}: non-positive baseline {base}")
            continue
        if higher_is_better:
            ratio = base / cand if cand > 0 else float("inf")
            unit = "req/s"
        else:
            ratio = cand / base
            unit = "us/call"
        if ratio > 1.0 + max_regression:
            failures.append(
                f"{section}.{field}: {base:.3f} -> {cand:.3f} {unit} "
                f"({100 * (ratio - 1):.1f}% slower, limit "
                f"{100 * max_regression:.0f}%)"
            )
    return failures


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH json")
    parser.add_argument("candidate", help="freshly generated BENCH json")
    parser.add_argument(
        "--max-regression", type=float, default=0.20,
        help="allowed fractional slowdown per field (default 0.20)",
    )
    args = parser.parse_args(argv)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.candidate) as fh:
        candidate = json.load(fh)
    failures = compare(baseline, candidate, args.max_regression)
    for section, field in GATED_FIELDS + GATED_RATES:
        base = baseline.get(section, {}).get(field)
        cand = candidate.get(section, {}).get(field)
        print(f"{section}.{field}: baseline {base} candidate {cand}")
    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbench regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
