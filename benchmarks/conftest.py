"""Shared benchmark infrastructure.

Each benchmark module regenerates one of the paper's tables or figures via
:mod:`repro.experiments` and asserts its *shape* claims (who wins, by
roughly what factor, where crossovers fall).  Absolute latencies come from
the analytical GPU model, so they are deterministic; pytest-benchmark
measures the wall-clock cost of regenerating each artifact.

Tables are written to ``benchmarks/results/<experiment>.txt`` so a full
run leaves the regenerated paper artifacts on disk.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def run_experiment(benchmark, results_dir):
    """Run an experiment module once under pytest-benchmark and persist
    its regenerated table."""

    def runner(module, quick: bool = True):
        result = benchmark.pedantic(
            module.run, kwargs={"quick": quick}, iterations=1, rounds=1
        )
        (results_dir / f"{result.experiment}.txt").write_text(
            result.to_table() + "\n"
        )
        return result

    return runner
