#!/usr/bin/env python
"""Run every experiment at full scale and archive the regenerated tables.

Writes ``benchmarks/results_full/<experiment>.txt`` plus a combined
``summary.json`` of all metrics.  This is the long-form companion to
``pytest benchmarks/ --benchmark-only`` (which runs the quick grids).

Run:  python benchmarks/run_full.py [experiment-prefix ...]
"""

from __future__ import annotations

import importlib
import json
import pathlib
import sys
import time
import traceback

from repro.experiments import EXPERIMENTS

RESULTS = pathlib.Path(__file__).parent / "results_full"


def main(argv) -> int:
    RESULTS.mkdir(exist_ok=True)
    selected = [
        e for e in EXPERIMENTS
        if not argv or any(e.startswith(p) for p in argv)
    ]
    summary = {}
    for name in selected:
        module = importlib.import_module(f"repro.experiments.{name}")
        start = time.perf_counter()
        try:
            result = module.run(quick=False)
        except Exception:  # keep going; record the failure
            (RESULTS / f"{name}.txt").write_text(traceback.format_exc())
            print(f"[{name}] FAILED", flush=True)
            continue
        elapsed = time.perf_counter() - start
        (RESULTS / f"{result.experiment}.txt").write_text(
            result.to_table() + f"\n[completed in {elapsed:.1f}s]\n"
        )
        summary[result.experiment] = result.metrics
        print(f"[{name}] done in {elapsed:.1f}s", flush=True)
        (RESULTS / "summary.json").write_text(
            json.dumps(summary, indent=2, sort_keys=True)
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
