"""Flash-crowd acceptance sweep for the overload-robustness layer.

Drives ``serve-bench --traffic`` end to end at scale — 100k requests in
two tenant priority classes with fault and OOM injection, breakers,
priority shedding and the SLO autoscaler enabled — and checks the
contract the layer must keep:

* zero FAILED requests in the top (gold) priority class,
* autoscaler scale-up **and** scale-down events both > 0,
* per-tenant SLO attainment and cost-per-million-requests reported,
* two identical-seed runs produce byte-identical ``--json`` output.

Writes a summary to ``benchmarks/results/overload_sweep.json``.  This is
the slow offline gate (tens of minutes of wall clock); CI runs the same
CLI at a reduced request count as a smoke test.

Run with::

    PYTHONPATH=src python benchmarks/run_overload_sweep.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

COUNT = 100_000
SEED = 17
OUTPUT = pathlib.Path(__file__).parent / "results" / "overload_sweep.json"

ARGS = [
    "serve-bench",
    "--device", "rtx3090",
    "--scale", "0.1",
    "--requests", str(COUNT),
    "--seed", str(SEED),
    "--traffic", "flash:base=60,peak=600,warm=2000,ramp=1500,hold=20000,"
                 "decay=4000,tail=120000",
    "--tenants", "gold:prio=0,share=3,mix=SK-M-0.5,deadline=5000,streams=2;"
                 "bronze:prio=2,share=1,mix=SK-M-0.5,deadline=5000,streams=2",
    "--replicas", "1",
    "--autoscale",
    "--max-replicas", "6",
    "--slo-ms", "400",
    "--max-batch", "4",
    "--queue-depth", "24",
    "--faults", "fail=0.02,oom=0.0002",
    "--retries", "4",
    "--breaker-failures", "4",
]


def run(json_path: pathlib.Path) -> bytes:
    from repro.cli import main

    start = time.perf_counter()
    code = main(ARGS + ["--json", str(json_path)])
    elapsed = time.perf_counter() - start
    if code != 0:
        raise SystemExit(f"serve-bench exited {code}")
    print(f"run finished in {elapsed:.1f}s wall clock", flush=True)
    return json_path.read_bytes()


def main() -> int:
    OUTPUT.parent.mkdir(exist_ok=True)
    first_path = OUTPUT.with_name("overload_sweep_run1.json")
    second_path = OUTPUT.with_name("overload_sweep_run2.json")
    first = run(first_path)
    second = run(second_path)

    failures = []
    if first != second:
        failures.append("two identical-seed runs are not byte-identical")
    payload = json.loads(first)
    tenants = {row["tenant"]: row for row in payload["per_tenant"]}
    gold = tenants["gold"]
    if int(gold["failed"]) != 0:
        failures.append(
            f"top priority class has {gold['failed']} FAILED requests"
        )
    if payload["scale_ups"] <= 0 or payload["scale_downs"] <= 0:
        failures.append(
            f"autoscaler idle: ups={payload['scale_ups']} "
            f"downs={payload['scale_downs']}"
        )
    for name, row in tenants.items():
        if "slo_attainment" not in row:
            failures.append(f"tenant {name} row lacks slo_attainment")
    if payload.get("cost_per_million", 0) <= 0:
        failures.append("cost_per_million not reported")

    summary = {
        "requests": payload["requests"],
        "completed": payload["completed"],
        "failed": payload["failed"],
        "shed": payload["shed"],
        "quota_denied": payload["quota_denied"],
        "oom_events": payload["oom_events"],
        "breaker_opens": payload["breaker_opens"],
        "scale_ups": payload["scale_ups"],
        "scale_downs": payload["scale_downs"],
        "replicas_peak": payload["replicas_peak"],
        "cost_per_million": payload["cost_per_million"],
        "slo_attainment_top": payload["slo_attainment_top"],
        "byte_identical": first == second,
        "per_tenant": {
            name: {
                "requests": row["requests"],
                "failed": row["failed"],
                "shed": row["shed"],
                "slo_attainment": row["slo_attainment"],
            }
            for name, row in tenants.items()
        },
        "seed": SEED,
        "acceptance_failures": failures,
    }
    OUTPUT.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(json.dumps(summary, indent=2, sort_keys=True))
    if failures:
        print("\nACCEPTANCE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nacceptance sweep passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
