"""Static-lint sweep over every bundled workload.

Not a paper figure — this is the deployment gate exercised at benchmark
scale: every registered workload is traced symbolically and run through
the full rule catalogue at each precision.  Shape claims asserted:

* no bundled workload carries an error-level finding at any precision
  (the gate CI enforces with ``repro lint --fail-on error`` stays green);
* at fp16/tf32 there are no warnings either, while every fp32 row warns
  about the tensor-core schedule falling back to CUDA cores — the
  linter's static restatement of the paper's FP32 penalty;
* every workload's boundary layers (dataset-fixed input channels, class
  counts) surface the expected info-level tile-alignment notes with
  their Figure 21 padding-waste percentages.
"""

from __future__ import annotations

from repro.analyze import Severity, lint_workload
from repro.models.registry import WORKLOADS
from repro.utils.format import format_table

DEVICE = "a100"
PRECISIONS = ("fp16", "tf32", "fp32")


def lint_table():
    rows = []
    for workload_id in sorted(WORKLOADS):
        for precision in PRECISIONS:
            findings = lint_workload(
                workload_id, device=DEVICE, precision=precision
            )
            by_sev = {sev: 0 for sev in Severity}
            for f in findings:
                by_sev[f.severity] += 1
            worst_waste = max(
                (f.data.get("waste_pct", 0.0) for f in findings
                 if f.rule == "tile-alignment"),
                default=0.0,
            )
            rows.append([
                workload_id, precision,
                str(by_sev[Severity.ERROR]),
                str(by_sev[Severity.WARNING]),
                str(by_sev[Severity.INFO]),
                f"{worst_waste:.1f}%",
            ])
    return format_table(
        ["workload", "precision", "errors", "warnings", "infos",
         "worst tile waste"],
        rows,
        title=f"static lint sweep on {DEVICE}",
    ), rows


def test_lint_sweep_table(benchmark, results_dir):
    table, rows = benchmark.pedantic(lint_table, iterations=1, rounds=1)
    (results_dir / "lint.txt").write_text(table + "\n")
    assert len(rows) == len(WORKLOADS) * len(PRECISIONS)
    # The deployment gate: bundled workloads never lint at error level.
    assert all(row[2] == "0" for row in rows), table
    # Tensor-core precisions are warning-free; fp32 always warns about
    # the CUDA-core fallback.
    for row in rows:
        if row[1] == "fp32":
            assert int(row[3]) > 0, table
        else:
            assert row[3] == "0", table
    # Dataset-fixed boundary channels always leave an info-level note.
    assert all(int(row[4]) > 0 for row in rows), table
