"""Extension: CenterPoint + TorchSparse++ vs the FlatFormer transformer."""

from repro.experiments import ext_flatformer


def test_ext_flatformer(run_experiment):
    result = run_experiment(ext_flatformer)
    # Paper: 1.5x faster than FlatFormer on Orin; the reproduction's
    # synthetic scenes land in the same direction and magnitude class.
    speedup = result.metrics["conv_vs_flatformer_jetson_agx_orin"]
    assert 1.2 < speedup < 3.5
