"""Extension: MAE sparsity (the paper's Section 6.3 future application)."""

from repro.experiments import ext_mae_sparsity


def test_ext_mae_sparsity(run_experiment):
    result = run_experiment(ext_mae_sparsity)
    m = result.metrics
    # Speedup must grow monotonically with the mask ratio ...
    assert m["speedup_at_90"] > m["speedup_at_75"] > m["speedup_at_0"]
    # ... lose clearly on unmasked inputs (sparse overheads) ...
    assert m["speedup_at_0"] < 0.9
    # ... and win at MAE-scale masking.
    assert m["speedup_at_90"] > 1.1
