"""Extension: first-order proxies mislead (the Section 2.3 claim)."""

from repro.experiments import ext_proxy_gap


def test_ext_proxy_gap(run_experiment):
    result = run_experiment(ext_proxy_gap)
    m = result.metrics
    # The end-to-end tuner picks configs that a compute or DRAM proxy
    # would reject (paper: up to 6x compute / 4x DRAM overhead).
    assert m["max_compute_overhead_of_chosen"] > 1.3
    assert m["max_dram_overhead_of_chosen"] > 1.3
    assert m["max_compute_overhead_of_chosen"] < 10.0
