"""Figure 8: generated kernels vs cuBLAS utilization."""

from repro.experiments import fig08_utilization


def test_fig08_kernel_utilization(run_experiment):
    result = run_experiment(fig08_utilization)
    # Paper: tuning only tile sizes reaches >100% of cuBLAS utilization
    # on average, and no layer collapses far below it.
    assert result.metrics["mean_utilization_vs_cublas"] >= 1.0
    assert result.metrics["min_utilization_vs_cublas"] >= 0.7
