"""Figure 11: redundant computation vs number of mask splits."""

from repro.experiments import fig11_redundancy


def test_fig11_redundancy_vs_splits(run_experiment):
    result = run_experiment(fig11_redundancy)
    # (a) splits keep reducing segmentation redundancy well past s=2.
    assert result.metrics["seg_drop_1_to_max"] > 1.2
    # (b) unsorted detection overhead is an acceptable 2.4-2.9x band.
    assert 1.8 < result.metrics["det_unsorted_overhead"] < 3.5
    # Segmentation masks are sparser, so their unsorted overhead is larger.
    assert (
        result.metrics["seg_unsorted_overhead"]
        > result.metrics["det_unsorted_overhead"]
    )
