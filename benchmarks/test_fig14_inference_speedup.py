"""Figure 14: end-to-end inference speedup over four baseline systems."""

from repro.experiments import fig14_inference


def test_fig14_inference_speedup(run_experiment):
    result = run_experiment(fig14_inference)
    m = result.metrics
    # Paper bands (cloud Ampere geomeans): ME 2.9-3.7x, SpConv1.2
    # 3.2-3.3x, TorchSparse 2.0-2.2x, SpConv2 1.4-1.7x.  The reproduction
    # asserts the ordering and generous bands around those factors.
    assert (
        m["geomean_speedup_vs_minkowskiengine"]
        > m["geomean_speedup_vs_torchsparse"]
        > m["geomean_speedup_vs_spconv235"]
        > 1.0
    )
    assert 2.0 < m["geomean_speedup_vs_minkowskiengine"] < 6.5
    assert 2.0 < m["geomean_speedup_vs_spconv12"] < 6.5
    assert 1.4 < m["geomean_speedup_vs_torchsparse"] < 3.5
    assert 1.05 < m["geomean_speedup_vs_spconv235"] < 2.0
