"""Figure 15: mixed-precision training speedup (batch size 2)."""

from repro.experiments import fig15_training


def test_fig15_training_speedup(run_experiment):
    result = run_experiment(fig15_training)
    m = result.metrics
    # Paper: 4.6-4.8x vs MinkowskiEngine(FP32), 2.5-2.6x vs TorchSparse,
    # 1.2-1.3x vs SpConv2.3.5.
    assert (
        m["train_geomean_vs_minkowskiengine"]
        > m["train_geomean_vs_torchsparse"]
        > m["train_geomean_vs_spconv235"]
        > 1.0
    )
    assert m["train_geomean_vs_minkowskiengine"] > 2.0
    assert m["train_geomean_vs_torchsparse"] > 1.5
    assert 1.05 < m["train_geomean_vs_spconv235"] < 2.0
