"""Figure 16: R-GCN inference vs DGL / PyG / Graphiler."""

from repro.experiments import fig16_graph


def test_fig16_graph_workloads(run_experiment):
    result = run_experiment(fig16_graph)
    m = result.metrics
    # Paper: 7.6x / 2.6x / 2.9x faster than DGL / PyG / Graphiler, and
    # 3.4x / 4.4x / 5.6x more memory efficient.
    assert m["latency_vs_dgl"] > m["latency_vs_pyg"] > 1.0
    assert m["latency_vs_graphiler"] > 1.0
    assert 2.6 <= m["latency_vs_dgl"] < 20.0
    assert 1.3 < m["latency_vs_pyg"] < 8.0
    assert 1.3 < m["latency_vs_graphiler"] < 8.0
    # Memory efficiency: Graphiler's DFG materialisation is the largest.
    assert (
        m["memory_vs_graphiler"] > m["memory_vs_pyg"] > m["memory_vs_dgl"]
        > 2.0
    )
