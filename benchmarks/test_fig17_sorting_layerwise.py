"""Figure 17: layerwise sorted vs unsorted implicit GEMM."""

from repro.experiments import fig17_sorting


def test_fig17_sorting_layerwise(run_experiment):
    result = run_experiment(fig17_sorting)
    m = result.metrics
    # Sorting reduces pure compute time...
    assert m["det_compute_reduction"] > 1.1
    # ...but its overhead outweighs the gain on detection workloads...
    assert m["det_sorted_over_unsorted"] > 1.0
    # ...while it pays off on the larger segmentation model.
    assert m["seg_sorted_over_unsorted"] < 1.0
