"""Figure 18: hybrid fetch-on-demand + implicit GEMM dataflow."""

from repro.experiments import fig18_hybrid


def test_fig18_hybrid_dataflow(run_experiment):
    result = run_experiment(fig18_hybrid)
    m = result.metrics
    # The hybrid never loses to the best single dataflow (paper: up to
    # 1.06x faster).
    assert m["hybrid_gain_rtx_2080_ti"] >= 1.0 - 1e-9
    # Fetch-on-demand wins the decoder layer groups (reused maps).
    assert m["decoder_fod_fraction"] >= 0.5
