"""Figure 19: offline vs online map reordering."""

from repro.experiments import fig19_reorder


def test_fig19_offline_reorder(run_experiment):
    result = run_experiment(fig19_reorder)
    m = result.metrics
    # Paper: offline reordering wins by ~4% (inference) / ~12% (training).
    assert 1.0 < m["inference_online_over_offline"] < 1.15
    assert 1.05 < m["training_online_over_offline"] < 1.30
    # Training suffers more (the wgrad K-loop effect).
    assert (
        m["training_online_over_offline"]
        > m["inference_online_over_offline"]
    )
