"""Figure 20: loop-invariant hoisting vs fixed-shape kernels."""

from repro.experiments import fig20_hoisting


def test_fig20_hoisting(run_experiment):
    result = run_experiment(fig20_hoisting)
    m = result.metrics
    # Paper: naive dynamic conversion costs 1.5-1.7x.
    assert 1.2 < m["max_naive_overhead"] < 1.9
    assert m["min_naive_overhead"] > 1.1
    # Hoisting fully closes the gap (and usually beats fixed-shape).
    assert m["max_hoisted_overhead"] <= 1.02
    assert m["hoisted_faster_than_fixed_fraction"] >= 0.5
    # The HoistLoopInvariants pass applied to the naive trace reproduces
    # the hand-modeled hoisted schedule exactly.
    assert m["pass_vs_schedule_max_rel_diff"] < 1e-9
