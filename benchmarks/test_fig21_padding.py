"""Figure 21: boundary-check elimination via map padding."""

from repro.experiments import fig21_padding


def test_fig21_padding(run_experiment):
    result = run_experiment(fig21_padding)
    m = result.metrics
    # Paper: boundary checks cost 1.14-1.35x; padding removes them.
    assert 1.05 < m["max_boundary_overhead"] < 1.45
    assert m["min_boundary_overhead"] > 1.02
