"""Figure 22: forward/dgrad/wgrad parameter binding schemes."""

from repro.experiments import fig22_binding


def test_fig22_training_binding(run_experiment):
    result = run_experiment(fig22_binding)
    m = result.metrics
    # Decoupling beats binding all three kernels (paper: up to 10%).
    assert m["rtx_2080_ti_bound_over_best"] > 1.02
    assert m["a100_bound_over_best"] >= 1.0 - 1e-9
    # 2080 Ti prefers the workload-pattern scheme, as in the paper.
    assert m["rtx_2080_ti_picks_paper_scheme"] == 1.0
