"""Figure 23: gain attribution (generator + enlarged design space)."""

from repro.experiments import fig23_summary


def test_fig23_gain_summary(run_experiment):
    result = run_experiment(fig23_summary)
    m = result.metrics
    # Both sources contribute positively...
    assert m["mean_generator_gain"] > 1.0
    assert m["mean_design_space_gain"] > 1.0
    # ...and the generator costs a small fraction of SpConv v2's
    # metaprogrammer (paper: <10%, ~5%).
    assert m["generator_loc_fraction_of_spconv2"] < 0.10
