"""Memory-footprint crossover grid: dataflow x device x batch size.

Not a paper figure — this sweeps the resilience package's footprint model
(:mod:`repro.resilience.footprint`) across the dataflow menu and every
modelled device, and writes the crossover table the degradation ladder
implicitly encodes: at which batch size each device is forced off
implicit GEMM (and onto fetch-on-demand, the minimal-workspace dataflow),
and where even the bottom of the ladder no longer fits.

Scenes run at ``SCALE`` resolution to keep the sweep fast, so device
budgets are shrunk by the same 1024x (GiB -> MiB): ratios — which is all
a crossover is — are preserved.  Shape claims asserted:

* warm steady-state: fetch-on-demand's footprint is strictly below
  implicit GEMM's at every batch size (the paper's workspace axis);
* footprints are monotone in batch size for every dataflow;
* the largest batch a device can serve on fetch-on-demand is never
  smaller than on implicit GEMM, and strictly larger on at least one
  device (the crossover exists);
* wherever implicit GEMM no longer fits but the ladder recovers, the
  planned walk switches dataflow to fetch-on-demand (warm gather-scatter
  never reduces) before resorting to batch chunking;
* on the smallest devices the scaled budget drops below the static
  weight footprint — the ladder floor — and the cell reports DOES NOT
  FIT, matching the serving runtime's admission rule.
"""

from __future__ import annotations

import pytest

from repro.data.datasets import make_sample
from repro.gpusim.engine import memory_budget_bytes
from repro.hw.specs import list_devices
from repro.kernels.registry import Dataflow
from repro.models import get_workload
from repro.nn.context import FixedPolicy, LayerConfig
from repro.precision import Precision
from repro.resilience import DegradationLadder, ExecState, model_footprint
from repro.utils.format import format_table

WORKLOAD = "SK-M-0.5"
SCALE = 0.25
HEADROOM = 0.1
BATCHES = (1, 2, 4, 8)
DATAFLOW_SWEEP = (
    Dataflow.IMPLICIT_GEMM,
    Dataflow.GATHER_SCATTER,
    Dataflow.FETCH_ON_DEMAND,
)
#: Scenes are ~1024x lighter than full-resolution batched deployments,
#: so device DRAM shrinks GiB -> MiB for the crossover comparison.
BUDGET_SHRINK = 1024.0

MIB = float(1 << 20)


@pytest.fixture(scope="module")
def grid():
    workload = get_workload(WORKLOAD)
    model = workload.build_model()
    model.eval()
    pool = [
        make_sample(
            workload.dataset, frames=workload.frames, seed=i, scale=SCALE
        )
        for i in range(max(BATCHES))
    ]
    memo = {}

    def footprint(state: ExecState, batch: int):
        key = (state, batch)
        if key not in memo:
            memo[key] = model_footprint(
                model,
                pool[:batch],
                precision=state.precision,
                policy=FixedPolicy(state.config),
                batch_chunks=state.batch_chunks,
                warm=True,
            )
        return memo[key]

    return footprint


def ig_state() -> ExecState:
    return ExecState(config=LayerConfig(), precision=Precision.FP16)


def device_budget(device) -> float:
    return memory_budget_bytes(device, HEADROOM) / BUDGET_SHRINK


def plan_cell(grid, device, batch):
    """Ladder plan for one (device, batch) cell, from the implicit-GEMM
    default — exactly what the serving runtime does on a simulated OOM."""
    budget = device_budget(device)
    return DegradationLadder().plan(
        lambda s: grid(s, batch).total_bytes, ig_state(), budget
    )


def crossover_table(grid) -> str:
    rows = []
    for device in sorted(list_devices(), key=lambda d: -d.dram_gib):
        budget = device_budget(device)
        for batch in BATCHES:
            totals = {
                df: grid(
                    ExecState(
                        config=LayerConfig(dataflow=df),
                        precision=Precision.FP16,
                    ),
                    batch,
                ).total_bytes
                for df in DATAFLOW_SWEEP
            }
            if totals[Dataflow.IMPLICIT_GEMM] <= budget:
                verdict = "implicit_gemm"
            else:
                plan = plan_cell(grid, device, batch)
                if plan.fits:
                    verdict = "degraded: " + " -> ".join(plan.taken)
                else:
                    verdict = "DOES NOT FIT"
            rows.append([
                device.name, str(batch), f"{budget / MIB:.1f}",
                *(f"{totals[df] / MIB:.1f}" for df in DATAFLOW_SWEEP),
                verdict,
            ])
    return format_table(
        ["device", "batch", "budget MiB", "ig MiB", "gs MiB", "fod MiB",
         "serving config"],
        rows,
        title=(
            f"memory crossovers: {WORKLOAD} fp16 warm steady state "
            f"(scale {SCALE:g}, budgets = DRAM/{BUDGET_SHRINK:.0f}, "
            f"headroom {HEADROOM:.0%})"
        ),
    )


def max_fitting_batch(grid, device, dataflow) -> int:
    budget = device_budget(device)
    state = ExecState(
        config=LayerConfig(dataflow=dataflow), precision=Precision.FP16
    )
    fitting = [
        b for b in BATCHES if grid(state, b).total_bytes <= budget
    ]
    return max(fitting, default=0)


def test_memory_crossover_grid(benchmark, grid, results_dir):
    table = benchmark.pedantic(
        lambda: crossover_table(grid), iterations=1, rounds=1
    )
    (results_dir / "memory.txt").write_text(table + "\n")
    assert WORKLOAD in table


def test_fetch_on_demand_is_the_memory_floor_dataflow(grid):
    for batch in BATCHES:
        totals = {
            df: grid(
                ExecState(
                    config=LayerConfig(dataflow=df), precision=Precision.FP16
                ),
                batch,
            )
            for df in DATAFLOW_SWEEP
        }
        fod = totals[Dataflow.FETCH_ON_DEMAND]
        for df in (Dataflow.IMPLICIT_GEMM, Dataflow.GATHER_SCATTER):
            assert fod.total_bytes < totals[df].total_bytes
            assert fod.peak_workspace_bytes < totals[df].peak_workspace_bytes


def test_footprints_monotone_in_batch(grid):
    for df in DATAFLOW_SWEEP:
        state = ExecState(
            config=LayerConfig(dataflow=df), precision=Precision.FP16
        )
        totals = [grid(state, b).total_bytes for b in BATCHES]
        for lo, hi in zip(totals, totals[1:]):
            assert lo < hi


def test_fetch_on_demand_extends_every_devices_max_batch(grid):
    strictly_larger = 0
    for device in list_devices():
        ig = max_fitting_batch(grid, device, Dataflow.IMPLICIT_GEMM)
        fod = max_fitting_batch(grid, device, Dataflow.FETCH_ON_DEMAND)
        assert fod >= ig
        strictly_larger += fod > ig
    assert strictly_larger >= 1  # the crossover exists somewhere


def test_ladder_recovers_via_fetch_on_demand(grid):
    recovered = 0
    for device in list_devices():
        budget = device_budget(device)
        for batch in BATCHES:
            if grid(ig_state(), batch).total_bytes <= budget:
                continue
            plan = plan_cell(grid, device, batch)
            if not plan.fits:
                continue
            recovered += 1
            assert plan.taken[0] == "dataflow:fetch_on_demand"
            for step in plan.steps:
                if step.taken:
                    assert step.after_bytes < step.before_bytes
    assert recovered >= 1


def test_smallest_devices_hit_the_weight_floor(grid):
    report = grid(ig_state(), 1)
    floors = [
        device for device in list_devices()
        if device_budget(device) < report.weights_bytes
    ]
    assert floors  # 11 GiB parts fall below the scaled weight footprint
    for device in floors:
        assert not plan_cell(grid, device, 1).fits
