"""Section 6.2: adaptive tiling vs fixed tile sizes."""

from repro.experiments import sec62_adaptive_tiling


def test_sec62_adaptive_tiling(run_experiment):
    result = run_experiment(sec62_adaptive_tiling)
    # Paper: up to 1.6x over fixed tiling (either always-large or
    # always-small).
    assert result.metrics["max_adaptive_gain"] > 1.15
    assert result.metrics["min_adaptive_gain"] > 1.0
