"""Section 6.3: sensitivity to bandwidth vs compute scaling."""

from repro.experiments import sec63_microarch


def test_sec63_microarch_scaling(run_experiment):
    result = run_experiment(sec63_microarch)
    m = result.metrics
    # Both resources matter materially (paper: 1.2x / 1.4x).  NOTE: in
    # this reproduction the synthetic workloads are more memory-bound
    # than the authors' testbed, so the bandwidth sensitivity comes out
    # LARGER than the compute sensitivity — a documented divergence
    # (EXPERIMENTS.md); the assertion checks both are significant and
    # bounded rather than their ordering.
    assert 1.1 < m["mean_bw_slowdown"] < 2.0
    assert 1.1 < m["mean_compute_slowdown"] < 2.0
