"""Cluster-scheduling benchmark: load balancers under skew and faults.

Not a paper figure — this exercises the `repro.serve` cluster layer the
way a deployment would: N replicas, one of them a straggler, transient
batch failures absorbed by retries.  Every balancer serves the identical
request schedule and fault trace, so the grid isolates the scheduling
policy.  Shape claims asserted:

* least-loaded and cache-affinity beat round-robin p99 on the skewed
  (slow-replica) workload;
* cache-affinity sustains the highest kmap hit rate when the per-replica
  caches are too small to hold every stream;
* under injected faults with retries enabled, every balancer completes
  all non-shed requests;
* hedging trims round-robin's p99 on the skewed cluster.
"""

from __future__ import annotations

import pytest

from repro.serve import (
    FaultPlan,
    PoissonArrivals,
    ServeConfig,
    ServingRuntime,
    generate_requests,
)
from repro.serve.balancer import BALANCERS
from repro.utils.format import format_table

WORKLOAD = "SK-M-0.5"
SCALE = 0.12
REQUESTS = 36
REPLICAS = 3
STREAMS = 4

#: The two cluster conditions of the grid: a straggler replica running at
#: 4x service time under load heavy enough that work stacks up behind it
#: (round-robin keeps feeding it blindly), and a healthy-speed cluster
#: with transient batch failures absorbed by retries.
CONDITIONS = {
    "skewed": dict(
        rate_per_s=400.0,
        config=dict(faults=FaultPlan.parse("skew=4", seed=0), max_retries=0),
    ),
    "faulty": dict(
        rate_per_s=90.0,
        config=dict(
            faults=FaultPlan.parse("fail=0.2", seed=0),
            max_retries=4,
            retry_backoff_ms=2.0,
        ),
    ),
}


def run_cell(balancer: str, condition: str, hedge_ms: float = 0.0):
    config = ServeConfig(
        device="rtx3090",
        precision="fp16",
        scene_scale=SCALE,
        queue_depth=48,
        replicas=REPLICAS,
        balancer=balancer,
        replica_queue_depth=2,
        max_batch_requests=1,
        kmap_cache_size=2,
        hedge_ms=hedge_ms,
        **CONDITIONS[condition]["config"],
    )
    requests = generate_requests(
        WORKLOAD,
        PoissonArrivals(rate_per_s=CONDITIONS[condition]["rate_per_s"], seed=0),
        count=REQUESTS, num_streams=STREAMS, deadline_ms=1000.0,
    )
    return ServingRuntime(config).serve(requests)


@pytest.fixture(scope="module")
def grid():
    out = {}
    for condition in CONDITIONS:
        for balancer in BALANCERS:
            out[(condition, balancer)] = run_cell(balancer, condition)
    # Healthy batches run ~2-3 ms at this scale, the straggler ~3x that:
    # a 4 ms threshold hedges exactly the batches the skew slows down.
    out[("skewed", "round_robin", "hedged")] = run_cell(
        "round_robin", "skewed", hedge_ms=4.0
    )
    return out


def grid_table(grid) -> str:
    rows = []
    for key, result in sorted(grid.items(), key=lambda kv: str(kv[0])):
        condition, balancer = key[0], key[1]
        label = balancer + ("+hedge" if len(key) == 3 else "")
        m = result.metrics
        rows.append([
            condition, label,
            f"{m.latency_p50_ms:.2f}", f"{m.latency_p99_ms:.2f}",
            f"{m.throughput_rps:.1f}",
            str(m.retries), str(m.hedges), str(m.failed),
            f"{100 * m.kmap_hit_rate:.0f}%",
            f"{max(r['utilization'] for r in m.per_replica):.2f}",
        ])
    return format_table(
        ["condition", "balancer", "p50 ms", "p99 ms", "req/s",
         "retries", "hedges", "failed", "kmap hits", "max util"],
        rows,
        title=(
            f"serve balancers: {WORKLOAD} fp16, {REQUESTS} requests, "
            f"{REPLICAS} replicas (scale {SCALE:g})"
        ),
    )


def test_serve_balancer_grid(benchmark, grid, results_dir):
    table = benchmark.pedantic(
        lambda: grid_table(grid), iterations=1, rounds=1
    )
    (results_dir / "serve_balancers.txt").write_text(table + "\n")
    assert WORKLOAD in table


def test_load_aware_balancers_beat_round_robin_p99_under_skew(grid):
    rr = grid[("skewed", "round_robin")].metrics
    ll = grid[("skewed", "least_loaded")].metrics
    affinity = grid[("skewed", "cache_affinity")].metrics
    assert ll.latency_p99_ms < rr.latency_p99_ms
    assert affinity.latency_p99_ms < rr.latency_p99_ms


def test_cache_affinity_has_best_kmap_hit_rate(grid):
    hit_rates = {
        balancer: grid[("skewed", balancer)].metrics.kmap_hit_rate
        for balancer in BALANCERS
    }
    best = max(hit_rates, key=hit_rates.get)
    assert best == "cache_affinity"
    assert hit_rates["cache_affinity"] > hit_rates["round_robin"]


def test_retries_absorb_faults_for_every_balancer(grid):
    for balancer in BALANCERS:
        m = grid[("faulty", balancer)].metrics
        assert m.batch_failures > 0
        assert m.retries > 0
        assert m.failed == 0
        assert m.completed + m.shed == REQUESTS


def test_hedging_trims_round_robin_tail_under_skew(grid):
    plain = grid[("skewed", "round_robin")].metrics
    hedged = grid[("skewed", "round_robin", "hedged")].metrics
    assert hedged.hedges > 0
    assert hedged.latency_p99_ms < plain.latency_p99_ms


def test_grid_is_deterministic(grid):
    rerun = run_cell("least_loaded", "faulty")
    assert rerun.metrics.to_json() == (
        grid[("faulty", "least_loaded")].metrics.to_json()
    )
