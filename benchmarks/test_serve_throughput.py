"""Serving-runtime benchmark: sustained scenes/sec across devices and
arrival rates, warm-vs-cold policy caches, and overload behaviour.

Not a paper figure — this exercises the `repro.serve` subsystem the way the
paper's deployment story implies (tune once, serve a stream of scenes).
Shape claims asserted:

* warm policy cache beats cold cache on p50 latency (same schedule);
* sustained throughput under overload follows device capability;
* overload never grows the queue beyond its bound: excess is shed.
"""

from __future__ import annotations

import pytest

from repro.serve import (
    PoissonArrivals,
    ServeConfig,
    ServingRuntime,
    generate_requests,
)
from repro.utils.format import format_table

WORKLOAD = "SK-M-0.5"  # SemanticKITTI MinkUNet
SCALE = 0.12
DEVICES = ("rtx3090", "a100", "orin")
RATES = (20.0, 60.0, 5000.0)
REQUESTS = 40


def run_cell(device: str, rate: float, warm: bool):
    config = ServeConfig(
        device=device, precision="fp16", scene_scale=SCALE, queue_depth=16,
    )
    runtime = ServingRuntime(config)
    if warm:
        runtime.warm_policy(WORKLOAD)
    requests = generate_requests(
        WORKLOAD, PoissonArrivals(rate_per_s=rate, seed=0),
        count=REQUESTS, num_streams=3, deadline_ms=300.0,
    )
    return runtime.serve(requests)


@pytest.fixture(scope="module")
def grid():
    out = {}
    for device in DEVICES:
        for rate in RATES:
            out[(device, rate)] = run_cell(device, rate, warm=True)
    out[("rtx3090", RATES[0], "cold")] = run_cell(
        "rtx3090", RATES[0], warm=False
    )
    return out


def grid_table(grid) -> str:
    rows = []
    for (key, result) in sorted(grid.items(), key=lambda kv: str(kv[0])):
        device, rate = key[0], key[1]
        cache = "cold" if len(key) == 3 else "warm"
        m = result.metrics
        rows.append([
            device, f"{rate:g}", cache,
            f"{m.throughput_rps:.1f}",
            f"{m.latency_p50_ms:.2f}", f"{m.latency_p95_ms:.2f}",
            f"{m.latency_p99_ms:.2f}",
            str(m.shed), str(m.degraded), str(m.queue_depth_max),
            f"{100 * m.kmap_hit_rate:.0f}%",
        ])
    return format_table(
        ["device", "rate/s", "policy", "req/s", "p50 ms", "p95 ms",
         "p99 ms", "shed", "degraded", "max depth", "kmap hits"],
        rows,
        title=(
            f"serve-bench: {WORKLOAD} fp16, {REQUESTS} requests, "
            f"Poisson arrivals (scale {SCALE:g})"
        ),
    )


def test_serve_throughput_grid(benchmark, grid, results_dir):
    table = benchmark.pedantic(
        lambda: grid_table(grid), iterations=1, rounds=1
    )
    (results_dir / "serve.txt").write_text(table + "\n")
    assert WORKLOAD in table


def test_warm_cache_beats_cold_p50(grid):
    warm = grid[("rtx3090", RATES[0])].metrics
    cold = grid[("rtx3090", RATES[0], "cold")].metrics
    assert warm.latency_p50_ms < cold.latency_p50_ms
    assert warm.degraded == 0 and cold.degraded == REQUESTS


def test_sustained_throughput_follows_device_capability(grid):
    overload = RATES[-1]
    a100 = grid[("a100", overload)].metrics.throughput_rps
    orin = grid[("orin", overload)].metrics.throughput_rps
    assert a100 > orin


def test_throughput_saturates_with_rate(grid):
    per_rate = [grid[("rtx3090", r)].metrics.throughput_rps for r in RATES]
    assert per_rate[0] < per_rate[-1]  # higher offered load, higher carried
    # Carried load never exceeds offered load.
    for rate, carried in zip(RATES, per_rate):
        assert carried <= rate * 1.05


def test_overload_sheds_but_queue_stays_bounded(grid):
    for device in DEVICES:
        m = grid[(device, RATES[-1])].metrics
        assert m.queue_depth_max <= 16
        assert m.shed + m.completed == REQUESTS
        assert m.shed > 0  # 5000/s is far above sustainable


def test_all_runs_complete_requests(grid):
    for result in grid.values():
        assert result.metrics.completed > 0
        assert result.metrics.latency_p99_ms >= result.metrics.latency_p50_ms
