"""Table 2: TorchSparse++ on RTX 3090 vs the scaled PointAcc ASIC."""

from repro.experiments import tab02_pointacc


def test_tab02_pointacc(run_experiment):
    result = run_experiment(tab02_pointacc)
    # Paper: the GPU reaches 56% of the ASIC's speed at a similar compute
    # budget — i.e. the ASIC wins, but within the same order of magnitude.
    fraction = result.metrics["gpu_fraction_of_asic"]
    assert 0.3 < fraction < 1.0
