"""Table 3: end-to-end latency — unsorted vs sorted implicit GEMM."""

from repro.experiments import tab03_e2e_splits


def test_tab03_end_to_end_splits(run_experiment):
    result = run_experiment(tab03_e2e_splits)
    # Paper: unsorted is FASTER end to end on detection workloads (up to
    # 1.2x), despite its redundant computation.
    for key, value in result.metrics.items():
        assert value > 1.0, f"{key}: sorted should lose end-to-end"
        assert value < 1.35, f"{key}: gap should stay below ~1.2-1.3x"
