"""Table 4: kernel-only latency — the opposite of Table 3."""

from repro.experiments import tab03_e2e_splits, tab04_kernel_splits


def test_tab04_kernel_only_splits(run_experiment):
    result = run_experiment(tab04_kernel_splits)
    # Counting only convolution kernels, the sorted dataflow WINS — the
    # paper's demonstration that kernel-only time misleads.
    for key, value in result.metrics.items():
        assert value < 1.0, f"{key}: sorted kernels should win in isolation"

    # The central observation: the winner flips against Table 3's
    # end-to-end measurement of the same configurations.
    e2e = tab03_e2e_splits.run(quick=True)
    for key in e2e.metrics:
        assert e2e.metrics[key] > 1.0 > result.metrics[key], key
