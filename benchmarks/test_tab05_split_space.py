"""Table 5: enlarging the split design space (SemanticKITTI MinkUNet)."""

from repro.experiments import tab05_split_space


def test_tab05_split_space(run_experiment):
    result = run_experiment(tab05_split_space)
    m = result.metrics
    # The enlarged space never loses and helps FP32 most (paper: up to
    # 1.4x, growing from FP16 to FP32).
    assert m["fp16_gain_full_over_s1"] >= 1.0 - 1e-9
    assert m["fp32_gain_full_over_s1"] >= m["fp16_gain_full_over_s1"] - 0.02
    assert m["fp32_gain_full_over_s1"] > 1.03
