#!/usr/bin/env python
"""Tune once, deploy everywhere: the Sparse Autotuner workflow.

Tunes MinkUNet on a few sample scenes for a target device, inspects the
per-group dataflow choices, saves the policy to JSON, reloads it, and runs
inference on fresh scenes — the ADAS deployment story of Section 4.2
("the tuned schedule could be reused for millions of scenes").

Run:  python examples/autotune_deploy.py
"""

import tempfile
from pathlib import Path

from repro.models import get_workload
from repro.nn import ExecutionContext, FixedPolicy
from repro.tune import SparseAutotuner, load_policy, save_policy


def main() -> None:
    workload = get_workload("NS-M-1f")
    model = workload.build_model()
    tune_scenes = [workload.make_input(seed=s) for s in (0, 1)]

    print("tuning on 2 sample scenes for Jetson AGX Orin (FP16) ...")
    tuner = SparseAutotuner()
    policy, report = tuner.tune(model, tune_scenes, "orin", "fp16")
    print(report.describe())

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "orin_policy.json"
        save_policy(policy, path)
        print(f"\npolicy saved to {path} ({path.stat().st_size} bytes)")
        restored = load_policy(path)

    print("\ndeploying on 3 fresh scenes:")
    for seed in (100, 101, 102):
        scene = workload.make_input(seed=seed)
        tuned_ctx = ExecutionContext(
            device="orin", precision="fp16", policy=restored,
            simulate_only=True,
        )
        default_ctx = ExecutionContext(
            device="orin", precision="fp16", policy=FixedPolicy(),
            simulate_only=True,
        )
        model(scene, tuned_ctx)
        scene.cache.clear()
        model(scene, default_ctx)
        print(
            f"  scene {seed}: default {default_ctx.latency_ms():6.2f} ms"
            f" -> tuned {tuned_ctx.latency_ms():6.2f} ms"
            f" ({default_ctx.latency_ms() / tuned_ctx.latency_ms():.2f}x)"
        )


if __name__ == "__main__":
    main()
