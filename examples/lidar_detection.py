#!/usr/bin/env python
"""3D detection backbone on multi-frame LiDAR (CenterPoint on Waymo-like data).

Demonstrates the paper's Table 3 observation on a detection workload: the
*unsorted* implicit GEMM dataflow beats the sorted one end to end, even
though its kernels do more (redundant) computation — because bitmask
sorting costs real mapping time.

Run:  python examples/lidar_detection.py
"""

from repro.experiments.tab03_e2e_splits import CONFIGS, measure_config
from repro.models import get_workload
from repro.sparse.bitmask import redundancy_ratio
from repro.nn import ExecutionContext
from repro.tune import discover_groups


def main() -> None:
    workload = get_workload("WM-C-1f")
    model = workload.build_model()
    print("generating a synthetic Waymo-like scan (64-beam) ...")
    scan = workload.make_input(seed=7)
    print(f"input: {scan}")

    print("\nend-to-end latency by dataflow config (RTX 3090, FP16):")
    for name, config in CONFIGS.items():
        ms = measure_config(model, scan, "rtx 3090", config)
        print(f"  {name:10s} {ms:6.2f} ms")
    print("\nkernel-only latency (no mapping operations):")
    for name, config in CONFIGS.items():
        ms = measure_config(model, scan, "rtx 3090", config, kernel_only=True)
        print(f"  {name:10s} {ms:6.2f} ms")

    # Why: the redundant-computation gap sorting removes ...
    ctx = ExecutionContext(simulate_only=True)
    ordered, by_sig = discover_groups(model, scan, ctx)
    kmap = next(
        by_sig[sig][0].kmap for sig in ordered
        if by_sig[sig][0].kmap.volume == 27
    )
    unsorted_overhead = redundancy_ratio(kmap.nbmap, 1, sort=False)
    sorted_overhead = redundancy_ratio(kmap.nbmap, 1, sort=True)
    print(
        f"\nredundant-MAC ratio: unsorted {unsorted_overhead:.2f}x vs "
        f"sorted {sorted_overhead:.2f}x — yet unsorted wins end to end,"
        "\nbecause sorting's own mapping overhead lands on the critical "
        "path (paper, Tables 3/4)."
    )


if __name__ == "__main__":
    main()
