#!/usr/bin/env python
"""LiDAR semantic segmentation with MinkUNet on a synthetic 64-beam scan.

Generates a SemanticKITTI-like scene, runs MinkUNet through two engines
(SpConv v2 baseline and autotuned TorchSparse++) and prints the simulated
latency breakdown on an RTX 3090 — the paper's Figure 14 setting for one
workload.

Run:  python examples/lidar_segmentation.py
"""

from repro.baselines import get_engine, measure_inference
from repro.models import get_workload


def main() -> None:
    workload = get_workload("SK-M-0.5")
    model = workload.build_model()
    print("generating a synthetic 64-beam LiDAR scan ...")
    scan = workload.make_input(seed=42)
    print(f"input: {scan}")

    print("\nsegmenting with two engines on a simulated RTX 3090 (FP16):")
    results = {}
    for engine_name in ("spconv2", "torchsparse++"):
        engine = get_engine(engine_name)
        m = measure_inference(
            engine, workload, "rtx 3090", "fp16",
            model=model, inputs=[scan],
        )
        results[engine.name] = m
        parts = ", ".join(
            f"{k} {v / 1e3:.2f} ms" for k, v in sorted(m.breakdown_us.items())
        )
        print(f"  {engine.name:14s} {m.mean_ms:6.2f} ms  ({parts})")

    speedup = (
        results["SpConv2.3.5"].mean_ms / results["TorchSparse++"].mean_ms
    )
    print(f"\nTorchSparse++ speedup over SpConv v2: {speedup:.2f}x")

    # The model also runs numerically (logits per voxel):
    from repro.nn import ExecutionContext

    ctx = ExecutionContext(device="rtx 3090", precision="fp16")
    logits = model(scan, ctx)
    print(f"per-voxel logits: {logits.feats.shape} "
          f"(argmax of first voxel = class {int(logits.feats[0].argmax())})")


if __name__ == "__main__":
    main()
