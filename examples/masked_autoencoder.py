#!/usr/bin/env python
"""Sparse masked-autoencoder pre-training (the paper's future application).

Section 6.3 of TorchSparse++ suggests MAE pre-training as a natural next
workload for sparse convolution.  This example runs a hierarchical conv
encoder over only the *visible* patches of masked images (2-D sparse
tensors on the same substrate as the LiDAR models) and shows the
sparse-vs-dense crossover around MAE's standard 75% mask ratio.

Run:  python examples/masked_autoencoder.py
"""

import numpy as np

from repro.apps import MaskedImageEncoder, mae_speedup_vs_dense, masked_image_tensor
from repro.nn import ExecutionContext
from repro.nn.optim import Adam


def main() -> None:
    # A masked batch: 64 images, 56x56 patch grid, 75% of patches hidden.
    batch = masked_image_tensor(mask_ratio=0.75, batch_size=8, seed=0)
    print(f"visible patches across the batch: {batch}")

    # One real pre-training step: encode, regress patch features, update.
    encoder = MaskedImageEncoder(in_channels=batch.num_channels, width=16,
                                 depth=2)
    encoder.train()
    optimizer = Adam(encoder.parameters(), lr=1e-3)
    ctx = ExecutionContext(device="a100", precision="fp16", training=True)
    encoded = encoder(batch, ctx)
    target = np.ones_like(encoded.feats, dtype=np.float32)
    grad = (encoded.feats.astype(np.float32) - target) / encoded.feats.size
    encoder.backward(grad.astype(np.float16), ctx)
    optimizer.step()
    optimizer.zero_grad()
    print(f"one training step: encoded {encoded}, "
          f"simulated step latency {ctx.latency_ms():.2f} ms")

    print("\nsparse vs dense encoder cost by mask ratio (A100 FP16):")
    print(f"{'mask':>6s} {'dense ms':>10s} {'sparse ms':>10s} {'speedup':>9s}")
    for ratio in (0.0, 0.5, 0.6, 0.75, 0.9):
        sparse_ms, dense_ms, speedup = mae_speedup_vs_dense(
            ratio, batch_size=64
        )
        marker = "  <- MAE's standard ratio" if ratio == 0.75 else ""
        print(f"{ratio:6.0%} {dense_ms:10.2f} {sparse_ms:10.2f} "
              f"{speedup:8.2f}x{marker}")


if __name__ == "__main__":
    main()
