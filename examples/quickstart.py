#!/usr/bin/env python
"""Quickstart: sparse tensors, sparse convolution, and the performance model.

Builds a small point cloud, voxelizes it, runs a sparse convolution with
every dataflow (checking they agree numerically), and reports what each
dataflow would cost on an NVIDIA A100.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.gpusim import estimate_trace_us
from repro.hw import A100
from repro.kernels import DATAFLOWS, run_dataflow
from repro.precision import Precision
from repro.sparse import SparseTensor, build_kernel_map, sparse_quantize


def main() -> None:
    # 1. A random "point cloud" (replace with your own Nx3 array).
    rng = np.random.default_rng(0)
    points = rng.uniform(-10.0, 10.0, size=(20_000, 3))
    intensity = rng.random((len(points), 1))

    # 2. Voxelize at 0.2 m and build a sparse tensor.
    coords, feats = sparse_quantize(points, voxel_size=0.2, features=intensity)
    tensor = SparseTensor(coords, feats.astype(np.float32))
    print(f"voxelized: {tensor}")

    # 3. Build the kernel map for a 3x3x3 submanifold convolution.
    kmap = build_kernel_map(tensor.coords, kernel_size=3)
    print(f"kernel map: {kmap} (mean neighbours {kmap.mean_neighbors:.1f})")

    # 4. Run the convolution with every dataflow and compare.
    weights = rng.standard_normal((27, 1, 16)).astype(np.float32) * 0.1
    reference = None
    print(f"\n{'dataflow':28s} {'A100 FP16 latency':>18s}")
    for dataflow in DATAFLOWS:
        out, trace = run_dataflow(
            dataflow, tensor.feats, weights, kmap, precision=Precision.FP16
        )
        if reference is None:
            reference = out.astype(np.float32)
        else:
            np.testing.assert_allclose(
                out.astype(np.float32), reference, rtol=1e-2, atol=1e-2
            )
        latency = estimate_trace_us(trace, A100, Precision.FP16)
        print(f"{dataflow:28s} {latency:15.1f} us")
    print("\nall dataflows agree numerically ✓")


if __name__ == "__main__":
    main()
