#!/usr/bin/env python
"""Relational graph convolution through the sparse-convolution machinery.

Builds a synthetic AIFB-statistics heterogeneous graph, classifies its
nodes with a 2-layer R-GCN (numerically), and compares the simulated
latency and memory of DGL / PyG / Graphiler / TorchSparse++ — the paper's
Figure 16.

Run:  python examples/rgcn_graph.py
"""

import numpy as np

from repro.graph import (
    GRAPH_DATASETS,
    GRAPH_ENGINES,
    RGCN,
    make_graph,
    measure_rgcn,
)


def main() -> None:
    cfg = GRAPH_DATASETS["aifb"]
    graph = make_graph("aifb", seed=0)
    print(f"synthetic AIFB: {graph}")

    # Numerically exact R-GCN inference (relations = kernel offsets).
    model = RGCN(
        num_relations=graph.num_relations,
        in_dim=32,
        hidden_dim=32,
        num_classes=cfg.num_classes,
    )
    rng = np.random.default_rng(1)
    features = rng.standard_normal((graph.num_nodes, 32)).astype(np.float32)
    logits = model.forward(graph, features)
    predictions = logits.argmax(axis=1)
    print(
        f"classified {graph.num_nodes} nodes into {cfg.num_classes} classes"
        f" (class histogram: {np.bincount(predictions).tolist()})"
    )

    print("\nsimulated inference on RTX 3090 (FP16):")
    base = None
    for engine in ("dgl", "pyg", "graphiler", "torchsparse++"):
        m = measure_rgcn(engine, graph, "aifb", num_classes=cfg.num_classes)
        if engine == "torchsparse++":
            base = m
        print(
            f"  {m.engine:14s} {m.latency_ms:7.3f} ms   "
            f"{m.memory_mb:7.1f} MB"
        )
    for engine in ("dgl", "pyg", "graphiler"):
        m = measure_rgcn(engine, graph, "aifb", num_classes=cfg.num_classes)
        print(
            f"  TorchSparse++ vs {m.engine}: "
            f"{m.latency_ms / base.latency_ms:.1f}x faster, "
            f"{m.memory_mb / base.memory_mb:.1f}x less memory"
        )


if __name__ == "__main__":
    main()
