#!/usr/bin/env python
"""Mixed-precision training with the training autotuner (Figures 13/15/22).

Trains a small MinkUNet for a few SGD steps on synthetic scans (real
numerics: loss goes down), then compares simulated training-step latency
under the three forward/dgrad/wgrad binding schemes on an A100.

Run:  python examples/train_minkunet.py
"""

import numpy as np

from repro.models import MinkUNet, get_workload
from repro.nn import ExecutionContext
from repro.tune import BindingScheme, TrainingTuner


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray):
    """Loss value and gradient for per-voxel classification."""
    logits = logits.astype(np.float64)
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    n = len(labels)
    loss = -np.log(probs[np.arange(n), labels] + 1e-12).mean()
    grad = probs
    grad[np.arange(n), labels] -= 1.0
    return loss, (grad / n).astype(np.float32)


def main() -> None:
    rng = np.random.default_rng(0)
    num_classes = 4
    model = MinkUNet(in_channels=4, num_classes=num_classes, width=0.25)
    model.train()

    # A tiny scene so the numeric training loop is quick.
    coords = np.unique(
        np.concatenate(
            [np.zeros((1500, 1), np.int32),
             rng.integers(0, 24, (1500, 3)).astype(np.int32)],
            axis=1,
        ),
        axis=0,
    )
    from repro.sparse import SparseTensor

    scan = SparseTensor(
        coords, rng.standard_normal((len(coords), 4)).astype(np.float32)
    )
    # Height-derived labels: the model has genuine signal to learn.
    labels = np.clip(coords[:, 3] // 6, 0, num_classes - 1).astype(np.int64)

    print("training 10 steps (FP16 kernels, FP32 master weights):")
    lr = 0.5
    first_loss = None
    for step in range(10):
        ctx = ExecutionContext(device="a100", precision="fp16", training=True)
        scan.cache.clear()
        logits = model(scan, ctx)
        loss, grad = softmax_cross_entropy(
            logits.feats.astype(np.float32), labels
        )
        first_loss = first_loss or loss
        model.backward(grad.astype(np.float16), ctx)
        for param in model.parameters():
            if param.grad is not None:
                param.data -= lr * param.grad
        model.zero_grad()
        print(f"  step {step}: loss {loss:.4f} "
              f"(simulated step latency {ctx.latency_ms():.2f} ms)")
    print(f"loss improved {first_loss:.3f} -> {loss:.3f} ✓")

    print("\ntraining-tuner binding schemes on A100 "
          "(conv kernels of NS-M-1f):")
    workload = get_workload("NS-M-1f")
    big_model = workload.build_model()
    big_model.train()
    samples = [workload.make_input(seed=0)]
    for scheme in (BindingScheme.BIND_ALL, BindingScheme.BIND_FWD_DGRAD,
                   BindingScheme.BIND_DGRAD_WGRAD):
        _, report = TrainingTuner(scheme=scheme).tune(
            big_model, samples, "a100", "fp16"
        )
        print(f"  {scheme.value:18s} {report.end_to_end_us / 1e3:7.2f} ms")


if __name__ == "__main__":
    main()
