"""Setuptools shim for environments without the `wheel` package.

Metadata lives in pyproject.toml; this file only enables the legacy
editable-install path (`setup.py develop`) used when PEP 517 builds are
unavailable (e.g. offline machines without `wheel`).
"""

from setuptools import setup

setup()
