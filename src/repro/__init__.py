"""TorchSparse++ reproduction: sparse convolution dataflows, kernel
generation, and autotuning with an analytical GPU performance model.

Public API highlights:

* :class:`repro.sparse.SparseTensor` and :func:`repro.sparse.sparse_quantize`
  — build sparse tensors from point clouds;
* :mod:`repro.nn` — sparse convolution layers and the module system;
* :mod:`repro.models` — MinkUNet and CenterPoint sparse encoders;
* :mod:`repro.tune` — the Sparse Autotuner;
* :mod:`repro.codegen` — the Sparse Kernel Generator;
* :mod:`repro.baselines` — engines modelling MinkowskiEngine, SpConv 1.2,
  TorchSparse, SpConv v2, and TorchSparse++ itself;
* :mod:`repro.gpusim` — the analytical GPU performance model.
"""

from repro.precision import Precision
from repro.sparse import SparseTensor, sparse_quantize

__version__ = "1.0.0"

__all__ = ["Precision", "SparseTensor", "sparse_quantize", "__version__"]
