"""Static analysis for sparse-convolution models (``python -m repro lint``).

Three layers:

* :mod:`repro.analyze.ir` / :mod:`repro.analyze.propagate` — a static IR
  extracted by symbolic propagation of coordinate stride, channel counts
  and kernel-map scope through the model graph, without executing data;
* :mod:`repro.analyze.rules` — a pluggable lint-rule registry
  (severities info/warning/error) over that IR;
* :mod:`repro.analyze.tracecheck` — conservation invariants and a scatter
  write-race detector over :class:`~repro.gpusim.trace.KernelTrace`
  streams.

:func:`lint_model` / :func:`lint_workload` are the high-level entry points
used by the CLI, CI, and the serving runtime's admission controller.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.analyze.depgraph import (
    DepEdge,
    DependenceGraph,
    check_dependences,
    check_depgraph,
    check_latency_model,
    depgraph_report_json,
)
from repro.analyze.hb import (
    HappensBefore,
    SyncEvent,
    check_schedule,
    find_redundant_events,
    redundant_sync_edges,
)
from repro.analyze.ir import (
    ChannelMismatch,
    IRNode,
    JoinEvent,
    MapEvent,
    ModelIR,
    SymbolicTensor,
)
from repro.analyze.propagate import (
    HANDLERS,
    SymbolicTracer,
    register_handler,
    trace_model,
)
from repro.analyze.provenance import (
    Exemption,
    FuzzReport,
    KeyComponent,
    KeySchema,
    ReadLog,
    SiteAudit,
    audit_cache_site,
    audit_cache_sites,
    fuzz_all,
    fuzz_cache_site,
    provenance_findings,
    register_cache_site,
    wrap,
)
from repro.analyze.ranges import (
    LayerRange,
    RangeReport,
    ValueRange,
    model_range_report,
    precision_drop_veto,
    propagate_ranges,
)
from repro.analyze.rules import (
    RULES,
    Finding,
    LintContext,
    Severity,
    lint_rule,
    max_severity,
    run_rules,
    static_weight_bytes,
)
from repro.analyze.tracecheck import (
    TraceViolation,
    assert_trace_ok,
    check_conv_trace,
    check_scatter_races,
    check_trace,
    scatter_conflicts,
)
from repro.gpusim.trace import KernelTrace
from repro.hw.specs import DeviceSpec
from repro.nn.module import Module
from repro.precision import Precision


def analyze_model(
    model: Module, in_channels: int, ndim: int = 3
) -> ModelIR:
    """Build the static IR of ``model`` (alias of :func:`trace_model`)."""
    return trace_model(model, in_channels=in_channels, ndim=ndim)


def collect_execution_trace(
    model: Module,
    in_channels: int,
    device: "DeviceSpec | str" = "a100",
    precision: "Precision | str" = Precision.FP16,
    policy: Optional[Any] = None,
    num_points: int = 150,
    seed: int = 0,
) -> Optional["KernelTrace"]:
    """Simulate one forward pass on a small synthetic scene and return the
    annotated kernel trace (``None`` when the model cannot execute — the
    static rules still run without it)."""
    import numpy as np

    from repro.hw import get_device
    from repro.nn.context import ExecutionContext
    from repro.sparse.tensor import SparseTensor

    rng = np.random.default_rng(seed)
    coords = np.unique(
        rng.integers(0, 24, size=(num_points, 3), dtype=np.int32), axis=0
    )
    # Leading batch column (single scene).
    coords = np.concatenate(
        [np.zeros((len(coords), 1), dtype=np.int32), coords], axis=1
    )
    feats = rng.standard_normal((len(coords), in_channels)).astype(np.float32)
    ctx = ExecutionContext(
        device=get_device(device),
        precision=Precision.parse(precision),
        policy=policy,
        simulate_only=True,
    )
    try:
        model(SparseTensor(coords=coords, feats=feats), ctx)
    except Exception:
        return None
    return ctx.trace


def lint_model(
    model: Module,
    *,
    in_channels: int,
    device: "DeviceSpec | str" = "a100",
    precision: "Precision | str" = Precision.FP16,
    policy: Optional[Any] = None,
    ndim: int = 3,
    rules: Optional[Sequence[str]] = None,
    trace: Optional["KernelTrace"] = None,
    collect_trace: bool = False,
) -> List[Finding]:
    """Statically lint one model for a deployment target.

    ``trace`` supplies an executed kernel trace for the dependence and
    liveness rules; ``collect_trace=True`` simulates a small forward pass
    to obtain one (3-D models only).  Without either, trace-level rules
    are skipped.  Returns findings sorted most severe first (empty list =
    clean).
    """
    from repro.hw import get_device

    if trace is None and collect_trace and ndim == 3:
        trace = collect_execution_trace(
            model,
            in_channels,
            device=device,
            precision=precision,
            policy=policy,
        )
    ir = trace_model(model, in_channels=in_channels, ndim=ndim)
    ctx = LintContext(
        ir=ir,
        device=get_device(device),
        precision=Precision.parse(precision),
        policy=policy,
        trace=trace,
    )
    return run_rules(ctx, rules=rules)


def lint_workload(
    workload_id: str,
    *,
    device: "DeviceSpec | str" = "a100",
    precision: "Precision | str" = Precision.FP16,
    policy: Optional[Any] = None,
    rules: Optional[Sequence[str]] = None,
    collect_trace: bool = False,
) -> List[Finding]:
    """Lint a bundled workload's model with its dataset's input channels."""
    from repro.models import get_workload

    workload = get_workload(workload_id)
    model = workload.build_model()
    return lint_model(
        model,
        in_channels=workload.dataset_config.in_channels,
        device=device,
        precision=precision,
        policy=policy,
        rules=rules,
        collect_trace=collect_trace,
    )


__all__ = [
    "ChannelMismatch",
    "DepEdge",
    "DependenceGraph",
    "Exemption",
    "Finding",
    "FuzzReport",
    "KeyComponent",
    "KeySchema",
    "HANDLERS",
    "HappensBefore",
    "SyncEvent",
    "IRNode",
    "JoinEvent",
    "LayerRange",
    "LintContext",
    "MapEvent",
    "ModelIR",
    "RULES",
    "RangeReport",
    "ReadLog",
    "Severity",
    "SiteAudit",
    "SymbolicTensor",
    "SymbolicTracer",
    "TraceViolation",
    "ValueRange",
    "analyze_model",
    "assert_trace_ok",
    "audit_cache_site",
    "audit_cache_sites",
    "check_conv_trace",
    "check_dependences",
    "check_depgraph",
    "check_latency_model",
    "check_scatter_races",
    "check_schedule",
    "check_trace",
    "collect_execution_trace",
    "depgraph_report_json",
    "find_redundant_events",
    "fuzz_all",
    "fuzz_cache_site",
    "lint_model",
    "lint_rule",
    "lint_workload",
    "max_severity",
    "model_range_report",
    "precision_drop_veto",
    "propagate_ranges",
    "provenance_findings",
    "redundant_sync_edges",
    "register_cache_site",
    "register_handler",
    "run_rules",
    "scatter_conflicts",
    "static_weight_bytes",
    "trace_model",
    "wrap",
]
