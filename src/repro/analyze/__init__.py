"""Static analysis for sparse-convolution models (``python -m repro lint``).

Three layers:

* :mod:`repro.analyze.ir` / :mod:`repro.analyze.propagate` — a static IR
  extracted by symbolic propagation of coordinate stride, channel counts
  and kernel-map scope through the model graph, without executing data;
* :mod:`repro.analyze.rules` — a pluggable lint-rule registry
  (severities info/warning/error) over that IR;
* :mod:`repro.analyze.tracecheck` — conservation invariants and a scatter
  write-race detector over :class:`~repro.gpusim.trace.KernelTrace`
  streams.

:func:`lint_model` / :func:`lint_workload` are the high-level entry points
used by the CLI, CI, and the serving runtime's admission controller.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.analyze.ir import (
    ChannelMismatch,
    IRNode,
    JoinEvent,
    MapEvent,
    ModelIR,
    SymbolicTensor,
)
from repro.analyze.propagate import (
    HANDLERS,
    SymbolicTracer,
    register_handler,
    trace_model,
)
from repro.analyze.rules import (
    RULES,
    Finding,
    LintContext,
    Severity,
    lint_rule,
    max_severity,
    run_rules,
    static_weight_bytes,
)
from repro.analyze.tracecheck import (
    TraceViolation,
    assert_trace_ok,
    check_conv_trace,
    check_scatter_races,
    check_trace,
    scatter_conflicts,
)
from repro.hw.specs import DeviceSpec
from repro.nn.module import Module
from repro.precision import Precision


def analyze_model(
    model: Module, in_channels: int, ndim: int = 3
) -> ModelIR:
    """Build the static IR of ``model`` (alias of :func:`trace_model`)."""
    return trace_model(model, in_channels=in_channels, ndim=ndim)


def lint_model(
    model: Module,
    *,
    in_channels: int,
    device: "DeviceSpec | str" = "a100",
    precision: "Precision | str" = Precision.FP16,
    policy: Optional[Any] = None,
    ndim: int = 3,
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Statically lint one model for a deployment target.

    Returns findings sorted most severe first (empty list = clean).
    """
    from repro.hw import get_device

    ir = trace_model(model, in_channels=in_channels, ndim=ndim)
    ctx = LintContext(
        ir=ir,
        device=get_device(device),
        precision=Precision.parse(precision),
        policy=policy,
    )
    return run_rules(ctx, rules=rules)


def lint_workload(
    workload_id: str,
    *,
    device: "DeviceSpec | str" = "a100",
    precision: "Precision | str" = Precision.FP16,
    policy: Optional[Any] = None,
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint a bundled workload's model with its dataset's input channels."""
    from repro.models import get_workload

    workload = get_workload(workload_id)
    model = workload.build_model()
    return lint_model(
        model,
        in_channels=workload.dataset_config.in_channels,
        device=device,
        precision=precision,
        policy=policy,
        rules=rules,
    )


__all__ = [
    "ChannelMismatch",
    "Finding",
    "HANDLERS",
    "IRNode",
    "JoinEvent",
    "LintContext",
    "MapEvent",
    "ModelIR",
    "RULES",
    "Severity",
    "SymbolicTensor",
    "SymbolicTracer",
    "TraceViolation",
    "analyze_model",
    "assert_trace_ok",
    "check_conv_trace",
    "check_scatter_races",
    "check_trace",
    "lint_model",
    "lint_rule",
    "lint_workload",
    "max_severity",
    "register_handler",
    "run_rules",
    "scatter_conflicts",
    "static_weight_bytes",
    "trace_model",
]
