"""Launch-level dependence and liveness analysis over kernel traces.

Every annotated :class:`~repro.gpusim.trace.KernelLaunch` names the
buffers it reads and writes (:class:`~repro.gpusim.trace.BufferAccess`).
From one serialized trace this module builds the dependence DAG —

* **RAW** edges from a buffer's last writer to each subsequent reader,
* **WAR** edges from each reader to the buffer's next writer,
* **WAW** edges between consecutive writers,

— and checks the cross-launch invariants that per-launch sanitizers
(:mod:`repro.analyze.tracecheck`) cannot see:

* ``uninitialized-read`` — a ``ws:`` buffer is read but never written;
* ``raw-order`` — a ``ws:`` buffer is read before its only writes (a
  reordered producer/consumer pair);
* ``workspace-lifetime`` — a ``ws:`` buffer is written but never
  consumed (a leaked staging buffer), or a launch touches more live
  workspace than its ``workspace_bytes`` accounts for (use-after-free
  against the PR 4 liveness model: the buffer would have been freed);
* ``unordered-conflicting-writes`` — two launches plain-write the same
  buffer with no RAW/WAR path ordering them and no atomics resolving
  the conflict (the launch-level generalization of the scatter race
  detector).

From the same DAG the analyzer computes the critical path under
:func:`~repro.gpusim.engine.estimate_launch_us` node weights.  Because
the serialized-stream estimate sums every launch, it can never be below
the longest dependence chain — ``check_latency_model`` cross-validates
exactly that and reports ``critical-path-bound`` violations when a
future engine change breaks the invariant.

Launches with empty read/write sets are treated as unannotated and do
not participate (they still count toward serialized latency).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analyze.tracecheck import TraceViolation
from repro.gpusim.engine import estimate_launch_us, estimate_trace_us
from repro.gpusim.trace import KernelLaunch, KernelTrace
from repro.hw.specs import DeviceSpec
from repro.precision import Precision

#: Absolute slack (bytes) for float byte comparisons.
_EPS_BYTES = 0.5
#: Relative slack for latency comparisons (summation-order noise).
_EPS_REL = 1e-6

#: Edge kinds, in reporting order.
EDGE_KINDS = ("RAW", "WAR", "WAW")


@dataclasses.dataclass(frozen=True)
class DepEdge:
    """One dependence edge between launch indices ``src -> dst``."""

    src: int
    dst: int
    kind: str
    buffer: str


class DependenceGraph:
    """The launch-level dependence DAG of one serialized trace."""

    def __init__(self, launches: Sequence[KernelLaunch], edges: List[DepEdge]):
        self.launches = list(launches)
        self.edges = edges

    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, trace: "KernelTrace | Sequence[KernelLaunch]") -> "DependenceGraph":
        """Single pass over program order with per-buffer last-writer and
        readers-since-write state; near-linear in trace size."""
        launches = list(trace)
        edges: List[DepEdge] = []
        seen: set = set()
        last_writer: Dict[str, int] = {}
        readers_since: Dict[str, List[int]] = {}

        def add(src: int, dst: int, kind: str, buffer: str) -> None:
            if src == dst:
                return  # read-modify-write within one launch
            key = (src, dst, kind)
            if key in seen:
                return
            seen.add(key)
            edges.append(DepEdge(src, dst, kind, buffer))

        for i, launch in enumerate(launches):
            read_here = set()
            for access in launch.reads:
                writer = last_writer.get(access.buffer)
                if writer is not None:
                    add(writer, i, "RAW", access.buffer)
                readers_since.setdefault(access.buffer, []).append(i)
                read_here.add(access.buffer)
            for access in launch.writes:
                writer = last_writer.get(access.buffer)
                for reader in readers_since.get(access.buffer, ()):
                    add(reader, i, "WAR", access.buffer)
                if writer is not None:
                    add(writer, i, "WAW", access.buffer)
                last_writer[access.buffer] = i
                # A read-modify-write launch stays a reader of record: any
                # later writer racing with its write also races with its
                # read, so the WAR ordering against it is real.
                readers_since[access.buffer] = (
                    [i] if access.buffer in read_here else []
                )
        return cls(launches, edges)

    # ------------------------------------------------------------------ #
    def edge_counts(self) -> Dict[str, int]:
        counts = {kind: 0 for kind in EDGE_KINDS}
        for edge in self.edges:
            counts[edge.kind] += 1
        return counts

    def _node_weights(
        self, device: DeviceSpec, precision: Precision
    ) -> List[float]:
        return [
            estimate_launch_us(launch, device, precision)
            for launch in self.launches
        ]

    def critical_path(
        self, device: DeviceSpec, precision: Precision
    ) -> Tuple[List[int], float]:
        """Longest dependence chain: launch indices and its latency (us).

        Edges only ever point forward in program order, so program order
        is a topological order and one forward DP suffices.
        """
        n = len(self.launches)
        if n == 0:
            return [], 0.0
        weights = self._node_weights(device, precision)
        preds: Dict[int, List[int]] = {}
        for edge in self.edges:
            preds.setdefault(edge.dst, []).append(edge.src)
        best = list(weights)
        best_pred: List[Optional[int]] = [None] * n
        for i in range(n):
            for p in preds.get(i, ()):
                candidate = best[p] + weights[i]
                if candidate > best[i]:
                    best[i] = candidate
                    best_pred[i] = p
        end = max(range(n), key=lambda i: best[i])
        path = [end]
        while best_pred[path[-1]] is not None:
            path.append(best_pred[path[-1]])  # type: ignore[arg-type]
        path.reverse()
        return path, best[end]

    def parallelism(self, device: DeviceSpec, precision: Precision) -> float:
        """Available launch parallelism: serialized latency over span."""
        _, span = self.critical_path(device, precision)
        if span <= 0.0:
            return 1.0
        serialized = sum(self._node_weights(device, precision))
        return serialized / span

    # ------------------------------------------------------------------ #
    def to_json(
        self, device: DeviceSpec, precision: Precision, ndigits: int = 3
    ) -> Dict[str, object]:
        """Deterministic JSON document (floats rounded for stability)."""
        path, span = self.critical_path(device, precision)
        weights = self._node_weights(device, precision)
        serialized = sum(weights)
        return {
            "device": device.name,
            "precision": precision.value,
            "launches": len(self.launches),
            "edges": self.edge_counts(),
            "critical_path_us": round(span, ndigits),
            "serialized_us": round(serialized, ndigits),
            "parallelism": round(
                serialized / span if span > 0 else 1.0, ndigits
            ),
            "critical_path": [
                {
                    "index": i,
                    "name": self.launches[i].name,
                    "kind": self.launches[i].kind.value,
                    "us": round(weights[i], ndigits),
                }
                for i in path
            ],
        }

    def to_dot(self) -> str:
        """Graphviz DOT export (RAW solid, WAR dashed, WAW dotted)."""
        styles = {"RAW": "solid", "WAR": "dashed", "WAW": "dotted"}
        lines = ["digraph depgraph {", "  rankdir=TB;", "  node [shape=box];"]
        for i, launch in enumerate(self.launches):
            name = launch.name.replace('"', "'")
            lines.append(f'  n{i} [label="{i}: {name}"];')
        for edge in self.edges:
            buffer = edge.buffer.replace('"', "'")
            lines.append(
                f'  n{edge.src} -> n{edge.dst} '
                f'[style={styles[edge.kind]}, label="{edge.kind} {buffer}"];'
            )
        lines.append("}")
        return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Cross-launch invariant checks
# ---------------------------------------------------------------------- #
def _buffer_extents(launches: Sequence[KernelLaunch]) -> Dict[str, float]:
    """Byte extent of each buffer: the largest access observed."""
    extents: Dict[str, float] = {}
    for launch in launches:
        for access in list(launch.reads) + list(launch.writes):
            extents[access.buffer] = max(
                extents.get(access.buffer, 0.0), float(access.nbytes)
            )
    return extents


def _reachable_via(
    n: int, edges: Iterable[DepEdge], kinds: Tuple[str, ...]
) -> List[int]:
    """Ancestor bitsets over the given edge kinds (program order is
    topological, so one forward pass closes the relation)."""
    preds: Dict[int, List[int]] = {}
    for edge in edges:
        if edge.kind in kinds:
            preds.setdefault(edge.dst, []).append(edge.src)
    ancestors = [0] * n
    for i in range(n):
        acc = 0
        for p in preds.get(i, ()):
            acc |= ancestors[p] | (1 << p)
        ancestors[i] = acc
    return ancestors


def check_dependences(
    trace: "KernelTrace | Sequence[KernelLaunch]",
) -> List[TraceViolation]:
    """Use-before-def, workspace-lifetime and write-ordering checks."""
    launches = list(trace)
    graph = DependenceGraph.build(launches)
    violations: List[TraceViolation] = []
    extents = _buffer_extents(launches)

    first_write: Dict[str, int] = {}
    first_read: Dict[str, int] = {}
    read_buffers: set = set()
    for i, launch in enumerate(launches):
        for access in launch.reads:
            first_read.setdefault(access.buffer, i)
            read_buffers.add(access.buffer)
        for access in launch.writes:
            first_write.setdefault(access.buffer, i)

    # --- use-before-def / raw-order on workspace buffers --------------- #
    for buffer, reader in sorted(first_read.items()):
        if not buffer.startswith("ws:"):
            continue
        writer = first_write.get(buffer)
        if writer is None:
            violations.append(
                TraceViolation(
                    invariant="uninitialized-read",
                    launch=launches[reader].name,
                    message=(
                        f"workspace buffer {buffer!r} is read but no launch "
                        f"in the trace ever writes it (dropped producer?)"
                    ),
                )
            )
        elif writer > reader:
            violations.append(
                TraceViolation(
                    invariant="raw-order",
                    launch=launches[reader].name,
                    message=(
                        f"workspace buffer {buffer!r} is read at launch "
                        f"{reader} before its first write at launch {writer} "
                        f"({launches[writer].name!r}): missing RAW ordering"
                    ),
                )
            )

    # --- leaked staging buffers (written, never consumed) -------------- #
    for buffer, writer in sorted(first_write.items()):
        if buffer.startswith("ws:") and buffer not in read_buffers:
            violations.append(
                TraceViolation(
                    invariant="workspace-lifetime",
                    launch=launches[writer].name,
                    message=(
                        f"workspace buffer {buffer!r} is written but never "
                        f"read: leaked staging allocation of "
                        f"{extents.get(buffer, 0.0):.0f} bytes"
                    ),
                )
            )

    # --- per-launch liveness accounting (use-after-free) ---------------- #
    # A launch needs the bytes *it* accesses to be live — its own access
    # extents, not the buffer's global maximum (the same scoped buffer
    # name recurs across samples of different sizes).
    for launch in launches:
        touched: Dict[str, float] = {}
        for access in list(launch.reads) + list(launch.writes):
            if access.workspace:
                touched[access.buffer] = max(
                    touched.get(access.buffer, 0.0), float(access.nbytes)
                )
        live = sum(touched.values())
        if live > float(launch.workspace_bytes) + _EPS_BYTES:
            names = ", ".join(sorted(touched))
            violations.append(
                TraceViolation(
                    invariant="workspace-lifetime",
                    launch=launch.name,
                    message=(
                        f"launch touches {live:.0f} bytes of live workspace "
                        f"({names}) but accounts only "
                        f"{float(launch.workspace_bytes):.0f} "
                        f"workspace_bytes: buffers it relies on would "
                        f"already be freed"
                    ),
                )
            )

    # --- unordered conflicting plain writes ----------------------------- #
    # Two plain (non-atomic) writers of one buffer race unless a RAW or
    # WAR chain pins their relative order; a bare WAW edge does not — a
    # dependence-preserving parallel scheduler is free to reorder it.
    plain_writers: Dict[str, List[int]] = {}
    atomic_only: Dict[Tuple[str, int], bool] = {}
    for i, launch in enumerate(launches):
        by_buffer: Dict[str, List[bool]] = {}
        for access in launch.writes:
            by_buffer.setdefault(access.buffer, []).append(access.atomic)
        for buffer, atomics in by_buffer.items():
            if all(atomics):
                continue  # fully atomic: hardware-ordered
            writers = plain_writers.setdefault(buffer, [])
            if writers and writers[-1] == i:
                continue
            writers.append(i)
    conflicts = {
        buffer: writers
        for buffer, writers in plain_writers.items()
        if len(writers) > 1
    }
    if conflicts:
        ancestors = _reachable_via(
            len(launches), graph.edges, ("RAW", "WAR")
        )
        for buffer, writers in sorted(conflicts.items()):
            for a, b in zip(writers, writers[1:]):
                if not (ancestors[b] >> a) & 1:
                    violations.append(
                        TraceViolation(
                            invariant="unordered-conflicting-writes",
                            launch=launches[b].name,
                            message=(
                                f"launches {launches[a].name!r} and "
                                f"{launches[b].name!r} both plain-write "
                                f"buffer {buffer!r} with no RAW/WAR path "
                                f"ordering them: non-deterministic final "
                                f"value"
                            ),
                        )
                    )
    return violations


def check_latency_model(
    trace: "KernelTrace | Sequence[KernelLaunch]",
    device: DeviceSpec,
    precision: Precision,
    graph: Optional[DependenceGraph] = None,
    streams: int = 2,
) -> List[TraceViolation]:
    """Cross-validate the serialized-stream estimate against the DAG
    critical-path lower bound, and the sync-aware multi-stream schedule
    against both bounds plus the happens-before race detector."""
    launches = list(trace)
    if graph is None:
        graph = DependenceGraph.build(launches)
    _, span = graph.critical_path(device, precision)
    serialized = estimate_trace_us(
        trace if isinstance(trace, KernelTrace) else KernelTrace(launches),
        device,
        precision,
    )
    violations: List[TraceViolation] = []
    if serialized < span * (1.0 - _EPS_REL) - _EPS_REL:
        violations.append(
            TraceViolation(
                invariant="critical-path-bound",
                message=(
                    f"serialized-stream estimate {serialized:.3f} us is "
                    f"below the dependence critical path {span:.3f} us: "
                    f"the latency model undercuts its own lower bound"
                ),
            )
        )
    if streams > 1 and launches:
        # Imported lazily: repro.opt builds on this module.
        from repro.analyze.hb import check_schedule
        from repro.opt.schedule import best_schedule

        schedule = best_schedule(launches, device, precision, streams, graph)
        # The schedule is bounded by its *own* weight sums (the same
        # estimate_launch_us weights its makespan is built from), so
        # this stays a scheduler-consistency check even when the trace
        # estimate above disagrees with the DAG.
        if schedule.makespan_us < span * (1.0 - _EPS_REL) - _EPS_REL:
            violations.append(
                TraceViolation(
                    invariant="scheduled-latency-bound",
                    message=(
                        f"scheduled estimate {schedule.makespan_us:.3f} us "
                        f"({schedule.streams} streams) is below the "
                        f"dependence critical path {span:.3f} us: the "
                        f"scheduler claims impossible overlap"
                    ),
                )
            )
        if schedule.makespan_us > schedule.serialized_us * (
            1.0 + _EPS_REL
        ) + _EPS_REL:
            violations.append(
                TraceViolation(
                    invariant="scheduled-latency-bound",
                    message=(
                        f"scheduled estimate {schedule.makespan_us:.3f} us "
                        f"({schedule.streams} streams) exceeds the "
                        f"serialized latency "
                        f"{schedule.serialized_us:.3f} us: min-over-K must "
                        f"fall back to one stream"
                    ),
                )
            )
        violations.extend(check_schedule(launches, schedule, graph))
    return violations


def check_depgraph(
    trace: "KernelTrace | Sequence[KernelLaunch]",
    device: Optional[DeviceSpec] = None,
    precision: Optional[Precision] = None,
) -> List[TraceViolation]:
    """All dependence checks; latency cross-validation when a target is
    given."""
    violations = check_dependences(trace)
    if device is not None and precision is not None:
        violations.extend(check_latency_model(trace, device, precision))
    return violations


def depgraph_report_json(
    trace: "KernelTrace | Sequence[KernelLaunch]",
    device: DeviceSpec,
    precision: Precision,
) -> str:
    """Stable JSON string for CLI export and determinism smokes."""
    graph = DependenceGraph.build(trace)
    doc = graph.to_json(device, precision)
    doc["violations"] = [
        {
            "invariant": v.invariant,
            "launch": v.launch,
            "message": v.message,
        }
        for v in check_depgraph(trace, device, precision)
    ]
    return json.dumps(doc, indent=2, sort_keys=True)


__all__ = [
    "DepEdge",
    "DependenceGraph",
    "check_dependences",
    "check_latency_model",
    "check_depgraph",
    "depgraph_report_json",
]
