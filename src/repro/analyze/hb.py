"""Happens-before verification of multi-stream schedules.

A K-stream placement of a trace is only sound if every dependence edge
(RAW/WAR/WAW, :class:`~repro.analyze.depgraph.DependenceGraph`) is
ordered by the schedule's *happens-before* relation:

* **program order** — launches placed on one stream execute in their
  placement order (streams are FIFO queues);
* **sync edges** — an explicit :class:`SyncEvent` records completion of
  one launch and makes another launch's stream wait on it (the model of
  ``cudaEventRecord`` + ``cudaStreamWaitEvent``).

Happens-before is the transitive closure of those two edge sets.  A
dependence edge whose endpoints are not HB-ordered is a race: a real
multi-stream runtime replaying the placement could observe the writer
and reader in either order.  :func:`check_schedule` finds every such
edge *independently of the scheduler that produced the placement* — it
trusts nothing but the trace's access annotations and the schedule's
stream/event claims, so it catches a buggy or adversarially modified
scheduler the same way :func:`~repro.analyze.depgraph.check_dependences`
sandwiches the ``repro.opt`` passes.

The same HB graph supports *sync-point inference*: the scheduler emits
one candidate event per cross-stream dependence, then
:func:`redundant_sync_edges` removes every event already implied by the
remaining graph (classic transitive reduction, restricted to sync edges
— program order is fixed by the placement and never removable).  In a
DAG, deleting an edge ``a -> b`` is closure-preserving exactly when some
other path ``a -> .. -> b`` of length >= 2 exists, so the reduction
never drops a required ordering.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
)

from repro.analyze.depgraph import DependenceGraph
from repro.analyze.tracecheck import TraceViolation
from repro.gpusim.trace import KernelLaunch, KernelTrace

#: Invariant names reported by :func:`check_schedule`.
RACE_INVARIANT = "unsynchronized-cross-stream-dep"
MALFORMED_SYNC_INVARIANT = "malformed-sync"
MALFORMED_SCHEDULE_INVARIANT = "malformed-schedule"

#: Absolute slack (us) for schedule timestamp comparisons.
_EPS_US = 1e-9


@dataclass(frozen=True)
class SyncEvent:
    """One explicit cross-stream synchronization.

    The event is recorded on ``record_stream`` immediately after launch
    ``record_index`` completes; ``wait_stream`` blocks before issuing
    launch ``wait_index`` until the event has fired.  This is the
    analytical model of a ``cudaEventRecord``/``cudaStreamWaitEvent``
    pair and induces the HB edge ``record_index -> wait_index``.
    """

    event_id: int
    record_index: int
    record_stream: int
    wait_index: int
    wait_stream: int


class PlacementLike(Protocol):
    """Structural view of one scheduled launch (see ``ScheduledLaunch``)."""

    @property
    def index(self) -> int: ...

    @property
    def name(self) -> str: ...

    @property
    def stream(self) -> int: ...

    @property
    def start_us(self) -> float: ...

    @property
    def end_us(self) -> float: ...


class ScheduleLike(Protocol):
    """Structural view of a stream schedule (see ``StreamSchedule``).

    Defined as a protocol so the analyzer verifies schedules without
    importing :mod:`repro.opt` (which itself builds on the analyzer).
    """

    @property
    def streams(self) -> int: ...

    @property
    def assignments(self) -> Tuple[PlacementLike, ...]: ...

    @property
    def events(self) -> Tuple[SyncEvent, ...]: ...


def _is_barrier(launch: KernelLaunch) -> bool:
    """Unannotated launches order against everything (see opt.schedule)."""
    return not launch.reads and not launch.writes


def stream_sequences(schedule: ScheduleLike) -> Dict[int, List[int]]:
    """Launch indices per stream, in issue order (start time, then index)."""
    per_stream: Dict[int, List[int]] = {}
    ordered = sorted(schedule.assignments, key=lambda a: (a.start_us, a.index))
    for assignment in ordered:
        per_stream.setdefault(assignment.stream, []).append(assignment.index)
    return per_stream


def program_order_edges(schedule: ScheduleLike) -> List[Tuple[int, int]]:
    """HB edges between consecutive launches on each stream."""
    edges: List[Tuple[int, int]] = []
    for _, sequence in sorted(stream_sequences(schedule).items()):
        edges.extend(zip(sequence, sequence[1:]))
    return edges


class HappensBefore:
    """Transitive closure of an HB edge set via ancestor bitsets.

    The closure is computed over a deterministic topological order
    (Kahn's algorithm with a min-heap).  When the edges are cyclic —
    only possible for malformed external schedules — ``acyclic`` is
    False and ``ordered`` conservatively answers False, so every
    dependence through the cycle is reported rather than assumed safe.
    """

    def __init__(self, n: int, edges: Iterable[Tuple[int, int]]):
        preds: List[List[int]] = [[] for _ in range(n)]
        succs: List[List[int]] = [[] for _ in range(n)]
        indegree = [0] * n
        for src, dst in edges:
            preds[dst].append(src)
            succs[src].append(dst)
            indegree[dst] += 1
        heap = [i for i in range(n) if indegree[i] == 0]
        heapq.heapify(heap)
        topo: List[int] = []
        while heap:
            node = heapq.heappop(heap)
            topo.append(node)
            for succ in succs[node]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    heapq.heappush(heap, succ)
        self.acyclic = len(topo) == n
        self._preds = preds
        self._ancestors = [0] * n
        if self.acyclic:
            for node in topo:
                acc = 0
                for pred in preds[node]:
                    acc |= self._ancestors[pred] | (1 << pred)
                self._ancestors[node] = acc

    def ordered(self, a: int, b: int) -> bool:
        """True when ``a`` happens before ``b`` (or they are the same)."""
        if a == b:
            return True
        if not self.acyclic:
            return False
        return bool((self._ancestors[b] >> a) & 1)

    def direct_preds(self, node: int) -> List[int]:
        return self._preds[node]


def redundant_sync_edges(
    n: int,
    program_edges: Sequence[Tuple[int, int]],
    sync_edges: Sequence[Tuple[int, int]],
) -> List[int]:
    """Positions in ``sync_edges`` that a transitive reduction removes.

    A sync edge ``a -> b`` is redundant when the ordering is already
    implied without it: a duplicate of an earlier sync edge or of a
    program-order edge, or some other direct predecessor ``p`` of ``b``
    with ``a`` an ancestor of ``p`` (i.e. a path ``a -> .. -> p -> b``
    of length >= 2 exists).  Removing all such edges preserves the HB
    closure — this is the classical DAG transitive-reduction criterion,
    restricted to removable (sync) edges.
    """
    closure = HappensBefore(n, list(program_edges) + list(sync_edges))
    if not closure.acyclic:
        return []
    program_pairs = set(program_edges)
    seen_pairs: Set[Tuple[int, int]] = set()
    redundant: List[int] = []
    for position, (src, dst) in enumerate(sync_edges):
        if (src, dst) in seen_pairs or (src, dst) in program_pairs:
            redundant.append(position)
            continue
        seen_pairs.add((src, dst))
        for pred in closure.direct_preds(dst):
            if pred != src and closure.ordered(src, pred):
                redundant.append(position)
                break
    return redundant


def find_redundant_events(schedule: ScheduleLike) -> List[SyncEvent]:
    """Sync events of ``schedule`` already implied by the remaining HB graph.

    Empty for schedules produced by ``list_schedule``, which runs the
    reduction itself; non-empty signals an over-synchronized external
    schedule (the ``redundant-sync`` lint).
    """
    n = len(schedule.assignments)
    sync = [(e.record_index, e.wait_index) for e in schedule.events]
    positions = redundant_sync_edges(n, program_order_edges(schedule), sync)
    return [schedule.events[p] for p in positions]


def _check_structure(
    launches: Sequence[KernelLaunch], schedule: ScheduleLike
) -> List[TraceViolation]:
    """Schedule-shape checks that must hold before any HB reasoning."""
    violations: List[TraceViolation] = []
    n = len(launches)
    indices = sorted(a.index for a in schedule.assignments)
    if indices != list(range(n)):
        return [
            TraceViolation(
                invariant=MALFORMED_SCHEDULE_INVARIANT,
                message=(
                    f"schedule places {len(schedule.assignments)} launches "
                    f"but the trace has {n}: assignments must be a "
                    f"permutation of launch indices 0..{n - 1}"
                ),
            )
        ]
    by_index = {a.index: a for a in schedule.assignments}
    for i in range(n):
        placement = by_index[i]
        if placement.end_us < placement.start_us - _EPS_US:
            violations.append(
                TraceViolation(
                    invariant=MALFORMED_SCHEDULE_INVARIANT,
                    launch=launches[i].name,
                    message=(
                        f"launch {i} ({launches[i].name!r}) ends at "
                        f"{placement.end_us:.3f} us before it starts at "
                        f"{placement.start_us:.3f} us"
                    ),
                )
            )
        if placement.stream < 0 or placement.stream >= schedule.streams:
            violations.append(
                TraceViolation(
                    invariant=MALFORMED_SCHEDULE_INVARIANT,
                    launch=launches[i].name,
                    message=(
                        f"launch {i} ({launches[i].name!r}) is placed on "
                        f"stream {placement.stream} but the schedule claims "
                        f"{schedule.streams} streams"
                    ),
                )
            )
    for stream, sequence in sorted(stream_sequences(schedule).items()):
        for prev, nxt in zip(sequence, sequence[1:]):
            if by_index[nxt].start_us < by_index[prev].end_us - _EPS_US:
                violations.append(
                    TraceViolation(
                        invariant=MALFORMED_SCHEDULE_INVARIANT,
                        launch=launches[nxt].name,
                        message=(
                            f"launches {prev} and {nxt} overlap on stream "
                            f"{stream}: {launches[nxt].name!r} starts at "
                            f"{by_index[nxt].start_us:.3f} us before "
                            f"{launches[prev].name!r} ends at "
                            f"{by_index[prev].end_us:.3f} us"
                        ),
                    )
                )
    return violations


def _check_events(
    launches: Sequence[KernelLaunch], schedule: ScheduleLike
) -> Tuple[List[TraceViolation], List[SyncEvent]]:
    """Structural event checks; returns (violations, well-formed events)."""
    violations: List[TraceViolation] = []
    well_formed: List[SyncEvent] = []
    n = len(launches)
    by_index = {a.index: a for a in schedule.assignments}
    for event in schedule.events:
        if not (0 <= event.record_index < n and 0 <= event.wait_index < n):
            violations.append(
                TraceViolation(
                    invariant=MALFORMED_SYNC_INVARIANT,
                    message=(
                        f"sync event {event.event_id} references launches "
                        f"{event.record_index} -> {event.wait_index} outside "
                        f"the trace (0..{n - 1})"
                    ),
                )
            )
            continue
        record = by_index[event.record_index]
        wait = by_index[event.wait_index]
        ok = True
        if record.stream != event.record_stream:
            ok = False
            violations.append(
                TraceViolation(
                    invariant=MALFORMED_SYNC_INVARIANT,
                    launch=launches[event.record_index].name,
                    message=(
                        f"sync event {event.event_id} claims to record on "
                        f"stream {event.record_stream} but launch "
                        f"{event.record_index} "
                        f"({launches[event.record_index].name!r}) runs on "
                        f"stream {record.stream}: the event would fire after "
                        f"the wrong launch"
                    ),
                )
            )
        if wait.stream != event.wait_stream:
            ok = False
            violations.append(
                TraceViolation(
                    invariant=MALFORMED_SYNC_INVARIANT,
                    launch=launches[event.wait_index].name,
                    message=(
                        f"sync event {event.event_id} claims stream "
                        f"{event.wait_stream} waits, but launch "
                        f"{event.wait_index} "
                        f"({launches[event.wait_index].name!r}) runs on "
                        f"stream {wait.stream}: the wait blocks a stream the "
                        f"dependent launch never uses"
                    ),
                )
            )
        if ok and wait.start_us < record.end_us - _EPS_US:
            ok = False
            violations.append(
                TraceViolation(
                    invariant=MALFORMED_SYNC_INVARIANT,
                    launch=launches[event.wait_index].name,
                    message=(
                        f"sync event {event.event_id}: launch "
                        f"{event.wait_index} "
                        f"({launches[event.wait_index].name!r}) starts at "
                        f"{wait.start_us:.3f} us before its awaited launch "
                        f"{event.record_index} "
                        f"({launches[event.record_index].name!r}) ends at "
                        f"{record.end_us:.3f} us"
                    ),
                )
            )
        if ok:
            well_formed.append(event)
    return violations, well_formed


def check_schedule(
    trace: "KernelTrace | Sequence[KernelLaunch]",
    schedule: ScheduleLike,
    graph: Optional[DependenceGraph] = None,
) -> List[TraceViolation]:
    """Verify ``schedule`` orders every dependence of ``trace`` under HB.

    Reports one ``unsynchronized-cross-stream-dep`` violation per
    dependence edge that is not happens-before ordered (with the buffer
    name, hazard kind and both launch ids), plus ``malformed-schedule``
    / ``malformed-sync`` violations for structurally broken placements
    or events.  An empty result certifies the schedule race-free with
    respect to the trace's access annotations.
    """
    launches = list(trace)
    if graph is None:
        graph = DependenceGraph.build(launches)
    violations = _check_structure(launches, schedule)
    if any(
        v.invariant == MALFORMED_SCHEDULE_INVARIANT and v.launch is None
        for v in violations
    ):
        return violations  # not a permutation: indices below are unusable
    event_violations, events = _check_events(launches, schedule)
    violations.extend(event_violations)

    n = len(launches)
    by_index = {a.index: a for a in schedule.assignments}
    sync_edges = [(e.record_index, e.wait_index) for e in events]
    hb = HappensBefore(n, program_order_edges(schedule) + sync_edges)
    if not hb.acyclic:
        violations.append(
            TraceViolation(
                invariant=MALFORMED_SYNC_INVARIANT,
                message=(
                    "sync events form a cycle with stream program order: "
                    "the schedule deadlocks"
                ),
            )
        )
    for edge in graph.edges:
        if hb.ordered(edge.src, edge.dst):
            continue
        src = by_index[edge.src]
        dst = by_index[edge.dst]
        if src.stream == dst.stream:
            detail = "the launches were reordered within their stream"
        else:
            detail = (
                f"no sync event orders stream {src.stream} before "
                f"stream {dst.stream} here"
            )
        violations.append(
            TraceViolation(
                invariant=RACE_INVARIANT,
                launch=launches[edge.dst].name,
                message=(
                    f"{edge.kind} dependence on buffer {edge.buffer!r} from "
                    f"launch {edge.src} ({launches[edge.src].name!r}, stream "
                    f"{src.stream}) to launch {edge.dst} "
                    f"({launches[edge.dst].name!r}, stream {dst.stream}) is "
                    f"not happens-before ordered: {detail}"
                ),
            )
        )
    # Barriers carry no access annotations, so no dependence edge guards
    # them — but the model promises they fence everything issued before
    # and after.  Check both directions; report the first offender each
    # way to keep the output bounded.
    for i, launch in enumerate(launches):
        if not _is_barrier(launch):
            continue
        for j in range(i):
            if not hb.ordered(j, i):
                violations.append(
                    TraceViolation(
                        invariant=RACE_INVARIANT,
                        launch=launch.name,
                        message=(
                            f"barrier launch {i} ({launch.name!r}) is not "
                            f"happens-before ordered after launch {j} "
                            f"({launches[j].name!r}, stream "
                            f"{by_index[j].stream})"
                        ),
                    )
                )
                break
        for j in range(i + 1, n):
            if not hb.ordered(i, j):
                violations.append(
                    TraceViolation(
                        invariant=RACE_INVARIANT,
                        launch=launch.name,
                        message=(
                            f"launch {j} ({launches[j].name!r}, stream "
                            f"{by_index[j].stream}) is not happens-before "
                            f"ordered after barrier launch {i} "
                            f"({launch.name!r})"
                        ),
                    )
                )
                break
    return violations


__all__ = [
    "RACE_INVARIANT",
    "MALFORMED_SYNC_INVARIANT",
    "MALFORMED_SCHEDULE_INVARIANT",
    "SyncEvent",
    "PlacementLike",
    "ScheduleLike",
    "HappensBefore",
    "stream_sequences",
    "program_order_edges",
    "redundant_sync_edges",
    "find_redundant_events",
    "check_schedule",
]
