"""Static intermediate representation of a sparse-convolution model.

The IR is produced by :mod:`repro.analyze.propagate` *without executing any
data*: coordinate stride, channel counts and kernel-map scope are propagated
symbolically through the model graph.  Everything a lint rule needs is a
plain record here — nodes (one per layer execution), join events (skip
connections and residual adds), kernel-map events (builds, cache hits,
transposed-map lookups) and channel mismatches.

All the hazards the paper's design space exposes — stride-mismatched skip
joins, transposed convolutions with no cached encoder map, channel counts
that waste tensor-core tiles through padding (Figure 21) — are decidable on
this IR at load time, before a single batch runs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

#: Per-dimension coordinate (tensor) stride.
Stride = Tuple[int, ...]

#: A layer's map signature: ``(tensor_stride, kernel_size, stride,
#: transposed)`` — the autotuner group identity of Section 4.2.
SignatureKey = Tuple[Stride, Stride, Stride, bool]


@dataclasses.dataclass(frozen=True)
class SymbolicTensor:
    """What static propagation knows about a tensor: no data, only shape.

    Attributes:
        stride: coordinate stride per spatial dimension.
        channels: feature width.
        cache_token: identity of the ``MapCache`` lineage this tensor's maps
            live in.  Layers chained through ``SparseTensor.with_feats`` /
            convolution outputs share one token; a module that materialises
            a fresh tensor breaks the lineage (and with it kernel-map
            reuse), which :func:`repro.analyze.rules` flags.
    """

    stride: Stride
    channels: int
    cache_token: int = 0

    def with_channels(self, channels: int) -> "SymbolicTensor":
        return dataclasses.replace(self, channels=channels)

    def with_stride(self, stride: Stride) -> "SymbolicTensor":
        return dataclasses.replace(self, stride=stride)


@dataclasses.dataclass
class IRNode:
    """One layer execution in the symbolic walk (a layer traced twice —
    e.g. shared submodules — contributes one node per execution)."""

    path: str
    module_type: str
    kind: str  # "conv" | "norm" | "activation" | "concat" | "opaque"
    label: Optional[str] = None
    in_channels: Optional[int] = None
    out_channels: Optional[int] = None
    in_stride: Optional[Stride] = None
    out_stride: Optional[Stride] = None
    kernel_size: Optional[Stride] = None
    conv_stride: Optional[Stride] = None
    transposed: bool = False
    pointwise: bool = False
    signature: Optional[SignatureKey] = None
    #: "input" / "output" for network-boundary convolutions whose channel
    #: counts are fixed by the dataset / task (set after the walk).
    boundary: str = ""
    #: Static weight statistics for the value-range pass (conv nodes):
    #: the largest |w| and the RMS of the initialized weight tensor.
    weight_abs_max: Optional[float] = None
    weight_rms: Optional[float] = None


@dataclasses.dataclass(frozen=True)
class JoinEvent:
    """Two branches meeting: a concat skip or a residual add."""

    path: str
    kind: str  # "concat" | "residual_add"
    left_stride: Stride
    right_stride: Stride
    left_channels: int
    right_channels: int


@dataclasses.dataclass(frozen=True)
class MapEvent:
    """One kernel-map interaction during the symbolic walk.

    ``event`` is one of:

    * ``"build"`` — a fresh map is constructed (hash build + queries);
    * ``"hit"`` — an identical map already exists in this cache scope;
    * ``"transposed_reuse"`` — a transposed conv found its matching forward
      map in scope and reuses it (free relabeling);
    * ``"missing_forward_map"`` — a transposed conv found **no** forward
      map in scope: at runtime this raises
      :class:`~repro.errors.MapError` mid-batch;
    * ``"bad_upsample"`` — the tensor stride is not divisible by the
      transposed conv's stride.
    """

    path: str
    key: SignatureKey
    cache_token: int
    event: str


@dataclasses.dataclass(frozen=True)
class ChannelMismatch:
    """A layer fed a different channel count than it was built for."""

    path: str
    expected: int
    got: int


@dataclasses.dataclass
class ModelIR:
    """The full static IR of one model: nodes plus structural events."""

    model_type: str
    input: SymbolicTensor
    output: Optional[SymbolicTensor] = None
    nodes: List[IRNode] = dataclasses.field(default_factory=list)
    joins: List[JoinEvent] = dataclasses.field(default_factory=list)
    map_events: List[MapEvent] = dataclasses.field(default_factory=list)
    channel_mismatches: List[ChannelMismatch] = dataclasses.field(
        default_factory=list
    )
    #: Paths of modules (``Module.named_modules`` order) never reached by
    #: the symbolic walk — candidates for the dead-submodule rule.
    unvisited_paths: List[str] = dataclasses.field(default_factory=list)

    # ------------------------------------------------------------------ #
    def conv_nodes(self) -> List[IRNode]:
        return [n for n in self.nodes if n.kind == "conv"]

    def signature_groups(self) -> Dict[SignatureKey, List[IRNode]]:
        """Conv nodes grouped by map signature (= autotuner groups)."""
        groups: Dict[SignatureKey, List[IRNode]] = {}
        for node in self.conv_nodes():
            if node.signature is not None:
                groups.setdefault(node.signature, []).append(node)
        return groups

    def map_builds(self) -> Dict[SignatureKey, List[MapEvent]]:
        """``build`` events per map key, across all cache scopes."""
        builds: Dict[SignatureKey, List[MapEvent]] = {}
        for event in self.map_events:
            if event.event == "build":
                builds.setdefault(event.key, []).append(event)
        return builds

    def mark_boundaries(self) -> None:
        """Tag the first conv's input and the last conv's output as fixed
        by the task (dataset channels / class count): their alignment is
        not the architect's to change."""
        convs = self.conv_nodes()
        if not convs:
            return
        convs[0].boundary = "input"
        last = convs[-1]
        last.boundary = "output" if last.boundary == "" else "input+output"

    def describe(self) -> str:
        lines = [
            f"{self.model_type}: {len(self.nodes)} nodes, "
            f"{len(self.conv_nodes())} convolutions, "
            f"{len(self.signature_groups())} map signatures, "
            f"{len(self.joins)} joins"
        ]
        for key, group in sorted(
            self.signature_groups().items(), key=lambda kv: -len(kv[1])
        ):
            stride, kernel, conv_stride, transposed = key
            lines.append(
                f"  signature stride={stride} k={kernel} s={conv_stride}"
                f"{' transposed' if transposed else ''}: "
                f"{len(group)} layer(s)"
            )
        return "\n".join(lines)
