"""Symbolic propagation: build a :class:`~repro.analyze.ir.ModelIR` from a
model *without executing data*.

The tracer walks the module graph the way ``forward`` would, but carries a
:class:`~repro.analyze.ir.SymbolicTensor` (stride + channels + cache
lineage) instead of coordinates and features.  Convolution handlers mirror
``SparseConv3d._resolve_kmap`` exactly — including the transposed-map
lookup that raises :class:`~repro.errors.MapError` at runtime — so every
map hazard becomes a recorded :class:`~repro.analyze.ir.MapEvent` instead
of a mid-batch crash.

Handlers are registered per module type and dispatched through the MRO, so
``ConvBlock`` (a :class:`~repro.nn.sequential.Sequential` subclass) is
covered by the ``Sequential`` handler.  Models with bespoke ``forward``
control flow (skip stacks, multi-input joins) register their own handler
with :func:`register_handler`; modules with no handler anywhere in their
MRO become opaque pass-through nodes and their children are reported by the
dead-submodule lint rule.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Set, Tuple, TypeVar

import numpy as np

from repro.analyze.ir import (
    ChannelMismatch,
    IRNode,
    JoinEvent,
    MapEvent,
    ModelIR,
    SignatureKey,
    SymbolicTensor,
)
from repro.models.centerpoint import CenterPointBackbone
from repro.models.minkunet import MinkUNet
from repro.nn.activation import ReLU
from repro.nn.blocks import ResidualBlock
from repro.nn.conv import SparseConv3d
from repro.nn.join import ConcatSkip
from repro.nn.module import Module
from repro.nn.norm import BatchNorm
from repro.nn.sequential import Sequential

Handler = Callable[["SymbolicTracer", Module, SymbolicTensor, str], SymbolicTensor]

#: Module type -> propagation handler (dispatched through the MRO).
HANDLERS: Dict[type, Handler] = {}

_H = TypeVar("_H", bound=Handler)


def register_handler(*module_types: type) -> Callable[[_H], _H]:
    """Register a symbolic-propagation handler for one or more types."""

    def decorator(func: _H) -> _H:
        for module_type in module_types:
            HANDLERS[module_type] = func
        return func

    return decorator


class SymbolicTracer:
    """Walk a module graph, recording nodes, joins and map events."""

    def __init__(self) -> None:
        self.nodes: List[IRNode] = []
        self.joins: List[JoinEvent] = []
        self.map_events: List[MapEvent] = []
        self.channel_mismatches: List[ChannelMismatch] = []
        #: Per cache lineage: map keys known to exist in the cache.
        self._scopes: Dict[int, Set[SignatureKey]] = {}
        self._visited: Set[int] = set()
        self._next_token = 1

    # ------------------------------------------------------------------ #
    def fresh_cache(self, x: SymbolicTensor) -> SymbolicTensor:
        """Move ``x`` into a brand-new map-cache lineage (models code that
        rebuilds a ``SparseTensor`` from raw coordinates, discarding the
        shared cache — the missed-reuse hazard the kmap rule flags)."""
        token = self._next_token
        self._next_token += 1
        return SymbolicTensor(x.stride, x.channels, cache_token=token)

    def scope(self, token: int) -> Set[SignatureKey]:
        return self._scopes.setdefault(token, set())

    def visited(self, module: Module) -> bool:
        return id(module) in self._visited

    # ------------------------------------------------------------------ #
    def trace(
        self, module: Module, x: SymbolicTensor, path: str
    ) -> SymbolicTensor:
        """Dispatch one module through its handler (MRO lookup)."""
        self._visited.add(id(module))
        for klass in type(module).__mro__:
            handler = HANDLERS.get(klass)
            if handler is not None:
                return handler(self, module, x, path)
        return self._opaque(module, x, path)

    def concat(
        self,
        module: Module,
        x: SymbolicTensor,
        skip: SymbolicTensor,
        path: str,
    ) -> SymbolicTensor:
        """Two-input join (``ConcatSkip``-style): record the join event and
        concatenate channels along ``x``'s lineage."""
        self._visited.add(id(module))
        self.joins.append(
            JoinEvent(
                path=path,
                kind="concat",
                left_stride=x.stride,
                right_stride=skip.stride,
                left_channels=x.channels,
                right_channels=skip.channels,
            )
        )
        self.nodes.append(
            IRNode(
                path=path,
                module_type=type(module).__name__,
                kind="concat",
                label=getattr(module, "label", None),
                in_channels=x.channels,
                out_channels=x.channels + skip.channels,
                in_stride=x.stride,
                out_stride=x.stride,
            )
        )
        return x.with_channels(x.channels + skip.channels)

    def residual_add(
        self, path: str, main: SymbolicTensor, skip: SymbolicTensor
    ) -> SymbolicTensor:
        self.joins.append(
            JoinEvent(
                path=path,
                kind="residual_add",
                left_stride=main.stride,
                right_stride=skip.stride,
                left_channels=main.channels,
                right_channels=skip.channels,
            )
        )
        return main

    # ------------------------------------------------------------------ #
    def _opaque(
        self, module: Module, x: SymbolicTensor, path: str
    ) -> SymbolicTensor:
        self.nodes.append(
            IRNode(
                path=path,
                module_type=type(module).__name__,
                kind="opaque",
                label=getattr(module, "label", None),
                in_channels=x.channels,
                in_stride=x.stride,
                out_stride=x.stride,
            )
        )
        return x


# ---------------------------------------------------------------------- #
# Layer handlers
# ---------------------------------------------------------------------- #
@register_handler(SparseConv3d)
def _trace_conv(
    tracer: SymbolicTracer, module: Module, x: SymbolicTensor, path: str
) -> SymbolicTensor:
    assert isinstance(module, SparseConv3d)
    if x.channels != module.in_channels:
        tracer.channel_mismatches.append(
            ChannelMismatch(
                path=path, expected=module.in_channels, got=x.channels
            )
        )
    scope = tracer.scope(x.cache_token)
    kernel_size: Tuple[int, ...] = module.kernel_size
    stride: Tuple[int, ...] = module.stride
    ndim = module.ndim

    if module.is_pointwise:
        # Identity map; the runtime caches it but charges nothing.
        out_stride = x.stride
    elif not module.transposed:
        out_stride = tuple(t * s for t, s in zip(x.stride, stride))
        key: SignatureKey = (x.stride, kernel_size, stride, False)
        if key in scope:
            event = "hit"
        else:
            event = "build"
            scope.add(key)
        tracer.map_events.append(
            MapEvent(path=path, key=key, cache_token=x.cache_token, event=event)
        )
    else:
        if any(t % s for t, s in zip(x.stride, stride)):
            out_stride = tuple(max(1, t // s) for t, s in zip(x.stride, stride))
            t_key = (x.stride, kernel_size, stride, True)
            tracer.map_events.append(
                MapEvent(
                    path=path,
                    key=t_key,
                    cache_token=x.cache_token,
                    event="bad_upsample",
                )
            )
        else:
            out_stride = tuple(t // s for t, s in zip(x.stride, stride))
            t_key = (x.stride, kernel_size, stride, True)
            if t_key in scope:
                event = "hit"
            else:
                base_key: SignatureKey = (out_stride, kernel_size, stride, False)
                event = (
                    "transposed_reuse" if base_key in scope
                    else "missing_forward_map"
                )
                scope.add(t_key)
            tracer.map_events.append(
                MapEvent(
                    path=path,
                    key=t_key,
                    cache_token=x.cache_token,
                    event=event,
                )
            )

    weight = np.asarray(module.weight.data, dtype=np.float64)
    tracer.nodes.append(
        IRNode(
            path=path,
            module_type=type(module).__name__,
            kind="conv",
            label=module.label,
            in_channels=module.in_channels,
            out_channels=module.out_channels,
            in_stride=x.stride,
            out_stride=out_stride,
            kernel_size=kernel_size,
            conv_stride=stride,
            transposed=module.transposed,
            pointwise=module.is_pointwise,
            signature=module.signature(x.stride),
            weight_abs_max=float(np.max(np.abs(weight))) if weight.size else 0.0,
            weight_rms=float(np.sqrt(np.mean(weight * weight)))
            if weight.size
            else 0.0,
        )
    )
    del ndim
    return SymbolicTensor(out_stride, module.out_channels, x.cache_token)


@register_handler(BatchNorm)
def _trace_norm(
    tracer: SymbolicTracer, module: Module, x: SymbolicTensor, path: str
) -> SymbolicTensor:
    assert isinstance(module, BatchNorm)
    if x.channels != module.num_features:
        tracer.channel_mismatches.append(
            ChannelMismatch(
                path=path, expected=module.num_features, got=x.channels
            )
        )
    tracer.nodes.append(
        IRNode(
            path=path,
            module_type=type(module).__name__,
            kind="norm",
            label=module.label,
            in_channels=x.channels,
            out_channels=x.channels,
            in_stride=x.stride,
            out_stride=x.stride,
        )
    )
    return x


@register_handler(ReLU)
def _trace_activation(
    tracer: SymbolicTracer, module: Module, x: SymbolicTensor, path: str
) -> SymbolicTensor:
    tracer.nodes.append(
        IRNode(
            path=path,
            module_type=type(module).__name__,
            kind="activation",
            label=getattr(module, "label", None),
            in_channels=x.channels,
            out_channels=x.channels,
            in_stride=x.stride,
            out_stride=x.stride,
        )
    )
    return x


@register_handler(Sequential)
def _trace_sequential(
    tracer: SymbolicTracer, module: Module, x: SymbolicTensor, path: str
) -> SymbolicTensor:
    assert isinstance(module, Sequential)
    for i, layer in enumerate(module):
        x = tracer.trace(layer, x, f"{path}.layers.{i}")
    return x


@register_handler(ResidualBlock)
def _trace_residual(
    tracer: SymbolicTracer, module: Module, x: SymbolicTensor, path: str
) -> SymbolicTensor:
    assert isinstance(module, ResidualBlock)
    if module.projection is not None:
        identity = tracer.trace(module.projection, x, f"{path}.projection")
    else:
        identity = x
    out = tracer.trace(module.conv1, x, f"{path}.conv1")
    out = tracer.trace(module.bn1, out, f"{path}.bn1")
    out = tracer.trace(module.relu1, out, f"{path}.relu1")
    out = tracer.trace(module.conv2, out, f"{path}.conv2")
    out = tracer.trace(module.bn2, out, f"{path}.bn2")
    out = tracer.residual_add(path, out, identity)
    return tracer.trace(module.relu_out, out, f"{path}.relu_out")


@register_handler(ConcatSkip)
def _trace_concat_skip(
    tracer: SymbolicTracer, module: Module, x: SymbolicTensor, path: str
) -> SymbolicTensor:
    # ConcatSkip takes two tensors; reaching it through single-input
    # dispatch means the enclosing model's handler forgot to route the
    # skip operand through ``tracer.concat`` — degrade to opaque.
    return tracer._opaque(module, x, path)


# ---------------------------------------------------------------------- #
# Model handlers (mirror each model's forward control flow)
# ---------------------------------------------------------------------- #
@register_handler(MinkUNet)
def _trace_minkunet(
    tracer: SymbolicTracer, module: Module, x: SymbolicTensor, path: str
) -> SymbolicTensor:
    assert isinstance(module, MinkUNet)
    x = tracer.trace(module.stem, x, f"{path}.stem")
    skips: List[SymbolicTensor] = []
    for i, (down, blocks) in enumerate(
        zip(module.down_convs, module.enc_blocks)
    ):
        skips.append(x)
        x = tracer.trace(down, x, f"{path}.down_convs.{i}")
        x = tracer.trace(blocks, x, f"{path}.enc_blocks.{i}")
    for j, (up, concat, blocks) in enumerate(
        zip(module.up_convs, module.concats, module.dec_blocks)
    ):
        x = tracer.trace(up, x, f"{path}.up_convs.{j}")
        x = tracer.concat(concat, x, skips.pop(), f"{path}.concats.{j}")
        x = tracer.trace(blocks, x, f"{path}.dec_blocks.{j}")
    return tracer.trace(module.classifier, x, f"{path}.classifier")


@register_handler(CenterPointBackbone)
def _trace_centerpoint(
    tracer: SymbolicTracer, module: Module, x: SymbolicTensor, path: str
) -> SymbolicTensor:
    assert isinstance(module, CenterPointBackbone)
    x = tracer.trace(module.input_conv, x, f"{path}.input_conv")
    for i, stage in enumerate(module.stages):
        x = tracer.trace(stage, x, f"{path}.stages.{i}")
    return tracer.trace(module.out_conv, x, f"{path}.out_conv")


# ---------------------------------------------------------------------- #
def _unvisited_subtrees(model: Module, visited: Set[int]) -> List[str]:
    """Top-most named_modules paths the symbolic walk never reached."""
    dead: List[str] = []
    for module_path, module in model.named_modules():
        if id(module) in visited:
            continue
        if any(
            module_path == p or module_path.startswith(p + ".") for p in dead
        ):
            continue  # already covered by an unvisited ancestor
        dead.append(module_path)
    return dead


def trace_model(
    model: Module,
    in_channels: int,
    ndim: int = 3,
    stride: "Tuple[int, ...] | None" = None,
) -> ModelIR:
    """Propagate a symbolic input through ``model`` and return its IR."""
    tracer = SymbolicTracer()
    x = SymbolicTensor(
        stride=stride or (1,) * ndim, channels=in_channels, cache_token=0
    )
    ir = ModelIR(model_type=type(model).__name__, input=x)
    ir.output = tracer.trace(model, x, type(model).__name__)
    ir.nodes = tracer.nodes
    ir.joins = tracer.joins
    ir.map_events = tracer.map_events
    ir.channel_mismatches = tracer.channel_mismatches
    ir.unvisited_paths = _unvisited_subtrees(model, tracer._visited)
    ir.mark_boundaries()
    return ir
