"""Cache-key soundness: read-set provenance audits of every memoization.

The framework's speed story is four generations of memoization — the
policy cache, each replica's kernel-map cache, the runtime's batch/sample
execution memos, the autotune database — plus the gpusim trace memo.
Every one is only as correct as its key: a key that misses an input the
cached computation actually *reads* produces stale or aliased hits that
silently corrupt every downstream latency number, and a key component the
computation never reads produces needless misses.

This module checks the keys mechanically:

* **Recording proxies** (:func:`wrap`) — an input object is wrapped in a
  dynamically created subclass whose ``__getattribute__`` records every
  attribute read as a dotted path (``"device.sms"``) into a
  :class:`ReadLog`, then delegates to the real object.  Because the proxy
  *is* a subclass, ``isinstance`` checks pass and inherited dunders
  (hashing, equality) work — their field reads are recorded too.
* **Key schemas** (:class:`KeySchema`) — each cache site declares, in one
  place, what its key covers: :class:`KeyComponent` entries map key parts
  to the read-path prefixes they determine, ``declared_reads`` names
  by-value inputs, and :class:`Exemption` entries document reads that are
  *deliberately* unkeyed (tune-once reuse, instance-pinned configuration,
  quantization buckets) with the reason.
* **Audits** (:func:`audit_cache_site`) — run the site's probe once,
  diff the recorded read set against the schema, and report
  ``unkeyed-read`` (error: read but not keyed, not exempted) and
  ``overkeyed-field`` (info: key component whose covered paths were never
  read).  Both surface as lint rules and via ``repro keycheck``.
* **Differential fuzzing** (:func:`fuzz_cache_site`) — a seeded fuzzer
  per site that perturbs *non-key* fields and asserts byte-identical
  cached results (and, for the trace memo, that key-field perturbations
  re-key instead of aliasing).  Run suite-wide from ``tests/conftest.py``
  like the trace sanitizer.

Audits are memoized per (site, schema object): the probes build tiny
scenes and runtimes, so the cost is paid once per process no matter how
many lint invocations run.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.analyze.rules import Finding, LintContext, Severity, lint_rule
from repro.gpusim.engine import PRICING_FIELDS, SCHEDULE_FIELDS


# ---------------------------------------------------------------------- #
# Read-set recording proxies
# ---------------------------------------------------------------------- #
class ReadLog:
    """Set of dotted attribute paths recorded by :func:`wrap` proxies."""

    def __init__(self) -> None:
        self.paths: Set[str] = set()

    def add(self, path: str) -> None:
        self.paths.add(path)

    def sorted(self) -> Tuple[str, ...]:
        return tuple(sorted(self.paths))


_INTERNAL_ATTRS = ("_prov_target", "_prov_path", "_prov_log")

_PROXY_CLASSES: Dict[type, type] = {}


def _proxy_class(cls: type) -> type:
    """Recording subclass of ``cls`` (cached per class)."""
    cached = _PROXY_CLASSES.get(cls)
    if cached is not None:
        return cached

    def _getattribute(self: Any, name: str) -> Any:
        if name in _INTERNAL_ATTRS:
            return object.__getattribute__(self, name)
        try:
            target = object.__getattribute__(self, "_prov_target")
        except AttributeError:
            # A normally-constructed instance of the proxy class (e.g.
            # ``dataclasses.replace`` builds one): plain subclass behavior.
            return object.__getattribute__(self, name)
        if name.startswith("__") and name.endswith("__"):
            # Dunder lookups (``__class__``, ``__dict__``) are machinery,
            # not data reads; delegate without recording.
            return getattr(target, name)
        path = object.__getattribute__(self, "_prov_path")
        log = object.__getattribute__(self, "_prov_log")
        log.add(f"{path}.{name}")
        return getattr(target, name)

    proxy = type(
        f"{cls.__name__}ProvenanceProxy",
        (cls,),
        {"__getattribute__": _getattribute},
    )
    _PROXY_CLASSES[cls] = proxy
    return proxy


def wrap(obj: Any, name: str, log: ReadLog) -> Any:
    """Wrap ``obj`` so attribute reads are recorded as ``"{name}.{attr}"``.

    The wrapper is an ``object.__new__``-constructed instance of a
    recording subclass of ``type(obj)``: ``isinstance`` checks pass,
    methods resolve to bound methods of the real object (reads *inside* a
    method body are the target's own and are not re-recorded — auditing
    is field-granular at the wrapped object's surface).
    """
    proxy_cls = _proxy_class(type(obj))
    proxy = object.__new__(proxy_cls)
    object.__setattr__(proxy, "_prov_target", obj)
    object.__setattr__(proxy, "_prov_path", name)
    object.__setattr__(proxy, "_prov_log", log)
    return proxy


# ---------------------------------------------------------------------- #
# Key schemas
# ---------------------------------------------------------------------- #
@dataclasses.dataclass(frozen=True)
class KeyComponent:
    """One part of a cache key and the read paths it determines.

    ``covers`` are dotted-path prefixes: a recorded read ``p`` is covered
    when ``p == c`` or ``p`` starts with ``c + "."`` for some cover ``c``.
    Components with empty ``covers`` document by-value key parts (flags,
    versions) that no proxied read maps to.  ``conditional`` components
    cover paths only read on some configurations (e.g. the multi-stream
    scheduling fields) and are never reported as overkeyed when the probe
    does not exercise them — the differential fuzzer checks them instead.
    """

    name: str
    covers: Tuple[str, ...] = ()
    note: str = ""
    conditional: bool = False


@dataclasses.dataclass(frozen=True)
class Exemption:
    """A read-path prefix that is deliberately not keyed, and why."""

    prefix: str
    reason: str


ProbeFunc = Callable[[], ReadLog]
FuzzFunc = Callable[[random.Random], Tuple[int, List[str]]]


@dataclasses.dataclass(frozen=True)
class KeySchema:
    """Declared key of one cache site plus its probe and fuzzer."""

    site: str
    description: str
    components: Tuple[KeyComponent, ...]
    declared_reads: Tuple[str, ...] = ()
    exemptions: Tuple[Exemption, ...] = ()
    probe: Optional[ProbeFunc] = None
    fuzz: Optional[FuzzFunc] = None


#: Site name -> schema, in registration order.
REGISTRY: Dict[str, KeySchema] = {}


def register_cache_site(schema: KeySchema) -> KeySchema:
    """Register (or replace) the key schema of one cache site."""
    REGISTRY[schema.site] = schema
    return schema


def _prefix_match(path: str, prefix: str) -> bool:
    return path == prefix or path.startswith(prefix + ".")


# ---------------------------------------------------------------------- #
# Audits
# ---------------------------------------------------------------------- #
@dataclasses.dataclass(frozen=True)
class SiteAudit:
    """Outcome of diffing one site's recorded reads against its schema."""

    site: str
    reads: Tuple[str, ...]
    unkeyed: Tuple[str, ...]
    overkeyed: Tuple[str, ...]
    exempted: Tuple[Tuple[str, str], ...]

    @property
    def sound(self) -> bool:
        return not self.unkeyed

    def to_dict(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "reads": list(self.reads),
            "unkeyed": list(self.unkeyed),
            "overkeyed": list(self.overkeyed),
            "exempted": [list(pair) for pair in self.exempted],
            "sound": self.sound,
        }


#: site -> (schema identity at audit time, audit).  An audit is reused
#: only while the registered schema object is unchanged.
_AUDITS: Dict[str, Tuple[KeySchema, SiteAudit]] = {}

#: True while a probe/fuzzer executes: the lint rules below bail out so a
#: probe's serving runtime can never recursively re-enter the audit
#: through admission linting.
_IN_PROBE = False


def _resolve_schema(site: "str | KeySchema") -> KeySchema:
    if isinstance(site, KeySchema):
        return site
    schema = REGISTRY.get(site)
    if schema is None:
        known = ", ".join(sorted(REGISTRY))
        raise ValueError(
            f"unknown cache site {site!r}; registered sites: {known}"
        )
    return schema


def audit_cache_site(site: "str | KeySchema") -> SiteAudit:
    """Probe one cache site and diff its read set against its schema."""
    global _IN_PROBE
    schema = _resolve_schema(site)
    cached = _AUDITS.get(schema.site)
    if cached is not None and cached[0] is schema:
        return cached[1]
    if schema.probe is None:
        raise ValueError(f"cache site {schema.site!r} declares no probe")
    _IN_PROBE = True
    try:
        log = schema.probe()
    finally:
        _IN_PROBE = False
    reads = log.sorted()
    covers: List[str] = list(schema.declared_reads)
    for component in schema.components:
        covers.extend(component.covers)
    unkeyed: List[str] = []
    exempted: List[Tuple[str, str]] = []
    for path in reads:
        if any(_prefix_match(path, c) for c in covers):
            continue
        reason = next(
            (
                e.reason
                for e in schema.exemptions
                if _prefix_match(path, e.prefix)
            ),
            None,
        )
        if reason is not None:
            exempted.append((path, reason))
        else:
            unkeyed.append(path)
    overkeyed = [
        component.name
        for component in schema.components
        if component.covers
        and not component.conditional
        and not any(
            _prefix_match(path, c)
            for path in reads
            for c in component.covers
        )
    ]
    audit = SiteAudit(
        site=schema.site,
        reads=reads,
        unkeyed=tuple(unkeyed),
        overkeyed=tuple(overkeyed),
        exempted=tuple(exempted),
    )
    _AUDITS[schema.site] = (schema, audit)
    return audit


def audit_cache_sites(
    sites: Optional[Tuple[str, ...]] = None,
) -> Dict[str, SiteAudit]:
    """Audit the selected sites (default: every registered site)."""
    names = list(sites) if sites is not None else sorted(REGISTRY)
    return {name: audit_cache_site(name) for name in names}


def provenance_findings() -> List[Finding]:
    """Audit every registered site and convert the diffs to findings."""
    findings: List[Finding] = []
    for site, audit in audit_cache_sites().items():
        schema = REGISTRY[site]
        key = ", ".join(c.name for c in schema.components)
        for path in audit.unkeyed:
            findings.append(
                Finding(
                    rule="unkeyed-read",
                    severity=Severity.ERROR,
                    path=site,
                    message=(
                        f"cached computation reads {path!r} but the key "
                        f"({key}) does not cover it and no exemption "
                        f"applies: a hit can replay a result computed "
                        f"from a different {path.split('.', 1)[0]}"
                    ),
                    data={"read": path, "components": key},
                )
            )
        for name in audit.overkeyed:
            findings.append(
                Finding(
                    rule="overkeyed-field",
                    severity=Severity.INFO,
                    path=site,
                    message=(
                        f"key component {name!r} covers paths the cached "
                        f"computation never read: every distinct value "
                        f"forces a needless miss"
                    ),
                    data={"component": name},
                )
            )
    return findings


@lint_rule(
    "unkeyed-read",
    "cached computations must key (or exempt) every input field they read",
)
def _rule_unkeyed_read(ctx: LintContext) -> List[Finding]:
    if _IN_PROBE:
        return []
    return [f for f in provenance_findings() if f.rule == "unkeyed-read"]


@lint_rule(
    "overkeyed-field",
    "cache-key components never read by the computation cause pure misses",
)
def _rule_overkeyed_field(ctx: LintContext) -> List[Finding]:
    if _IN_PROBE:
        return []
    return [f for f in provenance_findings() if f.rule == "overkeyed-field"]


# ---------------------------------------------------------------------- #
# Differential fuzzing
# ---------------------------------------------------------------------- #
@dataclasses.dataclass(frozen=True)
class FuzzReport:
    """Outcome of one site's seeded differential fuzz run."""

    site: str
    trials: int
    failures: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "trials": self.trials,
            "failures": list(self.failures),
            "ok": self.ok,
        }


def fuzz_cache_site(site: "str | KeySchema", seed: int = 0) -> FuzzReport:
    """Run one site's seeded differential fuzzer.

    The fuzzer perturbs fields the schema declares as non-key and asserts
    the cached result is byte-identical; sites without a fuzzer report
    zero trials.
    """
    global _IN_PROBE
    schema = _resolve_schema(site)
    if schema.fuzz is None:
        return FuzzReport(site=schema.site, trials=0, failures=())
    rng = random.Random(seed)
    _IN_PROBE = True
    try:
        trials, failures = schema.fuzz(rng)
    finally:
        _IN_PROBE = False
    return FuzzReport(
        site=schema.site, trials=trials, failures=tuple(failures)
    )


def fuzz_all(seed: int = 0) -> Dict[str, FuzzReport]:
    """Fuzz every registered site with per-site derived seeds."""
    return {
        name: fuzz_cache_site(name, seed=seed + i)
        for i, name in enumerate(sorted(REGISTRY))
    }


# ---------------------------------------------------------------------- #
# Probe helpers (lazy imports: repro.serve imports repro.analyze)
# ---------------------------------------------------------------------- #
_PROBE_WORKLOAD = "SK-M-0.5"


def _probe_kmap(n: int = 160, seed: int = 0) -> Any:
    import numpy as np

    from repro.sparse.kmap import build_kernel_map

    rng = np.random.default_rng(seed)
    coords = np.unique(
        np.concatenate(
            [
                np.zeros((n, 1), np.int32),
                rng.integers(0, 12, (n, 3)).astype(np.int32),
            ],
            axis=1,
        ),
        axis=0,
    )
    return build_kernel_map(coords, kernel_size=3, stride=1)


def _probe_runtime() -> Any:
    from repro.serve.runtime import ServeConfig, ServingRuntime

    # Tiny scenes; admission lint off so a probe can never recursively
    # re-enter the provenance rules through the admission controller.
    return ServingRuntime(
        ServeConfig(
            device="a100", scene_scale=0.05, lint_admission=False
        )
    )


def _probe_requests(seeds: Tuple[int, ...]) -> List[Any]:
    from repro.serve.request import InferenceRequest

    return [
        InferenceRequest(
            request_id=i,
            workload_id=_PROBE_WORKLOAD,
            stream_id=0,
            frame_index=i,
            scene_seed=s,
            arrival_ms=0.0,
            deadline_ms=1000.0,
        )
        for i, s in enumerate(seeds)
    ]


def _priced_trace_us(
    trace: Any, device: Any, precision: Any
) -> float:
    """Serial pricing through the *unpatched* per-launch entry point.

    Calling the module-level ``estimate_trace_us`` under pytest would run
    the suite's trace sanitizer, whose checks legitimately read far more
    launch fields than pricing does and would pollute the probe read set.
    """
    from repro.gpusim.engine import estimate_launch_us

    return sum(
        estimate_launch_us(launch, device, precision) for launch in trace
    )


# ---------------------------------------------------------------------- #
# Built-in site registrations
# ---------------------------------------------------------------------- #
def _probe_trace_memo() -> ReadLog:
    from repro.hw.specs import get_device
    from repro.kernels.registry import Dataflow, trace_dataflow
    from repro.precision import Precision

    log = ReadLog()
    kmap = _probe_kmap()
    trace = trace_dataflow(
        Dataflow.IMPLICIT_GEMM, kmap, 16, 16, precision="fp16"
    )
    device = wrap(get_device("a100"), "device", log)
    launches = [wrap(launch, "launch", log) for launch in trace]
    total = _priced_trace_us(launches, device, Precision.FP16)
    assert total > 0.0
    return log


def _fuzz_trace_memo(rng: random.Random) -> Tuple[int, List[str]]:
    from repro.gpusim import engine
    from repro.gpusim.trace import KernelTrace
    from repro.hw.specs import get_device
    from repro.kernels.registry import Dataflow, trace_dataflow

    failures: List[str] = []
    device = get_device("a100")
    kmap = _probe_kmap()
    trace = trace_dataflow(
        Dataflow.IMPLICIT_GEMM, kmap, 16, 16, precision="fp16"
    )
    baseline = engine.estimate_trace_us(trace, device, "fp16", memoize=False)
    memoized = engine.estimate_trace_us(trace, device, "fp16")
    if memoized != baseline:
        failures.append(
            f"memoized miss-path result {memoized!r} != unmemoized "
            f"{baseline!r}"
        )
    if engine.estimate_trace_us(trace, device, "fp16") != baseline:
        failures.append("memoized hit-path result differs from unmemoized")
    trials = 2
    # Non-key (non-pricing) fields must not change the memoized result.
    for i in range(10):
        copies = [dataclasses.replace(launch) for launch in trace]
        mutated = KernelTrace(copies)
        victim = copies[rng.randrange(len(copies))]
        choice = rng.randrange(4)
        if choice == 0:
            victim.name = f"fuzzed/{i}"
        elif choice == 1:
            victim.fuse_group = f"fz{i}"
        elif choice == 2:
            victim.hoistable_scalar_ops = victim.scalar_ops * rng.random()
        else:
            victim.workspace_bytes = victim.workspace_bytes + rng.random()
        got = engine.estimate_trace_us(mutated, device, "fp16")
        trials += 1
        if got != baseline:
            failures.append(
                f"perturbing non-key field (choice {choice}) changed the "
                f"memoized estimate: {got!r} != {baseline!r}"
            )
    # Key-field perturbation must re-key: a trace differing in any priced
    # field gets a distinct signature, so the memo cannot alias it to the
    # baseline entry.  (The mutated trace is deliberately not priced — an
    # arbitrary flops change need not stay physically consistent with the
    # dependence-model invariants the suite sanitizer enforces.)
    for field in PRICING_FIELDS:
        if field in ("kind", "overlapped", "tensor_core_eligible"):
            continue
        perturbed = [dataclasses.replace(launch) for launch in trace]
        value = getattr(perturbed[0], field)
        setattr(perturbed[0], field, value * 2 + 1)
        trials += 1
        if engine.trace_signature(
            perturbed, device, "fp16"
        ) == engine.trace_signature(list(trace), device, "fp16"):
            failures.append(
                f"perturbing priced field {field!r} did not re-key the "
                f"trace memo"
            )
    return trials, failures


def _probe_policy_cache() -> ReadLog:
    from repro.hw.specs import get_device
    from repro.kernels.registry import Dataflow, trace_dataflow
    from repro.precision import Precision

    log = ReadLog()
    device = wrap(get_device("a100"), "device", log)
    scene = wrap(_probe_kmap(), "scene", log)
    best: Optional[Tuple[float, Any]] = None
    # The tune-once decision the policy cache memoizes: rank dataflows on
    # a sample scene and keep the winner.
    for dataflow in (Dataflow.IMPLICIT_GEMM, Dataflow.GATHER_SCATTER):
        trace = trace_dataflow(dataflow, scene, 16, 16, precision="fp16")
        us = _priced_trace_us(trace, device, Precision.FP16)
        if best is None or us < best[0]:
            best = (us, dataflow)
    assert best is not None
    return log


def _fuzz_policy_cache(rng: random.Random) -> Tuple[int, List[str]]:
    from repro.nn.context import GroupPolicy
    from repro.serve.cache import PolicyCache

    failures: List[str] = []
    cache = PolicyCache()
    policy = GroupPolicy({})
    key = PolicyCache.make_key(_PROBE_WORKLOAD, "A100", "fp16")
    cache.put(key, policy)
    trials = 0
    # Scene identity is deliberately not part of the key: any number of
    # distinct scenes must resolve to the same tuned policy object.
    for _ in range(8):
        rng.randrange(1 << 30)  # a fresh scene seed, irrelevant to the key
        again = PolicyCache.make_key(_PROBE_WORKLOAD, "A100", "fp16")
        trials += 1
        if again != key or cache.get(again) is not policy:
            failures.append("equal (model, device, precision) missed")
    for other in (
        PolicyCache.make_key(_PROBE_WORKLOAD, "A100", "fp32"),
        PolicyCache.make_key(_PROBE_WORKLOAD, "RTX 3090", "fp16"),
        PolicyCache.make_key("WM-C-1f", "A100", "fp16"),
    ):
        trials += 1
        if cache.get(other) is policy:
            failures.append(f"distinct key {other!r} aliased the entry")
    return trials, failures


def _batch_cost_key(cost: Any) -> Tuple[Any, ...]:
    """Canonical comparison form of a ``_BatchCost`` (charge order is
    batch-iteration order; the memo treats charges as a mapping)."""
    return (
        cost.service_ms,
        dict(cost.stages),
        sorted(cost.charges, key=lambda pair: pair[0]),
        cost.degraded,
        cost.oomed,
        cost.ladder,
        cost.sync_events,
    )


def _probe_batch_memo() -> ReadLog:
    from repro.models import get_workload
    from repro.nn.context import FixedPolicy
    from repro.serve.cache import KmapCache

    log = ReadLog()
    runtime = _probe_runtime()
    model = runtime.model(_PROBE_WORKLOAD)
    workload = get_workload(_PROBE_WORKLOAD)
    requests = _probe_requests((11, 11, 12))
    samples = [runtime.scenes.sample(workload, r) for r in requests]
    policy = FixedPolicy(runtime.default_config)
    spec = wrap(runtime.device, "device", log)
    runtime.device = spec
    runtime.config = wrap(runtime.config, "config", log)
    cost = runtime._compose_cost(
        [wrap(r, "request", log) for r in requests],
        [wrap(s, "sample", log) for s in samples],
        KmapCache(capacity=8),
        wrap(model, "model", log),
        _PROBE_WORKLOAD,
        wrap(policy, "policy", log),
        False,
        spec,
        False,
    )
    assert cost is not None
    return log


def _fuzz_batch_memo(rng: random.Random) -> Tuple[int, List[str]]:
    from repro.models import get_workload
    from repro.nn.context import FixedPolicy
    from repro.serve.cache import KmapCache

    failures: List[str] = []
    runtime = _probe_runtime()
    model = runtime.model(_PROBE_WORKLOAD)
    workload = get_workload(_PROBE_WORKLOAD)
    requests = _probe_requests((21, 22, 21))
    samples = [runtime.scenes.sample(workload, r) for r in requests]
    policy = FixedPolicy(runtime.default_config)
    cache = KmapCache(capacity=16)

    def compose(reqs: List[Any], samps: List[Any]) -> Any:
        return runtime._compose_cost(
            reqs, samps, cache, model, _PROBE_WORKLOAD, policy,
            False, runtime.device, False,
        )

    baseline = compose(requests, samples)
    if baseline is None:
        return 1, ["probe batch unexpectedly fell back to the cold path"]
    fingerprint = cache.batch_fingerprint(
        tuple(r.scene_key for r in requests)
    )
    trials = 1
    for i in range(6):
        order = list(range(len(requests)))
        rng.shuffle(order)
        # Perturb every non-key request field; leave (workload, seed)
        # — the scene key — alone.
        perturbed = [
            dataclasses.replace(
                requests[j],
                request_id=1000 + 10 * i + j,
                stream_id=rng.randrange(4),
                frame_index=rng.randrange(100),
                arrival_ms=rng.random() * 50.0,
                deadline_ms=500.0 + rng.random() * 500.0,
                tenant=rng.choice(("default", "gold")),
                priority=rng.randrange(3),
            )
            for j in order
        ]
        fp = cache.batch_fingerprint(
            tuple(r.scene_key for r in perturbed)
        )
        trials += 1
        if fp != fingerprint:
            failures.append(
                "batch fingerprint is not invariant under reordering + "
                "non-key request-field perturbation"
            )
        # Same order as the baseline: composition must be byte-identical.
        same_order = [
            dataclasses.replace(
                requests[j], request_id=2000 + 10 * i + j
            )
            for j in range(len(requests))
        ]
        got = compose(same_order, samples)
        trials += 1
        if got is None or _batch_cost_key(got) != _batch_cost_key(baseline):
            failures.append(
                "perturbing non-key request fields changed the composed "
                "batch cost"
            )
    return trials, failures


def _probe_sample_memo() -> ReadLog:
    from repro.models import get_workload
    from repro.nn.context import FixedPolicy

    log = ReadLog()
    runtime = _probe_runtime()
    model = runtime.model(_PROBE_WORKLOAD)
    workload = get_workload(_PROBE_WORKLOAD)
    request = _probe_requests((31,))[0]
    sample = runtime.scenes.sample(workload, request)
    runtime.device = wrap(runtime.device, "device", log)
    runtime.config = wrap(runtime.config, "config", log)
    cost = runtime._simulate_sample(
        wrap(sample, "sample", log),
        wrap(model, "model", log),
        wrap(FixedPolicy(runtime.default_config), "policy", log),
        False,
        None,
    )
    assert cost.latency_us > 0.0
    return log


def _fuzz_sample_memo(rng: random.Random) -> Tuple[int, List[str]]:
    from repro.models import get_workload
    from repro.nn.context import FixedPolicy
    from repro.serve.cache import scene_key

    failures: List[str] = []
    runtime = _probe_runtime()
    model = runtime.model(_PROBE_WORKLOAD)
    workload = get_workload(_PROBE_WORKLOAD)
    request = _probe_requests((41,))[0]
    sample = runtime.scenes.sample(workload, request)
    policy = FixedPolicy(runtime.default_config)
    cold = runtime._simulate_sample(sample, model, policy, False, None)
    trials = 1
    if runtime._simulate_sample(sample, model, policy, False, None) != cold:
        failures.append("cold per-sample simulation is not deterministic")
    # Warmth is a frozenset: construction order must not matter, and the
    # memo key must therefore be order-insensitive.
    charge = cold.charge
    warm = runtime._simulate_sample(sample, model, policy, False, charge)
    for _ in range(4):
        items = list(charge)
        rng.shuffle(items)
        reordered = frozenset(items)
        trials += 2
        if reordered != charge or hash(reordered) != hash(charge):
            failures.append("warmth frozenset is construction-order "
                            "sensitive")
        if (
            runtime._simulate_sample(sample, model, policy, False, reordered)
            != warm
        ):
            failures.append(
                "reordered warmth changed the warm per-sample cost"
            )
    # Non-key request fields must resolve to the same scene (and the
    # scene provider must return the identical sample object).
    for i in range(4):
        twin = dataclasses.replace(
            request,
            request_id=900 + i,
            frame_index=rng.randrange(100),
            arrival_ms=rng.random() * 10.0,
        )
        trials += 1
        if (
            twin.scene_key != scene_key(_PROBE_WORKLOAD, 41)
            or runtime.scenes.sample(workload, twin) is not sample
        ):
            failures.append(
                "non-key request fields perturbed the scene identity"
            )
    return trials, failures


def _probe_tuning_db() -> ReadLog:
    from repro.autotune.db import TuningKey
    from repro.hw.specs import get_device
    from repro.kernels.registry import Dataflow, trace_dataflow
    from repro.precision import Precision

    log = ReadLog()
    device = wrap(get_device("a100"), "device", log)
    scene = wrap(_probe_kmap(), "scene", log)
    # The full cached transaction: derive the row's key from the scene's
    # sparsity statistics, then run the measurement a TuningEntry caches
    # (trace + price one candidate configuration on the kernel map).
    key = TuningKey.make(
        device,
        (1, 3, 1, False),
        16,
        16,
        "fp16",
        num_inputs=scene.num_inputs,
        num_outputs=scene.num_outputs,
        mean_neighbors=scene.mean_neighbors,
    )
    assert key.bucket
    trace = trace_dataflow(
        Dataflow.IMPLICIT_GEMM, scene, 16, 16, precision="fp16"
    )
    us = _priced_trace_us(trace, device, Precision.FP16)
    assert us > 0.0
    return log


def _fuzz_tuning_db(rng: random.Random) -> Tuple[int, List[str]]:
    from repro.autotune.db import sparsity_bucket
    from repro.errors import ConfigError

    failures: List[str] = []
    trials = 0
    reference = sparsity_bucket(100_000, 100_000, 20.0)
    for _ in range(6):
        # Anything in [2^16, 2^17) shares 100k's floor-log2 bucket.
        n = rng.randrange(1 << 16, 1 << 17)
        d = 16.0 + rng.random() * 15.9  # [16, 32) shares 20's bucket
        trials += 1
        if sparsity_bucket(n, n, d) != reference:
            failures.append(
                f"same-bucket scene ({n}, {d:.2f}) got a different key"
            )
    for bad in (float("nan"), float("inf"), -1.0):
        trials += 1
        try:
            sparsity_bucket(100, 100, bad)
            failures.append(f"accepted mean_neighbors={bad!r}")
        except ConfigError:
            pass
    trials += 1
    if sparsity_bucket(0, 0, 0.0) == sparsity_bucket(1, 1, 1.0):
        failures.append(
            "zero-point scenes share a bucket with 1-point scenes"
        )
    return trials, failures


_PINNED_CONFIG = Exemption(
    "config",
    "ServeConfig is frozen for the runtime's lifetime and the memo dies "
    "with its runtime: config fields are instance-scoped, not key-scoped",
)
_PINNED_DEVICE = Exemption(
    "device",
    "every replica of one runtime serves the single configured device "
    "spec; the memo never crosses runtimes",
)


def _register_builtin_sites() -> None:
    register_cache_site(
        KeySchema(
            site="gpusim.trace-memo",
            description=(
                "estimate_trace_us memo keyed by (device, precision, "
                "streams, per-launch pricing signature)"
            ),
            components=(
                KeyComponent(
                    "launch_signature",
                    covers=tuple(f"launch.{f}" for f in PRICING_FIELDS),
                    note=(
                        "PRICING_FIELDS is the single source of truth: "
                        "the signature reads exactly the fields "
                        "estimate_launch_us prices"
                    ),
                ),
                KeyComponent(
                    "schedule_signature",
                    covers=tuple(f"launch.{f}" for f in SCHEDULE_FIELDS),
                    note=(
                        "streams > 1 additionally keys the dependence/"
                        "scheduling fields; exercised by the fuzzer, not "
                        "the single-stream probe"
                    ),
                    conditional=True,
                ),
                KeyComponent("device", covers=("device",)),
                KeyComponent(
                    "precision",
                    note="by value, unparsed (aliases duplicate, never "
                    "corrupt)",
                ),
                KeyComponent("streams", note="by value"),
            ),
            probe=_probe_trace_memo,
            fuzz=_fuzz_trace_memo,
        )
    )
    register_cache_site(
        KeySchema(
            site="serve.policy-cache",
            description=(
                "cluster-global tuned policies keyed by (model key, "
                "device, precision) — the tune-once/reuse-everywhere "
                "cache (Section 4.2)"
            ),
            components=(
                KeyComponent(
                    "model_key",
                    note="by value: workload/model identity determines "
                    "every layer signature the tuner prices",
                ),
                KeyComponent("device", covers=("device",)),
                KeyComponent("precision", note="by value"),
            ),
            exemptions=(
                Exemption(
                    "scene",
                    "tune-once/reuse-everywhere: a policy tuned on "
                    "sample scenes is deliberately reused for every "
                    "scene of the workload (Section 4.2)",
                ),
            ),
            probe=_probe_policy_cache,
            fuzz=_fuzz_policy_cache,
        )
    )
    register_cache_site(
        KeySchema(
            site="serve.kmap-batch-memo",
            description=(
                "per-runtime batch-execution memo keyed by (workload, "
                "KmapCache.batch_fingerprint over scene keys, policy "
                "version, degraded, forced_oom)"
            ),
            components=(
                KeyComponent(
                    "workload_id",
                    covers=("request.workload_id", "model"),
                    note="selects the model and dataset",
                ),
                KeyComponent(
                    "batch_fingerprint",
                    covers=("request.scene_key", "sample"),
                    note=(
                        "scene keys + per-scene warmth + cache capacity/"
                        "eviction context; a scene key determines its "
                        "generated sample bit-for-bit (seeded "
                        "make_sample at the runtime's pinned scale)"
                    ),
                ),
                KeyComponent(
                    "policy_version",
                    covers=("policy",),
                    note="the policy-cache content version pins the "
                    "resolved policy object within one runtime",
                ),
                KeyComponent("degraded", note="by value"),
                KeyComponent("forced_oom", note="by value"),
            ),
            declared_reads=("precision",),
            exemptions=(_PINNED_CONFIG, _PINNED_DEVICE),
            probe=_probe_batch_memo,
            fuzz=_fuzz_batch_memo,
        )
    )
    register_cache_site(
        KeySchema(
            site="serve.sample-memo",
            description=(
                "per-runtime _SampleCost memo keyed by (workload, "
                "scene_key, warmth, policy version, degraded)"
            ),
            components=(
                KeyComponent(
                    "scene_key",
                    covers=("sample",),
                    note=(
                        "(workload_id, scene_seed) determines the "
                        "generated sample bit-for-bit "
                        "(repro.serve.cache.scene_key)"
                    ),
                ),
                KeyComponent(
                    "workload_id",
                    covers=("model",),
                    note="selects the model the sample runs through",
                ),
                KeyComponent(
                    "warmth",
                    note="by value: frozenset of pre-charged map keys",
                ),
                KeyComponent(
                    "policy_version",
                    covers=("policy",),
                    note="pins the resolved policy within one runtime",
                ),
                KeyComponent(
                    "degraded",
                    note="by value: selects the default policy and "
                    "disables adaptive tiling",
                ),
            ),
            declared_reads=("precision",),
            exemptions=(_PINNED_CONFIG, _PINNED_DEVICE),
            probe=_probe_sample_memo,
            fuzz=_fuzz_sample_memo,
        )
    )
    register_cache_site(
        KeySchema(
            site="autotune.tuning-db",
            description=(
                "persistent TuningEntry store keyed by TuningKey "
                "(device, layer signature, sparsity bucket)"
            ),
            components=(
                KeyComponent("device", covers=("device",)),
                KeyComponent(
                    "layer",
                    note="by value: signature + channel pair + precision",
                ),
                KeyComponent(
                    "bucket",
                    covers=(
                        "scene.num_inputs",
                        "scene.num_outputs",
                        "scene.mean_neighbors",
                    ),
                    note="floor-log2 quantization of the scene statistics",
                ),
            ),
            exemptions=(
                Exemption(
                    "scene",
                    "the sparsity bucket deliberately quantizes scene "
                    "statistics (floor-log2): scenes in one bucket share "
                    "a tuned entry so the database stays per-scale, not "
                    "per-scene",
                ),
            ),
            probe=_probe_tuning_db,
            fuzz=_fuzz_tuning_db,
        )
    )


_register_builtin_sites()
