"""Static value-range propagation for reduced-precision safety.

The second pass of the PR's two-pass analyzer: starting from an assumed
input range (normalized features) and each convolution's *initialized
weight statistics* (captured on the IR by the symbolic tracer, no data
executed), propagate an interval model through the module tree:

* a convolution with fan-in ``F = volume * C_in`` multiplies the hard
  bound by ``F * max|w|`` (worst case: every operand at its extreme) and
  the statistical scale by ``rms(w) * sqrt(F)`` (independent zero-mean
  accumulation);
* batch normalization re-standardizes: the range collapses back to
  roughly ``RANGE_SIGMA`` standard deviations of a unit-scale signal;
* ReLU halves signal power (``rms / sqrt(2)``) and keeps the bound.

A layer is flagged as **fp16-unsafe** when its expected output magnitude
(``RANGE_SIGMA`` standard deviations, capped by the hard bound) exceeds
the fp16 maximum — storage of that layer's features would overflow to
``inf``.  A subnormal RMS flags **underflow** (features flush toward
zero).  The degradation ladder consults :func:`precision_drop_veto`
before taking its ``precision:drop`` rung: degraded execution must stay
within the documented error bounds of the dense reference, which an
overflowing cast cannot.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Tuple

from repro.analyze.ir import IRNode, ModelIR

#: Largest finite fp16 value.
FP16_MAX = 65504.0
#: Smallest positive normal fp16 value; RMS below this flushes to zero.
FP16_TINY = 6.103515625e-05
#: Standard deviations defining the "expected magnitude" of a signal.
RANGE_SIGMA = 6.0


@dataclasses.dataclass(frozen=True)
class ValueRange:
    """Interval model of a feature tensor: hard bound + statistical scale.

    ``abs_max`` bounds ``|x|`` absolutely (worst-case propagation);
    ``rms`` tracks the root-mean-square under the independence
    assumption.  The *expected magnitude* used for safety decisions is
    ``min(abs_max, RANGE_SIGMA * rms)`` — the statistical estimate,
    never above the hard bound.
    """

    abs_max: float
    rms: float

    @property
    def magnitude(self) -> float:
        return min(self.abs_max, RANGE_SIGMA * self.rms)


#: Dataset features are normalized to roughly unit scale before the stem.
DEFAULT_INPUT_RANGE = ValueRange(abs_max=RANGE_SIGMA, rms=1.0)


@dataclasses.dataclass(frozen=True)
class LayerRange:
    """Propagated range at one IR node's output."""

    path: str
    kind: str
    out_range: ValueRange
    fp16_overflow: bool = False
    fp16_underflow: bool = False

    @property
    def fp16_safe(self) -> bool:
        return not self.fp16_overflow


@dataclasses.dataclass(frozen=True)
class RangeReport:
    """Full value-range propagation result for one model."""

    input_range: ValueRange
    layers: Tuple[LayerRange, ...]

    @property
    def fp16_safe(self) -> bool:
        return all(layer.fp16_safe for layer in self.layers)

    def overflowing(self) -> List[LayerRange]:
        return [layer for layer in self.layers if layer.fp16_overflow]

    def underflowing(self) -> List[LayerRange]:
        return [layer for layer in self.layers if layer.fp16_underflow]

    def veto_reason(self) -> Optional[str]:
        """Why dropping storage precision to fp16 is unsafe (or None)."""
        bad = self.overflowing()
        if not bad:
            return None
        worst = max(bad, key=lambda layer: layer.out_range.magnitude)
        return (
            f"fp16 value range: {len(bad)} layer(s) overflow, worst "
            f"{worst.path} with expected |out| ~ "
            f"{worst.out_range.magnitude:.3g} > {FP16_MAX:.0f}"
        )


def _fan_in(node: IRNode) -> float:
    volume = 1
    for k in node.kernel_size or (1,):
        volume *= int(k)
    return float(volume * (node.in_channels or 1))


def _conv_range(node: IRNode, current: ValueRange) -> ValueRange:
    fan_in = _fan_in(node)
    w_abs = node.weight_abs_max or 0.0
    w_rms = node.weight_rms or 0.0
    return ValueRange(
        abs_max=current.abs_max * fan_in * w_abs,
        rms=current.rms * w_rms * math.sqrt(fan_in),
    )


def propagate_ranges(
    ir: ModelIR, input_range: ValueRange = DEFAULT_INPUT_RANGE
) -> RangeReport:
    """Walk the IR node sequence propagating the interval model.

    The walk is sequential over execution order; joins keep the main
    branch's range (a concat preserves per-channel scales, a residual
    add at most doubles the RMS — within the model's slack).
    """
    current = input_range
    layers: List[LayerRange] = []
    for node in ir.nodes:
        overflow = underflow = False
        if node.kind == "conv":
            current = _conv_range(node, current)
            # Features are stored (and cast) at every layer boundary:
            # this is where an fp16 cast would saturate or flush.
            overflow = current.magnitude > FP16_MAX
            underflow = 0.0 < current.rms < FP16_TINY
        elif node.kind == "norm":
            current = ValueRange(abs_max=RANGE_SIGMA, rms=1.0)
        elif node.kind == "activation":
            current = ValueRange(
                abs_max=current.abs_max, rms=current.rms / math.sqrt(2.0)
            )
        # concat/opaque: range unchanged.
        layers.append(
            LayerRange(
                path=node.path,
                kind=node.kind,
                out_range=current,
                fp16_overflow=overflow,
                fp16_underflow=underflow,
            )
        )
    return RangeReport(input_range=input_range, layers=tuple(layers))


def model_range_report(
    model: object,
    in_channels: int,
    ndim: int = 3,
    input_range: ValueRange = DEFAULT_INPUT_RANGE,
) -> RangeReport:
    """Trace ``model`` symbolically and propagate value ranges."""
    from repro.analyze.propagate import trace_model

    ir = trace_model(model, in_channels=in_channels, ndim=ndim)  # type: ignore[arg-type]
    return propagate_ranges(ir, input_range)


def precision_drop_veto(
    ir: ModelIR, input_range: ValueRange = DEFAULT_INPUT_RANGE
) -> Optional[str]:
    """Reason the degradation ladder must skip ``precision:drop``, or
    ``None`` when the drop is statically safe."""
    return propagate_ranges(ir, input_range).veto_reason()


__all__ = [
    "FP16_MAX",
    "FP16_TINY",
    "RANGE_SIGMA",
    "ValueRange",
    "DEFAULT_INPUT_RANGE",
    "LayerRange",
    "RangeReport",
    "propagate_ranges",
    "model_range_report",
    "precision_drop_veto",
]
