"""Pluggable lint rules over the static model IR.

Each rule is a function from a :class:`LintContext` to a list of
:class:`Finding`s, registered with the :func:`lint_rule` decorator.  Rules
never raise on bad models — they *report*; the CLI and the serving
admission controller decide what severity is fatal.

The built-in catalogue covers the statically decidable hazard classes of
the TorchSparse++ design space:

* ``stride-mismatch`` — join/skip operands on different coordinate strides;
* ``missing-forward-map`` — a transposed convolution whose matching
  downsample map is not in scope (a guaranteed ``MapError`` at runtime);
* ``channel-mismatch`` — layer fed a width it was not built for;
* ``tile-alignment`` — channel counts that pad badly against the 16-wide
  tensor-core tile granule, with the estimated padding-waste percentage
  (Figure 21);
* ``dataflow-precision`` — precision/schedule combinations that silently
  fall off the tensor-core path (e.g. FP32 on a tensor-core schedule);
* ``kmap-reuse`` — identical kernel-map keys built more than once because
  cache lineage was broken (missed ``MapCache`` reuse);
* ``dead-submodule`` — registered submodules the forward walk never
  reaches;
* ``peak-memory`` — the static lower bound on resident memory (every
  layer's weights at storage precision) against the target device's DRAM
  capacity: exceeding ``dram_gib`` is an error (no execution can fit, not
  even the bottom of the degradation ladder), exceeding 80% is a warning
  (features and workspace will contend for what remains).
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
)

if TYPE_CHECKING:
    from repro.opt.schedule import StreamSchedule

from repro.analyze.ir import ModelIR
from repro.analyze.tracecheck import TraceViolation
from repro.gpusim.trace import KernelTrace
from repro.hw.specs import DeviceSpec
from repro.nn.context import LayerConfig, Role
from repro.precision import Precision

#: Tensor-core tile granule along the channel dimensions (Figure 21: GEMM
#: tiles pad M/N/K to multiples of 16; misaligned channels waste the pad).
TILE_GRANULE = 16

#: Padding waste at or above this fraction is a warning (below: info).
WASTE_WARNING_THRESHOLD = 0.05

#: Static weight footprint above this fraction of device DRAM is a warning.
MEMORY_WARNING_FRACTION = 0.8

#: Stream count the schedule-verification lint rules analyze at (matches
#: the ``ServeConfig``/CLI ``gpu_streams`` default).
LINT_SCHEDULE_STREAMS = 4

#: Warn when sync overhead eats at least this fraction of the overlap win
#: a sync-free schedule would claim.  Healthy bundled workloads sit below
#: ~0.35 on every registered device.
SYNC_OVERHEAD_WARNING_FRACTION = 0.5


class Severity(enum.Enum):
    """Lint finding severity, ordered info < warning < error."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "error": 2}[self.value]

    @classmethod
    def parse(cls, name: "str | Severity") -> "Severity":
        if isinstance(name, Severity):
            return name
        try:
            return cls(name.lower())
        except ValueError:
            valid = [s.value for s in cls]
            raise ValueError(
                f"unknown severity {name!r}; expected one of {valid}"
            ) from None


@dataclasses.dataclass(frozen=True)
class Finding:
    """One lint finding: what rule fired, where, and how bad."""

    rule: str
    severity: Severity
    path: str
    message: str
    data: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "message": self.message,
            "data": dict(self.data),
        }

    def format(self) -> str:
        return f"{self.severity.value:>7}  {self.rule:<20} {self.path}: {self.message}"


@dataclasses.dataclass
class LintContext:
    """Everything a rule may inspect: the IR plus the deployment target."""

    ir: ModelIR
    device: DeviceSpec
    precision: Precision
    #: Optional tuned policy (``FixedPolicy``/``GroupPolicy``); ``None``
    #: means the default layer configuration for every signature group.
    policy: Optional[Any] = None
    #: Optional kernel trace of one executed (or simulated) run; the
    #: dependence/liveness rules are skipped when no trace is supplied.
    trace: Optional[KernelTrace] = None
    _trace_violations: Optional[List[TraceViolation]] = dataclasses.field(
        default=None, repr=False
    )
    _schedule: Optional["StreamSchedule"] = dataclasses.field(
        default=None, repr=False
    )

    def layer_config(self, signature: Any) -> LayerConfig:
        if self.policy is None:
            return LayerConfig()
        return self.policy.config(signature, Role.FORWARD)

    def trace_violations(self) -> List[TraceViolation]:
        """Depgraph violations of ``trace`` (memoized; [] without one)."""
        if self.trace is None:
            return []
        if self._trace_violations is None:
            from repro.analyze.depgraph import check_depgraph

            self._trace_violations = check_depgraph(
                self.trace, device=self.device, precision=self.precision
            )
        return self._trace_violations

    def stream_schedule(self) -> Optional["StreamSchedule"]:
        """Sync-aware best schedule of ``trace`` at the lint stream count
        (memoized; ``None`` without a trace)."""
        if self.trace is None or len(self.trace) == 0:
            return None
        if self._schedule is None:
            from repro.opt.schedule import best_schedule

            self._schedule = best_schedule(
                self.trace,
                self.device,
                self.precision,
                LINT_SCHEDULE_STREAMS,
            )
        return self._schedule


RuleFunc = Callable[[LintContext], List[Finding]]


@dataclasses.dataclass(frozen=True)
class Rule:
    name: str
    description: str
    func: RuleFunc


#: Rule name -> rule, in registration order.
RULES: Dict[str, Rule] = {}


def lint_rule(
    name: str, description: str
) -> Callable[[RuleFunc], RuleFunc]:
    """Register a lint pass under ``name``."""

    def decorator(func: RuleFunc) -> RuleFunc:
        RULES[name] = Rule(name=name, description=description, func=func)
        return func

    return decorator


def run_rules(
    ctx: LintContext, rules: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Run the selected rules (default: all) and return findings sorted
    most severe first."""
    names = list(rules) if rules is not None else list(RULES)
    unknown = [n for n in names if n not in RULES]
    if unknown:
        raise ValueError(
            f"unknown lint rule(s) {unknown}; have {sorted(RULES)}"
        )
    findings: List[Finding] = []
    for name in names:
        findings.extend(RULES[name].func(ctx))
    findings.sort(key=lambda f: (-f.severity.rank, f.rule, f.path))
    return findings


def max_severity(findings: Sequence[Finding]) -> Optional[Severity]:
    if not findings:
        return None
    return max((f.severity for f in findings), key=lambda s: s.rank)


# ---------------------------------------------------------------------- #
# Built-in rules
# ---------------------------------------------------------------------- #
@lint_rule(
    "stride-mismatch",
    "join/skip operands must live on the same coordinate stride",
)
def _rule_stride_mismatch(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    for join in ctx.ir.joins:
        if join.left_stride != join.right_stride:
            findings.append(
                Finding(
                    rule="stride-mismatch",
                    severity=Severity.ERROR,
                    path=join.path,
                    message=(
                        f"{join.kind} joins tensors on different coordinate "
                        f"strides {join.left_stride} vs {join.right_stride}; "
                        f"the operands index different coordinate sets"
                    ),
                    data={
                        "kind": join.kind,
                        "left_stride": list(join.left_stride),
                        "right_stride": list(join.right_stride),
                    },
                )
            )
    return findings


@lint_rule(
    "missing-forward-map",
    "transposed convolutions need the matching downsample map in scope",
)
def _rule_missing_forward_map(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    for event in ctx.ir.map_events:
        if event.event == "missing_forward_map":
            stride, kernel, conv_stride, _ = event.key
            findings.append(
                Finding(
                    rule="missing-forward-map",
                    severity=Severity.ERROR,
                    path=event.path,
                    message=(
                        f"transposed convolution (stride {stride}, kernel "
                        f"{kernel}, upsample {conv_stride}) has no matching "
                        f"forward map in its cache scope; this raises "
                        f"MapError at runtime — run the matching downsample "
                        f"first or share the map cache"
                    ),
                    data={"key": repr(event.key)},
                )
            )
        elif event.event == "bad_upsample":
            stride, _, conv_stride, _ = event.key
            findings.append(
                Finding(
                    rule="missing-forward-map",
                    severity=Severity.ERROR,
                    path=event.path,
                    message=(
                        f"cannot upsample tensor stride {stride} by "
                        f"{conv_stride}: stride is not divisible"
                    ),
                    data={"key": repr(event.key)},
                )
            )
    return findings


@lint_rule(
    "channel-mismatch",
    "layers must receive the channel width they were built for",
)
def _rule_channel_mismatch(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    for mismatch in ctx.ir.channel_mismatches:
        findings.append(
            Finding(
                rule="channel-mismatch",
                severity=Severity.ERROR,
                path=mismatch.path,
                message=(
                    f"layer expects {mismatch.expected} input channels but "
                    f"receives {mismatch.got}"
                ),
                data={"expected": mismatch.expected, "got": mismatch.got},
            )
        )
    for join in ctx.ir.joins:
        if (
            join.kind == "residual_add"
            and join.left_channels != join.right_channels
        ):
            findings.append(
                Finding(
                    rule="channel-mismatch",
                    severity=Severity.ERROR,
                    path=join.path,
                    message=(
                        f"residual add joins {join.left_channels} with "
                        f"{join.right_channels} channels"
                    ),
                    data={
                        "left": join.left_channels,
                        "right": join.right_channels,
                    },
                )
            )
    return findings


def _padding_waste(channels: int, granule: int = TILE_GRANULE) -> float:
    padded = math.ceil(channels / granule) * granule
    return (padded - channels) / padded


@lint_rule(
    "tile-alignment",
    "channel counts should fill 16-wide tensor-core tiles (Figure 21)",
)
def _rule_tile_alignment(ctx: LintContext) -> List[Finding]:
    if (
        ctx.device.fp16_tensor_tflops is None
        and ctx.device.tf32_tensor_tflops is None
    ):
        return []  # no tensor cores on this device
    findings: List[Finding] = []
    seen = set()
    for node in ctx.ir.conv_nodes():
        if not ctx.layer_config(node.signature).tensor_cores:
            continue
        sides = []
        if node.in_channels is not None:
            sides.append(("in_channels", node.in_channels, "input"))
        if node.out_channels is not None:
            sides.append(("out_channels", node.out_channels, "output"))
        for side, channels, fixed_when in sides:
            waste = _padding_waste(channels)
            if waste <= 0.0:
                continue
            key = (node.path, side)
            if key in seen:
                continue
            seen.add(key)
            # Network-boundary widths (dataset features, class counts) are
            # fixed by the task, not the architect: never above info.
            boundary = (
                fixed_when in node.boundary.split("+") if node.boundary else False
            )
            if boundary:
                severity = Severity.INFO
            elif waste >= WASTE_WARNING_THRESHOLD:
                severity = Severity.WARNING
            else:
                severity = Severity.INFO
            padded = math.ceil(channels / TILE_GRANULE) * TILE_GRANULE
            findings.append(
                Finding(
                    rule="tile-alignment",
                    severity=severity,
                    path=node.path,
                    message=(
                        f"{side}={channels} pads to {padded} on the "
                        f"{TILE_GRANULE}-wide tensor-core tile: "
                        f"{100 * waste:.1f}% of the tile MACs are padding "
                        f"waste (Figure 21)"
                        + (
                            "; width is fixed by the dataset/task"
                            if boundary
                            else ""
                        )
                    ),
                    data={
                        "side": side,
                        "channels": channels,
                        "padded": padded,
                        "waste_pct": round(100 * waste, 2),
                        "boundary": boundary,
                    },
                )
            )
    return findings


@lint_rule(
    "dataflow-precision",
    "precision must match the configured compute path",
)
def _rule_dataflow_precision(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    has_fp16_tc = ctx.device.fp16_tensor_tflops is not None
    has_tf32_tc = ctx.device.tf32_tensor_tflops is not None
    for signature, group in sorted(
        ctx.ir.signature_groups().items(), key=lambda kv: kv[1][0].path
    ):
        config = ctx.layer_config(signature)
        if not config.tensor_cores:
            continue
        path = group[0].path
        layers = f"{len(group)} layer(s) in group"
        if ctx.precision is Precision.FP32 and (has_fp16_tc or has_tf32_tc):
            findings.append(
                Finding(
                    rule="dataflow-precision",
                    severity=Severity.WARNING,
                    path=path,
                    message=(
                        f"FP32 cannot execute on {ctx.device.name} tensor "
                        f"cores; the tensor-core schedule silently falls "
                        f"back to CUDA cores "
                        f"({ctx.device.tensor_to_cuda_ratio:.1f}x slower "
                        f"peak) — use fp16/tf32 or set tensor_cores=False "
                        f"({layers})"
                    ),
                    data={"signature": repr(signature), "group": len(group)},
                )
            )
        elif ctx.precision is Precision.TF32 and not has_tf32_tc:
            findings.append(
                Finding(
                    rule="dataflow-precision",
                    severity=Severity.WARNING,
                    path=path,
                    message=(
                        f"{ctx.device.name} has no TF32 tensor path; TF32 "
                        f"runs as FP32 on CUDA cores ({layers})"
                    ),
                    data={"signature": repr(signature), "group": len(group)},
                )
            )
        elif not has_fp16_tc and not has_tf32_tc:
            findings.append(
                Finding(
                    rule="dataflow-precision",
                    severity=Severity.INFO,
                    path=path,
                    message=(
                        f"tensor cores requested but {ctx.device.name} has "
                        f"none; schedule runs on CUDA cores ({layers})"
                    ),
                    data={"signature": repr(signature), "group": len(group)},
                )
            )
    return findings


@lint_rule(
    "kmap-reuse",
    "identical kernel maps should be built once and reused (MapCache)",
)
def _rule_kmap_reuse(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    builds_by_key = sorted(
        ctx.ir.map_builds().items(), key=lambda kv: kv[1][0].path
    )
    for key, builds in builds_by_key:
        if len(builds) < 2:
            continue
        stride, kernel, conv_stride, _ = key
        paths = [b.path for b in builds]
        findings.append(
            Finding(
                rule="kmap-reuse",
                severity=Severity.WARNING,
                path=paths[0],
                message=(
                    f"kernel map (stride {stride}, kernel {kernel}, conv "
                    f"stride {conv_stride}) is built {len(builds)} times in "
                    f"separate cache scopes ({', '.join(paths[1:])} rebuild "
                    f"it); share one MapCache to pay the hash build once"
                ),
                data={"key": repr(key), "builds": paths},
            )
        )
    return findings


def static_weight_bytes(ir: ModelIR, precision: Precision) -> float:
    """Static lower bound on resident memory: conv weights at storage
    precision.

    A lower bound by construction — it ignores activations, workspace and
    non-conv parameters; anything the model actually executes only adds to
    it.  Shared submodules traced more than once count once (deduplicated
    by module path).
    """
    itemsize = float(precision.itemsize)
    seen: Set[str] = set()
    total = 0.0
    for node in ir.conv_nodes():
        if node.path in seen:
            continue
        if node.in_channels is None or node.out_channels is None:
            continue
        seen.add(node.path)
        volume = 1
        for k in node.kernel_size or (1,):
            volume *= int(k)
        total += itemsize * volume * node.in_channels * node.out_channels
    return total


@lint_rule(
    "peak-memory",
    "static weight footprint must fit the target device's DRAM",
)
def _rule_peak_memory(ctx: LintContext) -> List[Finding]:
    weights = static_weight_bytes(ctx.ir, ctx.precision)
    dram = ctx.device.dram_bytes
    if weights <= MEMORY_WARNING_FRACTION * dram:
        return []
    gib = float(1 << 30)
    data = {
        "weight_bytes": weights,
        "dram_bytes": dram,
        "fraction": round(weights / dram, 4),
    }
    if weights > dram:
        severity = Severity.ERROR
        message = (
            f"static weight footprint {weights / gib:.2f} GiB exceeds "
            f"{ctx.device.name}'s {ctx.device.dram_gib:g} GiB DRAM; no "
            f"execution can fit — not even the degradation ladder's "
            f"minimal-footprint dataflow"
        )
    else:
        severity = Severity.WARNING
        message = (
            f"static weight footprint {weights / gib:.2f} GiB is "
            f"{100 * weights / dram:.0f}% of {ctx.device.name}'s "
            f"{ctx.device.dram_gib:g} GiB DRAM; features and kernel "
            f"workspace will contend for the remainder"
        )
    return [
        Finding(
            rule="peak-memory",
            severity=severity,
            path=ctx.ir.model_type,
            message=message,
            data=data,
        )
    ]


@lint_rule(
    "dead-submodule",
    "registered submodules the forward walk never executes",
)
def _rule_dead_submodule(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    for path in ctx.ir.unvisited_paths:
        findings.append(
            Finding(
                rule="dead-submodule",
                severity=Severity.WARNING,
                path=path,
                message=(
                    "submodule is registered (its parameters are trained "
                    "and checkpointed) but never reached by forward"
                ),
                data={},
            )
        )
    return findings


# ---------------------------------------------------------------------- #
# Trace-level dependence/liveness rules (need ``ctx.trace``)
# ---------------------------------------------------------------------- #
def _depgraph_findings(
    ctx: LintContext, rule: str, invariants: Sequence[str]
) -> List[Finding]:
    findings: List[Finding] = []
    for violation in ctx.trace_violations():
        if violation.invariant not in invariants:
            continue
        findings.append(
            Finding(
                rule=rule,
                severity=Severity.ERROR,
                path=violation.launch or "<trace>",
                message=violation.message,
                data={"invariant": violation.invariant},
            )
        )
    return findings


@lint_rule(
    "uninitialized-read",
    "workspace buffers must be written before any launch reads them",
)
def _rule_uninitialized_read(ctx: LintContext) -> List[Finding]:
    return _depgraph_findings(
        ctx, "uninitialized-read", ("uninitialized-read", "raw-order")
    )


@lint_rule(
    "workspace-lifetime",
    "workspace buffers must be consumed and covered by workspace_bytes",
)
def _rule_workspace_lifetime(ctx: LintContext) -> List[Finding]:
    return _depgraph_findings(ctx, "workspace-lifetime", ("workspace-lifetime",))


@lint_rule(
    "unordered-conflicting-writes",
    "plain writes to one buffer need a RAW/WAR path ordering them",
)
def _rule_unordered_writes(ctx: LintContext) -> List[Finding]:
    return _depgraph_findings(
        ctx, "unordered-conflicting-writes", ("unordered-conflicting-writes",)
    )


@lint_rule(
    "critical-path-bound",
    "serialized latency estimate must dominate the DAG critical path",
)
def _rule_critical_path_bound(ctx: LintContext) -> List[Finding]:
    return _depgraph_findings(
        ctx,
        "critical-path-bound",
        ("critical-path-bound", "scheduled-latency-bound"),
    )


#: Serialized-over-critical-path ratio at or above this reports untapped
#: launch parallelism (info): multi-stream scheduling could overlap work.
PARALLELISM_INFO_THRESHOLD = 1.5


@lint_rule(
    "launch-parallelism",
    "traces with a short critical path benefit from multi-stream overlap",
)
def _rule_launch_parallelism(ctx: LintContext) -> List[Finding]:
    if ctx.trace is None or len(ctx.trace) == 0:
        return []
    from repro.analyze.depgraph import DependenceGraph
    from repro.gpusim.engine import estimate_launch_us

    graph = DependenceGraph.build(ctx.trace)
    _, span = graph.critical_path(ctx.device, ctx.precision)
    if span <= 0.0:
        return []
    serialized = sum(
        estimate_launch_us(launch, ctx.device, ctx.precision)
        for launch in ctx.trace
    )
    parallelism = serialized / span
    if parallelism < PARALLELISM_INFO_THRESHOLD:
        return []
    return [
        Finding(
            rule="launch-parallelism",
            severity=Severity.INFO,
            path="<trace>",
            message=(
                f"dependence DAG exposes {parallelism:.2f}x available "
                f"launch parallelism (serialized {serialized:.0f} us vs "
                f"critical path {span:.0f} us); schedule onto multiple "
                f"streams (gpu_streams > 1, `repro depgraph --schedule`) "
                f"to overlap independent launches"
            ),
            data={
                "parallelism": round(parallelism, 3),
                "serialized_us": round(serialized, 3),
                "critical_path_us": round(span, 3),
            },
        )
    ]


# ---------------------------------------------------------------------- #
# Schedule-verification rules (need ``ctx.trace``)
# ---------------------------------------------------------------------- #
@lint_rule(
    "unsynchronized-cross-stream-dep",
    "every cross-stream dependence needs a happens-before sync event",
)
def _rule_unsynchronized_cross_stream(ctx: LintContext) -> List[Finding]:
    schedule = ctx.stream_schedule()
    if schedule is None:
        return []
    from repro.analyze.hb import check_schedule

    findings = _depgraph_findings(
        ctx,
        "unsynchronized-cross-stream-dep",
        (
            "unsynchronized-cross-stream-dep",
            "malformed-sync",
            "malformed-schedule",
        ),
    )
    seen = {(f.path, f.message) for f in findings}
    assert ctx.trace is not None
    for violation in check_schedule(ctx.trace, schedule):
        key = (violation.launch or "<schedule>", violation.message)
        if key in seen:
            continue
        seen.add(key)
        findings.append(
            Finding(
                rule="unsynchronized-cross-stream-dep",
                severity=Severity.ERROR,
                path=violation.launch or "<schedule>",
                message=violation.message,
                data={"invariant": violation.invariant},
            )
        )
    return findings


@lint_rule(
    "redundant-sync",
    "sync events already implied by happens-before are pure overhead",
)
def _rule_redundant_sync(ctx: LintContext) -> List[Finding]:
    schedule = ctx.stream_schedule()
    if schedule is None:
        return []
    from repro.analyze.hb import find_redundant_events

    findings: List[Finding] = []
    for event in find_redundant_events(schedule):
        findings.append(
            Finding(
                rule="redundant-sync",
                severity=Severity.INFO,
                path=schedule.assignments[event.wait_index].name,
                message=(
                    f"sync event {event.event_id} (launch "
                    f"{event.record_index} -> {event.wait_index}) is "
                    f"redundant: the ordering is already implied by stream "
                    f"program order and the remaining events — "
                    f"{ctx.device.sync_event_us:g} us of pure overhead"
                ),
                data={
                    "event": event.event_id,
                    "record": event.record_index,
                    "wait": event.wait_index,
                },
            )
        )
    removed = schedule.redundant_events_removed
    if removed > 0:
        saved_us = removed * ctx.device.sync_event_us
        findings.append(
            Finding(
                rule="redundant-sync",
                severity=Severity.INFO,
                path="<schedule>",
                message=(
                    f"sync-point inference kept {len(schedule.events)} of "
                    f"{len(schedule.events) + removed} candidate events: "
                    f"transitive reduction removed {removed} already "
                    f"implied by happens-before, saving {saved_us:.1f} us "
                    f"of sync overhead"
                ),
                data={
                    "kept": len(schedule.events),
                    "removed": schedule.redundant_events_removed,
                },
            )
        )
    return findings


@lint_rule(
    "sync-overhead-dominates",
    "multi-stream overlap must pay for its synchronization",
)
def _rule_sync_overhead_dominates(ctx: LintContext) -> List[Finding]:
    schedule = ctx.stream_schedule()
    if schedule is None:
        return []
    from repro.opt.schedule import best_schedule

    assert ctx.trace is not None
    free_device = dataclasses.replace(ctx.device, sync_event_us=0.0)
    ideal = best_schedule(
        ctx.trace, free_device, ctx.precision, LINT_SCHEDULE_STREAMS
    )
    win = ideal.serialized_us - ideal.makespan_us
    if win <= 0.0:
        return []  # no claimable overlap to begin with
    lost = schedule.makespan_us - ideal.makespan_us
    if lost < SYNC_OVERHEAD_WARNING_FRACTION * win:
        return []
    return [
        Finding(
            rule="sync-overhead-dominates",
            severity=Severity.WARNING,
            path="<trace>",
            message=(
                f"synchronization overhead ({ctx.device.sync_event_us:g} us "
                f"per event) eats {100 * lost / win:.0f}% of the "
                f"{win:.0f} us overlap win a sync-free schedule would claim "
                f"on {LINT_SCHEDULE_STREAMS} streams"
                + (
                    f"; the sync-aware scheduler falls back to "
                    f"{schedule.streams} stream(s)"
                    if schedule.streams < ideal.streams
                    else ""
                )
                + " — fuse launches or reduce cross-stream traffic"
            ),
            data={
                "overlap_win_us": round(win, 3),
                "sync_lost_us": round(lost, 3),
                "fraction": round(lost / win, 4),
                "sync_events": len(schedule.events),
            },
        )
    ]


# ---------------------------------------------------------------------- #
# Value-range rules (static, no trace needed)
# ---------------------------------------------------------------------- #
@lint_rule(
    "fp16-overflow",
    "propagated value ranges must fit fp16 at every layer boundary",
)
def _rule_fp16_overflow(ctx: LintContext) -> List[Finding]:
    from repro.analyze.ranges import FP16_MAX, propagate_ranges

    report = propagate_ranges(ctx.ir)
    fp16 = ctx.precision is Precision.FP16
    findings: List[Finding] = []
    for layer in report.overflowing():
        findings.append(
            Finding(
                rule="fp16-overflow",
                severity=Severity.ERROR if fp16 else Severity.WARNING,
                path=layer.path,
                message=(
                    f"expected output magnitude ~{layer.out_range.magnitude:.3g} "
                    f"exceeds fp16 max {FP16_MAX:.0f}: features "
                    + (
                        "overflow to inf at this precision"
                        if fp16
                        else "would overflow if storage precision drops to fp16"
                    )
                ),
                data={
                    "magnitude": layer.out_range.magnitude,
                    "abs_max": layer.out_range.abs_max,
                    "rms": layer.out_range.rms,
                },
            )
        )
    for layer in report.underflowing():
        findings.append(
            Finding(
                rule="fp16-overflow",
                severity=Severity.WARNING if fp16 else Severity.INFO,
                path=layer.path,
                message=(
                    f"expected output RMS {layer.out_range.rms:.3g} is below "
                    f"the fp16 normal range: features flush toward zero"
                ),
                data={"rms": layer.out_range.rms},
            )
        )
    return findings


#: Atomic accumulation over at least this many kernel offsets at fp16 is a
#: warning (the nondeterministic summation order compounds rounding error).
ACCUM_CHAIN_WARNING_VOLUME = 27


@lint_rule(
    "accum-order-nondeterminism",
    "atomic-accumulation dataflows sum in hardware-scheduled order",
)
def _rule_accum_order(ctx: LintContext) -> List[Finding]:
    from repro.kernels.registry import Dataflow

    atomic_dataflows = (
        Dataflow.FETCH_ON_DEMAND,
        Dataflow.FETCH_ON_DEMAND_UNFUSED,
        Dataflow.GATHER_SCATTER_FUSED,
    )
    findings: List[Finding] = []
    for signature, group in sorted(
        ctx.ir.signature_groups().items(), key=lambda kv: kv[1][0].path
    ):
        config = ctx.layer_config(signature)
        if config.dataflow not in atomic_dataflows:
            continue
        volume = 1
        for k in group[0].kernel_size or (1,):
            volume *= int(k)
        if volume <= 1:
            continue  # single offset: nothing to reorder
        long_chain = (
            ctx.precision is Precision.FP16
            and volume >= ACCUM_CHAIN_WARNING_VOLUME
        )
        findings.append(
            Finding(
                rule="accum-order-nondeterminism",
                severity=Severity.WARNING if long_chain else Severity.INFO,
                path=group[0].path,
                message=(
                    f"dataflow {config.dataflow.value} accumulates "
                    f"{volume} kernel offsets through hardware atomics in "
                    f"unsorted order: results are not bitwise reproducible "
                    f"run-to-run"
                    + (
                        f"; at fp16 the {volume}-term chain also compounds "
                        f"rounding error — prefer implicit_gemm or a sorted "
                        f"reduction"
                        if long_chain
                        else ""
                    )
                    + f" ({len(group)} layer(s) in group)"
                ),
                data={
                    "dataflow": config.dataflow.value,
                    "volume": volume,
                    "group": len(group),
                },
            )
        )
    return findings
