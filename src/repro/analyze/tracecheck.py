"""Trace sanitizer: conservation invariants over :class:`KernelTrace`
streams, plus a scatter write-race detector.

The performance model is only as honest as its traces.  Every dataflow
emits launches whose resource counts must respect physics:

* structural sanity — finite, non-negative fields, ``ctas >= 1``,
  ``compute_efficiency`` in ``(0, 1]``, non-empty names;
* flop conservation — a convolution's GEMM-kind launches must issue at
  least ``2 x MACs = 2 x total_pairs x C_in x C_out`` flops (warp
  lockstep and tile padding only ever *add* issued work);
* byte accounting — gathers must read at least one copy of every
  gathered input row; the output (plain + atomic writes) must
  materialise at least one copy of every output row; the total atomic
  traffic can never exceed the scatter-everything upper bound of
  ``4 bytes x total_pairs x C_out`` (FP32 accumulation of every pair);
* **write-race detection** — for every scatter-class launch the checker
  recomputes the output-index conflict set from the kernel map: a launch
  covering offsets whose pairs target the same output row more than once
  is racing unless it carries at least ``4 x conflicts x C_out`` atomic
  bytes.  Output-stationary dataflows (implicit GEMM) are conflict-free
  by construction; fetch-on-demand makes every write atomic; the fused
  gather-scatter splits first-touch stores from atomic accumulations.

Checkers *report* :class:`TraceViolation`s rather than raising, so the
test-suite fixture and the CLI can decide severity.
"""

from __future__ import annotations

import dataclasses
import math
import re
from typing import List, Optional

import numpy as np

from repro.gpusim.trace import KernelLaunch, KernelTrace, LaunchKind
from repro.sparse.kmap import KernelMap

#: Bytes per FP32 partial sum (all dataflows accumulate in FP32).
ACCUM_BYTES = 4.0

#: Absolute slack for float byte comparisons.
_EPS = 0.5

_OFFSET_RE = re.compile(r"offset(\d+)")


@dataclasses.dataclass(frozen=True)
class TraceViolation:
    """One broken invariant, attributed to a launch when possible."""

    invariant: str
    message: str
    launch: Optional[str] = None

    def __str__(self) -> str:
        where = f" [{self.launch}]" if self.launch else ""
        return f"{self.invariant}{where}: {self.message}"


def _numeric_fields(launch: KernelLaunch) -> List[str]:
    return [
        "flops",
        "dram_read_bytes",
        "dram_write_bytes",
        "atomic_write_bytes",
        "scalar_ops",
        "workspace_bytes",
    ]


def check_trace(trace: KernelTrace) -> List[TraceViolation]:
    """Structural invariants every launch must satisfy, regardless of what
    produced the trace."""
    violations: List[TraceViolation] = []
    for launch in trace:
        if not launch.name:
            violations.append(
                TraceViolation(
                    invariant="launch-name",
                    message="launch has an empty name",
                )
            )
        for field in _numeric_fields(launch):
            value = float(getattr(launch, field))
            if not math.isfinite(value):
                violations.append(
                    TraceViolation(
                        invariant="finite-fields",
                        launch=launch.name,
                        message=f"{field} is not finite ({value})",
                    )
                )
            elif value < 0:
                violations.append(
                    TraceViolation(
                        invariant="non-negative",
                        launch=launch.name,
                        message=f"{field} is negative ({value})",
                    )
                )
        if launch.ctas < 1:
            violations.append(
                TraceViolation(
                    invariant="cta-count",
                    launch=launch.name,
                    message=f"ctas must be >= 1, got {launch.ctas}",
                )
            )
        if not 0.0 < launch.compute_efficiency <= 1.0:
            violations.append(
                TraceViolation(
                    invariant="compute-efficiency",
                    launch=launch.name,
                    message=(
                        f"compute_efficiency must be in (0, 1], got "
                        f"{launch.compute_efficiency}"
                    ),
                )
            )
    # Peak workspace is a max over serialized launches: the summary can
    # never report less than the largest single launch's workspace.
    largest_ws = max((float(l.workspace_bytes) for l in trace), default=0.0)
    peak_ws = float(trace.summary().peak_workspace_bytes)
    if peak_ws + _EPS < largest_ws:
        violations.append(
            TraceViolation(
                invariant="peak-workspace",
                message=(
                    f"summary peak_workspace_bytes {peak_ws:.0f} is below "
                    f"the largest single launch workspace {largest_ws:.0f}"
                ),
            )
        )
    return violations


# ---------------------------------------------------------------------- #
# Scatter write-race detection
# ---------------------------------------------------------------------- #
def _is_scatter_class(launch: KernelLaunch) -> bool:
    """Launches that scatter per-pair partial sums into the output buffer."""
    name = launch.name
    if "writeback" in name:
        return False  # dense accumulator -> storage copy: one row each
    return "scatter/" in name or "fetch_on_demand/" in name


def _covered_offsets(launch: KernelLaunch, volume: int) -> Optional[List[int]]:
    """Which kernel offsets a scatter-class launch writes for.

    ``offset<k>`` names cover one offset; fused launches cover all of
    them.  Returns ``None`` when the name encodes neither.
    """
    match = _OFFSET_RE.search(launch.name)
    if match:
        k = int(match.group(1))
        return [k] if k < volume else None
    if "fused" in launch.name:
        return list(range(volume))
    return None


def scatter_conflicts(kmap: KernelMap, offsets: List[int]) -> int:
    """Size of the output-index conflict set over the covered offsets:
    scattered writes minus distinct output rows touched."""
    columns = kmap.nbmap[:, offsets] >= 0
    writes = int(np.count_nonzero(columns))
    distinct = int(np.count_nonzero(columns.any(axis=1)))
    return writes - distinct


def check_scatter_races(
    trace: KernelTrace, kmap: KernelMap, c_out: int
) -> List[TraceViolation]:
    """Error on any launch writing overlapping output rows without enough
    atomic traffic to cover its conflict set."""
    violations: List[TraceViolation] = []
    for launch in trace:
        if not _is_scatter_class(launch):
            continue
        offsets = _covered_offsets(launch, kmap.volume)
        if offsets is None:
            continue
        conflicts = scatter_conflicts(kmap, offsets)
        if conflicts == 0:
            continue
        required = ACCUM_BYTES * conflicts * c_out
        if launch.atomic_write_bytes + _EPS < required:
            violations.append(
                TraceViolation(
                    invariant="scatter-write-race",
                    launch=launch.name,
                    message=(
                        f"launch covers {len(offsets)} offset(s) with "
                        f"{conflicts} conflicting writes to shared output "
                        f"rows but carries only "
                        f"{launch.atomic_write_bytes:.0f} atomic bytes "
                        f"(needs >= {required:.0f}); non-atomic overlapping "
                        f"scatter is a data race"
                    ),
                )
            )
    return violations


# ---------------------------------------------------------------------- #
# Convolution conservation invariants
# ---------------------------------------------------------------------- #
def check_conv_trace(
    trace: KernelTrace,
    kmap: KernelMap,
    c_in: int,
    c_out: int,
    itemsize: float = 4.0,
) -> List[TraceViolation]:
    """Conservation invariants for one forward-convolution trace.

    ``itemsize`` is the storage precision's bytes per element (e.g.
    ``Precision.FP16.itemsize``).
    """
    violations = check_trace(trace)
    violations.extend(check_scatter_races(trace, kmap, c_out))
    total_pairs = int(kmap.total_pairs)
    macs = float(total_pairs) * c_in * c_out

    gemm_flops = trace.filter(LaunchKind.GEMM).summary().flops
    if gemm_flops + _EPS < 2.0 * macs:
        violations.append(
            TraceViolation(
                invariant="flop-conservation",
                message=(
                    f"GEMM launches issue {gemm_flops:.0f} flops but the "
                    f"map demands 2 x MACs = {2.0 * macs:.0f}"
                ),
            )
        )

    summary = trace.summary()
    min_reads = itemsize * total_pairs * c_in
    if summary.dram_read_bytes + _EPS < min_reads:
        violations.append(
            TraceViolation(
                invariant="gather-read-accounting",
                message=(
                    f"trace reads {summary.dram_read_bytes:.0f} bytes but "
                    f"gathering every input pair needs >= {min_reads:.0f}"
                ),
            )
        )

    min_writes = itemsize * kmap.num_outputs * c_out
    total_writes = summary.dram_write_bytes + summary.atomic_write_bytes
    if total_writes + _EPS < min_writes:
        violations.append(
            TraceViolation(
                invariant="scatter-write-accounting",
                message=(
                    f"trace writes {total_writes:.0f} bytes but "
                    f"materialising every output row needs >= "
                    f"{min_writes:.0f}"
                ),
            )
        )

    max_atomic = ACCUM_BYTES * total_pairs * c_out
    if summary.atomic_write_bytes > max_atomic + _EPS:
        violations.append(
            TraceViolation(
                invariant="atomic-write-bound",
                message=(
                    f"trace charges {summary.atomic_write_bytes:.0f} atomic "
                    f"bytes, above the scatter-everything bound "
                    f"{max_atomic:.0f} (= 4 x pairs x C_out)"
                ),
            )
        )
    return violations


def assert_trace_ok(trace: KernelTrace) -> None:
    """Raise ``AssertionError`` listing every structural violation."""
    violations = check_trace(trace)
    if violations:
        details = "\n".join(f"  - {v}" for v in violations)
        raise AssertionError(
            f"trace sanitizer found {len(violations)} violation(s):\n{details}"
        )


__all__ = [
    "TraceViolation",
    "check_trace",
    "check_conv_trace",
    "check_scatter_races",
    "scatter_conflicts",
    "assert_trace_ok",
]
