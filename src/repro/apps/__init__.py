"""Future applications (Section 6.3 of the paper).

The paper closes by arguing TorchSparse++ extends beyond point clouds and
graphs — to selective computation on images and to masked autoencoder
(MAE) pre-training, whose masked inputs are inherently sparse.  This
package implements that extension: 2-D sparse convolution workloads built
on the identical substrate (coordinates, kernel maps, dataflows, tuner).
"""

from repro.apps.mae import (
    MaskedImageEncoder,
    masked_image_tensor,
    mae_speedup_vs_dense,
)

__all__ = [
    "MaskedImageEncoder",
    "masked_image_tensor",
    "mae_speedup_vs_dense",
]
