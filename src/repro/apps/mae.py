"""Masked-autoencoder pre-training on sparse 2-D convolutions.

MAE masks 60-90% of image patches during pre-training; running the encoder
densely wastes compute on masked positions.  Treating the visible patches
as a 2-D sparse tensor (exactly the SparK / hierarchical-MAE idea cited in
Section 6.3) lets the whole TorchSparse++ stack — kernel maps, dataflows,
the autotuner — accelerate it with no new kernel code: every component in
this module is the point-cloud substrate with ``ndim=2``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigError
from repro.gpusim.engine import estimate_trace_us
from repro.hw.specs import DeviceSpec, get_device
from repro.kernels.base import dense_gemm_trace
from repro.nn.activation import ReLU
from repro.nn.context import ExecutionContext
from repro.nn.conv import SparseConv3d
from repro.nn.module import Module
from repro.nn.norm import BatchNorm
from repro.nn.sequential import Sequential
from repro.precision import Precision
from repro.sparse.tensor import SparseTensor
from repro.utils.rng import SeedLike, as_rng


def masked_image_tensor(
    image_size: int = 224,
    patch_size: int = 4,
    mask_ratio: float = 0.75,
    channels: int = 16,
    batch_size: int = 1,
    seed: SeedLike = 0,
) -> SparseTensor:
    """Build the sparse tensor of *visible* patches of masked images.

    Coordinates live on the ``image_size / patch_size`` grid; per image, a
    uniformly random subset of ``1 - mask_ratio`` patches survives,
    matching MAE's random masking.  MAE pre-training uses large batches,
    so ``batch_size`` images share one sparse tensor.
    """
    if not 0.0 <= mask_ratio < 1.0:
        raise ConfigError(f"mask_ratio must be in [0, 1), got {mask_ratio}")
    if image_size % patch_size:
        raise ConfigError("image_size must be divisible by patch_size")
    if batch_size < 1:
        raise ConfigError(f"batch_size must be >= 1, got {batch_size}")
    grid = image_size // patch_size
    rng = as_rng(seed)
    total = grid * grid
    keep = max(1, int(round(total * (1.0 - mask_ratio))))
    all_coords = []
    for b in range(batch_size):
        chosen = rng.choice(total, size=keep, replace=False)
        ys, xs = np.divmod(chosen, grid)
        all_coords.append(
            np.stack([np.full_like(ys, b), ys, xs], axis=1)
        )
    coords = np.concatenate(all_coords, axis=0).astype(np.int32)
    feats = rng.standard_normal((len(coords), channels)).astype(np.float32)
    return SparseTensor(coords, feats)


class MaskedImageEncoder(Module):
    """A small hierarchical conv encoder over visible patches.

    Three stages of 3x3 *submanifold* 2-D convolutions with 2x2 stride-2
    downsampling between them — the sparse counterpart of a conv-stem MAE
    encoder.  Built entirely from :class:`SparseConv3d` with ``ndim=2``.
    """

    def __init__(
        self,
        in_channels: int = 16,
        width: int = 64,
        depth: int = 3,
        seed: int = 0,
    ):
        super().__init__()
        chs = (width, width * 2, width * 4)
        stages = []
        prev = in_channels
        for i, ch in enumerate(chs):
            # `depth` submanifold convolutions share one kernel map per
            # stage (the amortisation that makes sparse MAE encoders pay).
            for j in range(depth):
                stages.append(
                    SparseConv3d(prev, ch, 3, ndim=2,
                                 label=f"mae.s{i}.conv{j}",
                                 seed=seed + 10 * i + j)
                )
                stages.append(BatchNorm(ch, label=f"mae.s{i}.bn{j}"))
                stages.append(ReLU(label=f"mae.s{i}.relu{j}"))
                prev = ch
            if i < len(chs) - 1:
                stages.append(
                    SparseConv3d(ch, ch, 2, stride=2, ndim=2,
                                 label=f"mae.s{i}.down", seed=seed + 100 + i)
                )
        self.body = Sequential(*stages)
        self.out_channels = prev

    def forward(self, x: SparseTensor, ctx: ExecutionContext) -> SparseTensor:
        return self.body(x, ctx)

    def backward(self, grad, ctx: ExecutionContext):
        return self.body.backward(grad, ctx)


def _dense_encoder_trace_us(
    encoder: MaskedImageEncoder,
    grid: int,
    batch_size: int,
    device: DeviceSpec,
    precision: Precision,
) -> float:
    """Cost of running the same encoder densely on the full patch grid.

    Each convolution becomes a dense implicit GEMM over every grid
    position of every image (the baseline MAE encoders run on unmasked
    token grids).
    """
    from repro.kernels.base import DEFAULT_SCHEDULE
    from repro.nn.conv import SparseConv3d as Conv

    total = 0.0
    extent = grid
    for _, module in encoder.named_modules():
        if not isinstance(module, Conv):
            continue
        m = batch_size * extent * extent
        trace = dense_gemm_trace(
            m, module.volume * module.in_channels, module.out_channels,
            DEFAULT_SCHEDULE, precision,
            name=f"dense/{module.label}",
        )
        total += estimate_trace_us(trace, device, precision)
        if module.stride[0] > 1:
            extent = max(1, extent // module.stride[0])
    return total


def mae_speedup_vs_dense(
    mask_ratio: float,
    image_size: int = 224,
    patch_size: int = 4,
    batch_size: int = 64,
    device: "DeviceSpec | str" = "a100",
    precision: "Precision | str" = Precision.FP16,
    seed: SeedLike = 0,
) -> Tuple[float, float, float]:
    """Sparse-vs-dense encoder cost at one mask ratio.

    Returns ``(sparse_ms, dense_ms, speedup)``.  As the paper's Section 6.3
    predicts, speedup grows with the mask ratio since the sparse encoder
    touches only visible patches.
    """
    device = get_device(device)
    precision = Precision.parse(precision)
    x = masked_image_tensor(
        image_size, patch_size, mask_ratio, batch_size=batch_size, seed=seed
    )
    encoder = MaskedImageEncoder(in_channels=x.num_channels)
    ctx = ExecutionContext(
        device=device, precision=precision, simulate_only=True,
        adaptive_tiling=True,
    )
    encoder.eval()
    encoder(x, ctx)
    sparse_us = ctx.latency_us()
    dense_us = _dense_encoder_trace_us(
        encoder, image_size // patch_size, batch_size, device, precision
    )
    return sparse_us / 1e3, dense_us / 1e3, dense_us / max(sparse_us, 1e-9)
