"""Autotuning as a service: tuning database, surrogate model, online tuner.

The offline tuner (:mod:`repro.tune`) answers "what is the best config for
this workload" by tracing everything; this package answers it *cheaply and
durably*: a persistent fleet-shared database of winners (:mod:`.db`), a
fitted analytic surrogate that ranks candidates without building traces
(:mod:`.surrogate`), and a Minuet-style online searcher that verifies only
the surrogate's top-k and banks the result (:mod:`.online`).
"""

from repro.autotune.db import (
    TuningDatabase,
    TuningEntry,
    TuningKey,
    layer_key,
    sparsity_bucket,
)
from repro.autotune.online import (
    LayerDecision,
    OnlineReport,
    OnlineTuner,
    candidate_configs,
    measure_config,
)
from repro.autotune.surrogate import (
    FEATURE_NAMES,
    FitReport,
    LayerShape,
    SurrogateModel,
    TrainingSample,
    fit_surrogate,
    layer_features,
    measure_sample,
    training_grid,
)

__all__ = [
    "FEATURE_NAMES",
    "FitReport",
    "LayerDecision",
    "LayerShape",
    "OnlineReport",
    "OnlineTuner",
    "SurrogateModel",
    "TrainingSample",
    "TuningDatabase",
    "TuningEntry",
    "TuningKey",
    "candidate_configs",
    "fit_surrogate",
    "layer_features",
    "layer_key",
    "measure_config",
    "measure_sample",
    "sparsity_bucket",
    "training_grid",
]
