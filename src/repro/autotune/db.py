"""Persistent, fleet-shared tuning database.

A tuned schedule "could be reused for millions of scenes" (Section 4.2) —
so tuning results must outlive the process *and* the machine.  This module
stores one :class:`TuningEntry` per :class:`TuningKey`, where a key
normalizes everything a winning configuration actually depends on:

* the **device** (tensor-core ratio and machine balance decide dataflow
  winners — Figure 18);
* the **layer signature** — the group identity of Section 4.2
  (``(tensor_stride, kernel_size, stride, transposed)``) extended with the
  channel pair and precision, because tile choice and tensor-core
  eligibility hang off those;
* a **sparsity-statistics bucket** — point counts and neighbour density
  quantized to powers of two, so scenes of similar scale share entries
  without the database growing one row per scene.

The store is a single JSON document with a schema version, written
atomically (temp file + ``os.replace``) so a reader never observes a torn
database, and mergeable so multiple serving replicas can tune
independently and pool their winners (:meth:`TuningDatabase.merge`).
Nothing in an entry or the serialization depends on wall-clock time or
iteration order: two seeded runs produce byte-identical database files.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.errors import ConfigError
from repro.hw.specs import DeviceSpec, get_device
from repro.nn.context import LayerConfig, Signature
from repro.precision import Precision
from repro.tune.cache import config_from_dict, config_to_dict

#: Database layout version; bump on any incompatible key/entry change.
SCHEMA_VERSION = 1


def _log2_bucket(value: float) -> int:
    """Floor-of-log2 bucket index.

    ``value <= 0`` — a zero-point scene, or the zero neighbour density it
    implies — gets its own explicit bucket ``-1``, so degenerate scenes
    can never share a tuning entry with small-but-real ones.  Values in
    ``(0, 2)`` share bucket 0.
    """
    if value <= 0.0:
        return -1
    if value < 1.0:
        return 0
    return int(math.floor(math.log2(value)))


def _checked_stat(name: str, value: "int | float") -> float:
    """Validate one sparsity statistic; ConfigError names the bad field."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError(
            f"sparsity statistic {name!r} must be a number, got {value!r}"
        )
    out = float(value)
    if math.isnan(out) or math.isinf(out):
        raise ConfigError(
            f"sparsity statistic {name!r} must be finite, got {out!r}"
        )
    if out < 0.0:
        raise ConfigError(
            f"sparsity statistic {name!r} must be >= 0, got {out!r}"
        )
    return out


def sparsity_bucket(
    num_inputs: int, num_outputs: int, mean_neighbors: float
) -> str:
    """Quantize a layer workload's sparsity statistics to a bucket label.

    Points are bucketed by floor-log2 (a 100k-voxel scene and a 130k-voxel
    scene share configs; a 10k one does not) and neighbour density — the
    quantity that separates dense indoor from sparse outdoor LiDAR — by
    floor-log2 as well.  Zero-point scenes land in the explicit ``-1``
    bucket (:func:`_log2_bucket`); NaN, infinite or negative statistics
    are configuration errors naming the offending field.
    """
    return (
        f"n{_log2_bucket(_checked_stat('num_inputs', num_inputs))}"
        f":m{_log2_bucket(_checked_stat('num_outputs', num_outputs))}"
        f":d{_log2_bucket(_checked_stat('mean_neighbors', mean_neighbors))}"
    )


def layer_key(
    signature: Signature,
    c_in: int,
    c_out: int,
    precision: Union[Precision, str],
) -> str:
    """Canonical string for a layer signature + channels + precision."""
    precision = Precision.parse(precision)
    return repr((tuple(signature), int(c_in), int(c_out), precision.value))


@dataclasses.dataclass(frozen=True)
class TuningKey:
    """Normalized identity of one tuning-database row."""

    device: str
    layer: str
    bucket: str

    #: Separator between the three key components in the flat on-disk form.
    SEP = "||"

    @classmethod
    def make(
        cls,
        device: Union[DeviceSpec, str],
        signature: Signature,
        c_in: int,
        c_out: int,
        precision: Union[Precision, str],
        num_inputs: int,
        num_outputs: int,
        mean_neighbors: float,
    ) -> "TuningKey":
        """Build a key, normalizing the device name via the registry."""
        spec = get_device(device)
        return cls(
            device=spec.name,
            layer=layer_key(signature, c_in, c_out, precision),
            bucket=sparsity_bucket(num_inputs, num_outputs, mean_neighbors),
        )

    def flat(self) -> str:
        """Flat string form used as the JSON object key."""
        for part in (self.device, self.layer, self.bucket):
            if self.SEP in part:
                raise ConfigError(
                    f"tuning key component {part!r} contains the "
                    f"separator {self.SEP!r}"
                )
        return self.SEP.join((self.device, self.layer, self.bucket))

    @classmethod
    def parse(cls, flat: str) -> "TuningKey":
        parts = flat.split(cls.SEP)
        if len(parts) != 3:
            raise ConfigError(f"malformed tuning key {flat!r}")
        return cls(device=parts[0], layer=parts[1], bucket=parts[2])


@dataclasses.dataclass(frozen=True)
class TuningEntry:
    """One tuned configuration with its evidence.

    ``measured_us`` is the verified simulated latency (the end-to-end
    objective); ``predicted_us`` is what the surrogate claimed before
    verification — keeping both makes surrogate drift observable in a
    deployed database.  ``trials`` counts real measurements contributing
    to the entry across merges.
    """

    config: LayerConfig
    measured_us: float
    predicted_us: float
    trials: int = 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "config": config_to_dict(self.config),
            "measured_us": round(float(self.measured_us), 6),
            "predicted_us": round(float(self.predicted_us), 6),
            "trials": int(self.trials),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TuningEntry":
        try:
            config = config_from_dict(data["config"])  # type: ignore[arg-type]
            return cls(
                config=config,
                measured_us=float(data["measured_us"]),  # type: ignore[arg-type]
                predicted_us=float(data["predicted_us"]),  # type: ignore[arg-type]
                trials=int(data["trials"]),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"malformed tuning entry: {exc}") from None

    def beats(self, other: "TuningEntry") -> bool:
        """Deterministic total order for merges: lower measured latency
        wins; ties break on the serialized config (stable across runs)."""
        if self.measured_us != other.measured_us:
            return self.measured_us < other.measured_us
        return json.dumps(self.to_dict(), sort_keys=True) < json.dumps(
            other.to_dict(), sort_keys=True
        )


class TuningDatabase:
    """In-memory view of the persistent tuning store."""

    def __init__(
        self, entries: Optional[Dict[TuningKey, TuningEntry]] = None
    ) -> None:
        self._entries: Dict[TuningKey, TuningEntry] = dict(entries or {})
        self.hits = 0
        self.misses = 0

    # -- lookups ------------------------------------------------------- #
    def get(self, key: TuningKey) -> Optional[TuningEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def peek(self, key: TuningKey) -> Optional[TuningEntry]:
        """Lookup without touching the hit/miss accounting."""
        return self._entries.get(key)

    def put(self, key: TuningKey, entry: TuningEntry) -> TuningEntry:
        """Install ``entry`` unless an existing entry beats it."""
        current = self._entries.get(key)
        if current is not None and current.beats(entry):
            return current
        self._entries[key] = entry
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: TuningKey) -> bool:
        return key in self._entries

    def items(self) -> Iterator[Tuple[TuningKey, TuningEntry]]:
        """Entries in deterministic (flat-key-sorted) order."""
        for key in sorted(self._entries, key=TuningKey.flat):
            yield key, self._entries[key]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- persistence --------------------------------------------------- #
    def to_json(self) -> str:
        payload: Dict[str, object] = {
            "schema": SCHEMA_VERSION,
            "entries": {
                key.flat(): entry.to_dict() for key, entry in self.items()
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def save(self, path: Union[str, Path]) -> None:
        """Atomically write the database (temp file + rename)."""
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(self.to_json() + "\n")
        os.replace(tmp, path)

    @classmethod
    def from_json(cls, text: str) -> "TuningDatabase":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"corrupt tuning database: {exc}") from None
        if not isinstance(payload, dict) or "schema" not in payload:
            raise ConfigError(
                "corrupt tuning database: missing schema version"
            )
        if payload["schema"] != SCHEMA_VERSION:
            raise ConfigError(
                f"tuning database schema {payload['schema']!r} is not the "
                f"supported version {SCHEMA_VERSION}"
            )
        raw = payload.get("entries", {})
        if not isinstance(raw, dict):
            raise ConfigError("corrupt tuning database: entries not a map")
        entries = {
            TuningKey.parse(flat): TuningEntry.from_dict(data)
            for flat, data in raw.items()
        }
        return cls(entries)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TuningDatabase":
        path = Path(path)
        if not path.exists():
            raise ConfigError(f"tuning database {path} does not exist")
        return cls.from_json(path.read_text())

    @classmethod
    def load_or_create(cls, path: Union[str, Path]) -> "TuningDatabase":
        """Load ``path`` if present, else start empty (cold replica)."""
        path = Path(path)
        if path.exists():
            return cls.from_json(path.read_text())
        return cls()

    # -- fleet merge --------------------------------------------------- #
    def merge(self, other: "TuningDatabase") -> int:
        """Adopt ``other``'s entries; best measured latency wins per key.

        Returns the number of entries adopted (new keys plus overwrites).
        Merging is commutative and associative up to the deterministic
        :meth:`TuningEntry.beats` order, so replicas can exchange
        databases in any order and converge on the same content.
        """
        adopted = 0
        for key, entry in other.items():
            current = self._entries.get(key)
            if current is None:
                self._entries[key] = entry
                adopted += 1
            elif entry.beats(current):
                # Pool the evidence: the winning config keeps the combined
                # trial count so fleet-wide confidence is visible.
                self._entries[key] = dataclasses.replace(
                    entry, trials=entry.trials + current.trials
                )
                adopted += 1
            elif current.beats(entry):
                self._entries[key] = dataclasses.replace(
                    current, trials=current.trials + entry.trials
                )
        return adopted
