"""Minuet-style online tuner: surrogate-pruned search with top-k verification.

The offline group tuner (:class:`repro.tune.SparseAutotuner`) traces every
candidate of every group — thorough, but far too slow for admission-time
decisions.  This tuner follows Minuet's shape instead: rank the whole
candidate space with the cheap surrogate, spend real measurements
(``estimate_trace_us`` over a full trace) only on the top-k survivors, and
bank the winner in the persistent :class:`~repro.autotune.db.TuningDatabase`
so no replica ever pays for the same layer twice.

Everything is deterministic: the candidate list has a fixed order, surrogate
ties break on the config's serialized form, and nothing reads the wall
clock — two seeded runs write byte-identical databases.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.autotune.db import TuningDatabase, TuningEntry, TuningKey
from repro.autotune.surrogate import LayerShape, SurrogateModel, family_of
from repro.gpusim.engine import estimate_trace_us
from repro.hw.specs import DeviceSpec, get_device
from repro.kernels.base import DEFAULT_SCHEDULE, LARGE_TILE, SMALL_TILE
from repro.kernels.registry import Dataflow, trace_dataflow
from repro.nn.context import (
    ExecutionContext,
    GroupPolicy,
    LayerConfig,
    Role,
    Signature,
)
from repro.nn.module import Module
from repro.precision import Precision
from repro.sparse.tensor import SparseTensor
from repro.tune.cache import config_to_dict
from repro.tune.groups import LayerRecord, discover_groups
from repro.tune.space import implicit_gemm_candidates

_TILES = (LARGE_TILE, DEFAULT_SCHEDULE, SMALL_TILE)


def candidate_configs() -> Tuple[LayerConfig, ...]:
    """The online search space over ``(dataflow, tile, num_splits, gs_chunks)``.

    Implicit GEMM covers splits {0 (unsorted), 1, 2, 4} x three tiles;
    fetch-on-demand and gather-scatter cover the weight-stationary side,
    the latter with staged (chunked) variants.  Order is fixed — it is part
    of the determinism contract.
    """
    candidates: List[LayerConfig] = list(
        implicit_gemm_candidates(splits=(0, 1, 2, 4))
    )
    for sched in _TILES:
        candidates.append(
            LayerConfig(dataflow=Dataflow.FETCH_ON_DEMAND, schedule=sched)
        )
    for chunks in (1, 2):
        for sched in _TILES:
            candidates.append(
                LayerConfig(
                    dataflow=Dataflow.GATHER_SCATTER,
                    schedule=sched,
                    gs_chunks=chunks,
                )
            )
    return tuple(candidates)


def measure_config(
    record: LayerRecord,
    config: LayerConfig,
    device: Union[DeviceSpec, str],
    precision: Union[Precision, str],
) -> float:
    """Ground-truth simulated latency of one candidate (full trace)."""
    spec = get_device(device)
    precision = Precision.parse(precision)
    trace = trace_dataflow(
        config.dataflow,
        record.kmap,
        record.c_in,
        record.c_out,
        schedule=config.schedule,
        precision=precision,
        ig_config=config.ig_config,
        tensor_cores=config.tensor_cores,
        charge_mapping=True,
        gs_chunks=config.gs_chunks,
    )
    return estimate_trace_us(trace, spec, precision)


@dataclasses.dataclass
class LayerDecision:
    """Outcome of tuning one layer group."""

    key: TuningKey
    config: LayerConfig
    predicted_us: float
    measured_us: float
    source: str  # "db" | "search"
    candidates: int
    verified: int

    def describe(self) -> str:
        return (
            f"{self.key.layer} [{self.key.bucket}] -> "
            f"{self.config.describe()} ({self.measured_us:.1f} us, "
            f"{self.source}, verified {self.verified}/{self.candidates})"
        )


@dataclasses.dataclass
class OnlineReport:
    """Aggregate accounting of one :meth:`OnlineTuner.tune_model` run."""

    decisions: List[LayerDecision]
    db_hits: int
    db_misses: int
    measurements: int

    def describe(self) -> str:
        lines = [
            f"online tuning: {len(self.decisions)} groups, "
            f"{self.db_hits} db hits, {self.db_misses} misses, "
            f"{self.measurements} real measurements"
        ]
        lines.extend(f"  {d.describe()}" for d in self.decisions)
        return "\n".join(lines)


class OnlineTuner:
    """Incremental searcher backed by a surrogate and a tuning database."""

    def __init__(
        self,
        db: TuningDatabase,
        surrogate: Optional[SurrogateModel] = None,
        candidates: Optional[Sequence[LayerConfig]] = None,
        verify_top_k: int = 3,
    ) -> None:
        if verify_top_k < 1:
            raise ValueError(f"verify_top_k must be >= 1, got {verify_top_k}")
        self.db = db
        self.surrogate = surrogate or SurrogateModel.analytic()
        self.candidates = tuple(
            candidates if candidates is not None else candidate_configs()
        )
        self.verify_top_k = verify_top_k
        self.measurements = 0

    def _key(
        self,
        record: LayerRecord,
        device: Union[DeviceSpec, str],
        precision: Union[Precision, str],
    ) -> TuningKey:
        return TuningKey.make(
            device=device,
            signature=record.signature,
            c_in=record.c_in,
            c_out=record.c_out,
            precision=precision,
            num_inputs=record.kmap.num_inputs,
            num_outputs=record.kmap.num_outputs,
            mean_neighbors=record.kmap.mean_neighbors,
        )

    def tune_record(
        self,
        record: LayerRecord,
        device: Union[DeviceSpec, str],
        precision: Union[Precision, str],
    ) -> LayerDecision:
        """Tune one layer group: DB hit short-circuits the whole search."""
        spec = get_device(device)
        precision = Precision.parse(precision)
        key = self._key(record, spec, precision)
        cached = self.db.get(key)
        if cached is not None:
            return LayerDecision(
                key=key,
                config=cached.config,
                predicted_us=cached.predicted_us,
                measured_us=cached.measured_us,
                source="db",
                candidates=len(self.candidates),
                verified=0,
            )

        shape = LayerShape.from_kmap(record.kmap, record.c_in, record.c_out)
        ranked = sorted(
            (
                (
                    self.surrogate.predict(shape, config, spec, precision),
                    # Deterministic tie-break independent of list position.
                    str(sorted(config_to_dict(config).items())),
                    config,
                )
                for config in self.candidates
            ),
            key=lambda item: (item[0], item[1]),
        )
        top = ranked[: self.verify_top_k]
        best: Optional[Tuple[float, float, LayerConfig]] = None
        for predicted, _, config in top:
            measured = measure_config(record, config, spec, precision)
            self.measurements += 1
            if best is None or measured < best[0]:
                best = (measured, predicted, config)
        assert best is not None  # verify_top_k >= 1
        measured_us, predicted_us, config = best
        entry = self.db.put(
            key,
            TuningEntry(
                config=config,
                measured_us=measured_us,
                predicted_us=predicted_us,
            ),
        )
        return LayerDecision(
            key=key,
            config=entry.config,
            predicted_us=entry.predicted_us,
            measured_us=entry.measured_us,
            source="search",
            candidates=len(self.candidates),
            verified=len(top),
        )

    def tune_model(
        self,
        model: Module,
        sample: SparseTensor,
        device: Union[DeviceSpec, str],
        precision: Union[Precision, str],
    ) -> Tuple[GroupPolicy, OnlineReport]:
        """Probe ``model`` on ``sample`` and tune every discovered group.

        Per-group keys use the *first* record of the group (the probe order
        is deterministic), so repeated calls hit the same DB rows.
        """
        spec = get_device(device)
        precision = Precision.parse(precision)
        ctx = ExecutionContext(
            device=spec, precision=precision, simulate_only=True
        )
        hits_before = self.db.hits
        misses_before = self.db.misses
        measurements_before = self.measurements
        ordered, by_signature = discover_groups(model, sample, ctx)
        decisions: List[LayerDecision] = []
        assignments: Dict[Signature, Dict[Role, LayerConfig]] = {}
        for signature in ordered:
            # The group's heaviest record decides (ties: first in order) —
            # matching the offline tuner's "dominant layer" heuristic.
            records = by_signature[signature]
            record = max(records, key=lambda r: r.macs)
            decision = self.tune_record(record, spec, precision)
            decisions.append(decision)
            assignments[signature] = {Role.FORWARD: decision.config}
        report = OnlineReport(
            decisions=decisions,
            db_hits=self.db.hits - hits_before,
            db_misses=self.db.misses - misses_before,
            measurements=self.measurements - measurements_before,
        )
        return GroupPolicy(assignments), report
