"""Surrogate cost model: predict per-layer latency without building a trace.

The group tuner's objective is end-to-end simulated latency, but producing
it means constructing a full :class:`~repro.gpusim.trace.KernelTrace` —
per-offset pair lists, bitmask sorts, staging buffers — for *every*
candidate of every group.  At serving time that cost lands on the
admission path.  The surrogate replaces it with a cheap analytic feature
map plus fitted linear coefficients:

* **features** are closed-form micro-second-scale estimates computed from
  aggregate sparsity statistics only (point counts, total pairs, kernel
  volume — never per-element map data): GEMM pipe time, DRAM time, scalar
  (addressing) time, launch overhead, map-build cost, and tile-padding
  waste — the same quantities the gpusim latency model charges;
* **coefficients** are fitted per dataflow family with non-negative least
  squares against real ``estimate_trace_us`` targets on a seeded workload
  grid.  Non-negativity makes the prediction monotone in every feature —
  more flops or more bytes never predicts *faster* — which downstream
  pruning relies on.

``SurrogateModel.analytic()`` is the coefficient-free prior (all ones):
each feature already estimates microseconds, so the unfitted model is a
usable — if less calibrated — ranking function for cold starts.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigError
from repro.gpusim.engine import estimate_trace_us
from repro.hw.specs import DeviceSpec, get_device
from repro.kernels.base import gemm_efficiency
from repro.kernels.registry import Dataflow, trace_dataflow
from repro.nn.context import LayerConfig
from repro.precision import Precision
from repro.sparse.kmap import KernelMap

#: Coefficient-file layout version.
SCHEMA_VERSION = 1

#: Feature names, in vector order.
FEATURE_NAMES: Tuple[str, ...] = (
    "gemm_us",      # main-pipe matrix math
    "mem_us",       # plain + atomic DRAM traffic
    "scalar_us",    # addressing / boundary / probe integer ops
    "launch_us",    # fixed per-launch host overhead
    "map_us",       # kernel-map construction + sort/reorder
    "pad_us",       # tile-quantization padding waste
    "overlap_us",   # multi-stream overlap credit (negative; 0 at 1 stream)
)

#: Scalar ops charged per hash probe / gathered element (mirrors
#: :mod:`repro.nn.mapping_cost` constants at feature granularity).
_OPS_PER_PROBE = 24.0
_BYTES_PER_PROBE = 96.0
_GATHER_OPS_PER_ELEMENT = 4.0


@dataclasses.dataclass(frozen=True)
class LayerShape:
    """Aggregate statistics of one layer workload (device independent).

    Everything the surrogate is allowed to know about a layer: counts and
    densities, never the map contents.  ``from_kmap`` extracts them from a
    built map; serving-time callers may construct them from cached stats.
    """

    num_inputs: int
    num_outputs: int
    volume: int
    total_pairs: int
    c_in: int
    c_out: int

    @classmethod
    def from_kmap(cls, kmap: KernelMap, c_in: int, c_out: int) -> "LayerShape":
        return cls(
            num_inputs=int(kmap.num_inputs),
            num_outputs=int(kmap.num_outputs),
            volume=int(kmap.volume),
            total_pairs=int(kmap.total_pairs),
            c_in=int(c_in),
            c_out=int(c_out),
        )

    @property
    def mean_neighbors(self) -> float:
        if self.num_outputs == 0:
            return 0.0
        return self.total_pairs / self.num_outputs

    def scaled(self, factor: float) -> "LayerShape":
        """Shape with all extents scaled (monotonicity property tests)."""
        return LayerShape(
            num_inputs=max(1, int(self.num_inputs * factor)),
            num_outputs=max(1, int(self.num_outputs * factor)),
            volume=self.volume,
            total_pairs=max(1, int(self.total_pairs * factor)),
            c_in=self.c_in,
            c_out=self.c_out,
        )


def family_of(config: LayerConfig) -> str:
    """Coefficient family a config belongs to.

    One family per ``(dataflow, sorted-or-not, tile)``: those axes change
    the *shape* of the cost function (which launches exist, how padding
    scales), so each gets its own linear fit; the remaining axes (splits,
    chunks, channels, scene scale) vary smoothly within a family and are
    carried by the features.
    """
    family = str(config.dataflow.value)
    if config.dataflow is Dataflow.IMPLICIT_GEMM:
        family += ":sorted" if config.ig_config.sort else ":unsorted"
    sched = config.schedule
    return f"{family}:t{sched.tile_m}x{sched.tile_n}x{sched.tile_k}"


def layer_features(
    shape: LayerShape,
    config: LayerConfig,
    device: Union[DeviceSpec, str],
    precision: Union[Precision, str],
    charge_mapping: bool = True,
    streams: int = 1,
) -> Tuple[float, ...]:
    """Closed-form feature vector for one (layer, config, device) point.

    Every feature is an optimistic analytic time estimate in microseconds;
    the fitted coefficients absorb what the closed forms miss (wave
    quantization, bandwidth derating, atomic serialization).  Cost is a
    handful of scalar ops — no trace, no per-element work.

    ``streams > 1`` activates the ``overlap_us`` feature: a *negative*
    analytic credit for the mapping work and launch overhead a
    multi-stream schedule hides behind neighbouring compute.  The feature
    is identically 0.0 at one stream, so single-stream fits and
    predictions are unaffected; non-negative coefficients keep the
    prediction monotone (more streams never predicts slower).
    """
    spec = get_device(device)
    precision = Precision.parse(precision)
    itemsize = float(precision.itemsize)
    sched = config.schedule
    pairs = float(max(shape.total_pairs, 1))
    n_out = float(max(shape.num_outputs, 1))
    n_in = float(max(shape.num_inputs, 1))
    volume = float(max(shape.volume, 1))
    c_in = float(shape.c_in)
    c_out = float(shape.c_out)
    useful_macs = pairs * c_in * c_out

    tflops = spec.gemm_tflops(precision, config.tensor_cores)
    int_gops = spec.int_giops * 1e3  # ops/us
    bw = spec.dram_bw_gbps * 1e3     # bytes/us
    dataflow = config.dataflow

    if dataflow is Dataflow.IMPLICIT_GEMM:
        rows_padded = math.ceil(n_out / sched.tile_m) * sched.tile_m
        dense_macs = rows_padded * volume * c_in * c_out
        if config.ig_config.sort:
            # Sorting + s-way mask splits close a fraction of the gap
            # between useful and dense work (Figures 10/11).
            splits = float(config.ig_config.num_splits)
            issued = useful_macs + (dense_macs - useful_macs) / (splits + 1.0)
        else:
            issued = dense_macs
        eff = gemm_efficiency(
            int(n_out), shape.c_out, shape.volume * shape.c_in, sched
        )
        gemm_us = 2.0 * issued / (tflops * 1e6 * eff)
        a_elements = issued / max(c_out, 1.0)
        mem_bytes = itemsize * (
            a_elements + volume * c_in * c_out + n_out * c_out
        )
        scalar_us = (
            (sched.address_ops_per_element + sched.boundary_ops_per_element)
            * a_elements
            / int_gops
        )
        launches = 1.0
        if config.ig_config.sort and shape.volume > 1:
            launches += 3.0  # bitmask + sort + reorder pipeline
            if config.ig_config.num_splits > 1:
                launches += 1.0  # partial-sum reduction
        pad_macs = max(issued - useful_macs, 0.0)
        pad_us = 2.0 * pad_macs / (tflops * 1e6)
    elif dataflow in (Dataflow.GATHER_SCATTER, Dataflow.GATHER_SCATTER_FUSED):
        chunks = float(max(config.gs_chunks, 1))
        # V per-offset GEMMs of average size (P/V, C_in) x (C_in, C_out),
        # each padded to the tile grid.
        rows_per_offset = pairs / volume
        eff = gemm_efficiency(
            max(int(rows_per_offset), 1), shape.c_out, shape.c_in, sched
        )
        gemm_us = 2.0 * useful_macs / (tflops * 1e6 * eff)
        # gather read+write, GEMM read+write, scatter read+write.
        mem_bytes = itemsize * (
            3.0 * pairs * c_in
            + 2.0 * pairs * c_out
            + n_out * c_out
            + volume * c_in * c_out
        )
        scalar_us = _GATHER_OPS_PER_ELEMENT * pairs * (c_in + c_out) / int_gops
        fused = dataflow is Dataflow.GATHER_SCATTER_FUSED
        launches = (1.0 if fused else 3.0) * chunks
        pad_rows = volume * sched.tile_m / 2.0
        pad_us = 2.0 * pad_rows * c_in * c_out / (tflops * 1e6)
    elif dataflow in (Dataflow.FETCH_ON_DEMAND, Dataflow.FETCH_ON_DEMAND_UNFUSED):
        rows_per_offset = pairs / volume
        eff = gemm_efficiency(
            max(int(rows_per_offset), 1), shape.c_out, shape.c_in, sched
        )
        gemm_us = 2.0 * useful_macs / (tflops * 1e6 * eff)
        # On-demand fetches skip staging but pay atomic write-back,
        # serialized on conflicts.
        mem_bytes = itemsize * (
            pairs * c_in
            + pairs * c_out * spec.atomic_serialization
            + volume * c_in * c_out
        )
        scalar_us = 2.0 * _GATHER_OPS_PER_ELEMENT * pairs / int_gops
        fused = dataflow is Dataflow.FETCH_ON_DEMAND
        launches = 1.0 if fused else float(shape.volume)
        pad_rows = volume * sched.tile_m / 2.0
        pad_us = 2.0 * pad_rows * c_in * c_out / (tflops * 1e6)
    else:  # pragma: no cover - exhaustive over Dataflow
        raise ConfigError(f"unknown dataflow {dataflow!r}")

    mem_us = mem_bytes / bw
    launch_us = launches * spec.kernel_launch_us
    if charge_mapping:
        probes = n_in + n_out * volume
        map_us = (
            _OPS_PER_PROBE * probes / int_gops
            + _BYTES_PER_PROBE * n_out * volume / bw
        )
        if dataflow.weight_stationary or (
            dataflow is Dataflow.IMPLICIT_GEMM and config.ig_config.sort
        ):
            # Storage-order conversion / bitmask sort traffic.
            map_us += 8.0 * n_out * volume / bw
    else:
        map_us = 0.0
    overlap_us = 0.0
    if streams > 1:
        # What a K-stream list schedule can hide: the mapping pipeline and
        # launch gaps run concurrently with adjacent layers' main compute
        # (the gpusim scheduler proves the exact figure; this is its
        # closed-form shadow).
        overlap_us = -(1.0 - 1.0 / float(streams)) * (map_us + launch_us)
    return (gemm_us, mem_us, scalar_us, launch_us, map_us, pad_us, overlap_us)


@dataclasses.dataclass(frozen=True)
class TrainingSample:
    """One fitted observation: features vs traced ground truth."""

    family: str
    features: Tuple[float, ...]
    target_us: float


def measure_sample(
    kmap: KernelMap,
    c_in: int,
    c_out: int,
    config: LayerConfig,
    device: Union[DeviceSpec, str],
    precision: Union[Precision, str],
    streams: int = 1,
) -> TrainingSample:
    """Trace one layer/config for real and pair it with its features.

    ``streams > 1`` prices the target with the multi-stream scheduler and
    activates the features' overlap credit, so a fit can calibrate it.
    """
    spec = get_device(device)
    precision = Precision.parse(precision)
    trace = trace_dataflow(
        config.dataflow,
        kmap,
        c_in,
        c_out,
        schedule=config.schedule,
        precision=precision,
        ig_config=config.ig_config,
        tensor_cores=config.tensor_cores,
        charge_mapping=True,
        gs_chunks=config.gs_chunks,
    )
    target = estimate_trace_us(trace, spec, precision, streams)
    shape = LayerShape.from_kmap(kmap, c_in, c_out)
    return TrainingSample(
        family=family_of(config),
        features=layer_features(shape, config, spec, precision, streams=streams),
        target_us=target,
    )


def _nnls(matrix: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Non-negative least squares by iterative active-set clamping.

    Solves ordinary least squares, drops the most negative coefficient's
    column, and repeats until all active coefficients are non-negative.
    Deterministic; adequate for a handful of well-scaled features.
    """
    columns = list(range(matrix.shape[1]))
    coefs = np.zeros(matrix.shape[1], dtype=np.float64)
    while columns:
        sub = matrix[:, columns]
        solution, _, _, _ = np.linalg.lstsq(sub, target, rcond=None)
        worst = int(np.argmin(solution))
        if solution[worst] >= 0.0:
            for idx, col in enumerate(columns):
                coefs[col] = float(solution[idx])
            break
        columns.pop(worst)
    return coefs


@dataclasses.dataclass
class FitReport:
    """Residual summary of one surrogate fit."""

    samples: int
    median_rel_err: float
    mean_rel_err: float
    p90_rel_err: float
    by_family: Dict[str, float]

    def describe(self) -> str:
        lines = [
            f"fit on {self.samples} samples: median rel err "
            f"{100 * self.median_rel_err:.1f}%, mean "
            f"{100 * self.mean_rel_err:.1f}%, p90 "
            f"{100 * self.p90_rel_err:.1f}%"
        ]
        for family in sorted(self.by_family):
            lines.append(
                f"  {family}: median rel err "
                f"{100 * self.by_family[family]:.1f}%"
            )
        return "\n".join(lines)


class SurrogateModel:
    """Per-dataflow-family non-negative linear model over analytic features."""

    def __init__(self, coefficients: Dict[str, Tuple[float, ...]]) -> None:
        for family, coefs in coefficients.items():
            if len(coefs) != len(FEATURE_NAMES):
                raise ConfigError(
                    f"family {family!r} has {len(coefs)} coefficients, "
                    f"expected {len(FEATURE_NAMES)}"
                )
            if any(c < 0.0 for c in coefs):
                raise ConfigError(
                    f"family {family!r} has negative coefficients; the "
                    f"surrogate must be monotone"
                )
        self.coefficients = dict(coefficients)

    @classmethod
    def analytic(cls) -> "SurrogateModel":
        """The unfitted prior: unit weight on every feature.

        Each feature is already a microsecond estimate, so the empty
        model (``predict_features`` falls back to all-ones for unknown
        families) is a usable ranking function on cold starts.
        """
        return cls({})

    # -- prediction ---------------------------------------------------- #
    def predict_features(
        self, family: str, features: Sequence[float]
    ) -> float:
        coefs = self.coefficients.get(family)
        if coefs is None:
            coefs = tuple(1.0 for _ in FEATURE_NAMES)
        return float(sum(c * f for c, f in zip(coefs, features)))

    def predict(
        self,
        shape: LayerShape,
        config: LayerConfig,
        device: Union[DeviceSpec, str],
        precision: Union[Precision, str],
        charge_mapping: bool = True,
        streams: int = 1,
    ) -> float:
        """Predicted latency in microseconds — no trace is constructed."""
        return self.predict_features(
            family_of(config),
            layer_features(
                shape, config, device, precision, charge_mapping, streams
            ),
        )

    # -- fitting ------------------------------------------------------- #
    @classmethod
    def fit(cls, samples: Sequence[TrainingSample]) -> "SurrogateModel":
        """Non-negative least squares per family.

        Rows are weighted by ``1 / target`` so the solver minimizes
        *relative* error — the metric candidate ranking cares about —
        instead of letting the largest workloads dominate the fit.
        """
        if not samples:
            raise ConfigError("cannot fit a surrogate on zero samples")
        by_family: Dict[str, List[TrainingSample]] = {}
        for sample in samples:
            by_family.setdefault(sample.family, []).append(sample)
        coefficients: Dict[str, Tuple[float, ...]] = {}
        for family in sorted(by_family):
            rows = by_family[family]
            matrix = np.asarray([s.features for s in rows], dtype=np.float64)
            target = np.asarray([s.target_us for s in rows], dtype=np.float64)
            weights = 1.0 / np.maximum(target, 1e-9)
            coefficients[family] = tuple(
                _nnls(matrix * weights[:, None], target * weights).tolist()
            )
        return cls(coefficients)

    def residuals(self, samples: Sequence[TrainingSample]) -> List[float]:
        """Relative errors |pred - target| / target per sample."""
        out: List[float] = []
        for sample in samples:
            pred = self.predict_features(sample.family, sample.features)
            denom = max(abs(sample.target_us), 1e-9)
            out.append(abs(pred - sample.target_us) / denom)
        return out

    def fit_report(self, samples: Sequence[TrainingSample]) -> FitReport:
        errs = self.residuals(samples)
        by_family: Dict[str, List[float]] = {}
        for sample, err in zip(samples, errs):
            by_family.setdefault(sample.family, []).append(err)
        return FitReport(
            samples=len(samples),
            median_rel_err=float(np.median(errs)) if errs else 0.0,
            mean_rel_err=float(np.mean(errs)) if errs else 0.0,
            p90_rel_err=float(np.percentile(errs, 90)) if errs else 0.0,
            by_family={
                family: float(np.median(v)) for family, v in by_family.items()
            },
        )

    # -- persistence --------------------------------------------------- #
    def to_json(self) -> str:
        payload: Dict[str, object] = {
            "schema": SCHEMA_VERSION,
            "features": list(FEATURE_NAMES),
            "coefficients": {
                family: list(coefs)
                for family, coefs in sorted(self.coefficients.items())
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def save(self, path: Union[str, Path]) -> None:
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(self.to_json() + "\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SurrogateModel":
        path = Path(path)
        if not path.exists():
            raise ConfigError(f"surrogate coefficients {path} do not exist")
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ConfigError(f"corrupt surrogate file: {exc}") from None
        if not isinstance(payload, dict) or payload.get("schema") != SCHEMA_VERSION:
            raise ConfigError(
                f"surrogate file {path} has unsupported schema "
                f"{payload.get('schema')!r}" if isinstance(payload, dict)
                else f"surrogate file {path} is not a JSON object"
            )
        if payload.get("features") != list(FEATURE_NAMES):
            raise ConfigError(
                f"surrogate file {path} was fitted on a different feature "
                f"set {payload.get('features')!r}"
            )
        raw = payload.get("coefficients", {})
        if not isinstance(raw, dict):
            raise ConfigError("corrupt surrogate file: coefficients not a map")
        return cls(
            {
                str(family): tuple(float(c) for c in coefs)
                for family, coefs in raw.items()
            }
        )


def _seeded_kmaps(
    seed: int, sizes: Sequence[int], extent_scale: float = 1.0
) -> List[KernelMap]:
    """Deterministic grid of kernel maps over scene scales and signatures."""
    from repro.sparse.kmap import build_kernel_map

    maps: List[KernelMap] = []
    rng = np.random.default_rng(seed)
    for size in sizes:
        extent = max(8, int(round((size ** (1.0 / 3.0)) * 3 * extent_scale)))
        coords = np.unique(
            np.concatenate(
                [
                    np.zeros((size, 1), np.int32),
                    rng.integers(0, extent, (size, 3)).astype(np.int32),
                ],
                axis=1,
            ),
            axis=0,
        )
        maps.append(build_kernel_map(coords, kernel_size=3, stride=1))
        maps.append(build_kernel_map(coords, kernel_size=2, stride=2))
    return maps


def training_grid(
    devices: Sequence[Union[DeviceSpec, str]],
    precision: Union[Precision, str] = "fp16",
    seed: int = 0,
    sizes: Sequence[int] = (400, 1200, 3000),
    channels: Sequence[Tuple[int, int]] = ((16, 32), (64, 64)),
    configs: Optional[Sequence[LayerConfig]] = None,
) -> List[TrainingSample]:
    """Seeded workloads x dataflows x devices measurement grid for `fit`."""
    from repro.autotune.online import candidate_configs

    chosen = tuple(configs) if configs is not None else candidate_configs()
    samples: List[TrainingSample] = []
    kmaps = _seeded_kmaps(seed, sizes)
    for device in devices:
        spec = get_device(device)
        for kmap in kmaps:
            for c_in, c_out in channels:
                for config in chosen:
                    samples.append(
                        measure_sample(
                            kmap, c_in, c_out, config, spec, precision
                        )
                    )
    return samples


def fit_surrogate(
    devices: Sequence[Union[DeviceSpec, str]],
    precision: Union[Precision, str] = "fp16",
    seed: int = 0,
    sizes: Sequence[int] = (400, 1200, 3000),
) -> Tuple[SurrogateModel, FitReport]:
    """Fit a surrogate on the seeded grid; returns (model, residual report)."""
    samples = training_grid(devices, precision=precision, seed=seed, sizes=sizes)
    model = SurrogateModel.fit(samples)
    return model, model.fit_report(samples)
