"""Baseline sparse convolution engines (Section 5.1).

Each engine re-creates a published system by its dataflow and documented
restrictions on the shared substrate:

* :class:`MinkowskiEngine` — per-offset fetch-on-demand kernels on CUDA
  cores, no FP16/TF32 support, expensive coordinate manager;
* :class:`SpConv1` — vanilla gather-GEMM-scatter with cuBLAS GEMMs;
* :class:`TorchSparseEngine` — fused gather/scatter with adaptive grouping
  (MLSys'22);
* :class:`SpConv2` — bitmask-sorted implicit GEMM with one split, tiles
  tuned within its restricted space, lower-quality generated kernels;
* :class:`TorchSparsePP` — this paper: generated kernels + Sparse
  Autotuner over the full design space, adaptive tiling.
"""

from repro.baselines.engines import (
    ENGINES,
    BaselineEngine,
    MinkowskiEngine,
    SpConv1,
    SpConv2,
    TorchSparseEngine,
    TorchSparsePP,
    get_engine,
)
from repro.baselines.harness import measure_inference, measure_training

__all__ = [
    "ENGINES",
    "BaselineEngine",
    "MinkowskiEngine",
    "SpConv1",
    "SpConv2",
    "TorchSparseEngine",
    "TorchSparsePP",
    "get_engine",
    "measure_inference",
    "measure_training",
]
