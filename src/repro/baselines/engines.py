"""Engine definitions for the five compared systems."""

from __future__ import annotations

from typing import Dict, Sequence

from repro.errors import ConfigError
from repro.hw.specs import DeviceSpec, get_device
from repro.kernels.base import KernelSchedule
from repro.kernels.implicit_gemm import ImplicitGemmConfig
from repro.kernels.registry import Dataflow
from repro.nn.context import ExecutionContext, FixedPolicy, LayerConfig
from repro.nn.module import Module
from repro.precision import Precision
from repro.sparse.tensor import SparseTensor

#: Relative MMA efficiency of SpConv v2's metaprogrammer (Figure 23:
#: TorchSparse++'s generated kernels are 1.1-1.2x faster at identical
#: dataflow parameters).
SPCONV2_CODEGEN_QUALITY = 0.80
#: MinkowskiEngine's coordinate manager performs significantly more
#: (unfused, CPU-synchronized) work per map than hash-build pipelines.
MINKOWSKI_MAP_OVERHEAD = 2.0


class BaselineEngine:
    """Base class: an engine prepares an :class:`ExecutionContext` factory.

    Subclasses define the dataflow policy and system restrictions; callers
    then run models through :meth:`make_context`.
    """

    name: str = "base"

    def supported_precision(self, precision: Precision) -> Precision:
        """Precision the engine actually runs for a requested precision."""
        return precision

    def prepare(
        self,
        model: Module,
        samples: Sequence[SparseTensor],
        device: "DeviceSpec | str",
        precision: "Precision | str",
        training: bool = False,
    ) -> None:
        """Hook for engines that tune ahead of time (TorchSparse++)."""

    def _policy(self, device: DeviceSpec, precision: Precision):
        raise NotImplementedError

    def context_extras(self) -> dict:
        return {}

    def make_context(
        self,
        device: "DeviceSpec | str",
        precision: "Precision | str",
        training: bool = False,
    ) -> ExecutionContext:
        device = get_device(device)
        precision = self.supported_precision(Precision.parse(precision))
        return ExecutionContext(
            device=device,
            precision=precision,
            policy=self._policy(device, precision),
            training=training,
            **self.context_extras(),
        )


class MinkowskiEngine(BaselineEngine):
    """MinkowskiEngine 0.5.4: per-offset fetch-on-demand, CUDA cores only.

    The paper notes ME "does not support FP16" (Section 5.2); FP16/TF32
    requests fall back to FP32.  Its coordinate manager rebuilds maps with
    substantially more overhead than hash pipelines, modelled by
    re-running map construction :data:`MINKOWSKI_MAP_OVERHEAD` times.
    """

    name = "MinkowskiEngine"

    def supported_precision(self, precision: Precision) -> Precision:
        return Precision.FP32

    def _policy(self, device, precision):
        return FixedPolicy(
            LayerConfig(
                dataflow=Dataflow.FETCH_ON_DEMAND_UNFUSED,
                schedule=KernelSchedule(
                    tile_m=32, tile_n=32, tile_k=16, warp_rows=32,
                    hoist_invariants=False,
                ),
                tensor_cores=False,
            )
        )

    def context_extras(self) -> dict:
        return {"map_cost_scale": MINKOWSKI_MAP_OVERHEAD}


class SpConv1(BaselineEngine):
    """SpConv 1.2.1: vanilla gather-GEMM-scatter with cuBLAS GEMMs.

    cuBLAS selects well-suited tiles internally, modelled as adaptive
    tiling on the GEMM stage.
    """

    name = "SpConv1.2"

    def _policy(self, device, precision):
        return FixedPolicy(
            LayerConfig(dataflow=Dataflow.GATHER_SCATTER)
        )

    def context_extras(self) -> dict:
        return {"adaptive_tiling": True}


class TorchSparseEngine(BaselineEngine):
    """TorchSparse (MLSys'22): fused gather/scatter + adaptive grouping."""

    name = "TorchSparse"

    def _policy(self, device, precision):
        return FixedPolicy(
            LayerConfig(dataflow=Dataflow.GATHER_SCATTER_FUSED)
        )

    def context_extras(self) -> dict:
        # Batched GEMMs go through cuBLAS, which tunes tiles internally.
        return {"adaptive_tiling": True}


class SpConv2(BaselineEngine):
    """SpConv 2.3.5: sorted implicit GEMM, split=1, restricted tuning.

    Uses the same dataflow parameters for forward/dgrad/wgrad (the
    conventional design TorchSparse++'s training tuner improves on).
    """

    name = "SpConv2.3.5"

    def _policy(self, device, precision):
        return FixedPolicy(
            LayerConfig(
                dataflow=Dataflow.IMPLICIT_GEMM,
                schedule=KernelSchedule(
                    codegen_quality=SPCONV2_CODEGEN_QUALITY
                ),
                ig_config=ImplicitGemmConfig(num_splits=1, sort=True),
            )
        )

    #: SpConv v2's cumm-based indice-generation pipeline is slower than
    #: the TorchSparse-derived hash pipeline TorchSparse++ inherits.
    MAP_OVERHEAD = 1.25

    def context_extras(self) -> dict:
        # SpConv v2 also tunes tile sizes within its space.
        return {"adaptive_tiling": True, "map_cost_scale": self.MAP_OVERHEAD}


class TorchSparsePP(BaselineEngine):
    """TorchSparse++: Sparse Kernel Generator + Sparse Autotuner."""

    name = "TorchSparse++"

    def __init__(self) -> None:
        self._policies: Dict = {}

    def prepare(
        self,
        model: Module,
        samples: Sequence[SparseTensor],
        device: "DeviceSpec | str",
        precision: "Precision | str",
        training: bool = False,
    ) -> None:
        """Run the Sparse Autotuner; cached per (device, precision, mode)."""
        from repro.tune.training import TrainingTuner
        from repro.tune.tuner import SparseAutotuner

        device = get_device(device)
        precision = Precision.parse(precision)
        key = (device.name, precision, training)
        if key in self._policies:
            return
        if training:
            policy, _ = TrainingTuner().tune(model, samples, device, precision)
        else:
            policy, _ = SparseAutotuner().tune(model, samples, device, precision)
        self._policies[key] = policy

    def _policy(self, device, precision):
        # Fall back to the default implicit GEMM policy if not prepared.
        return self._policies.get(
            (device.name, precision, False),
            self._policies.get((device.name, precision, True), FixedPolicy()),
        )

    def make_context(self, device, precision, training=False):
        device = get_device(device)
        precision = Precision.parse(precision)
        policy = self._policies.get(
            (device.name, precision, training)
        ) or self._policies.get((device.name, precision, not training))
        return ExecutionContext(
            device=device,
            precision=precision,
            policy=policy or FixedPolicy(),
            training=training,
            adaptive_tiling=True,
        )


ENGINES = {
    "minkowskiengine": MinkowskiEngine,
    "spconv1": SpConv1,
    "torchsparse": TorchSparseEngine,
    "spconv2": SpConv2,
    "torchsparse++": TorchSparsePP,
}


def get_engine(name: str) -> BaselineEngine:
    """Instantiate an engine by (case-insensitive, punctuation-lax) name."""
    key = name.lower().replace(" ", "").replace("_", "").replace("-", "")
    aliases = {
        "me": "minkowskiengine",
        "spconv12": "spconv1",
        "spconv1.2": "spconv1",
        "spconv235": "spconv2",
        "spconv2.3.5": "spconv2",
        "torchsparsepp": "torchsparse++",
        "tspp": "torchsparse++",
    }
    key = aliases.get(key, key)
    if key not in ENGINES:
        raise ConfigError(
            f"unknown engine {name!r}; have {sorted(ENGINES)}"
        )
    return ENGINES[key]()
