"""Cost model of FlatFormer, a point cloud transformer (CVPR 2023).

Section 5.2 of the TorchSparse++ paper observes that with the faster
TorchSparse++ backend, the 3-frame CenterPoint model on Waymo becomes
1.5x faster than FlatFormer on Jetson Orin — countering the claim that
point cloud transformers dominate sparse convolutional backbones.

FlatFormer flattens the point cloud into equal-size groups (window-sorted)
and runs grouped multi-head self-attention.  The model here follows the
published architecture: ``num_blocks`` FlatFormer blocks, each with two
group attentions (alternating x/y-major sorting) and FFNs, over groups of
``group_size`` points at ``embed_dim`` channels — plus the per-block
sorting/partitioning passes that play the role sparse convolution's
mapping operations do.
"""

from __future__ import annotations

import dataclasses
import math

from repro.gpusim.engine import estimate_trace_us
from repro.gpusim.trace import KernelLaunch, KernelTrace, LaunchKind
from repro.hw.specs import DeviceSpec, get_device
from repro.precision import Precision


@dataclasses.dataclass(frozen=True)
class FlatFormerConfig:
    """Architecture hyper-parameters (FlatFormer's Waymo configuration)."""

    embed_dim: int = 128
    group_size: int = 69
    num_blocks: int = 8
    ffn_ratio: int = 2

    def __post_init__(self) -> None:
        if min(self.embed_dim, self.group_size, self.num_blocks) < 1:
            raise ValueError("FlatFormer config fields must be >= 1")


DEFAULT_FLATFORMER = FlatFormerConfig()


def flatformer_trace(
    num_points: int,
    config: FlatFormerConfig = DEFAULT_FLATFORMER,
    precision: Precision = Precision.FP16,
) -> KernelTrace:
    """Execution trace of a FlatFormer backbone over ``num_points``."""
    c = config.embed_dim
    g = config.group_size
    itemsize = precision.itemsize
    n = max(num_points, 1)
    groups = max(1, math.ceil(n / g))
    trace = KernelTrace()
    for block in range(config.num_blocks):
        # Window sorting + group partitioning (the mapping analogue):
        # radix sort of window keys plus a gather into group order.
        trace.add(
            KernelLaunch(
                name=f"flatformer/b{block}/sort_partition",
                kind=LaunchKind.MAPPING,
                scalar_ops=16.0 * n * 4,
                dram_read_bytes=16.0 * n * 4,
                dram_write_bytes=8.0 * 16.0 * n,  # scattered reorder
                ctas=max(1, n // 256),
            )
        )
        trace.add(
            KernelLaunch(
                name=f"flatformer/b{block}/regroup_features",
                kind=LaunchKind.MEMORY,
                dram_read_bytes=4.0 * itemsize * n * c,  # gather rows
                dram_write_bytes=itemsize * n * c,
                ctas=max(1, n * c // 4096),
            )
        )
        # One grouped attention + FFN per block; successive blocks
        # alternate x-/y-major sorting (charged above).
        qkv_flops = 2.0 * n * c * (3 * c)
        attn_flops = 2.0 * n * g * c * 2  # scores + weighted sum
        proj_flops = 2.0 * n * c * c
        ffn_flops = 2.0 * n * c * (config.ffn_ratio * c) * 2
        trace.add(
            KernelLaunch(
                name=f"flatformer/b{block}/attn",
                kind=LaunchKind.GEMM,
                flops=qkv_flops + attn_flops + proj_flops + ffn_flops,
                dram_read_bytes=itemsize * n * c * 4,
                dram_write_bytes=itemsize * n * c * 2,
                ctas=max(1, groups),
                overlapped=True,
                compute_efficiency=0.7,  # small-G attention tiles
            )
        )
    return trace


def flatformer_latency_ms(
    num_points: int,
    device: "DeviceSpec | str",
    precision: "Precision | str" = Precision.FP16,
    config: FlatFormerConfig = DEFAULT_FLATFORMER,
) -> float:
    """Simulated backbone latency of FlatFormer in milliseconds."""
    device = get_device(device)
    precision = Precision.parse(precision)
    trace = flatformer_trace(num_points, config, precision)
    return estimate_trace_us(trace, device, precision) / 1e3
