"""Measurement harness: run a workload through an engine and report
simulated latency (the reproduction's analogue of wall-clock timing)."""

from __future__ import annotations

import dataclasses
import functools
from typing import Dict, Sequence

import numpy as np

from repro.baselines.engines import BaselineEngine
from repro.models.registry import Workload, get_workload
from repro.precision import Precision


@functools.lru_cache(maxsize=None)
def _held_out_sample(workload_id: str, seed: int, batch_size: int):
    """Cached held-out tuning scene (shared across engines/devices)."""
    return get_workload(workload_id).make_input(
        seed=seed, batch_size=batch_size
    )


@dataclasses.dataclass
class Measurement:
    """Latency summary over several scenes."""

    engine: str
    workload: str
    device: str
    precision: str
    per_scene_ms: list
    breakdown_us: Dict[str, float]

    @property
    def mean_ms(self) -> float:
        return float(np.mean(self.per_scene_ms))


def measure_inference(
    engine: BaselineEngine,
    workload: Workload,
    device: str,
    precision: "Precision | str",
    seeds: Sequence[int] = (0,),
    model=None,
    inputs=None,
    tune_inputs=None,
) -> Measurement:
    """End-to-end inference latency of one engine on one workload.

    Kernel maps are rebuilt per scene (each scene has new coordinates), so
    mapping cost is part of the measurement — matching the paper's
    single-scene streaming setting (batch size 1, Section 5.2).  Tuning
    engines calibrate on *held-out* scenes (``tune_inputs``), exactly as
    the paper tunes on a random subset and deploys on the rest; pass the
    measured inputs explicitly to study oracle tuning instead.
    """
    model = model or workload.build_model()
    model.eval()
    inputs = inputs or [workload.make_input(seed=s) for s in seeds]
    if tune_inputs is None:
        tune_seed = 7000 + max(seeds, default=0)
        tune_inputs = [_held_out_sample(workload.id, tune_seed, 1)]
    engine.prepare(model, tune_inputs, device, precision, training=False)
    per_scene = []
    breakdown: Dict[str, float] = {}
    for sample in inputs:
        # Each context re-charges map construction and reordering for
        # every map it touches (charge-once is per context), so cached
        # Python-side maps do not leak simulated time between engines.
        ctx = engine.make_context(device, precision, training=False)
        ctx.simulate_only = True
        model(sample, ctx)
        per_scene.append(ctx.latency_ms())
        for key, value in ctx.breakdown_us().items():
            breakdown[key] = breakdown.get(key, 0.0) + value / len(inputs)
    return Measurement(
        engine=engine.name,
        workload=workload.id,
        device=str(device),
        precision=str(Precision.parse(precision).value),
        per_scene_ms=per_scene,
        breakdown_us=breakdown,
    )


def measure_training(
    engine: BaselineEngine,
    workload: Workload,
    device: str,
    precision: "Precision | str",
    seeds: Sequence[int] = (0,),
    batch_size: int = 2,
    model=None,
    inputs=None,
) -> Measurement:
    """Forward + backward latency per step (batch size 2, Figure 15)."""
    model = model or workload.build_model()
    model.train()
    inputs = inputs or [
        _held_out_sample(workload.id, s, batch_size) for s in seeds
    ]
    tune_inputs = [
        _held_out_sample(workload.id, 7000 + max(seeds, default=0),
                         batch_size)
    ]
    engine.prepare(model, tune_inputs, device, precision, training=True)
    per_step = []
    breakdown: Dict[str, float] = {}
    for sample in inputs:
        ctx = engine.make_context(device, precision, training=True)
        ctx.simulate_only = True
        out = model(sample, ctx)
        grad = np.zeros(out.feats.shape, dtype=ctx.precision.dtype)
        model.backward(grad, ctx)
        model.zero_grad()
        per_step.append(ctx.latency_ms())
        for key, value in ctx.breakdown_us().items():
            breakdown[key] = breakdown.get(key, 0.0) + value / len(inputs)
    return Measurement(
        engine=engine.name,
        workload=workload.id,
        device=str(device),
        precision=str(Precision.parse(precision).value),
        per_scene_ms=per_step,
        breakdown_us=breakdown,
    )
