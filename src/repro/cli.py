"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``devices`` — list the modelled GPUs and their key specs;
* ``workloads`` — list the seven benchmark workloads;
* ``engines`` — list the five sparse convolution engines;
* ``measure`` — run a workload through an engine and report latency
  (optionally a per-layer breakdown);
* ``tune`` — run the Sparse Autotuner for a workload/device and save the
  policy to JSON;
* ``serve-bench`` — drive the serving runtime with a synthetic request
  stream and report throughput / tail latency / cache hit rates;
* ``memory`` — model a workload's DRAM footprint (per-layer feature and
  workspace peaks) and show, per device, whether it fits the memory
  budget and which degradation-ladder rungs recover it when it does not;
* ``depgraph`` — build the launch-level dependence DAG of one simulated
  execution, report its critical path and available launch parallelism,
  and check the dependence/liveness invariants (``--dot``/``--json``
  export);
* ``autotune`` — autotuning as a service (:mod:`repro.autotune`):
  ``fit`` a surrogate cost model on a seeded measurement grid, ``search``
  a workload online against a persistent tuning database, ``inspect`` a
  database, and ``merge`` replica databases;
* ``dataflows`` — list the registered sparse convolution dataflows;
* ``lint`` — statically analyze a model (bundled workload or
  ``module:factory`` import spec) for stride/channel/map/precision
  hazards without running it;
* ``keycheck`` — audit cache-key soundness: probe every registered
  memoization site (:mod:`repro.analyze.provenance`) with recording
  proxies, diff observed reads against the declared key schema, and
  optionally run the seeded differential fuzzers (``--fuzz``);
* ``experiments`` — alias of ``python -m repro.experiments``.

Exit codes: 0 on success (for ``lint``: no finding at or above
``--fail-on``; for ``keycheck``: every audited cache site sound); 1 when
``lint`` reports findings at or above the ``--fail-on`` severity or
``keycheck`` finds an unkeyed read / fuzz failure; 2 on usage errors —
unknown device / engine / workload / precision / rule names exit with a
message listing the valid choices (no traceback).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.utils.format import format_table


def _validate_target(device: str, precision: str) -> None:
    """Fail fast on bad device/precision before any heavy work."""
    from repro.hw import get_device
    from repro.precision import Precision

    get_device(device)
    Precision.parse(precision)


def _cmd_devices(_args) -> int:
    from repro.hw import list_devices

    rows = [
        [
            d.name,
            d.arch,
            d.sms,
            f"{d.cuda_core_tflops:g}",
            f"{d.fp16_tensor_tflops:g}" if d.fp16_tensor_tflops else "-",
            f"{d.dram_bw_gbps:g}",
        ]
        for d in list_devices()
    ]
    print(
        format_table(
            ["device", "arch", "SMs", "FP32 TFLOPS", "FP16 TC TFLOPS",
             "DRAM GB/s"],
            rows,
        )
    )
    return 0


def _cmd_workloads(_args) -> int:
    from repro.models import WORKLOADS

    rows = [
        [w.id, w.model_family, w.dataset, w.frames, w.task]
        for w in WORKLOADS.values()
    ]
    print(format_table(["id", "model", "dataset", "frames", "task"], rows))
    return 0


def _cmd_engines(_args) -> int:
    from repro.baselines import ENGINES, get_engine

    rows = []
    for key in ENGINES:
        engine = get_engine(key)
        doc = (type(engine).__doc__ or "").strip().splitlines()[0]
        rows.append([engine.name, doc])
    print(format_table(["engine", "description"], rows))
    return 0


def _cmd_dataflows(_args) -> int:
    from repro.kernels import Dataflow, dataflow_choices

    rows = [
        [
            name,
            "weight-stationary"
            if Dataflow(name).weight_stationary
            else "output-stationary",
        ]
        for name in dataflow_choices()
    ]
    print(format_table(["dataflow", "map storage order"], rows))
    return 0


def _resolve_lint_model(args):
    """Returns ``(model, in_channels, target_name)`` for the lint target:
    a bundled workload id, or a ``module:factory`` import spec."""
    from repro.errors import ConfigError

    target = args.target
    if ":" in target:
        import importlib

        module_name, _, factory_name = target.partition(":")
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise ConfigError(
                f"cannot import module {module_name!r}: {exc}"
            ) from None
        factory = getattr(module, factory_name, None)
        if factory is None:
            raise ConfigError(
                f"module {module_name!r} has no attribute {factory_name!r}"
            )
        return factory(), args.in_channels, target
    from repro.models import get_workload

    workload = get_workload(target)
    return (
        workload.build_model(),
        workload.dataset_config.in_channels,
        workload.id,
    )


def _cmd_lint(args) -> int:
    from repro.analyze import RULES, Severity, lint_model, max_severity

    if args.list_rules:
        rows = [[rule.name, rule.description] for rule in RULES.values()]
        print(format_table(["rule", "description"], rows))
        return 0
    if args.target is None:
        raise ValueError("lint needs a workload id or module:factory target")
    _validate_target(args.device, args.precision)
    fail_on = Severity.parse(args.fail_on)
    rules = args.rules.split(",") if args.rules else None
    policy = None
    if args.policy:
        from repro.tune import load_policy

        policy = load_policy(args.policy)
    model, in_channels, target_name = _resolve_lint_model(args)
    findings = lint_model(
        model,
        in_channels=in_channels,
        device=args.device,
        precision=args.precision,
        policy=policy,
        rules=rules,
        collect_trace=not args.no_trace,
    )
    failing = [f for f in findings if f.severity.rank >= fail_on.rank]
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "target": target_name,
                    "device": args.device,
                    "precision": args.precision,
                    "fail_on": fail_on.value,
                    "findings": [f.to_dict() for f in findings],
                    "failed": bool(failing),
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.format())
        worst = max_severity(findings)
        print(
            f"{target_name}: {len(findings)} finding(s)"
            + (f", worst severity {worst.value}" if worst else "")
            + f" [fail-on {fail_on.value}]"
        )
    return 1 if failing else 0


def _cmd_keycheck(args) -> int:
    from repro.analyze.provenance import (
        REGISTRY,
        audit_cache_sites,
        fuzz_cache_site,
    )
    from repro.errors import ConfigError

    if args.register:
        import importlib

        module_name, _, func_name = args.register.partition(":")
        if not module_name or not func_name:
            raise ConfigError(
                f"--register expects module:function, got {args.register!r}"
            )
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise ConfigError(
                f"cannot import module {module_name!r}: {exc}"
            ) from None
        register = getattr(module, func_name, None)
        if register is None:
            raise ConfigError(
                f"module {module_name!r} has no attribute {func_name!r}"
            )
        register()
    if args.site:
        unknown = [s for s in args.site if s not in REGISTRY]
        if unknown:
            raise ConfigError(
                f"unknown cache site(s) {unknown}; registered: "
                f"{sorted(REGISTRY)}"
            )
        sites = tuple(sorted(args.site))
    else:
        sites = tuple(sorted(REGISTRY))
    audits = audit_cache_sites(sites)
    fuzz = {}
    if args.fuzz:
        fuzz = {
            site: fuzz_cache_site(site, seed=args.seed + i)
            for i, site in enumerate(sites)
        }
    unsound = sorted(s for s, a in audits.items() if a.unkeyed)
    fuzz_failed = sorted(s for s, r in fuzz.items() if r.failures)
    failed = bool(unsound or fuzz_failed)
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "sites": {s: audits[s].to_dict() for s in sites},
                    "fuzz": {s: r.to_dict() for s, r in fuzz.items()},
                    "unsound": unsound,
                    "fuzz_failed": fuzz_failed,
                    "failed": failed,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for site in sites:
            audit = audits[site]
            status = "UNSOUND" if audit.unkeyed else "sound"
            print(
                f"{site}: {status} ({len(audit.reads)} reads, "
                f"{len(audit.exempted)} exempted)"
            )
            for path in audit.unkeyed:
                print(f"   error  unkeyed-read     {path}")
            for name in audit.overkeyed:
                print(f"   info   overkeyed-field  {name}")
            report = fuzz.get(site)
            if report is not None:
                verdict = "ok" if report.ok else "FAILED"
                print(f"   fuzz: {report.trials} trial(s) {verdict}")
                for failure in report.failures:
                    print(f"      {failure}")
        print(
            f"{len(sites)} site(s) audited: "
            + ("FAILED" if failed else "all keys sound")
        )
    return 1 if failed else 0


def _cmd_measure(args) -> int:
    from repro.baselines import get_engine, measure_inference
    from repro.models import get_workload

    _validate_target(args.device, args.precision)
    workload = get_workload(args.workload)
    engine = get_engine(args.engine)
    m = measure_inference(
        engine, workload, args.device, args.precision,
        seeds=tuple(range(args.scenes)),
    )
    print(
        f"{engine.name} on {workload.id} @ {args.device}/{args.precision}: "
        f"{m.mean_ms:.2f} ms mean over {args.scenes} scene(s)"
    )
    parts = ", ".join(
        f"{k} {v / 1e3:.2f} ms" for k, v in sorted(m.breakdown_us.items())
    )
    print(f"breakdown: {parts}")
    if args.layers:
        from repro.gpusim.report import layer_report

        model = workload.build_model()
        model.eval()
        sample = workload.make_input(seed=0)
        ctx = engine.make_context(args.device, args.precision)
        ctx.simulate_only = True
        model(sample, ctx)
        print()
        print(layer_report(ctx.trace, args.device, ctx.precision))
    return 0


def _cmd_tune(args) -> int:
    from repro.models import get_workload
    from repro.tune import SparseAutotuner, save_policy

    _validate_target(args.device, args.precision)
    workload = get_workload(args.workload)
    model = workload.build_model()
    samples = [workload.make_input(seed=s) for s in range(args.scenes)]
    policy, report = SparseAutotuner().tune(
        model, samples, args.device, args.precision
    )
    print(report.describe())
    if args.output:
        save_policy(policy, args.output)
        print(f"policy saved to {args.output}")
    return 0


def _cmd_autotune_fit(args) -> int:
    from repro.autotune import SurrogateModel, training_grid

    devices = [d.strip() for d in args.devices.split(",") if d.strip()]
    if not devices:
        raise ValueError("--devices needs at least one device name")
    for device in devices:
        _validate_target(device, args.precision)
    sizes = tuple(int(s) for s in args.sizes.split(","))
    samples = training_grid(
        devices, precision=args.precision, seed=args.seed, sizes=sizes
    )
    model = SurrogateModel.fit(samples)
    report = model.fit_report(samples)
    failed = report.median_rel_err > args.max_median_err
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "devices": devices,
                    "precision": args.precision,
                    "seed": args.seed,
                    "samples": report.samples,
                    "median_rel_err": round(report.median_rel_err, 6),
                    "mean_rel_err": round(report.mean_rel_err, 6),
                    "p90_rel_err": round(report.p90_rel_err, 6),
                    "by_family": {
                        k: round(v, 6)
                        for k, v in sorted(report.by_family.items())
                    },
                    "max_median_err": args.max_median_err,
                    "failed": failed,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(report.describe())
    if args.output:
        model.save(args.output)
        if not args.json:
            print(f"coefficients saved to {args.output}")
    if failed:
        if not args.json:
            print(
                f"FAIL: median relative error "
                f"{100 * report.median_rel_err:.1f}% exceeds the "
                f"--max-median-err bound {100 * args.max_median_err:.1f}%"
            )
        return 1
    return 0


def _cmd_autotune_search(args) -> int:
    from repro.autotune import OnlineTuner, SurrogateModel, TuningDatabase
    from repro.data.datasets import make_sample
    from repro.models import get_workload

    _validate_target(args.device, args.precision)
    workload = get_workload(args.workload)
    db = TuningDatabase.load_or_create(args.db)
    surrogate = (
        SurrogateModel.load(args.surrogate)
        if args.surrogate
        else SurrogateModel.analytic()
    )
    tuner = OnlineTuner(db, surrogate, verify_top_k=args.top_k)
    model = workload.build_model()
    model.eval()
    sample = make_sample(
        workload.dataset,
        frames=workload.frames,
        seed=args.seed,
        scale=args.scale,
    )
    _, report = tuner.tune_model(model, sample, args.device, args.precision)
    db.save(args.db)
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "workload": workload.id,
                    "device": args.device,
                    "precision": args.precision,
                    "db": args.db,
                    "groups": len(report.decisions),
                    "db_hits": report.db_hits,
                    "db_misses": report.db_misses,
                    "measurements": report.measurements,
                    "entries": len(db),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(
            f"{workload.id} @ {args.device}/{args.precision} "
            f"(surrogate: {args.surrogate or 'analytic prior'})"
        )
        print(report.describe())
        print(f"database {args.db}: {len(db)} entries")
    return 0


def _cmd_autotune_inspect(args) -> int:
    from repro.autotune import TuningDatabase

    db = TuningDatabase.load(args.db)
    if args.json:
        print(db.to_json())
        return 0
    rows = [
        [
            key.device,
            key.layer,
            key.bucket,
            entry.config.describe(),
            f"{entry.measured_us:.1f}",
            f"{entry.predicted_us:.1f}",
            str(entry.trials),
        ]
        for key, entry in db.items()
    ]
    print(
        format_table(
            ["device", "layer", "bucket", "config", "us", "pred us",
             "trials"],
            rows,
            title=f"tuning database {args.db} ({len(db)} entries)",
        )
    )
    return 0


def _cmd_autotune_merge(args) -> int:
    from repro.autotune import TuningDatabase

    merged = TuningDatabase()
    adopted_total = 0
    for path in args.inputs:
        replica = TuningDatabase.load(path)
        adopted = merged.merge(replica)
        adopted_total += adopted
        if not args.json:
            print(f"{path}: {len(replica)} entries, {adopted} adopted")
    merged.save(args.output)
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "inputs": list(args.inputs),
                    "output": args.output,
                    "entries": len(merged),
                    "adopted": adopted_total,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(f"merged database saved to {args.output} ({len(merged)} entries)")
    return 0


def _cmd_serve_bench(args) -> int:
    from repro.models import get_workload
    from repro.serve import (
        AutoscalePolicy,
        BurstyArrivals,
        FaultPlan,
        PoissonArrivals,
        ServeConfig,
        ServingRuntime,
        generate_requests,
        generate_traffic_requests,
        parse_tenants,
        parse_traffic,
    )

    _validate_target(args.device, args.precision)
    workload = get_workload(args.workload)
    faults = None
    fault_seed = args.fault_seed if args.fault_seed is not None else args.seed
    if args.faults:
        faults = FaultPlan.parse(args.faults, seed=fault_seed)
    if args.oom_rate > 0:
        import dataclasses

        faults = dataclasses.replace(
            faults or FaultPlan(seed=fault_seed), oom_rate=args.oom_rate
        )
    tenants = parse_tenants(args.tenants) if args.tenants else ()
    autoscale = None
    if args.autoscale:
        autoscale = AutoscalePolicy(
            slo_ms=args.slo_ms or AutoscalePolicy.slo_ms,
            min_replicas=args.replicas,
            max_replicas=max(args.max_replicas, args.replicas),
        )
    config = ServeConfig(
        device=args.device,
        precision=args.precision,
        replicas=args.replicas,
        balancer=args.balancer,
        replica_queue_depth=args.replica_queue_depth,
        queue_depth=args.queue_depth,
        point_budget=args.point_budget,
        max_batch_requests=args.max_batch,
        batch_window_ms=args.window_ms,
        kmap_cache_size=args.kmap_cache,
        scene_scale=args.scale,
        faults=faults,
        max_retries=args.retries,
        retry_backoff_ms=args.retry_backoff_ms,
        retry_jitter=not args.no_retry_jitter,
        retry_budget=args.retry_budget,
        timeout_ms=args.timeout_ms,
        hedge_ms=args.hedge_ms,
        tuning_db=args.tuning_db,
        mem_headroom=args.mem_headroom,
        gpu_streams=args.gpu_streams,
        tenants=tenants,
        priority_shedding=not args.no_priority_shedding,
        breaker_failures=args.breaker_failures,
        breaker_cooldown_ms=args.breaker_cooldown_ms,
        autoscale=autoscale,
        slo_ms=args.slo_ms,
    )
    runtime = ServingRuntime(config)
    if args.tuning_db:
        print(
            f"tuning db {args.tuning_db}: "
            f"{len(runtime.tuning_db)} entries loaded"
        )
    if args.policy:
        runtime.warm_policy_from_file(workload.id, args.policy)
        print(f"policy cache warmed from {args.policy}")
    elif args.warm:
        runtime.warm_policy(workload.id)
        print(f"policy cache warmed by tuning {workload.id} "
              f"on {config.tune_scenes} scene(s)")
    if args.traffic:
        trace = parse_traffic(args.traffic, seed=args.seed)
        requests = generate_traffic_requests(
            trace,
            count=args.requests,
            tenants=tenants,
            default_workload=workload.id,
            deadline_ms=args.deadline_ms,
            scene_seed_base=args.seed,
        )
        arrival_desc = (
            f"traffic [{args.traffic}] "
            f"(mean {trace.mean_rate_per_s():g}/s)"
        )
    else:
        if args.arrivals == "bursty":
            arrivals = BurstyArrivals(
                base_rate_per_s=args.rate,
                burst_rate_per_s=args.burst_rate or 4 * args.rate,
                seed=args.seed,
            )
        else:
            arrivals = PoissonArrivals(rate_per_s=args.rate, seed=args.seed)
        requests = generate_requests(
            workload.id,
            arrivals,
            count=args.requests,
            num_streams=args.streams,
            deadline_ms=args.deadline_ms,
            scene_seed_base=args.seed,
        )
        arrival_desc = f"arrival rate {args.rate:g}/s ({args.arrivals})"
    result = runtime.serve(requests)
    print(
        f"served {result.metrics.completed}/{result.metrics.requests} "
        f"requests of {workload.id} on {args.replicas} x {args.device} "
        f"({args.precision}), {arrival_desc}, "
        f"{args.balancer} balancer"
        + (f", faults [{args.faults}]" if args.faults else "")
        + (f", {len(tenants)} tenants" if tenants else "")
        + (", autoscale on" if autoscale else "")
    )
    print()
    print(result.describe())
    if args.tuning_db:
        m = result.metrics
        first = (
            f"{m.time_to_first_tuned_ms:.1f} ms"
            if m.time_to_first_tuned_ms >= 0
            else "never"
        )
        print(
            f"\ntuning amortization: first tuned config at {first} "
            f"(db hits {m.tuning_db_hits}, misses {m.tuning_db_misses}, "
            f"background tunes {m.background_tunes})"
        )
        if args.tuning_db_save:
            runtime.save_tuning_db()
            print(
                f"tuning db saved to {args.tuning_db} "
                f"({len(runtime.tuning_db)} entries)"
            )
    if args.json:
        from pathlib import Path

        Path(args.json).write_text(result.metrics.to_json() + "\n")
        print(f"\nmetrics written to {args.json}")
    return 0


def _trace_workload(args):
    """Simulate ``--batch`` scenes of ``args.workload`` and return
    ``(workload, model, ctx)`` with the accumulated kernel trace."""
    from repro.data.datasets import make_sample
    from repro.hw import get_device
    from repro.models import get_workload
    from repro.nn.context import ExecutionContext
    from repro.precision import Precision

    workload = get_workload(args.workload)
    model = workload.build_model()
    model.eval()
    ctx = ExecutionContext(
        device=get_device(args.device),
        precision=Precision.parse(args.precision),
        simulate_only=True,
    )
    for i in range(args.batch):
        sample = make_sample(
            workload.dataset,
            frames=workload.frames,
            seed=args.seed + i,
            scale=args.scale,
        )
        model(sample, ctx)
    return workload, model, ctx


def _cmd_depgraph(args) -> int:
    import json as _json

    from repro.analyze.depgraph import DependenceGraph, check_depgraph
    from repro.analyze.hb import check_schedule
    from repro.gpusim.engine import estimate_launch_us
    from repro.opt import PassPipeline, best_schedule, schedule_report_json
    from repro.opt.program import LaunchProgram
    from repro.opt.schedule import schedule_from_json, schedule_to_dot

    _validate_target(args.device, args.precision)
    if args.gpu_streams < 1:
        raise ValueError(f"--gpu-streams must be >= 1, got {args.gpu_streams}")
    workload, _, ctx = _trace_workload(args)
    device, precision, trace = ctx.device, ctx.precision, ctx.trace

    pass_names = None
    if args.passes:
        pass_names = [p.strip() for p in args.passes.split(",") if p.strip()]
    run_passes = args.optimize or pass_names is not None
    pass_rows = []
    if run_passes:
        program = LaunchProgram.from_trace(trace)
        results = PassPipeline(pass_names).run(program)
        trace = program.to_trace()
        pass_rows = [
            {
                "name": r.name,
                "changed": r.changed,
                "launches_before": r.before.launches,
                "launches_after": r.after.launches,
                "peak_workspace_before": round(r.before.peak_workspace_bytes, 3),
                "peak_workspace_after": round(r.after.peak_workspace_bytes, 3),
            }
            for r in results
        ]

    violations = check_depgraph(trace, device, precision)
    graph = DependenceGraph.build(trace)
    schedule = None
    loaded_schedule = False
    if args.schedule_json:
        with open(args.schedule_json) as fh:
            doc_in = _json.load(fh)
        if isinstance(doc_in, dict) and "schedule" in doc_in:
            doc_in = doc_in["schedule"]
        schedule = schedule_from_json(doc_in)
        loaded_schedule = True
    elif args.schedule:
        schedule = best_schedule(
            trace, device, precision, args.gpu_streams, graph
        )
    verify_violations = []
    if args.verify:
        if schedule is None:
            schedule = best_schedule(
                trace, device, precision, args.gpu_streams, graph
            )
        verify_violations = check_schedule(trace, schedule, graph)
    failed = bool(violations or verify_violations)
    if args.json:
        doc = graph.to_json(device, precision)
        doc["violations"] = [
            {"invariant": v.invariant, "launch": v.launch, "message": v.message}
            for v in violations
        ]
        if pass_rows:
            doc["passes"] = pass_rows
        if schedule is not None:
            doc["schedule"] = schedule_report_json(schedule)
        if args.verify:
            doc["schedule_verification"] = [
                {
                    "invariant": v.invariant,
                    "launch": v.launch,
                    "message": v.message,
                }
                for v in verify_violations
            ]
        print(_json.dumps(doc, indent=2, sort_keys=True))
        return 1 if failed else 0
    if args.dot:
        if schedule is not None:
            print(schedule_to_dot(schedule))
        else:
            print(graph.to_dot())
        return 1 if failed else 0
    counts = graph.edge_counts()
    path, span = graph.critical_path(device, precision)
    serialized = sum(
        estimate_launch_us(l, device, precision) for l in trace
    )
    print(
        f"{workload.id} @ {device.name}/{precision.value} x{args.batch} "
        f"(scale {args.scale:g}): {len(graph.launches)} launches, "
        f"{len(graph.edges)} dependence edges "
        f"(RAW {counts['RAW']}, WAR {counts['WAR']}, WAW {counts['WAW']})"
    )
    print(
        f"serialized {serialized:.1f} us, critical path {span:.1f} us, "
        f"available launch parallelism {serialized / span:.2f}x"
        if span > 0
        else "empty trace"
    )
    for row in pass_rows:
        delta = row["launches_before"] - row["launches_after"]
        ws = row["peak_workspace_before"] - row["peak_workspace_after"]
        effect = (
            f"-{delta} launches, -{ws:.0f} workspace bytes"
            if row["changed"]
            else "no-op"
        )
        print(f"pass {row['name']}: {effect}")
    if schedule is not None:
        if loaded_schedule:
            print(
                f"loaded schedule ({args.schedule_json}): "
                f"{schedule.streams} streams, {schedule.makespan_us:.1f} us, "
                f"{len(schedule.events)} sync events"
            )
        else:
            print(
                f"scheduled ({schedule.streams} of {args.gpu_streams} "
                f"streams used best): {schedule.makespan_us:.1f} us, "
                f"{schedule.speedup:.2f}x over serialized, "
                f"{len(schedule.events)} sync events "
                f"({schedule.sync_us:.1f} us charged, "
                f"{schedule.redundant_events_removed} removed as redundant)"
            )
    if args.verify and schedule is not None:
        if verify_violations:
            print(
                f"schedule verification: {len(verify_violations)} "
                f"happens-before violation(s)"
            )
        else:
            print(
                "schedule verification: every dependence edge is "
                "happens-before ordered (race-free)"
            )
    rows = [
        [i, f"{estimate_launch_us(graph.launches[i], device, precision):.2f}",
         graph.launches[i].kind.value, graph.launches[i].name]
        for i in path[:args.max_rows]
    ]
    print()
    print(
        format_table(
            ["#", "us", "kind", "launch"],
            rows,
            title=f"critical path ({len(path)} launches"
            + (
                f", showing first {args.max_rows}"
                if len(path) > args.max_rows
                else ""
            )
            + ")",
        )
    )
    if failed:
        print()
        for v in violations + verify_violations:
            where = f" [{v.launch}]" if v.launch else ""
            print(f"violation {v.invariant}{where}: {v.message}")
        print(
            f"{len(violations)} dependence violation(s), "
            f"{len(verify_violations)} schedule violation(s)"
        )
        return 1
    print("\ndependence/liveness invariants: clean")
    return 0


def _cmd_memory(args) -> int:
    from repro.data.datasets import make_sample
    from repro.gpusim import memory_budget_bytes
    from repro.hw import list_devices
    from repro.models import get_workload
    from repro.nn.context import FixedPolicy, LayerConfig
    from repro.precision import Precision
    from repro.resilience import DegradationLadder, ExecState, model_footprint

    _validate_target(args.device, args.precision)
    precision = Precision.parse(args.precision)
    workload = get_workload(args.workload)
    model = workload.build_model()
    model.eval()
    samples = [
        make_sample(
            workload.dataset,
            frames=workload.frames,
            seed=args.seed + i,
            scale=args.scale,
        )
        for i in range(args.batch)
    ]
    mib = float(1 << 20)

    # Static value-range pass: may the ladder's precision-drop rung run?
    from repro.analyze import precision_drop_veto, trace_model

    veto = precision_drop_veto(
        trace_model(model, in_channels=workload.dataset_config.in_channels)
    )

    cold = model_footprint(
        model, samples, device=args.device, precision=precision
    )
    if not args.json:
        print(
            f"{workload.id} x{args.batch} ({precision.value}, scale "
            f"{args.scale:g}): per-layer footprint (cold first run, default "
            f"dataflow)"
        )
        print(cold.table())
        print(
            f"\nweights {cold.weights_bytes / mib:.1f} MiB + features "
            f"{cold.peak_feature_bytes / mib:.1f} MiB + workspace "
            f"{cold.peak_workspace_bytes / mib:.1f} MiB = "
            f"{cold.total_bytes / mib:.1f} MiB"
        )

    memo = {}

    def footprint(state: ExecState) -> float:
        if state not in memo:
            memo[state] = model_footprint(
                model,
                samples,
                device=args.device,
                precision=state.precision,
                policy=FixedPolicy(state.config),
                batch_chunks=state.batch_chunks,
                warm=True,
            ).total_bytes
        return memo[state]

    start = ExecState(config=LayerConfig(), precision=precision)
    ladder = DegradationLadder()
    rows = []
    device_docs = []
    for device in list_devices():
        budget = memory_budget_bytes(device, args.mem_headroom)
        if args.budget_mib is not None:
            budget = min(budget, args.budget_mib * mib)
        if footprint(start) <= budget:
            verdict, taken = "fits", ()
        else:
            plan = ladder.plan(footprint, start, budget, precision_veto=veto)
            verdict = "fits degraded" if plan.fits else "DOES NOT FIT"
            taken = plan.taken
        rungs = " -> ".join(taken) if taken else "-"
        rows.append(
            [
                device.name,
                f"{device.dram_gib:g}",
                f"{budget / mib:.0f}",
                f"{footprint(start) / mib:.1f}",
                verdict,
                rungs,
            ]
        )
        device_docs.append(
            {
                "device": device.name,
                "dram_gib": device.dram_gib,
                "budget_mib": round(budget / mib, 1),
                "steady_mib": round(footprint(start) / mib, 1),
                "verdict": verdict,
                "ladder": list(taken),
            }
        )
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "workload": workload.id,
                    "precision": precision.value,
                    "batch": args.batch,
                    "scale": args.scale,
                    "mem_headroom": args.mem_headroom,
                    "budget_cap_mib": args.budget_mib,
                    "cold_mib": {
                        "weights": round(cold.weights_bytes / mib, 1),
                        "features": round(cold.peak_feature_bytes / mib, 1),
                        "workspace": round(cold.peak_workspace_bytes / mib, 1),
                        "total": round(cold.total_bytes / mib, 1),
                    },
                    "precision_veto": veto,
                    "devices": device_docs,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print()
    print(
        format_table(
            ["device", "dram GiB", "budget MiB", "steady MiB", "verdict",
             "ladder"],
            rows,
            title=(
                f"per-device memory budget (headroom "
                f"{args.mem_headroom:.0%}"
                + (
                    f", budget capped at {args.budget_mib:g} MiB"
                    if args.budget_mib is not None
                    else ""
                )
                + ")"
            ),
        )
    )
    if veto is not None:
        print(f"\nprecision-drop rung vetoed: {veto}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="TorchSparse++ reproduction command-line interface.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list modelled GPUs").set_defaults(
        func=_cmd_devices
    )
    sub.add_parser("workloads", help="list benchmark workloads").set_defaults(
        func=_cmd_workloads
    )
    sub.add_parser("engines", help="list engines").set_defaults(
        func=_cmd_engines
    )
    sub.add_parser(
        "dataflows", help="list registered sparse convolution dataflows"
    ).set_defaults(func=_cmd_dataflows)

    lint = sub.add_parser(
        "lint",
        help="statically analyze a model without running it",
        description=(
            "Symbolically propagate strides and channels through a model "
            "and report stride/channel/map/precision hazards.  Exit codes: "
            "0 = clean (no finding at or above --fail-on), 1 = findings at "
            "or above --fail-on, 2 = usage error (unknown names)."
        ),
    )
    lint.add_argument(
        "target",
        nargs="?",
        help="workload id (e.g. SK-M-0.5) or module:factory import spec",
    )
    lint.add_argument("--device", default="a100")
    lint.add_argument("--precision", default="fp16")
    lint.add_argument(
        "--in-channels", type=int, default=4,
        help="input channels for module:factory targets "
             "(workloads use their dataset's)",
    )
    lint.add_argument(
        "--policy",
        help="lint against a tuned policy JSON saved by `tune --output`",
    )
    lint.add_argument(
        "--rules", help="comma-separated subset of rules to run"
    )
    lint.add_argument(
        "--fail-on", choices=("warning", "error"), default="error",
        help="exit 1 when any finding is at or above this severity",
    )
    lint.add_argument(
        "--json", action="store_true",
        help="print findings as a JSON document instead of text",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="list the registered lint rules and exit",
    )
    lint.add_argument(
        "--no-trace", action="store_true",
        help="skip the simulated execution that feeds the trace-level "
             "dependence/liveness rules (static rules only)",
    )
    lint.set_defaults(func=_cmd_lint)

    keycheck = sub.add_parser(
        "keycheck",
        help="audit cache-key soundness of the registered memoizations",
        description=(
            "Probe every registered cache site with recording proxies, "
            "diff the observed read set against the site's declared key "
            "schema, and report unkeyed reads (stale-hit hazards) and "
            "overkeyed components (needless misses).  Exit codes: 0 = "
            "every audited site is sound (and fuzzing passed), 1 = any "
            "unkeyed read or fuzz failure, 2 = usage error."
        ),
    )
    keycheck.add_argument(
        "--site",
        action="append",
        help="audit only this site (repeatable; default: all registered)",
    )
    keycheck.add_argument(
        "--fuzz", action="store_true",
        help="also run each site's seeded differential fuzzer",
    )
    keycheck.add_argument(
        "--seed", type=int, default=0,
        help="base seed for --fuzz (per-site seeds derive from it)",
    )
    keycheck.add_argument(
        "--json", action="store_true",
        help="print the audit as a JSON document (sorted keys, "
             "deterministic across runs)",
    )
    keycheck.add_argument(
        "--register",
        help="module:function called before auditing to register extra "
             "cache sites (e.g. a fixture planting an unsound schema)",
    )
    keycheck.set_defaults(func=_cmd_keycheck)

    measure = sub.add_parser("measure", help="measure one engine/workload")
    measure.add_argument("workload", help="e.g. SK-M-0.5")
    measure.add_argument("--engine", default="torchsparse++")
    measure.add_argument("--device", default="a100")
    measure.add_argument("--precision", default="fp16")
    measure.add_argument("--scenes", type=int, default=1)
    measure.add_argument(
        "--layers", action="store_true", help="show a per-layer breakdown"
    )
    measure.set_defaults(func=_cmd_measure)

    tune = sub.add_parser("tune", help="run the Sparse Autotuner")
    tune.add_argument("workload")
    tune.add_argument("--device", default="a100")
    tune.add_argument("--precision", default="fp16")
    tune.add_argument("--scenes", type=int, default=2)
    tune.add_argument("--output", help="save the policy JSON here")
    tune.set_defaults(func=_cmd_tune)

    serve = sub.add_parser(
        "serve-bench",
        help="benchmark the request-driven serving runtime",
    )
    serve.add_argument("--workload", default="SK-M-1.0", help="e.g. SK-M-1.0")
    serve.add_argument("--device", default="a100")
    serve.add_argument("--precision", default="fp16")
    serve.add_argument("--requests", type=int, default=64)
    serve.add_argument(
        "--rate", type=float, default=30.0,
        help="mean arrival rate in requests per simulated second",
    )
    serve.add_argument(
        "--arrivals", choices=("poisson", "bursty"), default="poisson"
    )
    serve.add_argument(
        "--burst-rate", type=float, default=None,
        help="burst-phase rate for --arrivals bursty (default 4x --rate)",
    )
    serve.add_argument("--replicas", type=int, default=1)
    serve.add_argument(
        "--balancer", default="round_robin",
        help="replica load balancer: round_robin, least_loaded, jsq, "
             "or cache_affinity",
    )
    serve.add_argument(
        "--replica-queue-depth", type=int, default=1,
        help="in-flight batches one replica may hold (>1 lets load-aware "
             "balancers pipeline work behind busy replicas)",
    )
    serve.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject faults, e.g. 'stall=2,fail=0.1,skew=3' "
             "(stall windows/s per replica, per-batch failure probability, "
             "slow-replica service multiplier)",
    )
    serve.add_argument(
        "--fault-seed", type=int, default=None,
        help="seed of the fault streams (default: --seed)",
    )
    serve.add_argument(
        "--retries", type=int, default=0,
        help="max retries for transiently failed batches",
    )
    serve.add_argument("--retry-backoff-ms", type=float, default=5.0,
                       help="base of the exponential retry backoff")
    serve.add_argument(
        "--timeout-ms", type=float, default=0.0,
        help="drop queued requests older than this (0 = no timeouts)",
    )
    serve.add_argument(
        "--hedge-ms", type=float, default=0.0,
        help="hedge batches predicted to run longer than this onto a "
             "second replica (0 = no hedging)",
    )
    serve.add_argument("--streams", type=int, default=4,
                       help="scene streams (vehicles) in the request mix")
    serve.add_argument(
        "--gpu-streams", type=int, default=1,
        help="virtual GPU streams per replica: kernel launches overlap "
             "across the dependence DAG (default 1 = serialized)",
    )
    serve.add_argument("--deadline-ms", type=float, default=200.0)
    serve.add_argument("--queue-depth", type=int, default=32)
    serve.add_argument("--point-budget", type=int, default=400_000)
    serve.add_argument("--max-batch", type=int, default=8)
    serve.add_argument("--window-ms", type=float, default=10.0)
    serve.add_argument("--kmap-cache", type=int, default=16)
    serve.add_argument(
        "--warm", action="store_true",
        help="pre-warm the policy cache by tuning before serving",
    )
    serve.add_argument(
        "--policy", help="pre-warm from a policy JSON saved by `tune --output`"
    )
    serve.add_argument(
        "--tuning-db", default=None, metavar="PATH",
        help="persistent autotune database: policy-cache misses consult "
             "the online tuner (warm entries serve tuned immediately; "
             "cold layers tune in the background on the virtual clock); "
             "the path may not exist yet (cold start)",
    )
    serve.add_argument(
        "--tuning-db-save", action="store_true",
        help="persist what the online tuner learned back to --tuning-db "
             "after the run",
    )
    serve.add_argument(
        "--scale", type=float, default=0.25,
        help="scene resolution scale (wall-clock knob; 1.0 = full)",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--json", help="also write metrics JSON here")
    serve.add_argument(
        "--mem-headroom", type=float, default=0.1,
        help="fraction of replica DRAM reserved for untraced allocations",
    )
    serve.add_argument(
        "--oom-rate", type=float, default=0.0,
        help="per-batch simulated-OOM probability; OOMed batches recover "
             "via the degradation ladder (shorthand for faults key oom=)",
    )
    serve.add_argument(
        "--traffic", default=None, metavar="SPEC",
        help="trace-driven arrival program (overrides --arrivals/--rate): "
             "'steady', 'flash', 'diurnal', or preset:key=value,... "
             "e.g. 'flash:peak=400,ramp=200'",
    )
    serve.add_argument(
        "--tenants", default=None, metavar="SPEC",
        help="tenant roster, e.g. "
             "'gold:prio=0,share=3;bronze:prio=2,rps=50' "
             "(keys: prio, share, rps, burst, retry_budget, deadline, "
             "streams, mix)",
    )
    serve.add_argument(
        "--autoscale", action="store_true",
        help="enable the SLO-driven autoscaler (grows the fleet from "
             "--replicas up to --max-replicas, drains it when idle)",
    )
    serve.add_argument(
        "--max-replicas", type=int, default=8,
        help="autoscaler fleet ceiling (with --autoscale)",
    )
    serve.add_argument(
        "--slo-ms", type=float, default=0.0,
        help="target p99 latency: drives SLO attainment reporting and the "
             "autoscaler (0 = use per-request deadlines for attainment)",
    )
    serve.add_argument(
        "--retry-budget", type=float, default=-1.0,
        help="per-tenant retry budget as retries per success (e.g. 0.1); "
             "-1 = unlimited unless the tenant spec sets one",
    )
    serve.add_argument(
        "--breaker-failures", type=int, default=0,
        help="consecutive batch failures that open a replica's circuit "
             "breaker (0 = breakers off)",
    )
    serve.add_argument(
        "--breaker-cooldown-ms", type=float, default=250.0,
        help="open-state cooldown before a breaker probes the replica",
    )
    serve.add_argument(
        "--no-retry-jitter", action="store_true",
        help="disable seeded jitter on the exponential retry backoff",
    )
    serve.add_argument(
        "--no-priority-shedding", action="store_true",
        help="shed newest-first under queue pressure instead of "
             "lowest-priority-first",
    )
    serve.set_defaults(func=_cmd_serve_bench)

    autotune = sub.add_parser(
        "autotune",
        help="autotuning as a service: surrogate fit, online search, "
             "database inspect/merge",
        description=(
            "Operate the repro.autotune subsystem: fit the surrogate cost "
            "model, search a workload online against a persistent tuning "
            "database, inspect a database, or merge replica databases.  "
            "Exit codes: 0 = success, 1 = fit residual above "
            "--max-median-err, 2 = usage error (unknown names, missing "
            "database)."
        ),
    )
    autotune_sub = autotune.add_subparsers(
        dest="autotune_command", required=True
    )

    fit = autotune_sub.add_parser(
        "fit", help="fit the surrogate cost model on a seeded grid"
    )
    fit.add_argument(
        "--devices", default="a100,3090",
        help="comma-separated device names the grid measures on",
    )
    fit.add_argument("--precision", default="fp16")
    fit.add_argument("--seed", type=int, default=0)
    fit.add_argument(
        "--sizes", default="400,1200,3000",
        help="comma-separated scene point counts of the training grid",
    )
    fit.add_argument("--output", help="save fitted coefficients JSON here")
    fit.add_argument(
        "--max-median-err", type=float, default=0.15,
        help="exit 1 when the fit's median relative error exceeds this",
    )
    fit.add_argument("--json", action="store_true",
                     help="print the fit report as JSON")
    fit.set_defaults(func=_cmd_autotune_fit)

    search = autotune_sub.add_parser(
        "search",
        help="online-tune one workload against a tuning database",
    )
    search.add_argument("workload", help="e.g. SK-M-0.5")
    search.add_argument("--device", default="a100")
    search.add_argument("--precision", default="fp16")
    search.add_argument(
        "--db", required=True, metavar="PATH",
        help="tuning database to consult and update (created if missing)",
    )
    search.add_argument(
        "--surrogate", metavar="PATH",
        help="fitted coefficients from `autotune fit --output` "
             "(default: the analytic prior)",
    )
    search.add_argument("--seed", type=int, default=0)
    search.add_argument(
        "--scale", type=float, default=0.25,
        help="scene resolution scale (wall-clock knob; 1.0 = full)",
    )
    search.add_argument(
        "--top-k", type=int, default=3,
        help="surrogate-ranked candidates verified with real traces",
    )
    search.add_argument("--json", action="store_true",
                        help="print the search summary as JSON")
    search.set_defaults(func=_cmd_autotune_search)

    inspect = autotune_sub.add_parser(
        "inspect", help="show a tuning database's entries"
    )
    inspect.add_argument("db", help="tuning database path")
    inspect.add_argument("--json", action="store_true",
                         help="print the raw database document")
    inspect.set_defaults(func=_cmd_autotune_inspect)

    merge = autotune_sub.add_parser(
        "merge", help="merge replica tuning databases (best entry wins)"
    )
    merge.add_argument("inputs", nargs="+", help="replica database paths")
    merge.add_argument(
        "--output", required=True, metavar="PATH",
        help="write the merged database here",
    )
    merge.add_argument("--json", action="store_true",
                       help="print the merge summary as JSON")
    merge.set_defaults(func=_cmd_autotune_merge)

    memory = sub.add_parser(
        "memory",
        help="model a workload's DRAM footprint and degradation ladder",
    )
    memory.add_argument("workload", help="e.g. SK-M-0.5")
    memory.add_argument("--device", default="a100",
                        help="device for the per-layer table/latency")
    memory.add_argument("--precision", default="fp16")
    memory.add_argument("--batch", type=int, default=2,
                        help="scenes per batch in the footprint model")
    memory.add_argument(
        "--scale", type=float, default=0.25,
        help="scene resolution scale (wall-clock knob; 1.0 = full)",
    )
    memory.add_argument("--seed", type=int, default=0)
    memory.add_argument(
        "--mem-headroom", type=float, default=0.1,
        help="fraction of device DRAM reserved for untraced allocations",
    )
    memory.add_argument(
        "--budget-mib", type=float, default=None,
        help="cap every device's budget at this many MiB (demonstrates "
             "the degradation ladder on tight budgets)",
    )
    memory.add_argument(
        "--json", action="store_true",
        help="print the report as a JSON document instead of tables",
    )
    memory.set_defaults(func=_cmd_memory)

    depgraph = sub.add_parser(
        "depgraph",
        help="launch-level dependence DAG, critical path and invariants",
        description=(
            "Simulate a workload execution, build the launch-level "
            "dependence DAG from the kernels' buffer read/write sets, "
            "report the critical path and available launch parallelism, "
            "and check use-before-def / workspace-lifetime / write-order "
            "invariants plus the serialized-latency lower bound.  With "
            "--verify, the happens-before race detector checks that the "
            "multi-stream schedule orders every dependence edge through "
            "stream program order and explicit sync events.  Exit codes: "
            "0 = clean, 1 = dependence/schedule violations, 2 = usage "
            "error."
        ),
    )
    depgraph.add_argument("workload", help="e.g. SK-M-0.5")
    depgraph.add_argument("--device", default="a100")
    depgraph.add_argument("--precision", default="fp16")
    depgraph.add_argument("--batch", type=int, default=1,
                          help="scenes to trace through the model")
    depgraph.add_argument(
        "--scale", type=float, default=0.25,
        help="scene resolution scale (wall-clock knob; 1.0 = full)",
    )
    depgraph.add_argument("--seed", type=int, default=0)
    depgraph.add_argument(
        "--max-rows", type=int, default=15,
        help="critical-path table rows in text output",
    )
    depgraph.add_argument(
        "--schedule", action="store_true",
        help="list-schedule the DAG onto virtual streams and report the "
             "makespan (critical_path <= scheduled <= serialized)",
    )
    depgraph.add_argument(
        "--gpu-streams", type=int, default=4,
        help="virtual streams available to --schedule (default 4)",
    )
    depgraph.add_argument(
        "--verify", action="store_true",
        help="run the happens-before race detector over the schedule "
             "(built by --schedule/--gpu-streams, or loaded via "
             "--schedule-json); races exit 1",
    )
    depgraph.add_argument(
        "--schedule-json", default=None, metavar="FILE",
        help="verify/inspect an externally supplied schedule document "
             "(the `schedule` fragment of --schedule --json output) "
             "instead of scheduling the trace",
    )
    depgraph.add_argument(
        "--passes", default=None, metavar="P1,P2,...",
        help="run these optimization passes (repro.opt) on the trace "
             "before analysis; names: hoist-maps, fuse, hoist-invariants, "
             "dle, plan-workspace",
    )
    depgraph.add_argument(
        "-O", "--optimize", action="store_true",
        help="run the default optimization pipeline before analysis",
    )
    export = depgraph.add_mutually_exclusive_group()
    export.add_argument(
        "--json", action="store_true",
        help="print the DAG summary + violations as a JSON document",
    )
    export.add_argument(
        "--dot", action="store_true",
        help="print the DAG in Graphviz DOT format",
    )
    depgraph.set_defaults(func=_cmd_depgraph)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
