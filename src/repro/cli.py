"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``devices`` — list the modelled GPUs and their key specs;
* ``workloads`` — list the seven benchmark workloads;
* ``engines`` — list the five sparse convolution engines;
* ``measure`` — run a workload through an engine and report latency
  (optionally a per-layer breakdown);
* ``tune`` — run the Sparse Autotuner for a workload/device and save the
  policy to JSON;
* ``experiments`` — alias of ``python -m repro.experiments``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.utils.format import format_table


def _cmd_devices(_args) -> int:
    from repro.hw import list_devices

    rows = [
        [
            d.name,
            d.arch,
            d.sms,
            f"{d.cuda_core_tflops:g}",
            f"{d.fp16_tensor_tflops:g}" if d.fp16_tensor_tflops else "-",
            f"{d.dram_bw_gbps:g}",
        ]
        for d in list_devices()
    ]
    print(
        format_table(
            ["device", "arch", "SMs", "FP32 TFLOPS", "FP16 TC TFLOPS",
             "DRAM GB/s"],
            rows,
        )
    )
    return 0


def _cmd_workloads(_args) -> int:
    from repro.models import WORKLOADS

    rows = [
        [w.id, w.model_family, w.dataset, w.frames, w.task]
        for w in WORKLOADS.values()
    ]
    print(format_table(["id", "model", "dataset", "frames", "task"], rows))
    return 0


def _cmd_engines(_args) -> int:
    from repro.baselines import ENGINES, get_engine

    rows = []
    for key in ENGINES:
        engine = get_engine(key)
        doc = (type(engine).__doc__ or "").strip().splitlines()[0]
        rows.append([engine.name, doc])
    print(format_table(["engine", "description"], rows))
    return 0


def _cmd_measure(args) -> int:
    from repro.baselines import get_engine, measure_inference
    from repro.models import get_workload

    workload = get_workload(args.workload)
    engine = get_engine(args.engine)
    m = measure_inference(
        engine, workload, args.device, args.precision,
        seeds=tuple(range(args.scenes)),
    )
    print(
        f"{engine.name} on {workload.id} @ {args.device}/{args.precision}: "
        f"{m.mean_ms:.2f} ms mean over {args.scenes} scene(s)"
    )
    parts = ", ".join(
        f"{k} {v / 1e3:.2f} ms" for k, v in sorted(m.breakdown_us.items())
    )
    print(f"breakdown: {parts}")
    if args.layers:
        from repro.gpusim.report import layer_report

        model = workload.build_model()
        model.eval()
        sample = workload.make_input(seed=0)
        ctx = engine.make_context(args.device, args.precision)
        ctx.simulate_only = True
        model(sample, ctx)
        print()
        print(layer_report(ctx.trace, args.device, ctx.precision))
    return 0


def _cmd_tune(args) -> int:
    from repro.models import get_workload
    from repro.tune import SparseAutotuner, save_policy

    workload = get_workload(args.workload)
    model = workload.build_model()
    samples = [workload.make_input(seed=s) for s in range(args.scenes)]
    policy, report = SparseAutotuner().tune(
        model, samples, args.device, args.precision
    )
    print(report.describe())
    if args.output:
        save_policy(policy, args.output)
        print(f"policy saved to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="TorchSparse++ reproduction command-line interface.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list modelled GPUs").set_defaults(
        func=_cmd_devices
    )
    sub.add_parser("workloads", help="list benchmark workloads").set_defaults(
        func=_cmd_workloads
    )
    sub.add_parser("engines", help="list engines").set_defaults(
        func=_cmd_engines
    )

    measure = sub.add_parser("measure", help="measure one engine/workload")
    measure.add_argument("workload", help="e.g. SK-M-0.5")
    measure.add_argument("--engine", default="torchsparse++")
    measure.add_argument("--device", default="a100")
    measure.add_argument("--precision", default="fp16")
    measure.add_argument("--scenes", type=int, default=1)
    measure.add_argument(
        "--layers", action="store_true", help="show a per-layer breakdown"
    )
    measure.set_defaults(func=_cmd_measure)

    tune = sub.add_parser("tune", help="run the Sparse Autotuner")
    tune.add_argument("workload")
    tune.add_argument("--device", default="a100")
    tune.add_argument("--precision", default="fp16")
    tune.add_argument("--scenes", type=int, default=2)
    tune.add_argument("--output", help="save the policy JSON here")
    tune.set_defaults(func=_cmd_tune)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
