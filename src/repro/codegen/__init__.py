"""The Sparse Kernel Generator (Section 3 of the paper).

A metaprogrammer that builds sparse convolution kernels from a dense-GEMM
loop-nest template plus a short sparse-iterator template (Figure 7):

* :mod:`repro.codegen.ir` — a small loop-nest IR with per-node scalar
  instruction costs;
* :mod:`repro.codegen.templates` — the implicit GEMM / fetch-on-demand /
  wgrad kernel templates (the "red + blue + gray" decomposition);
* :mod:`repro.codegen.passes` — the paper's optimizations: loop-invariant
  hoisting (Figure 20), boundary-check elimination via map padding
  (Figure 21), compile-time constant folding (the fixed-shape idealization
  of Figure 8), and double buffering;
* :mod:`repro.codegen.generator` — drives template + passes into a
  :class:`GeneratedKernel` carrying a :class:`repro.kernels.KernelSchedule`
  (consumed by the dataflow kernels) and emitted pseudo-CUDA source;
* :mod:`repro.codegen.tiling` — the tile-size design space and adaptive
  tiling (Section 6.2);
* :mod:`repro.codegen.cost` — achieved-utilization analysis against the
  equivalent-size dense GEMM (Figure 8).
"""

from repro.codegen.ir import ForLoop, IntOp, Load, MemScope, MMA, Predicate, Store
from repro.codegen.generator import GeneratedKernel, SparseKernelGenerator
from repro.codegen.tiling import (
    TILE_CANDIDATES,
    adaptive_schedule,
    enumerate_schedules,
    tune_tile_size,
)
from repro.codegen.cost import achieved_utilization, utilization_vs_cublas

__all__ = [
    "ForLoop",
    "IntOp",
    "Load",
    "MemScope",
    "MMA",
    "Predicate",
    "Store",
    "GeneratedKernel",
    "SparseKernelGenerator",
    "TILE_CANDIDATES",
    "adaptive_schedule",
    "enumerate_schedules",
    "tune_tile_size",
    "achieved_utilization",
    "utilization_vs_cublas",
]
