"""Utilization analysis: generated sparse kernels vs dense GEMM (Figure 8).

"Achieved utilization" is effective FLOP/s divided by the device's peak for
the precision; ``utilization_vs_cublas`` normalises a sparse kernel's
utilization by that of the *equivalent-size dense GEMM* run through the
same machine model (cuBLAS has no sparsity support, so the paper compares
against the dense problem of identical M x K x N)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.codegen.tiling import enumerate_schedules
from repro.gpusim.engine import estimate_trace_us
from repro.gpusim.trace import KernelTrace
from repro.hw.specs import DeviceSpec
from repro.kernels.base import KernelSchedule, dense_gemm_trace
from repro.kernels.implicit_gemm import ImplicitGemmConfig, implicit_gemm
from repro.precision import Precision
from repro.sparse.kmap import KernelMap


def achieved_utilization(
    trace: KernelTrace,
    device: DeviceSpec,
    precision: Precision,
    effective_flops: Optional[float] = None,
) -> float:
    """Effective FLOP/s over peak FLOP/s for a trace.

    ``effective_flops`` defaults to the trace's issued FLOPs; pass the
    useful-work count to exclude redundant computation.
    """
    time_us = estimate_trace_us(trace, device, precision)
    if time_us <= 0:
        return 0.0
    flops = effective_flops if effective_flops is not None else trace.summary().flops
    peak = device.gemm_tflops(precision) * 1e6  # FLOPs per us
    return flops / (time_us * peak)


def utilization_vs_cublas(
    feats: np.ndarray,
    weights: np.ndarray,
    kmap: KernelMap,
    device: DeviceSpec,
    precision: Precision,
    schedule: Optional[KernelSchedule] = None,
    tune: bool = True,
) -> float:
    """Ratio of sparse-kernel utilization to dense cuBLAS utilization.

    Reproduces the Figure 8 experiment: run the layer's implicit GEMM
    (unsorted, kernel only) with either a fixed or a tile-tuned schedule
    and compare against the equivalent-size dense GEMM.  Values >= 1 mean
    the generated sparse kernel matches or beats cuBLAS utilization.
    """
    c_in, c_out = weights.shape[1], weights.shape[2]
    m, k, n = kmap.num_outputs, kmap.volume * c_in, c_out
    config = ImplicitGemmConfig(num_splits=1, sort=False)

    candidates = enumerate_schedules(schedule) if tune else [
        schedule or KernelSchedule()
    ]
    best_sparse = float("inf")
    for cand in candidates:
        _, trace = implicit_gemm(
            feats, weights, kmap, cand, precision, config=config
        )
        kernel_only = trace.filter_name("main")
        best_sparse = min(
            best_sparse, estimate_trace_us(kernel_only, device, precision)
        )

    best_dense = float("inf")
    for cand in enumerate_schedules(schedule):
        best_dense = min(
            best_dense,
            estimate_trace_us(
                dense_gemm_trace(m, k, n, cand, precision), device, precision
            ),
        )
    # Equal effective work (2*M*K*N for dense; the sparse kernel does the
    # same nominal problem with sparsity in A), so utilization ratio is
    # simply the inverse time ratio.
    return best_dense / best_sparse
