"""The Sparse Kernel Generator driver (Section 3).

``SparseKernelGenerator.generate`` instantiates a dataflow template, applies
the requested passes, derives the per-element overheads the performance
model charges (asserting they match the documented constants in
:mod:`repro.kernels.base`), and emits pseudo-CUDA source.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.codegen import passes as P
from repro.codegen.ir import ForLoop
from repro.codegen.source import emit_source, line_count
from repro.codegen.templates import TEMPLATES
from repro.errors import CodegenError
from repro.kernels.base import KernelSchedule


@dataclasses.dataclass(frozen=True)
class GeneratedKernel:
    """Output of the generator: IR, schedule and source for one kernel."""

    name: str
    dataflow: str
    schedule: KernelSchedule
    program: ForLoop
    source: str

    @property
    def address_ops_per_element(self) -> float:
        """Innermost-loop scalar addressing cost, derived from the IR."""
        return P.innermost_address_ops(self.program)

    @property
    def boundary_ops_per_element(self) -> float:
        return P.innermost_boundary_ops(self.program)

    @property
    def source_lines(self) -> int:
        return line_count(self.source)


class SparseKernelGenerator:
    """Generate sparse convolution kernels from dense-GEMM templates.

    The generator's design space is deliberately *only* tile sizes plus the
    pass toggles — the paper's Section 3.2 argument is that this reduced
    space loses nothing (Figure 8) while costing a tiny fraction of a full
    CUTLASS re-implementation.
    """

    #: Residual folded-constant multiply left in fixed-shape innermost loops
    #: (original hand-written kernels do not apply our aggressive hoisting).
    FIXED_SHAPE_RESIDUAL_OPS = 0.5

    def generate(
        self,
        dataflow: str = "implicit_gemm",
        schedule: Optional[KernelSchedule] = None,
        name: Optional[str] = None,
    ) -> GeneratedKernel:
        """Build one kernel.

        Args:
            dataflow: one of ``implicit_gemm``, ``fetch_on_demand``,
                ``wgrad``.
            schedule: tiling + pass toggles; defaults to the library default
                (all optimizations on, dynamic shape).
            name: kernel symbol name; derived from the config if omitted.
        """
        if dataflow not in TEMPLATES:
            raise CodegenError(
                f"unknown template {dataflow!r}; have {sorted(TEMPLATES)}"
            )
        schedule = schedule or KernelSchedule()
        program = TEMPLATES[dataflow](schedule, dynamic_shape=not schedule.fixed_shape)
        if schedule.fixed_shape:
            program = P.constant_fold(program)
            program = P.hoist_loop_invariants(program)
            # Fixed-shape reference kernels keep one folded multiply in the
            # innermost loop (they predate the hoisting pass).
            inner = program.innermost()
            from repro.codegen.ir import IntOp  # local to avoid cycle noise

            inner.body.insert(
                0,
                IntOp(
                    "addrA_fold = addrA * 1  // folded constant multiply",
                    cost=self.FIXED_SHAPE_RESIDUAL_OPS,
                    depends=("ldA",),
                ),
            )
        elif schedule.hoist_invariants:
            program = P.hoist_loop_invariants(program)
        if schedule.pad_maps or schedule.fixed_shape:
            program = P.eliminate_boundary_checks(program)
        if schedule.double_buffer:
            program = P.double_buffer(program)

        kernel_name = name or (
            f"{dataflow}_m{schedule.tile_m}n{schedule.tile_n}k{schedule.tile_k}"
        )
        source = emit_source(program, kernel_name)
        kernel = GeneratedKernel(
            name=kernel_name,
            dataflow=dataflow,
            schedule=schedule,
            program=program,
            source=source,
        )
        self._check_consistency(kernel)
        return kernel

    @staticmethod
    def _check_consistency(kernel: GeneratedKernel) -> None:
        """The IR-derived overheads must match the schedule's documented
        constants — the performance model and the generated code agree."""
        schedule = kernel.schedule
        if kernel.dataflow == "wgrad":
            # wgrad loads two indirect operands; per-element costs halve.
            return
        derived = kernel.address_ops_per_element
        documented = schedule.address_ops_per_element
        if abs(derived - documented) > 1e-6:
            raise CodegenError(
                f"IR addressing cost {derived} disagrees with schedule "
                f"constant {documented} for {kernel.name}"
            )
        derived_b = kernel.boundary_ops_per_element
        documented_b = schedule.boundary_ops_per_element
        if abs(derived_b - documented_b) > 1e-6:
            raise CodegenError(
                f"IR boundary cost {derived_b} disagrees with schedule "
                f"constant {documented_b} for {kernel.name}"
            )

    def engineering_cost_report(self) -> Dict[str, int]:
        """Source-line counts for the generator's artifacts vs SpConv v2.

        The paper reports the SpConv v2 metaprogrammer at >40k lines and
        TorchSparse++'s generator at ~5% of that (Figure 23 discussion).
        """
        import inspect

        from repro.codegen import ir, passes, source, templates

        own = sum(
            len(inspect.getsource(m).splitlines())
            for m in (ir, passes, source, templates)
        ) + len(inspect.getsource(type(self)).splitlines())
        return {
            "torchsparsepp_generator_lines": own,
            "spconv2_metaprogrammer_lines": 40000,
        }
