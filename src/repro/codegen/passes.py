"""Compiler passes over the kernel-template IR (Section 3.2).

Each pass is a pure tree transformation returning a new loop nest; the
generator composes them and derives the final :class:`KernelSchedule`
overheads from the transformed IR.
"""

from __future__ import annotations

import copy
from typing import List

from repro.codegen.ir import ForLoop, IntOp, Load, MMA, Node, Predicate, Store
from repro.codegen.templates import INNER_VAR
from repro.errors import CodegenError


def hoist_loop_invariants(root: ForLoop) -> ForLoop:
    """Move innermost-loop IntOps that do not depend on the innermost
    induction variable up to the enclosing loop (Figure 20).

    Predicates are *not* hoisted: the boundary check guards a map access
    whose address changes every K iteration, so "loop invariant hoisting
    does not apply in this case" (Section 3.2) — only padding removes it.
    """
    root = copy.deepcopy(root)
    inner = root.innermost()
    if inner is root:
        return root
    parent = _parent_of(root, inner)
    kept: List[Node] = []
    hoisted: List[Node] = []
    for node in inner.body:
        if isinstance(node, IntOp) and INNER_VAR not in node.depends:
            hoisted.append(node)
        else:
            kept.append(node)
    inner.body = kept
    at = parent.body.index(inner)
    parent.body[at:at] = hoisted
    return root


def eliminate_boundary_checks(root: ForLoop) -> ForLoop:
    """Remove map-access boundary predicates, keeping their bodies.

    Legal only when the map's first dimension is padded to a multiple of
    ``cta_M`` (Figure 21) so every access is in bounds by construction; the
    caller asserts that precondition via ``KernelSchedule.pad_maps``.
    """
    root = copy.deepcopy(root)

    def strip(body: List[Node]) -> List[Node]:
        out: List[Node] = []
        for node in body:
            if isinstance(node, Predicate):
                out.extend(strip(node.body))
            elif isinstance(node, ForLoop):
                node.body = strip(node.body)
                out.append(node)
            else:
                out.append(node)
        return out

    root.body = strip(root.body)
    return root


def constant_fold(root: ForLoop) -> ForLoop:
    """Fold dynamic-shape divide/modulo into multiply-shift sequences.

    Models compile-time constant folding for a *fixed-shape* kernel: the
    expensive division against an RF-resident ``C_in`` becomes a cheap
    reciprocal multiply.  Only valid when the workload shape is known at
    compile time — impossible to deploy for point clouds (Section 3.2),
    hence its role as the idealized reference of Figure 8.
    """
    root = copy.deepcopy(root)
    for node in root.walk():
        if isinstance(node, IntOp) and ("/" in node.expr or "%" in node.expr):
            node.cost = min(node.cost, 1.0)
            node.expr += "  // folded: C_in is a compile-time constant"
    return root


def double_buffer(root: ForLoop) -> ForLoop:
    """Mark the K-tile loop as software pipelined (loads overlap MMA)."""
    root = copy.deepcopy(root)
    k_loop = root.find_loop("k_inner")
    if k_loop is None:
        raise CodegenError("template has no k_inner loop to pipeline")
    k_loop.pipelined = True
    return root


def innermost_address_ops(root: ForLoop) -> float:
    """Scalar addressing cost per innermost iteration (IntOps only)."""
    inner = root.innermost()
    return sum(n.cost for n in inner.body if isinstance(n, IntOp))


def innermost_boundary_ops(root: ForLoop) -> float:
    """Boundary-check cost per innermost iteration (Predicates only)."""
    inner = root.innermost()
    return sum(n.cost for n in inner.body if isinstance(n, Predicate))


def count_nodes(root: ForLoop) -> dict:
    """Node census (used in tests and the engineering-cost report)."""
    census = {"loops": 0, "intops": 0, "loads": 0, "stores": 0,
              "mmas": 0, "predicates": 0}
    for node in root.walk():
        if isinstance(node, ForLoop):
            census["loops"] += 1
        elif isinstance(node, IntOp):
            census["intops"] += 1
        elif isinstance(node, Load):
            census["loads"] += 1
        elif isinstance(node, Store):
            census["stores"] += 1
        elif isinstance(node, MMA):
            census["mmas"] += 1
        elif isinstance(node, Predicate):
            census["predicates"] += 1
    return census


def _parent_of(root: ForLoop, target: ForLoop) -> ForLoop:
    for node in root.walk():
        if isinstance(node, ForLoop) and target in node.body:
            return node
        if isinstance(node, Predicate) and target in node.body:
            raise CodegenError("cannot hoist across a predicate boundary")
    raise CodegenError("target loop not found in nest")
