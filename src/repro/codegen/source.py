"""Pseudo-CUDA source emission from the kernel IR.

The emitted text mirrors Figure 7's color coding with comments:
``// [gray]`` constant code, ``// [red]`` the sparse-iterator template,
``// [blue]`` compiler-generated MMA subroutines.  It exists so the
"engineering cost" comparison against SpConv v2's 40k-line metaprogrammer
(Section 2.3, Figure 23) is measurable on real artifacts.
"""

from __future__ import annotations

from typing import List

from repro.codegen.ir import ForLoop, IntOp, Load, MMA, Node, Predicate, Store

_INDENT = "  "


def _emit_node(node: Node, depth: int, lines: List[str]) -> None:
    pad = _INDENT * depth
    if isinstance(node, ForLoop):
        pragma = ""
        if node.unrolled:
            lines.append(f"{pad}#pragma unroll")
        if node.pipelined:
            lines.append(f"{pad}// software pipelined: double-buffered smem")
        lines.append(f"{pad}for (int {node.var} = 0; {node.var} < {node.extent};"
                     f" ++{node.var}) {{{pragma}")
        for child in node.body:
            _emit_node(child, depth + 1, lines)
        lines.append(f"{pad}}}")
    elif isinstance(node, IntOp):
        lines.append(f"{pad}int {node.expr};  // [red] {node.cost:g} slots")
    elif isinstance(node, Load):
        tag = "[red]" if node.indirect else "[gray]"
        scope = node.scope.value
        lines.append(f"{pad}{node.target} = {node.source};  // {tag} {scope} load")
    elif isinstance(node, Store):
        op = "atomicAdd" if node.atomic else "st.global"
        lines.append(f"{pad}{op}({node.target}, {node.source});  // [red]")
    elif isinstance(node, MMA):
        lines.append(f"{pad}mma.sync.aligned.{node.shape}(accum, smem_A, smem_B);"
                     f"  // [blue] {node.comment}")
    elif isinstance(node, Predicate):
        lines.append(f"{pad}if ({node.cond}) {{  // [red] boundary check,"
                     f" {node.cost:g} slots")
        for child in node.body:
            _emit_node(child, depth + 1, lines)
        lines.append(f"{pad}}}")
    else:  # pragma: no cover - exhaustive over Node
        raise TypeError(f"unknown IR node {node!r}")


def emit_source(root: ForLoop, name: str) -> str:
    """Render a kernel loop nest as annotated pseudo-CUDA."""
    lines = [
        f"__global__ void {name}(",
        "    const half* __restrict__ X_in, const half* __restrict__ W,",
        "    const int* __restrict__ nbmap, half* __restrict__ X_out,",
        "    int M, int N, int C_in, int V) {  // [gray]",
    ]
    _emit_node(root, 1, lines)
    lines.append("}")
    return "\n".join(lines)


def line_count(source: str) -> int:
    """Non-blank source lines (the engineering-cost metric)."""
    return sum(1 for line in source.splitlines() if line.strip())
