"""Kernel templates: the fixed metaprogramming skeletons of Figure 7.

Each template builds an *unoptimized* loop-nest IR in which every addressing
operation sits in the innermost ``ldA`` loop, exactly like a naive
dynamic-shape conversion of a dense GEMM kernel (the 1.5-1.7x-slow starting
point of Figure 20).  The passes in :mod:`repro.codegen.passes` then hoist,
fold and strip it into the shipped kernel.

Node costs are issue-slot estimates on the integer pipe: adds/shifts 1,
dynamic divide/modulo 4 (multi-instruction on GPUs), boundary predicate 4
(compare + setp + branch + reconvergence).
"""

from __future__ import annotations

from repro.codegen.ir import ForLoop, IntOp, Load, MemScope, MMA, Predicate, Store
from repro.kernels.base import KernelSchedule

#: Induction variable of the innermost per-thread load loop.
INNER_VAR = "ldA"


def _a_operand_loads(dynamic_shape: bool) -> list:
    """The red code of Figure 7: sparse A-operand loading via the map.

    ``dynamic_shape`` keeps ``C_in`` as a runtime register operand, making
    the divide/modulo genuinely expensive; a fixed-shape build replaces them
    with folded multiply-shift sequences (see ``passes.constant_fold``).
    """
    div_cost = 4.0 if dynamic_shape else 1.0
    return [
        IntOp("k = k_base + ldA * LD_K", cost=1.0, depends=("k_inner",)),
        IntOp("off = k / C_in", cost=div_cost, depends=("k_inner",)),
        IntOp("cin = k % C_in", cost=div_cost, depends=("k_inner",)),
        IntOp("map_addr = m_idx * V + off", cost=1.0, depends=("k_inner", "m")),
        Predicate(
            cond="m_idx < M",  # removed when the map is padded to cta_M
            body=[Load("row", "nbmap[map_addr]", MemScope.DRAM, indirect=True)],
            cost=4.0,
            depends=("m",),
        ),
        IntOp("addrA_base = row * C_in + cin", cost=0.5, depends=("k_inner",)),
        IntOp("addrA = addrA_base + ldA", cost=1.0, depends=(INNER_VAR,)),
        IntOp("lane = lane_id ^ swizzle(ldA)", cost=0.5, depends=(INNER_VAR,)),
        Load("smem_A[lane]", "row >= 0 ? X_in[addrA] : 0", MemScope.SMEM,
             indirect=True),
    ]


def implicit_gemm_template(
    schedule: KernelSchedule, dynamic_shape: bool = True
) -> ForLoop:
    """Implicit GEMM kernel loop nest (Section 3.1, Table 1 row 4)."""
    inner = ForLoop(
        var=INNER_VAR,
        extent="LD_A_THR",
        body=_a_operand_loads(dynamic_shape),
        unrolled=True,
    )
    k_inner = ForLoop(
        var="k_inner",
        extent=f"C_in / {schedule.tile_k}",
        body=[
            inner,
            # Gray code: dense B (weights) loading, reused from dense GEMM.
            Load("smem_B", "W[k, n_idx]", MemScope.SMEM),
            # Blue code: compiler-generated on-chip MMA subroutine.
            MMA(shape="m16n8k16"),
        ],
    )
    k_outer = ForLoop(
        var="k_outer",
        extent="V",
        body=[
            IntOp("k_base = k_outer * C_in", cost=1.0, depends=("k_outer",)),
            k_inner,
        ],
    )
    return ForLoop(
        var="cta",
        extent=f"ceil(M/{schedule.tile_m}) * ceil(N/{schedule.tile_n})",
        body=[
            k_outer,
            Store("X_out[m_idx, n_idx]", "accum", MemScope.DRAM),
        ],
    )


def fetch_on_demand_template(
    schedule: KernelSchedule, dynamic_shape: bool = True
) -> ForLoop:
    """Block-fused fetch-on-demand loop nest (Table 1 row 3).

    Structurally the implicit GEMM template with the offset loop promoted
    to a block dimension and atomic scattered write-back.
    """
    inner = ForLoop(
        var=INNER_VAR,
        extent="LD_A_THR",
        body=_a_operand_loads(dynamic_shape),
        unrolled=True,
    )
    k_inner = ForLoop(
        var="k_inner",
        extent=f"C_in / {schedule.tile_k}",
        body=[
            inner,
            Load("smem_B", "W[delta][k, n_idx]", MemScope.SMEM),
            MMA(shape="m16n8k16"),
        ],
    )
    return ForLoop(
        var="cta",
        extent="sum(ceil(|M_delta|/tile_m)) * ceil(N/tile_n)",
        body=[
            IntOp("delta = block_to_offset[cta]", cost=1.0, depends=("cta",)),
            k_inner,
            Store(
                "X_out[out_idx[pair], n_idx]",
                "accum",
                MemScope.DRAM,
                atomic=True,
            ),
        ],
    )


def wgrad_template(
    schedule: KernelSchedule, dynamic_shape: bool = True
) -> ForLoop:
    """Weight-gradient loop nest: the K loop iterates over output points,
    so *both* operands are loaded indirectly in the innermost loop
    (Section 6.2: why online reordering hurts wgrad most)."""
    body = _a_operand_loads(dynamic_shape)
    body.append(
        Load("smem_B[lane]", "row >= 0 ? dY[addrB] : 0", MemScope.SMEM,
             indirect=True)
    )
    inner = ForLoop(var=INNER_VAR, extent="LD_A_THR", body=body, unrolled=True)
    k_loop = ForLoop(
        var="k_inner",
        extent=f"N_out / {schedule.tile_k}",
        body=[inner, MMA(shape="m16n8k16")],
    )
    return ForLoop(
        var="cta",
        extent=f"V * ceil(C_in/{schedule.tile_m}) * ceil(C_out/{schedule.tile_n})",
        body=[k_loop, Store("dW[delta][ci, co]", "accum", MemScope.DRAM)],
    )


TEMPLATES = {
    "implicit_gemm": implicit_gemm_template,
    "fetch_on_demand": fetch_on_demand_template,
    "wgrad": wgrad_template,
}
