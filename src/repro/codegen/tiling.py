"""Tile-size design space and adaptive tiling (Sections 3.2 and 6.2).

The generator's only tunable dimensions are the CTA tile sizes; the paper's
Figure 8 experiment shows this reduced space already reaches (or exceeds)
cuBLAS utilization for equivalent-size GEMMs.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.hw.specs import DeviceSpec
from repro.kernels.base import (
    LARGE_TILE,
    SMALL_TILE,
    KernelSchedule,
    dense_gemm_trace,
)
from repro.gpusim.engine import estimate_trace_us
from repro.precision import Precision

#: Legal (tile_m, tile_n, tile_k) triples — shapes CUTLASS-style kernels
#: support with 128-thread CTAs and half-precision smem budgets.
TILE_CANDIDATES: Tuple[Tuple[int, int, int], ...] = (
    (256, 128, 32),
    (128, 256, 32),
    (128, 128, 32),
    (128, 64, 32),
    (64, 128, 32),
    (64, 64, 32),
    (64, 32, 32),
    (32, 64, 32),
    (64, 64, 16),
    (64, 32, 16),
    (32, 32, 16),
    (16, 32, 16),
)

#: Workload MACs above which adaptive tiling picks the large tile
#: (~threshold where the large tile's occupancy loss is amortized).
ADAPTIVE_MAC_THRESHOLD = 5.0e8


def enumerate_schedules(
    base: Optional[KernelSchedule] = None,
) -> List[KernelSchedule]:
    """All tile-size variants of ``base`` (other options unchanged)."""
    base = base or KernelSchedule()
    out = []
    for tile_m, tile_n, tile_k in TILE_CANDIDATES:
        out.append(
            dataclasses.replace(
                base,
                tile_m=tile_m,
                tile_n=tile_n,
                tile_k=tile_k,
                warp_rows=min(base.warp_rows, tile_m),
            )
        )
    return out


def adaptive_schedule(
    macs: float,
    base: Optional[KernelSchedule] = None,
    shape: Optional[Tuple[int, int, int]] = None,
    device: Optional[DeviceSpec] = None,
) -> KernelSchedule:
    """Pick the large or small tile configuration per workload (Section 6.2).

    With a ``shape=(m, n, k)`` the choice maximises modelled MMA efficiency
    times occupancy for that GEMM; without one it falls back to the MAC
    threshold.  Large tiles maximise data reuse on compute-heavy layers;
    small tiles keep thin layers occupancy-bound instead of tile-quantized.
    """
    if shape is not None:
        from repro.gpusim.engine import wave_efficiency
        from repro.kernels.base import gemm_ctas, gemm_efficiency

        m, n, k = shape
        concurrent = device.concurrent_ctas if device else 164

        def score(schedule: KernelSchedule) -> float:
            ctas = gemm_ctas(max(m, 1), max(n, 1), schedule)
            return gemm_efficiency(m, n, k, schedule) * wave_efficiency(
                ctas, concurrent
            )

        chosen = max((LARGE_TILE, SMALL_TILE), key=score)
    else:
        chosen = LARGE_TILE if macs >= ADAPTIVE_MAC_THRESHOLD else SMALL_TILE
    if base is None:
        return chosen
    return dataclasses.replace(
        base,
        tile_m=chosen.tile_m,
        tile_n=chosen.tile_n,
        tile_k=chosen.tile_k,
        warp_rows=min(base.warp_rows, chosen.tile_m),
    )


def tune_tile_size(
    m: int,
    k: int,
    n: int,
    device: DeviceSpec,
    precision: Precision,
    base: Optional[KernelSchedule] = None,
) -> KernelSchedule:
    """Exhaustively pick the fastest tile size for an ``m x k x n`` GEMM.

    This is the generator-side tuner used by the Figure 8 experiment; the
    full Sparse Autotuner (:mod:`repro.tune`) wraps it with dataflow and
    split choices and end-to-end measurement.
    """
    best = None
    best_time = float("inf")
    for schedule in enumerate_schedules(base):
        time = estimate_trace_us(
            dense_gemm_trace(m, k, n, schedule, precision), device, precision
        )
        if time < best_time:
            best_time = time
            best = schedule
    assert best is not None
    return best
