"""Synthetic LiDAR data substrate.

The paper's datasets (SemanticKITTI, nuScenes, Waymo) are not available in
this environment; :mod:`repro.data.lidar` ray-casts a 64- or 32-beam
spinning LiDAR over procedurally generated driving scenes, and
:mod:`repro.data.datasets` packages the scans into dataset configurations
matching the real benchmarks' point counts, spatial extents, voxel sizes and
multi-frame superposition (Section 5.1).  Sparse convolution performance
depends on exactly those geometric statistics, not on semantic content.
"""

from repro.data.lidar import LidarConfig, Scene, lidar_scan
from repro.data.datasets import (
    DATASETS,
    DatasetConfig,
    make_sample,
    make_batch,
)

__all__ = [
    "LidarConfig",
    "Scene",
    "lidar_scan",
    "DATASETS",
    "DatasetConfig",
    "make_sample",
    "make_batch",
]
