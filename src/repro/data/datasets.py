"""Dataset configurations matching the paper's benchmarks (Section 5.1).

* SemanticKITTI — 64-beam, 0.05 m voxels, 4 input channels (xyz + remission);
* nuScenes — 32-beam ("cheaper" sensor), 0.1 m voxels, multi-frame variants
  superimpose history sweeps shifted by ego motion;
* Waymo — 64-beam, 0.1 m voxels (the CenterPoint quantization the paper
  quotes), 5 input channels.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

from repro.data.lidar import LIDAR_32_BEAM, LIDAR_64_BEAM, LidarConfig, Scene, lidar_scan
from repro.errors import ConfigError
from repro.sparse.quantize import sparse_quantize
from repro.sparse.tensor import SparseTensor, batch_sparse_tensors
from repro.utils.rng import SeedLike, as_rng


@dataclasses.dataclass(frozen=True)
class DatasetConfig:
    """One synthetic benchmark dataset."""

    name: str
    lidar: LidarConfig
    voxel_size: Tuple[float, float, float]
    in_channels: int
    ego_speed_mps: float = 6.0  # ego displacement between 0.1 s sweeps

    def __post_init__(self) -> None:
        if self.in_channels < 4:
            raise ConfigError("need at least xyz + intensity channels")


SEMANTIC_KITTI = DatasetConfig(
    name="semantickitti",
    lidar=LIDAR_64_BEAM,
    voxel_size=(0.05, 0.05, 0.05),
    in_channels=4,
)

NUSCENES = DatasetConfig(
    name="nuscenes",
    lidar=LIDAR_32_BEAM,
    voxel_size=(0.1, 0.1, 0.1),
    in_channels=4,
)

WAYMO = DatasetConfig(
    name="waymo",
    lidar=LIDAR_64_BEAM,
    voxel_size=(0.1, 0.1, 0.1),
    in_channels=5,
)

DATASETS: Dict[str, DatasetConfig] = {
    d.name: d for d in (SEMANTIC_KITTI, NUSCENES, WAYMO)
}


def _point_features(
    points: np.ndarray, channels: int, frame_offset: float
) -> np.ndarray:
    """Per-point features: xyz-relative + intensity (+ timestamp lag)."""
    feats = [points[:, :3] * 0.02, points[:, 3:4]]
    extra = channels - 4
    if extra > 0:
        feats.append(
            np.full((len(points), extra), frame_offset, dtype=np.float64)
        )
    return np.concatenate(feats, axis=1)[:, :channels]


def make_sample(
    dataset: "DatasetConfig | str",
    frames: int = 1,
    seed: SeedLike = 0,
    batch_index: int = 0,
    scale: float = 1.0,
) -> SparseTensor:
    """Generate one voxelized sample (optionally multi-frame).

    Multi-frame samples superimpose ``frames`` sweeps of the same scene
    with the ego vehicle displaced between sweeps, increasing LiDAR density
    exactly as the paper's multi-frame CenterPoint / MinkUNet variants do.

    ``scale`` < 1 reduces the scanner's azimuth resolution proportionally —
    a fast-iteration knob for tests and demos (full-resolution benchmarks
    leave it at 1).
    """
    if isinstance(dataset, str):
        if dataset not in DATASETS:
            raise ConfigError(
                f"unknown dataset {dataset!r}; have {sorted(DATASETS)}"
            )
        dataset = DATASETS[dataset]
    if frames < 1:
        raise ConfigError("frames must be >= 1")
    if not 0.0 < scale <= 1.0:
        raise ConfigError(f"scale must be in (0, 1], got {scale}")
    lidar = dataset.lidar
    if scale < 1.0:
        lidar = dataclasses.replace(
            lidar,
            azimuth_steps=max(16, int(lidar.azimuth_steps * scale)),
        )
    rng = as_rng(seed)
    scene = Scene.generate(rng)
    all_points: List[np.ndarray] = []
    all_feats: List[np.ndarray] = []
    for f in range(frames):
        offset = (-dataset.ego_speed_mps * 0.1 * f, 0.0)
        sweep = lidar_scan(lidar, scene, rng, ego_offset=offset)
        all_points.append(sweep[:, :3])
        all_feats.append(
            _point_features(sweep, dataset.in_channels, frame_offset=0.1 * f)
        )
    points = np.concatenate(all_points, axis=0)
    feats = np.concatenate(all_feats, axis=0)
    if len(points) == 0:
        # A physical sweep always returns at least the ego's own ground
        # patch.  At tiny ``scale`` a sparse scene can miss every ray;
        # an empty tensor is degenerate everywhere downstream (zero-size
        # kernel maps, empty traces), so keep one origin voxel.
        points = np.zeros((1, 3))
        feats = np.zeros((1, dataset.in_channels))
    coords, reduced = sparse_quantize(
        points, dataset.voxel_size, features=feats,
        batch_index=batch_index, reduce="mean",
    )
    return SparseTensor(coords, reduced.astype(np.float32))


def make_batch(
    dataset: "DatasetConfig | str",
    batch_size: int,
    frames: int = 1,
    seed: SeedLike = 0,
) -> SparseTensor:
    """A batch of independent samples (training uses batch size 2)."""
    rng = as_rng(seed)
    samples = [
        make_sample(dataset, frames=frames, seed=rng, batch_index=i)
        for i in range(batch_size)
    ]
    return batch_sparse_tensors(samples)
