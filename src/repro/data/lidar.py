"""Synthetic spinning-LiDAR scanner over procedural driving scenes.

A scene is a ground plane plus a set of axis-aligned boxes (vehicles,
buildings, poles).  The scanner casts one ray per (beam elevation, azimuth
step) from a roof-mounted sensor and returns the nearest hit, yielding point
clouds with the surface structure real scans have: dense rings on the
ground, vertical stripes on obstacles, and range-dependent sparsity — the
neighbour statistics (4-10 neighbours per voxel) that sparse convolution
performance depends on.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng


@dataclasses.dataclass(frozen=True)
class LidarConfig:
    """Scanner parameters.

    Defaults model a 64-beam sensor (SemanticKITTI / Waymo class); the
    nuScenes configuration uses 32 beams and fewer azimuth steps.
    """

    beams: int = 64
    azimuth_steps: int = 2048
    max_range: float = 80.0
    min_range: float = 2.0
    vertical_fov_deg: Tuple[float, float] = (-24.8, 2.0)
    sensor_height: float = 1.8
    range_noise_std: float = 0.02
    dropout: float = 0.08  # diffuse/no-return rays

    def __post_init__(self) -> None:
        if self.beams < 1 or self.azimuth_steps < 1:
            raise ValueError("beams and azimuth_steps must be >= 1")
        if self.max_range <= self.min_range:
            raise ValueError("max_range must exceed min_range")


@dataclasses.dataclass
class Box:
    """An axis-aligned obstacle."""

    center: np.ndarray  # (3,)
    size: np.ndarray  # (3,) full extents

    @property
    def lo(self) -> np.ndarray:
        return self.center - self.size / 2

    @property
    def hi(self) -> np.ndarray:
        return self.center + self.size / 2


@dataclasses.dataclass
class Scene:
    """A procedurally generated driving scene."""

    boxes: List[Box]
    ground_z: float = 0.0

    @classmethod
    def generate(
        cls,
        seed: SeedLike = None,
        num_vehicles: int = 24,
        num_buildings: int = 10,
        num_poles: int = 16,
        extent: float = 70.0,
    ) -> "Scene":
        """Random scene: cars near the road, buildings at the sides, poles."""
        rng = as_rng(seed)
        boxes: List[Box] = []
        for _ in range(num_vehicles):
            center_xy = rng.uniform(-extent * 0.7, extent * 0.7, 2)
            size = rng.uniform([3.5, 1.6, 1.4], [5.5, 2.2, 2.0])
            boxes.append(
                Box(np.array([*center_xy, size[2] / 2]), np.asarray(size))
            )
        for _ in range(num_buildings):
            side = rng.choice([-1.0, 1.0])
            center = np.array(
                [
                    rng.uniform(-extent, extent),
                    side * rng.uniform(14.0, extent * 0.9),
                    0.0,
                ]
            )
            size = rng.uniform([8.0, 6.0, 5.0], [25.0, 15.0, 18.0])
            center[2] = size[2] / 2
            boxes.append(Box(center, np.asarray(size)))
        for _ in range(num_poles):
            center_xy = rng.uniform(-extent * 0.8, extent * 0.8, 2)
            size = np.array([0.3, 0.3, rng.uniform(4.0, 8.0)])
            boxes.append(
                Box(np.array([*center_xy, size[2] / 2]), size)
            )
        # Perimeter walls (tree lines / facades): horizontal rays return
        # instead of escaping, as they do in real urban scans.
        wall_h = 12.0
        for axis, sign in ((0, 1), (0, -1), (1, 1), (1, -1)):
            center = np.zeros(3)
            center[axis] = sign * extent
            center[2] = wall_h / 2
            size = np.array([2.0, 2 * extent + 4.0, wall_h])
            if axis == 1:
                size[[0, 1]] = size[[1, 0]]
            boxes.append(Box(center, size))
        return cls(boxes=boxes)


def _ray_box_t(
    origins: np.ndarray, dirs: np.ndarray, box: Box
) -> np.ndarray:
    """Slab-method ray/AABB intersection; inf where missed.

    ``origins`` is ``(3,)``, ``dirs`` is ``(R, 3)``; returns ``(R,)`` entry
    distances.
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        inv = 1.0 / dirs
        t0 = (box.lo - origins) * inv
        t1 = (box.hi - origins) * inv
    t_near = np.nanmax(np.minimum(t0, t1), axis=1)
    t_far = np.nanmin(np.maximum(t0, t1), axis=1)
    hit = (t_far >= t_near) & (t_far > 0)
    t = np.where(hit, np.maximum(t_near, 0.0), np.inf)
    return t


def lidar_scan(
    config: LidarConfig = LidarConfig(),
    scene: Optional[Scene] = None,
    seed: SeedLike = None,
    ego_offset: Tuple[float, float] = (0.0, 0.0),
) -> np.ndarray:
    """Simulate one LiDAR sweep; returns ``(N, 4)`` of xyz + intensity.

    ``ego_offset`` shifts the sensor in the scene (multi-frame sequences
    move the ego vehicle between sweeps, as real multi-frame models see).
    """
    rng = as_rng(seed)
    if scene is None:
        scene = Scene.generate(rng)

    lo_deg, hi_deg = config.vertical_fov_deg
    elevations = np.deg2rad(np.linspace(lo_deg, hi_deg, config.beams))
    azimuths = np.linspace(0, 2 * math.pi, config.azimuth_steps, endpoint=False)
    el, az = np.meshgrid(elevations, azimuths, indexing="ij")
    dirs = np.stack(
        [
            np.cos(el) * np.cos(az),
            np.cos(el) * np.sin(az),
            np.sin(el),
        ],
        axis=-1,
    ).reshape(-1, 3)
    origin = np.array(
        [ego_offset[0], ego_offset[1], config.sensor_height + scene.ground_z]
    )

    # Ground-plane hits.
    dz = dirs[:, 2]
    with np.errstate(divide="ignore"):
        t_ground = np.where(
            dz < -1e-6, (scene.ground_z - origin[2]) / dz, np.inf
        )
    t_best = t_ground
    for box in scene.boxes:
        t_best = np.minimum(t_best, _ray_box_t(origin, dirs, box))

    valid = (t_best > config.min_range) & (t_best < config.max_range)
    keep = rng.random(len(dirs)) > config.dropout
    valid &= keep
    t_hit = t_best[valid] + rng.normal(
        0.0, config.range_noise_std, np.count_nonzero(valid)
    )
    points = origin + dirs[valid] * t_hit[:, np.newaxis]
    intensity = np.clip(
        rng.normal(0.3, 0.15, len(points))
        + 0.4 * (points[:, 2] > 0.5),  # obstacles reflect brighter
        0.0,
        1.0,
    )
    return np.concatenate([points, intensity[:, np.newaxis]], axis=1)


#: Preset scanner configurations matching the paper's sensor classes.
LIDAR_64_BEAM = LidarConfig(beams=64, azimuth_steps=2048, max_range=80.0)
LIDAR_32_BEAM = LidarConfig(
    beams=32, azimuth_steps=1090, max_range=70.0,
    vertical_fov_deg=(-30.0, 10.0),
)
