"""Exception hierarchy for the TorchSparse++ reproduction library."""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ShapeError(ReproError):
    """An array or tensor had an unexpected shape."""


class ConfigError(ReproError):
    """An invalid configuration was supplied (dataflow, tiling, tuner ...)."""


class DeviceError(ReproError):
    """An unknown device was requested or a device spec is inconsistent."""


class MapError(ReproError):
    """Kernel-map construction failed or maps are inconsistent."""


class CodegenError(ReproError):
    """The Sparse Kernel Generator was asked to build an invalid program."""


class GraphError(ReproError):
    """A heterogeneous graph is malformed."""


class AdmissionError(ReproError):
    """The serving runtime rejected a model at admission (static lint
    found error-level findings)."""


class SimulatedOOMError(ReproError):
    """A modeled execution would not fit in the device's DRAM budget.

    Raised by the simulator when a trace's peak workspace plus the resident
    features/weights exceeds the (headroom-adjusted) capacity of the device.
    Carries the modeled numbers so callers can plan a degradation ladder.
    """

    def __init__(self, message: str, *, peak_bytes: float = 0.0,
                 budget_bytes: float = 0.0) -> None:
        super().__init__(message)
        self.peak_bytes = peak_bytes
        self.budget_bytes = budget_bytes
