"""Exception hierarchy for the TorchSparse++ reproduction library."""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ShapeError(ReproError):
    """An array or tensor had an unexpected shape."""


class ConfigError(ReproError):
    """An invalid configuration was supplied (dataflow, tiling, tuner ...)."""


class DeviceError(ReproError):
    """An unknown device was requested or a device spec is inconsistent."""


class MapError(ReproError):
    """Kernel-map construction failed or maps are inconsistent."""


class CodegenError(ReproError):
    """The Sparse Kernel Generator was asked to build an invalid program."""


class GraphError(ReproError):
    """A heterogeneous graph is malformed."""


class AdmissionError(ReproError):
    """The serving runtime rejected a model at admission (static lint
    found error-level findings)."""
