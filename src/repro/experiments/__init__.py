"""Experiment reproductions: one module per table/figure of the paper.

Every module exposes ``run(quick=True) -> ExperimentResult``; ``quick``
trims the grid (fewer devices/precisions/workloads/scenes) for CI-speed
runs while the full grid reproduces the complete table or figure.  Use
``python -m repro.experiments <name> [--full]`` from the command line, or
the pytest-benchmark wrappers under ``benchmarks/``.
"""

from repro.experiments.common import ExperimentResult, workload_fixture

EXPERIMENTS = (
    "fig08_utilization",
    "fig11_redundancy",
    "fig14_inference",
    "fig15_training",
    "fig16_graph",
    "fig17_sorting",
    "fig18_hybrid",
    "fig19_reorder",
    "fig20_hoisting",
    "fig21_padding",
    "fig22_binding",
    "fig23_summary",
    "tab02_pointacc",
    "tab03_e2e_splits",
    "tab04_kernel_splits",
    "tab05_split_space",
    "sec62_adaptive_tiling",
    "sec63_microarch",
    "ext_mae_sparsity",
    "ext_proxy_gap",
    "ext_flatformer",
)

__all__ = ["ExperimentResult", "workload_fixture", "EXPERIMENTS"]
