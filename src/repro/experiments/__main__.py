"""Command-line experiment runner.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig14            # quick grid
    python -m repro.experiments fig14 --full     # the paper's full grid
    python -m repro.experiments all              # every experiment, quick
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time

from repro.experiments import EXPERIMENTS


def _resolve(name: str) -> str:
    matches = [e for e in EXPERIMENTS if e == name or e.startswith(name)]
    if len(matches) != 1:
        known = ", ".join(EXPERIMENTS)
        raise SystemExit(
            f"unknown or ambiguous experiment {name!r}; known: {known}"
        )
    return matches[0]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment name (e.g. fig14), a unique prefix, 'all', "
        "or 'list'",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the full grid instead of the quick subset",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in EXPERIMENTS:
            module = importlib.import_module(f"repro.experiments.{name}")
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:24s} {doc}")
        return 0

    names = EXPERIMENTS if args.experiment == "all" else (
        _resolve(args.experiment),
    )
    for name in names:
        module = importlib.import_module(f"repro.experiments.{name}")
        start = time.perf_counter()
        result = module.run(quick=not args.full)
        elapsed = time.perf_counter() - start
        print(result.to_table())
        print(f"[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
