"""Shared experiment infrastructure."""

from __future__ import annotations

import dataclasses
import functools
from typing import Dict, List, Tuple

from repro.models.registry import Workload, get_workload
from repro.nn.module import Module
from repro.sparse.tensor import SparseTensor
from repro.utils.format import format_table


@dataclasses.dataclass
class ExperimentResult:
    """The regenerated rows of one table/figure plus summary metrics.

    ``metrics`` holds the scalar quantities the paper's headline claims are
    made of (speedup factors, overhead ratios); benchmark assertions check
    these rather than parsing the table text.
    """

    experiment: str
    title: str
    headers: List[str]
    rows: List[List[object]]
    metrics: Dict[str, float] = dataclasses.field(default_factory=dict)
    notes: str = ""

    def to_table(self) -> str:
        table = format_table(
            self.headers, self.rows, title=f"{self.experiment}: {self.title}"
        )
        parts = [table]
        if self.metrics:
            parts.append(
                "metrics: "
                + ", ".join(f"{k}={v:.3g}" for k, v in sorted(self.metrics.items()))
            )
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)


@functools.lru_cache(maxsize=None)
def workload_fixture(
    workload_id: str, seeds: Tuple[int, ...] = (0,), batch_size: int = 1
) -> Tuple[Workload, Module, Tuple[SparseTensor, ...]]:
    """Cached (workload, model, inputs) shared across experiments.

    Generating LiDAR scenes and building kernel maps is the wall-clock
    bottleneck of the benchmark suite; the fixture shares them across all
    experiments in one process.  Simulated-latency accounting is unaffected
    (charges are per execution context, not per Python object).
    """
    workload = get_workload(workload_id)
    model = workload.build_model()
    inputs = tuple(
        workload.make_input(seed=s, batch_size=batch_size) for s in seeds
    )
    return workload, model, inputs


def fmt(value: float, digits: int = 2) -> str:
    """Format a float for table cells."""
    return f"{value:.{digits}f}"


@functools.lru_cache(maxsize=None)
def sample_layers(workload_id: str, count: int = 7, seed: int = 0):
    """Representative convolution layers (probe records) of a workload.

    Used by the kernel-level experiments (Figures 8, 20, 21) that evaluate
    individual sparse convolution workloads; layers are chosen spread over
    the network depth so channel counts range from stem to bottleneck.
    """
    from repro.nn.context import ExecutionContext
    from repro.tune.groups import discover_groups

    workload, model, inputs = workload_fixture(workload_id, (seed,))
    ctx = ExecutionContext(simulate_only=True)
    ordered, by_sig = discover_groups(model, inputs[0], ctx)
    records = [recs[0] for sig in ordered for recs in [by_sig[sig]]]
    # Keep only true 3^3 convolutions (the figures' workloads) and spread.
    volumetric = [r for r in records if r.kmap.volume == 27]
    if len(volumetric) <= count:
        return tuple(volumetric)
    step = len(volumetric) / count
    return tuple(volumetric[int(i * step)] for i in range(count))
