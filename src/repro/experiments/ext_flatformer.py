"""Extension experiment: sparse convolution vs a point cloud transformer.

Section 5.2: "With the much faster TorchSparse++ backend ... the 3-frame
CenterPoint model on Waymo is 1.5x faster than FlatFormer with higher
accuracy on Orin."  This experiment compares the tuned CenterPoint sparse
backbone against the FlatFormer cost model on the same synthetic Waymo
scenes.
"""

from __future__ import annotations

from typing import List

from repro.baselines import get_engine, measure_inference
from repro.baselines.flatformer import flatformer_latency_ms
from repro.experiments.common import ExperimentResult, fmt, workload_fixture


def run(quick: bool = True) -> ExperimentResult:
    devices = ("jetson agx orin",) if quick else (
        "jetson agx orin", "rtx 3090",
    )
    workload, model, inputs = workload_fixture("WM-C-3f", (0,))
    model.eval()
    rows: List[List[object]] = []
    metrics = {}
    engine = get_engine("torchsparse++")
    for device in devices:
        conv = measure_inference(
            engine, workload, device, "fp16", model=model, inputs=list(inputs)
        )
        transformer_ms = flatformer_latency_ms(
            inputs[0].num_points, device, "fp16"
        )
        speedup = transformer_ms / conv.mean_ms
        rows.append(
            [device, fmt(conv.mean_ms), fmt(transformer_ms), fmt(speedup)]
        )
        metrics[f"conv_vs_flatformer_{device.replace(' ', '_')}"] = speedup
    return ExperimentResult(
        experiment="ext_flatformer",
        title="CenterPoint (TorchSparse++) vs FlatFormer backbone, "
        "Waymo 3-frame (ms)",
        headers=["device", "CenterPoint+TS++", "FlatFormer", "conv speedup"],
        rows=rows,
        metrics=metrics,
        notes="Paper: with the TorchSparse++ backend, 3-frame CenterPoint "
        "is 1.5x faster than FlatFormer on Orin.",
    )
