"""Extension experiment: masked-autoencoder pre-training (Section 6.3).

The paper's "Future applications" discussion posits that MAE pre-training,
whose inputs are 60-90% masked, can be accelerated by sparse convolution.
This experiment quantifies it on the reproduction's substrate: a
hierarchical conv encoder runs over only the visible patches, and the
sparse-vs-dense speedup grows with the mask ratio, crossing break-even
near MAE's standard 75% masking.
"""

from __future__ import annotations

from typing import List

from repro.apps.mae import mae_speedup_vs_dense
from repro.experiments.common import ExperimentResult, fmt

MASK_RATIOS = (0.0, 0.5, 0.6, 0.75, 0.9)


def run(quick: bool = True) -> ExperimentResult:
    # Sparse overheads only amortise at realistic batch sizes; MAE
    # pre-training uses hundreds of images per batch, 64 is conservative.
    batch = 64
    rows: List[List[object]] = []
    speedups = {}
    for ratio in MASK_RATIOS:
        sparse_ms, dense_ms, speedup = mae_speedup_vs_dense(
            ratio, batch_size=batch, device="a100", precision="fp16"
        )
        speedups[ratio] = speedup
        rows.append(
            [f"{ratio:.0%}", fmt(dense_ms), fmt(sparse_ms), fmt(speedup)]
        )
    return ExperimentResult(
        experiment="ext_mae",
        title="Sparse vs dense MAE encoder across mask ratios "
        f"(A100 FP16, batch {batch})",
        headers=["mask ratio", "dense ms", "sparse ms", "speedup"],
        rows=rows,
        metrics={
            "speedup_at_90": speedups[0.9],
            "speedup_at_75": speedups[0.75],
            "speedup_at_0": speedups[0.0],
        },
        notes="Extension of the paper's Section 6.3 'future applications':"
        " sparse convolution pays off above MAE's standard mask ratios.",
    )
