"""Extension experiment: first-order proxies mislead (Section 2.3).

The paper's motivation claims that "end-to-end optimal dataflows could
sometimes choose configurations with up to 6x computation overhead and 4x
larger DRAM footprint".  This experiment quantifies it on the
reproduction: for every tuned layer group, compare the *chosen* config's
issued FLOPs and DRAM traffic against the minimum over the design space —
if first-order proxies were reliable, every ratio would be 1.
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import ExperimentResult, fmt, workload_fixture
from repro.kernels.registry import trace_dataflow
from repro.nn.context import ExecutionContext
from repro.precision import Precision
from repro.tune.groups import discover_groups
from repro.tune.space import TORCHSPARSEPP_SPACE
from repro.tune.tuner import SparseAutotuner


def _resources(record, config, precision):
    trace = trace_dataflow(
        config.dataflow, record.kmap, record.c_in, record.c_out,
        schedule=config.schedule, precision=precision,
        ig_config=config.ig_config, charge_mapping=True,
    )
    summary = trace.summary()
    return summary.flops, summary.dram_bytes


def run(quick: bool = True) -> ExperimentResult:
    workload_id = "NS-M-1f" if quick else "SK-M-1.0"
    device = "jetson agx orin"
    precision = Precision.FP16
    _, model, inputs = workload_fixture(workload_id, (0,))
    model.eval()
    policy, report = SparseAutotuner().tune(
        model, list(inputs), device, precision
    )
    ctx = ExecutionContext(simulate_only=True)
    _, by_sig = discover_groups(model, inputs[0], ctx)

    rows: List[List[object]] = []
    max_flop_ratio = 1.0
    max_dram_ratio = 1.0
    for group in report.groups:
        records = by_sig.get(group.signature)
        if not records or records[0].kmap.volume <= 1:
            continue
        record = records[0]
        chosen_flops, chosen_dram = _resources(
            record, group.chosen, precision
        )
        min_flops = min(
            _resources(record, c, precision)[0] for c in TORCHSPARSEPP_SPACE
        )
        min_dram = min(
            _resources(record, c, precision)[1] for c in TORCHSPARSEPP_SPACE
        )
        flop_ratio = chosen_flops / max(min_flops, 1.0)
        dram_ratio = chosen_dram / max(min_dram, 1.0)
        max_flop_ratio = max(max_flop_ratio, flop_ratio)
        max_dram_ratio = max(max_dram_ratio, dram_ratio)
        rows.append(
            [str(group.signature), group.chosen.describe(),
             fmt(flop_ratio), fmt(dram_ratio)]
        )
    return ExperimentResult(
        experiment="ext_proxy",
        title="Tuned configs vs first-order-proxy-optimal configs "
        f"({workload_id} on {device})",
        headers=["group", "chosen config", "flops / min-flops",
                 "dram / min-dram"],
        rows=rows,
        metrics={
            "max_compute_overhead_of_chosen": max_flop_ratio,
            "max_dram_overhead_of_chosen": max_dram_ratio,
        },
        notes="Paper (Section 2.3): end-to-end optimal configurations can "
        "carry up to 6x compute overhead and 4x DRAM footprint vs the "
        "proxy-optimal choice.",
    )
