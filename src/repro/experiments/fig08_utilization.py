"""Figure 8: generated sparse kernels vs cuBLAS utilization.

For MinkUNet layers on SemanticKITTI, tuning *only tile sizes* lets the
generated implicit GEMM kernel reach (on average exceed) the utilization of
the equivalent-size dense GEMM — the justification for the generator's
reduced design space (Section 3.2).
"""

from __future__ import annotations

import numpy as np

from repro.codegen.cost import utilization_vs_cublas
from repro.experiments.common import ExperimentResult, fmt, sample_layers
from repro.hw import RTX_3090
from repro.precision import Precision


def run(quick: bool = True) -> ExperimentResult:
    layers = sample_layers("SK-M-1.0", count=4 if quick else 7)
    rows = []
    ratios = []
    for record in layers:
        c_in, c_out = record.c_in, record.c_out
        kmap = record.kmap
        rng = np.random.default_rng(0)
        feats = np.zeros((kmap.num_inputs, c_in), dtype=np.float32)
        weights = rng.standard_normal((kmap.volume, c_in, c_out)).astype(
            np.float32
        )
        ratio = utilization_vs_cublas(
            feats, weights, kmap, RTX_3090, Precision.FP16
        )
        ratios.append(ratio)
        rows.append(
            [
                record.label,
                kmap.num_outputs,
                kmap.volume * c_in,
                c_out,
                fmt(100 * ratio, 1) + "%",
            ]
        )
    mean_ratio = float(np.mean(ratios))
    rows.append(["average", "", "", "", fmt(100 * mean_ratio, 1) + "%"])
    return ExperimentResult(
        experiment="fig08",
        title="Generated kernel utilization relative to cuBLAS "
        "(MinkUNet/SemanticKITTI layers, RTX 3090, FP16, tile-only tuning)",
        headers=["layer", "M", "K", "N", "util vs cuBLAS"],
        rows=rows,
        metrics={
            "mean_utilization_vs_cublas": mean_ratio,
            "min_utilization_vs_cublas": float(min(ratios)),
        },
        notes="Paper: >100% of cuBLAS utilization on average by tuning "
        "only tile sizes.",
    )
