"""Figure 11: redundant computation vs number of mask splits.

(a) segmentation workloads keep benefiting from splits up to s = 5;
(b) detection workloads' unsorted (split 0) overhead is a tolerable
2.4-2.9x.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, fmt, workload_fixture
from repro.nn.context import ExecutionContext
from repro.sparse.bitmask import redundancy_ratio
from repro.tune.groups import discover_groups


def _submanifold_map(workload_id: str):
    """The stride-1 submanifold map — the dominant layer group."""
    _, model, inputs = workload_fixture(workload_id, (0,))
    ctx = ExecutionContext(simulate_only=True)
    ordered, by_sig = discover_groups(model, inputs[0], ctx)
    for sig in ordered:
        records = by_sig[sig]
        if records[0].kmap.volume == 27:
            return records[0].kmap
    raise RuntimeError("no 3x3x3 map found")


def run(quick: bool = True) -> ExperimentResult:
    seg_map = _submanifold_map("SK-M-1.0" if not quick else "NS-M-1f")
    det_map = _submanifold_map("WM-C-1f")
    splits = [0, 1, 2, 3, 4, 5] if not quick else [0, 1, 2, 3, 5]
    rows = []
    seg_ratios = {}
    det_ratios = {}
    for s in splits:
        sort = s != 0
        num = max(1, s)
        seg = redundancy_ratio(seg_map.nbmap, num, sort=sort, warp_rows=32)
        det = redundancy_ratio(det_map.nbmap, num, sort=sort, warp_rows=32)
        seg_ratios[s] = seg
        det_ratios[s] = det
        label = "unsorted" if s == 0 else f"split={s}"
        rows.append([label, fmt(seg), fmt(det)])
    return ExperimentResult(
        experiment="fig11",
        title="Issued/effective MAC ratio vs number of mask splits",
        headers=["config", "segmentation", "detection"],
        rows=rows,
        metrics={
            "seg_drop_1_to_max": seg_ratios[1] / seg_ratios[max(splits)],
            "det_unsorted_overhead": det_ratios[0],
            "seg_unsorted_overhead": seg_ratios[0],
        },
        notes="Paper: redundancy keeps dropping until s=5; unsorted "
        "detection overhead is 2.4-2.9x.",
    )
