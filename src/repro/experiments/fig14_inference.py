"""Figure 14: end-to-end inference speedup over the baselines.

Seven workloads x five engines across GPU generations and precisions; the
paper's headline claim is 2.9-3.7x / 3.2-3.3x / 2.0-2.2x / 1.4-1.7x geomean
speedup over MinkowskiEngine / SpConv 1.2 / TorchSparse / SpConv v2 on
cloud Ampere GPUs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.baselines import get_engine, measure_inference
from repro.experiments.common import ExperimentResult, fmt, workload_fixture
from repro.utils.format import geomean

ENGINE_ORDER = (
    "minkowskiengine",
    "spconv1",
    "torchsparse",
    "spconv2",
    "torchsparse++",
)

#: The device/precision combinations evaluated in the figure.
FULL_GRID: Tuple[Tuple[str, str], ...] = (
    ("gtx 1080 ti", "fp32"),
    ("rtx 2080 ti", "fp16"),
    ("rtx 3090", "fp16"),
    ("rtx 3090", "tf32"),
    ("rtx 3090", "fp32"),
    ("a100", "fp16"),
    ("a100", "tf32"),
    ("a100", "fp32"),
    ("jetson agx orin", "fp16"),
)

QUICK_GRID: Tuple[Tuple[str, str], ...] = (
    ("a100", "fp16"),
    ("rtx 3090", "fp16"),
    ("jetson agx orin", "fp16"),
)

FULL_WORKLOADS = (
    "SK-M-0.5", "SK-M-1.0", "NS-M-1f", "NS-M-3f",
    "NS-C-10f", "WM-C-1f", "WM-C-3f",
)
QUICK_WORKLOADS = ("SK-M-0.5", "NS-M-1f", "WM-C-1f")


def run(
    quick: bool = True,
    grid: Sequence[Tuple[str, str]] = (),
    workloads: Sequence[str] = (),
) -> ExperimentResult:
    grid = tuple(grid) or (QUICK_GRID if quick else FULL_GRID)
    workloads = tuple(workloads) or (
        QUICK_WORKLOADS if quick else FULL_WORKLOADS
    )
    rows: List[List[object]] = []
    speedups: Dict[Tuple[str, str, str], List[float]] = {}
    for device, precision in grid:
        for workload_id in workloads:
            workload, model, inputs = workload_fixture(workload_id, (0,))
            model.eval()
            latencies = {}
            for engine_name in ENGINE_ORDER:
                engine = get_engine(engine_name)
                m = measure_inference(
                    engine, workload, device, precision,
                    model=model, inputs=list(inputs),
                )
                latencies[engine.name] = m.mean_ms
            base = latencies["TorchSparse++"]
            row = [device, precision, workload_id, fmt(base)]
            for engine_name in ENGINE_ORDER[:-1]:
                name = get_engine(engine_name).name
                ratio = latencies[name] / base
                row.append(fmt(ratio) + "x")
                speedups.setdefault((device, precision, name), []).append(ratio)
            rows.append(row)

    metrics: Dict[str, float] = {}
    per_engine: Dict[str, List[float]] = {}
    for (device, precision, name), values in speedups.items():
        per_engine.setdefault(name, []).extend(values)
    for name, values in per_engine.items():
        key = name.lower().replace(" ", "").replace(".", "")
        metrics[f"geomean_speedup_vs_{key}"] = geomean(values)
    return ExperimentResult(
        experiment="fig14",
        title="End-to-end inference latency and TorchSparse++ speedup",
        headers=["device", "precision", "workload", "TS++ ms",
                 "vs ME", "vs SpConv1.2", "vs TorchSparse", "vs SpConv2"],
        rows=rows,
        metrics=metrics,
        notes="Paper (cloud Ampere): 2.9-3.7x vs ME, 3.2-3.3x vs SpConv1.2,"
        " 2.0-2.2x vs TorchSparse, 1.4-1.7x vs SpConv2.",
    )
