"""Figure 15: mixed-precision training speedup (batch size 2).

TorchSparse++ vs MinkowskiEngine (FP32-only), TorchSparse and SpConv v2 on
A100 and RTX 2080 Ti; paper: 4.6-4.8x / 2.5-2.6x / 1.2-1.3x faster.
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines import get_engine, measure_training
from repro.experiments.common import ExperimentResult, fmt, workload_fixture
from repro.utils.format import geomean

ENGINE_ORDER = ("minkowskiengine", "torchsparse", "spconv2", "torchsparse++")

FULL_WORKLOADS = (
    "SK-M-0.5", "SK-M-1.0", "NS-M-1f", "NS-M-3f",
    "NS-C-10f", "WM-C-1f", "WM-C-3f",
)
QUICK_WORKLOADS = ("SK-M-0.5", "WM-C-1f")


def run(quick: bool = True) -> ExperimentResult:
    devices = ("a100",) if quick else ("a100", "rtx 2080 ti")
    workloads = QUICK_WORKLOADS if quick else FULL_WORKLOADS
    rows: List[List[object]] = []
    speedups: Dict[str, List[float]] = {}
    for device in devices:
        for workload_id in workloads:
            workload, model, _ = workload_fixture(workload_id, (0,))
            model.train()
            latencies = {}
            for engine_name in ENGINE_ORDER:
                engine = get_engine(engine_name)
                m = measure_training(
                    engine, workload, device, "fp16",
                    seeds=(0,), batch_size=2, model=model,
                )
                latencies[engine.name] = m.mean_ms
            model.eval()
            base = latencies["TorchSparse++"]
            row = [device, workload_id, fmt(base)]
            for engine_name in ENGINE_ORDER[:-1]:
                name = get_engine(engine_name).name
                ratio = latencies[name] / base
                row.append(fmt(ratio) + "x")
                speedups.setdefault(name, []).append(ratio)
            rows.append(row)
    metrics = {
        f"train_geomean_vs_{name.lower().replace(' ', '').replace('.', '')}":
            geomean(values)
        for name, values in speedups.items()
    }
    return ExperimentResult(
        experiment="fig15",
        title="Mixed-precision training step latency (fwd+bwd, batch 2)",
        headers=["device", "workload", "TS++ ms", "vs ME(FP32)",
                 "vs TorchSparse", "vs SpConv2"],
        rows=rows,
        metrics=metrics,
        notes="Paper: 4.6-4.8x vs MinkowskiEngine, 2.5-2.6x vs TorchSparse,"
        " 1.2-1.3x vs SpConv2.3.5.",
    )
