"""Figure 16: R-GCN inference vs DGL, PyG and Graphiler.

Paper: 2.6-7.6x faster and 3.4-5.6x more memory efficient across five
heterogeneous graph benchmarks.
"""

from __future__ import annotations

import functools
from typing import Dict, List

from repro.experiments.common import ExperimentResult, fmt
from repro.graph import GRAPH_DATASETS, make_graph, measure_rgcn
from repro.utils.format import geomean

ENGINE_ORDER = ("dgl", "pyg", "graphiler", "torchsparse++")


@functools.lru_cache(maxsize=None)
def _graph(name: str):
    return make_graph(name, seed=0)


def run(quick: bool = True) -> ExperimentResult:
    datasets = ("aifb", "mutag", "fb15k") if quick else tuple(GRAPH_DATASETS)
    rows: List[List[object]] = []
    lat_ratios: Dict[str, List[float]] = {}
    mem_ratios: Dict[str, List[float]] = {}
    for name in datasets:
        cfg = GRAPH_DATASETS[name]
        graph = _graph(name)
        results = {
            engine: measure_rgcn(
                engine, graph, name, device="3090", precision="fp16",
                num_classes=cfg.num_classes,
            )
            for engine in ENGINE_ORDER
        }
        base = results["torchsparse++"]
        row = [name, fmt(base.latency_ms), fmt(base.memory_mb, 1)]
        for engine in ENGINE_ORDER[:-1]:
            m = results[engine]
            lat = m.latency_ms / base.latency_ms
            mem = m.memory_mb / base.memory_mb
            lat_ratios.setdefault(m.engine, []).append(lat)
            mem_ratios.setdefault(m.engine, []).append(mem)
            row.append(f"{lat:.1f}x/{mem:.1f}x")
        rows.append(row)
    metrics = {}
    for engine, values in lat_ratios.items():
        metrics[f"latency_vs_{engine.lower()}"] = geomean(values)
    for engine, values in mem_ratios.items():
        metrics[f"memory_vs_{engine.lower()}"] = geomean(values)
    return ExperimentResult(
        experiment="fig16",
        title="R-GCN inference: TorchSparse++ vs graph DL frameworks "
        "(latency x / memory x, RTX 3090 FP16)",
        headers=["dataset", "TS++ ms", "TS++ MB", "DGL", "PyG", "Graphiler"],
        rows=rows,
        metrics=metrics,
        notes="Paper: 7.6x/2.6x/2.9x faster and 3.4x/4.4x/5.6x more memory"
        " efficient than DGL/PyG/Graphiler.",
    )
