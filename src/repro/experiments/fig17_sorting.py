"""Figure 17: layerwise sorted vs unsorted implicit GEMM.

Sorting reduces computation time but its own overhead outweighs the
benefit on detection workloads (Waymo), while it pays off on the larger
SemanticKITTI segmentation model.
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import ExperimentResult, fmt, workload_fixture
from repro.gpusim.engine import estimate_trace_us
from repro.hw import RTX_3090
from repro.kernels.implicit_gemm import ImplicitGemmConfig
from repro.kernels.registry import trace_dataflow
from repro.nn.context import ExecutionContext
from repro.precision import Precision
from repro.tune.groups import discover_groups


def _layerwise(workload_id: str, precision: Precision):
    _, model, inputs = workload_fixture(workload_id, (0,))
    ctx = ExecutionContext(simulate_only=True)
    ordered, by_sig = discover_groups(model, inputs[0], ctx)
    rows = []
    totals = {"sorted_compute": 0.0, "sorted_overhead": 0.0,
              "unsorted_compute": 0.0}
    for sig in ordered:
        records = by_sig[sig]
        kmap = records[0].kmap
        if kmap.volume < 8:
            continue
        for i, record in enumerate(records):
            sorted_trace = trace_dataflow(
                "implicit_gemm", kmap, record.c_in, record.c_out,
                precision=precision,
                ig_config=ImplicitGemmConfig(num_splits=1, sort=True),
                charge_mapping=(i == 0),
            )
            unsorted_trace = trace_dataflow(
                "implicit_gemm", kmap, record.c_in, record.c_out,
                precision=precision,
                ig_config=ImplicitGemmConfig(sort=False),
                charge_mapping=False,
            )
            s_compute = estimate_trace_us(
                sorted_trace.filter_name("main"), RTX_3090, precision
            )
            s_overhead = estimate_trace_us(
                sorted_trace.filter_name("mapping"), RTX_3090, precision
            )
            u_compute = estimate_trace_us(
                unsorted_trace.filter_name("main"), RTX_3090, precision
            )
            totals["sorted_compute"] += s_compute
            totals["sorted_overhead"] += s_overhead
            totals["unsorted_compute"] += u_compute
            rows.append(
                [record.label, fmt(u_compute, 1), fmt(s_compute, 1),
                 fmt(s_overhead, 1)]
            )
    return rows, totals


def run(quick: bool = True) -> ExperimentResult:
    precision = Precision.FP16
    det_rows, det = _layerwise("WM-C-1f", precision)
    seg_rows, seg = _layerwise("SK-M-1.0" if not quick else "SK-M-0.5",
                               precision)
    rows: List[List[object]] = []
    rows.append(["-- Waymo detection --", "", "", ""])
    rows.extend(det_rows if not quick else det_rows[:6])
    rows.append(["-- SemanticKITTI segmentation --", "", "", ""])
    rows.extend(seg_rows if not quick else seg_rows[:6])
    det_sorted_total = det["sorted_compute"] + det["sorted_overhead"]
    seg_sorted_total = seg["sorted_compute"] + seg["sorted_overhead"]
    return ExperimentResult(
        experiment="fig17",
        title="Layerwise compute vs sorting overhead (us, RTX 3090 FP16)",
        headers=["layer", "unsorted compute", "sorted compute",
                 "sort overhead"],
        rows=rows,
        metrics={
            "det_sorted_over_unsorted": det_sorted_total
            / det["unsorted_compute"],
            "seg_sorted_over_unsorted": seg_sorted_total
            / seg["unsorted_compute"],
            "det_compute_reduction": det["unsorted_compute"]
            / det["sorted_compute"],
        },
        notes="Paper: sorting's gain is outweighed by its overhead on "
        "detection; it pays off on the larger segmentation model.",
    )
