"""Figure 18: fetch-on-demand and implicit GEMM are complementary.

On FP32 segmentation workloads (1-frame MinkUNet on nuScenes, 2080 Ti and
Orin) the hybrid dataflow found by the autotuner beats both single-dataflow
configurations; fetch-on-demand wins in decoder layers (reused maps), while
implicit GEMM wins in downsampling layers where maps cannot be reused.
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import ExperimentResult, fmt, workload_fixture
from repro.kernels.registry import Dataflow
from repro.nn.context import LayerConfig
from repro.tune.space import (
    DesignSpace,
    TORCHSPARSEPP_SPACE,
    implicit_gemm_candidates,
)
from repro.tune.tuner import SparseAutotuner

IG_ONLY = DesignSpace(
    name="implicit-only",
    candidates=tuple(implicit_gemm_candidates(splits=(0, 1, 2, 3, 4))),
)
FOD_ONLY = DesignSpace(
    name="fod-only",
    candidates=tuple(
        LayerConfig(dataflow=Dataflow.FETCH_ON_DEMAND, schedule=c.schedule)
        for c in implicit_gemm_candidates(splits=(1,))
    ),
)


def run(quick: bool = True) -> ExperimentResult:
    devices = ("rtx 2080 ti",) if quick else ("rtx 2080 ti", "jetson agx orin")
    _, model, inputs = workload_fixture("NS-M-1f", (0,))
    model.eval()
    rows: List[List[object]] = []
    metrics = {}
    decoder_fod = 0
    decoder_groups = 0
    for device in devices:
        latencies = {}
        hybrid_report = None
        for space in (IG_ONLY, FOD_ONLY, TORCHSPARSEPP_SPACE):
            tuner = SparseAutotuner(space=space)
            _, report = tuner.tune(model, list(inputs), device, "fp32")
            latencies[space.name] = report.end_to_end_us
            if space is TORCHSPARSEPP_SPACE:
                hybrid_report = report
        rows.append(
            [
                device,
                fmt(latencies["implicit-only"] / 1e3),
                fmt(latencies["fod-only"] / 1e3),
                fmt(latencies["torchsparsepp"] / 1e3),
            ]
        )
        best_single = min(latencies["implicit-only"], latencies["fod-only"])
        metrics[f"hybrid_gain_{device.replace(' ', '_')}"] = (
            best_single / latencies["torchsparsepp"]
        )
        # Layerwise: which dataflow did the hybrid tuner pick per group?
        # Decoder groups (transposed maps) are where fetch-on-demand is
        # expected to win (its maps transpose for free).
        for group in hybrid_report.groups:
            signature = group.signature
            transposed = signature[3]
            choice = group.chosen.dataflow.value
            rows.append(
                [f"  [{device}] group {signature}", "", "", choice]
            )
            if transposed:
                decoder_groups += 1
                if group.chosen.dataflow is Dataflow.FETCH_ON_DEMAND:
                    decoder_fod += 1
    metrics["decoder_fod_fraction"] = (
        decoder_fod / decoder_groups if decoder_groups else 0.0
    )
    return ExperimentResult(
        experiment="fig18",
        title="Single-dataflow vs hybrid tuning, NS-M-1f FP32 (ms)",
        headers=["device / group", "implicit only", "fetch-on-demand only",
                 "hybrid (TS++)"],
        rows=rows,
        metrics=metrics,
        notes="Paper: hybrid is up to 1.06x faster than the best single "
        "dataflow; fetch-on-demand wins decoder layers.",
    )
