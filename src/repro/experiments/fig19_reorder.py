"""Figure 19: offline vs online map reordering.

Reordering the maps ahead of time (a separate pass) beats fusing the
permutation into the kernels: ~4% end-to-end for inference and ~12% for
training, because online reordering adds an indirection in wgrad's long
innermost K loop.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, fmt, workload_fixture
from repro.kernels.implicit_gemm import ImplicitGemmConfig
from repro.nn.context import ExecutionContext, FixedPolicy, LayerConfig


def _measure(model, sample, training: bool, offline: bool) -> float:
    config = LayerConfig(
        ig_config=ImplicitGemmConfig(
            num_splits=1, sort=True, offline_reorder=offline
        )
    )
    ctx = ExecutionContext(
        device="rtx 3090",
        precision="fp32",
        policy=FixedPolicy(config),
        training=training,
        simulate_only=True,
    )
    if training:
        model.train()
        out = model(sample, ctx)
        model.backward(np.zeros(out.feats.shape, dtype=ctx.precision.dtype), ctx)
        model.zero_grad()
        model.eval()
    else:
        model.eval()
        model(sample, ctx)
    return ctx.latency_ms()


def run(quick: bool = True) -> ExperimentResult:
    workload_id = "SK-M-0.5" if quick else "SK-M-1.0"
    _, model, inputs = workload_fixture(workload_id, (0,))
    sample = inputs[0]
    rows = []
    metrics = {}
    for mode, training in (("inference", False), ("training", True)):
        offline = _measure(model, sample, training, offline=True)
        online = _measure(model, sample, training, offline=False)
        rows.append([mode, fmt(offline), fmt(online), fmt(online / offline)])
        metrics[f"{mode}_online_over_offline"] = online / offline
    return ExperimentResult(
        experiment="fig19",
        title="Offline vs online map reordering (SemanticKITTI MinkUNet, "
        "RTX 3090 FP32, ms)",
        headers=["mode", "offline", "online", "online/offline"],
        rows=rows,
        metrics=metrics,
        notes="Paper: offline reordering is ~4% faster in inference and "
        "~12% faster in training.",
    )
