"""Figure 20: loop-invariant hoisting closes the dynamic-shape gap.

A naively converted dynamic-shape kernel is 1.5-1.7x slower than the
fixed-shape original because of repetitive pointer calculation; hoisting
the loop invariants eliminates the overhead, ending slightly *faster* than
fixed-shape in most sample workloads.

The hoisted column is produced by the real compiler pass
(:class:`repro.opt.passes.HoistLoopInvariants`) applied to the naive
dynamic-shape trace — not by re-tracing with a hand-modeled "hoisted"
schedule.  A hand-hoisted re-trace is kept as a cross-check:
``pass_vs_schedule_max_rel_diff`` measures how far the pass output drifts
from it (exactly 0 when the pass removes precisely the declared
loop-invariant address arithmetic).
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import ExperimentResult, fmt, sample_layers
from repro.gpusim.engine import estimate_trace_us
from repro.gpusim.trace import KernelTrace
from repro.hw import RTX_3090
from repro.kernels.base import KernelSchedule
from repro.kernels.implicit_gemm import ImplicitGemmConfig
from repro.kernels.registry import trace_dataflow
from repro.opt import LaunchProgram, PassPipeline
from repro.precision import Precision

FIXED = KernelSchedule(fixed_shape=True)
NAIVE = KernelSchedule(hoist_invariants=False)
HOISTED = KernelSchedule(hoist_invariants=True)


def _trace(record, schedule: KernelSchedule) -> KernelTrace:
    return trace_dataflow(
        "implicit_gemm", record.kmap, record.c_in, record.c_out,
        schedule=schedule, precision=Precision.FP16,
        ig_config=ImplicitGemmConfig(sort=False), charge_mapping=False,
    )


def _main_us(trace: KernelTrace) -> float:
    return estimate_trace_us(
        trace.filter_name("main"), RTX_3090, Precision.FP16
    )


def _hoist_pass_us(naive_trace: KernelTrace) -> float:
    """Run the verified hoisting pass on the naive trace and price it."""
    program = LaunchProgram.from_trace(naive_trace)
    PassPipeline(["hoist-invariants"]).run(program)
    return _main_us(program.to_trace())


def run(quick: bool = True) -> ExperimentResult:
    layers = sample_layers("SK-M-1.0", count=4 if quick else 7)
    rows: List[List[object]] = []
    naive_ratios = []
    hoisted_ratios = []
    pass_vs_schedule = []
    for record in layers:
        fixed = _main_us(_trace(record, FIXED))
        naive_trace = _trace(record, NAIVE)
        naive = _main_us(naive_trace)
        hoisted = _hoist_pass_us(naive_trace)
        schedule_hoisted = _main_us(_trace(record, HOISTED))
        pass_vs_schedule.append(
            abs(hoisted - schedule_hoisted) / schedule_hoisted
        )
        naive_ratios.append(naive / fixed)
        hoisted_ratios.append(hoisted / fixed)
        rows.append(
            [record.label, fmt(fixed, 1), fmt(naive, 1), fmt(hoisted, 1),
             fmt(naive / fixed), fmt(hoisted / fixed)]
        )
    faster_count = sum(1 for r in hoisted_ratios if r <= 1.0)
    return ExperimentResult(
        experiment="fig20",
        title="Fixed-shape vs naive dynamic vs pass-hoisted kernels "
        "(MinkUNet layers, RTX 3090 FP16, us)",
        headers=["layer", "fixed", "naive dynamic", "hoisted (pass)",
                 "naive/fixed", "hoisted/fixed"],
        rows=rows,
        metrics={
            "max_naive_overhead": max(naive_ratios),
            "min_naive_overhead": min(naive_ratios),
            "max_hoisted_overhead": max(hoisted_ratios),
            "hoisted_faster_than_fixed_fraction": faster_count / len(layers),
            "pass_vs_schedule_max_rel_diff": max(pass_vs_schedule),
        },
        notes="Paper: naive conversion is up to 1.7x slower; hoisting "
        "closes the gap and beats fixed-shape in 5 of 7 workloads.  The "
        "hoisted column is the HoistLoopInvariants pass output.",
    )
