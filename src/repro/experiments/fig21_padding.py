"""Figure 21: boundary-check elimination via map padding.

The bounds predicate on map loads in the innermost loop costs up to 1.3x;
padding the map's first dimension to a multiple of ``cta_M`` removes it.
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import ExperimentResult, fmt, sample_layers
from repro.gpusim.engine import estimate_trace_us
from repro.hw import RTX_3090
from repro.kernels.base import KernelSchedule
from repro.kernels.implicit_gemm import ImplicitGemmConfig
from repro.kernels.registry import trace_dataflow
from repro.precision import Precision

PADDED = KernelSchedule(pad_maps=True)
UNPADDED = KernelSchedule(pad_maps=False)


def _kernel_us(record, schedule: KernelSchedule) -> float:
    trace = trace_dataflow(
        "implicit_gemm", record.kmap, record.c_in, record.c_out,
        schedule=schedule, precision=Precision.FP16,
        ig_config=ImplicitGemmConfig(sort=False), charge_mapping=False,
    )
    return estimate_trace_us(
        trace.filter_name("main"), RTX_3090, Precision.FP16
    )


def run(quick: bool = True) -> ExperimentResult:
    layers = sample_layers("SK-M-1.0", count=4 if quick else 7)
    rows: List[List[object]] = []
    ratios = []
    for record in layers:
        padded = _kernel_us(record, PADDED)
        unpadded = _kernel_us(record, UNPADDED)
        ratios.append(unpadded / padded)
        rows.append(
            [record.label, fmt(padded, 1), fmt(unpadded, 1),
             fmt(unpadded / padded)]
        )
    return ExperimentResult(
        experiment="fig21",
        title="Boundary checking vs offline map padding "
        "(MinkUNet layers, RTX 3090 FP16, us)",
        headers=["layer", "padded", "with boundary checks", "overhead"],
        rows=rows,
        metrics={
            "max_boundary_overhead": max(ratios),
            "min_boundary_overhead": min(ratios),
        },
        notes="Paper: boundary checks cost up to 1.3x; padding removes "
        "them entirely.",
    )
