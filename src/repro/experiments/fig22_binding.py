"""Figure 22: dataflow-parameter binding schemes for training kernels.

Forward, dgrad and wgrad prefer different dataflow parameters; binding all
three to one config costs up to 10%.  The two O(K^2) partial bindings win
on different devices: fwd+dgrad (workload-pattern) on low-end GPUs,
dgrad+wgrad (sparse-mapping) on high-parallelism GPUs (Section 4.2).
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import ExperimentResult, fmt, workload_fixture
from repro.tune.training import BindingScheme, TrainingTuner, pick_binding_scheme

SCHEMES = (
    BindingScheme.BIND_ALL,
    BindingScheme.BIND_FWD_DGRAD,
    BindingScheme.BIND_DGRAD_WGRAD,
)


def run(quick: bool = True) -> ExperimentResult:
    workload_id = "SK-M-0.5" if quick else "SK-M-1.0"
    _, model, inputs = workload_fixture(workload_id, (0,))
    model.train()
    devices = ("a100", "rtx 2080 ti")
    rows: List[List[object]] = []
    metrics = {}
    for device in devices:
        latencies = {}
        for scheme in SCHEMES:
            tuner = TrainingTuner(scheme=scheme)
            _, report = tuner.tune(model, list(inputs), device, "fp16")
            latencies[scheme] = report.end_to_end_us
        best = min(latencies, key=latencies.get)
        row = [device] + [fmt(latencies[s] / 1e3) for s in SCHEMES]
        row.append(best.value)
        rows.append(row)
        dev_key = device.replace(" ", "_")
        metrics[f"{dev_key}_bound_over_best"] = (
            latencies[BindingScheme.BIND_ALL] / latencies[best]
        )
        metrics[f"{dev_key}_picks_paper_scheme"] = float(
            best is pick_binding_scheme(device)
        )
    model.eval()
    return ExperimentResult(
        experiment="fig22",
        title="Training-kernel binding schemes, conv kernels only (ms)",
        headers=["device", "bind all", "bind fwd+dgrad",
                 "bind dgrad+wgrad", "best"],
        rows=rows,
        metrics=metrics,
        notes="Paper: binding all three can hurt by up to 10%; A100 "
        "prefers dgrad+wgrad, 2080 Ti prefers fwd+dgrad.",
    )
