"""Figure 23: where TorchSparse++'s gains come from.

Stacked attribution on top of SpConv v2: (1) the Sparse Kernel Generator
produces 1.1-1.2x faster kernels at identical dataflow parameters; (2) the
enlarged design space (unsorted implicit GEMM, more splits,
fetch-on-demand) tuned by the Sparse Autotuner provides the rest.  The
generator's engineering cost is ~5% of SpConv v2's metaprogrammer.
"""

from __future__ import annotations

from typing import List

from repro.baselines import get_engine, measure_inference
from repro.codegen import SparseKernelGenerator
from repro.experiments.common import ExperimentResult, fmt, workload_fixture
from repro.kernels.base import KernelSchedule
from repro.kernels.implicit_gemm import ImplicitGemmConfig
from repro.nn.context import FixedPolicy, LayerConfig


class _SpConv2WithOurKernels(get_engine("spconv2").__class__):
    """SpConv v2's dataflow (sorted, split=1) with our generated kernels."""

    name = "SpConv2-dataflow + TS++ kernels"

    def _policy(self, device, precision):
        return FixedPolicy(
            LayerConfig(
                ig_config=ImplicitGemmConfig(num_splits=1, sort=True),
                schedule=KernelSchedule(),  # codegen_quality = 1.0
            )
        )


def run(quick: bool = True) -> ExperimentResult:
    workloads = ("SK-M-0.5", "WM-C-1f") if quick else (
        "SK-M-0.5", "SK-M-1.0", "NS-M-1f", "WM-C-1f",
    )
    rows: List[List[object]] = []
    metrics = {}
    gen_gains = []
    space_gains = []
    for workload_id in workloads:
        workload, model, inputs = workload_fixture(workload_id, (0,))
        model.eval()
        stages = {
            "SpConv2.3.5": get_engine("spconv2"),
            "+generator": _SpConv2WithOurKernels(),
            "+design space (TS++)": get_engine("torchsparse++"),
        }
        latencies = {}
        for label, engine in stages.items():
            m = measure_inference(
                engine, workload, "a100", "fp16",
                model=model, inputs=list(inputs),
            )
            latencies[label] = m.mean_ms
        gen_gain = latencies["SpConv2.3.5"] / latencies["+generator"]
        space_gain = latencies["+generator"] / latencies["+design space (TS++)"]
        gen_gains.append(gen_gain)
        space_gains.append(space_gain)
        rows.append(
            [workload_id, fmt(latencies["SpConv2.3.5"]),
             fmt(latencies["+generator"]),
             fmt(latencies["+design space (TS++)"]),
             fmt(gen_gain), fmt(space_gain)]
        )
    report = SparseKernelGenerator().engineering_cost_report()
    loc_fraction = (
        report["torchsparsepp_generator_lines"]
        / report["spconv2_metaprogrammer_lines"]
    )
    metrics.update(
        {
            "mean_generator_gain": sum(gen_gains) / len(gen_gains),
            "mean_design_space_gain": sum(space_gains) / len(space_gains),
            "generator_loc_fraction_of_spconv2": loc_fraction,
        }
    )
    rows.append(
        ["generator LoC", report["torchsparsepp_generator_lines"],
         "SpConv2 LoC", report["spconv2_metaprogrammer_lines"],
         f"{100 * loc_fraction:.1f}%", ""]
    )
    return ExperimentResult(
        experiment="fig23",
        title="Gain attribution: generator vs enlarged design space "
        "(A100 FP16, ms)",
        headers=["workload", "SpConv2", "+generator", "+design space",
                 "generator gain", "space gain"],
        rows=rows,
        metrics=metrics,
        notes="Paper: generated kernels are 1.1-1.2x faster at equal "
        "dataflow params; the generator is ~5% of SpConv v2's LoC.",
    )
