"""Section 6.2 (Effectiveness of adaptive tiling).

Choosing between a large and a small tile configuration by workload MACs
provides up to 1.6x speedup over either fixed tiling.
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import ExperimentResult, fmt, workload_fixture
from repro.kernels.base import LARGE_TILE, SMALL_TILE
from repro.nn.context import ExecutionContext, FixedPolicy, LayerConfig


def _measure(model, sample, device, schedule=None, adaptive=False) -> float:
    policy = FixedPolicy(
        LayerConfig(schedule=schedule) if schedule else LayerConfig()
    )
    ctx = ExecutionContext(
        device=device, precision="fp16", policy=policy,
        simulate_only=True, adaptive_tiling=adaptive,
    )
    model.eval()
    model(sample, ctx)
    return ctx.latency_ms()


def run(quick: bool = True) -> ExperimentResult:
    workloads = ("SK-M-0.5", "NS-M-1f") if quick else (
        "SK-M-0.5", "SK-M-1.0", "NS-M-1f", "WM-C-1f",
    )
    rows: List[List[object]] = []
    gains = []
    for workload_id in workloads:
        _, model, inputs = workload_fixture(workload_id, (0,))
        sample = inputs[0]
        large = _measure(model, sample, "rtx 3090", schedule=LARGE_TILE)
        small = _measure(model, sample, "rtx 3090", schedule=SMALL_TILE)
        adaptive = _measure(model, sample, "rtx 3090", adaptive=True)
        best_fixed = min(large, small)
        worst_fixed = max(large, small)
        gains.append(worst_fixed / adaptive)
        rows.append(
            [workload_id, fmt(large), fmt(small), fmt(adaptive),
             fmt(worst_fixed / adaptive)]
        )
    return ExperimentResult(
        experiment="sec62",
        title="Adaptive tiling vs fixed tile sizes (RTX 3090 FP16, ms)",
        headers=["workload", "large tiles", "small tiles", "adaptive",
                 "gain vs worst fixed"],
        rows=rows,
        metrics={
            "max_adaptive_gain": max(gains),
            "min_adaptive_gain": min(gains),
        },
        notes="Paper: adaptive tiling provides up to 1.6x over fixed "
        "tiling.",
    )
