"""Section 6.3 (Insights for microarchitectural improvements).

Halving the RTX 3090's memory bandwidth slows sparse workloads by ~1.2x;
halving its peak compute slows them by ~1.4x — scaling compute units beats
scaling off-chip bandwidth for sparse convolution.
"""

from __future__ import annotations

from typing import List

from repro.baselines import get_engine, measure_inference
from repro.experiments.common import ExperimentResult, fmt, workload_fixture
from repro.hw import RTX_3090


def run(quick: bool = True) -> ExperimentResult:
    workloads = ("SK-M-0.5",) if quick else ("SK-M-0.5", "WM-C-1f")
    devices = {
        "baseline 3090": RTX_3090,
        "1/2 bandwidth": RTX_3090.scaled(bandwidth_scale=0.5),
        "1/2 compute": RTX_3090.scaled(compute_scale=0.5),
    }
    rows: List[List[object]] = []
    bw_slow = []
    fl_slow = []
    for workload_id in workloads:
        workload, model, inputs = workload_fixture(workload_id, (0,))
        model.eval()
        engine = get_engine("torchsparse++")
        latencies = {}
        for label, device in devices.items():
            m = measure_inference(
                engine, workload, device, "fp16",
                model=model, inputs=list(inputs),
            )
            latencies[label] = m.mean_ms
        base = latencies["baseline 3090"]
        bw = latencies["1/2 bandwidth"] / base
        fl = latencies["1/2 compute"] / base
        bw_slow.append(bw)
        fl_slow.append(fl)
        rows.append([workload_id, fmt(base), fmt(bw), fmt(fl)])
    return ExperimentResult(
        experiment="sec63",
        title="Sensitivity to bandwidth vs compute scaling "
        "(TorchSparse++, FP16)",
        headers=["workload", "baseline ms", "1/2 bandwidth slowdown",
                 "1/2 compute slowdown"],
        rows=rows,
        metrics={
            "mean_bw_slowdown": sum(bw_slow) / len(bw_slow),
            "mean_compute_slowdown": sum(fl_slow) / len(fl_slow),
        },
        notes="Paper: 1.2x from halved bandwidth vs 1.4x from halved "
        "compute. KNOWN DIVERGENCE: our synthetic workloads are more "
        "memory/mapping-bound than the authors' testbed, so the two "
        "sensitivities come out reversed here (see EXPERIMENTS.md).",
    )
