"""Table 2: TorchSparse++ on RTX 3090 vs a scaled-up PointAcc ASIC.

PointAcc's systolic array is scaled from 64x64 to 128x128 (PointAcc-L) to
roughly match the 3090's MAC count; the measured TorchSparse++ latency is
scaled by 2.2x (1.7x clock x 1.3x peak-MAC difference) for fairness.
Paper: TorchSparse++ reaches 56% of the ASIC's speed.
"""

from __future__ import annotations

from repro.baselines import get_engine, measure_inference
from repro.experiments.common import ExperimentResult, fmt, workload_fixture
from repro.hw import POINTACC_L
from repro.nn.context import ExecutionContext
from repro.tune.groups import discover_groups

#: Paper's fairness scaling: clock (1.7x) x peak MAC (1.3x).
LATENCY_SCALE = 2.2


def run(quick: bool = True) -> ExperimentResult:
    workload_id = "SK-M-0.5" if quick else "SK-M-1.0"
    workload, model, inputs = workload_fixture(workload_id, (0,))
    model.eval()
    # GPU side: tuned TorchSparse++ on the 3090.
    engine = get_engine("torchsparse++")
    gpu = measure_inference(
        engine, workload, "rtx 3090", "fp16", model=model, inputs=list(inputs)
    )
    gpu_scaled_ms = gpu.mean_ms * LATENCY_SCALE

    # ASIC side: per-layer systolic-array projection over the same layers.
    ctx = ExecutionContext(simulate_only=True)
    ordered, by_sig = discover_groups(model, inputs[0], ctx)
    layers = []
    seen_maps = set()
    for sig in ordered:
        for record in by_sig[sig]:
            build = id(record.kmap) not in seen_maps
            seen_maps.add(id(record.kmap))
            layers.append(
                dict(
                    map_sizes=record.kmap.map_sizes.tolist(),
                    c_in=record.c_in,
                    c_out=record.c_out,
                    num_inputs=record.kmap.num_inputs,
                    num_outputs=record.kmap.num_outputs,
                    build_map=build,
                )
            )
    asic_ms = POINTACC_L.network_latency_ms(layers)
    ratio = asic_ms / gpu_scaled_ms  # fraction of ASIC speed reached
    rows = [
        ["TorchSparse++ (3090, measured)", fmt(gpu.mean_ms)],
        [f"TorchSparse++ (scaled x{LATENCY_SCALE})", fmt(gpu_scaled_ms)],
        ["PointAcc-L (projected)", fmt(asic_ms)],
        ["GPU fraction of ASIC speed", fmt(100 * ratio, 1) + "%"],
    ]
    return ExperimentResult(
        experiment="tab02",
        title="TorchSparse++ vs scaled PointAcc ASIC "
        "(SemanticKITTI MinkUNet, ms)",
        headers=["system", "latency"],
        rows=rows,
        metrics={"gpu_fraction_of_asic": ratio},
        notes="Paper: scaled latencies 31.6 ms (GPU) vs 17.8 ms (ASIC) — "
        "the GPU achieves 56% of ASIC speed.",
    )
