"""Table 3: end-to-end latency of unsorted vs sorted implicit GEMM.

Unsorted implicit GEMM is up to 1.2x *faster end to end* despite up to
1.7x more (redundant) computation, because sorting's mapping overhead
(bitmask, argsort, reorder) is paid on the critical path.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import ExperimentResult, fmt, workload_fixture
from repro.kernels.implicit_gemm import ImplicitGemmConfig
from repro.nn.context import ExecutionContext, FixedPolicy, LayerConfig

CONFIGS = {
    "unsorted": ImplicitGemmConfig(num_splits=1, sort=False),
    "split=1": ImplicitGemmConfig(num_splits=1, sort=True),
    "split=2": ImplicitGemmConfig(num_splits=2, sort=True),
}


def measure_config(
    model, sample, device: str, config: ImplicitGemmConfig,
    kernel_only: bool = False,
) -> float:
    """End-to-end (or kernel-only) latency under one fixed IG config."""
    from repro.gpusim.engine import estimate_trace_us
    from repro.gpusim.trace import KernelTrace, LaunchKind

    ctx = ExecutionContext(
        device=device,
        precision="fp16",
        policy=FixedPolicy(LayerConfig(ig_config=config)),
        simulate_only=True,
        adaptive_tiling=True,
    )
    model.eval()
    model(sample, ctx)
    if kernel_only:
        kernels = KernelTrace(
            l for l in ctx.trace
            if l.kind in (LaunchKind.GEMM, LaunchKind.REDUCTION)
        )
        return estimate_trace_us(kernels, ctx.device, ctx.precision) / 1e3
    return ctx.latency_ms()


def run(quick: bool = True, kernel_only: bool = False) -> ExperimentResult:
    cases = [("NS-C-10f", ("rtx 3090", "jetson agx orin")),
             ("WM-C-1f", ("rtx 3090",))]
    if quick:
        cases = [("WM-C-1f", ("rtx 3090",)), ("NS-C-10f", ("rtx 3090",))]
    rows: List[List[object]] = []
    metrics: Dict[str, float] = {}
    for workload_id, devices in cases:
        _, model, inputs = workload_fixture(workload_id, (0,))
        for device in devices:
            latencies = {
                name: measure_config(
                    model, inputs[0], device, config, kernel_only
                )
                for name, config in CONFIGS.items()
            }
            rows.append(
                [workload_id, device] +
                [fmt(latencies[name]) for name in CONFIGS]
            )
            key = f"{workload_id}_{device}".replace(" ", "_")
            metrics[f"{key}_sorted_over_unsorted"] = (
                latencies["split=1"] / latencies["unsorted"]
            )
    which = "kernel-only" if kernel_only else "end-to-end"
    return ExperimentResult(
        experiment="tab04" if kernel_only else "tab03",
        title=f"Unsorted vs mask-split implicit GEMM, {which} latency "
        "(detection workloads, FP16, ms)",
        headers=["workload", "device"] + list(CONFIGS),
        rows=rows,
        metrics=metrics,
        notes="Paper Table 3: unsorted is up to 1.2x faster end to end; "
        "Table 4: sorted kernels are faster in isolation.",
    )
