"""Table 4: *kernel-only* latency of unsorted vs sorted implicit GEMM.

The exact opposite of Table 3: counting only the convolution kernels (no
mapping operations), the sorted dataflow is faster — revealing that
kernel-only time is a misleading proxy for end-to-end performance.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.tab03_e2e_splits import run as _run_tab03


def run(quick: bool = True) -> ExperimentResult:
    return _run_tab03(quick=quick, kernel_only=True)
