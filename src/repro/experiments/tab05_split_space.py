"""Table 5: enlarging the split design space helps segmentation.

Tuning SemanticKITTI-MinkUNet on an RTX 3090 over split sets {1} (SpConv
v2's default), {1, 2} and {0..4} (TorchSparse++): the enlarged space is up
to 1.4x faster, with the gain growing as precision drops tensor-core
throughput (FP32 > TF32 > FP16).
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import ExperimentResult, fmt, workload_fixture
from repro.tune.space import split_space
from repro.tune.tuner import SparseAutotuner

SPACES = {
    "{1}": split_space([1], "s1"),
    "{1,2}": split_space([1, 2], "s12"),
    "{0,1,2,3,4}": split_space([0, 1, 2, 3, 4], "s01234"),
}


def run(quick: bool = True) -> ExperimentResult:
    # The split benefit scales with compute intensity: use the full-width
    # model (the paper's Table 5 workload) even in quick mode.
    workload_id = "SK-M-1.0"
    _, model, inputs = workload_fixture(workload_id, (0,))
    model.eval()
    precisions = ("fp16", "fp32") if quick else ("fp16", "tf32", "fp32")
    rows: List[List[object]] = []
    metrics: Dict[str, float] = {}
    for precision in precisions:
        latencies = {}
        for name, space in SPACES.items():
            tuner = SparseAutotuner(space=space)
            _, report = tuner.tune(
                model, list(inputs), "rtx 3090", precision
            )
            latencies[name] = report.end_to_end_us / 1e3
        rows.append(
            [precision] + [fmt(latencies[name]) for name in SPACES]
        )
        metrics[f"{precision}_gain_full_over_s1"] = (
            latencies["{1}"] / latencies["{0,1,2,3,4}"]
        )
    return ExperimentResult(
        experiment="tab05",
        title="Split design-space size vs tuned latency "
        "(SemanticKITTI MinkUNet, RTX 3090, ms)",
        headers=["precision"] + list(SPACES),
        rows=rows,
        metrics=metrics,
        notes="Paper: {0..4} is up to 1.4x faster than SpConv v2's "
        "default split=1; the gain grows toward FP32.",
    )
