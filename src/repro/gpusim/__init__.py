"""Analytical GPU performance model.

Dataflow kernels in :mod:`repro.kernels` execute numerically *and* emit a
:class:`KernelTrace` — a list of kernel launches annotated with FLOPs, DRAM
traffic, scalar (addressing / boundary-check) operations and parallelism.
This package converts traces into latency for a :class:`repro.hw.DeviceSpec`.

The model captures the first-order effects the paper's analysis rests on:

* **overlap** — pipelined dataflows (fetch-on-demand, implicit GEMM) hide
  memory behind compute (Figure 3); gather-GEMM-scatter cannot;
* **wave-quantised occupancy** — kernels with few thread blocks underutilise
  wide GPUs, which is why extra mask splits help small segmentation
  workloads (Table 5) and why Orin behaves differently from A100;
* **tensor-core vs CUDA-core throughput** — mapping operations always run on
  CUDA cores, so on A100 (16x gap) mapping overhead dominates while on
  2080 Ti (3x gap) redundant computation does (Section 6.1);
* **atomics serialization** — fetch-on-demand's scattered write-back;
* **kernel launch overhead** — gather-GEMM-scatter needs 3 launches per
  kernel offset.
"""

from repro.gpusim.trace import KernelLaunch, KernelTrace, LaunchKind, TraceSummary
from repro.gpusim.engine import (
    PRICING_FIELDS,
    SCHEDULE_FIELDS,
    TraceMemo,
    clear_trace_memo,
    enforce_memory_budget,
    estimate_launch_us,
    estimate_trace_us,
    latency_breakdown,
    launch_signature,
    memory_budget_bytes,
    trace_memo_stats,
    trace_signature,
    wave_efficiency,
)
from repro.gpusim.report import by_layer, layer_report, timeline

__all__ = [
    "by_layer",
    "layer_report",
    "timeline",
    "KernelLaunch",
    "KernelTrace",
    "LaunchKind",
    "PRICING_FIELDS",
    "SCHEDULE_FIELDS",
    "TraceMemo",
    "TraceSummary",
    "clear_trace_memo",
    "enforce_memory_budget",
    "estimate_launch_us",
    "estimate_trace_us",
    "latency_breakdown",
    "launch_signature",
    "memory_budget_bytes",
    "trace_memo_stats",
    "trace_signature",
    "wave_efficiency",
]
