"""Trace-to-latency conversion for a device spec."""

from __future__ import annotations

import math
from operator import attrgetter
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.errors import SimulatedOOMError
from repro.gpusim.trace import KernelLaunch, KernelTrace, LaunchKind
from repro.hw.specs import DeviceSpec
from repro.precision import Precision


def wave_efficiency(ctas: int, concurrent_ctas: int) -> float:
    """Utilization fraction from wave quantization.

    A GPU executes thread blocks in waves of ``concurrent_ctas``; a kernel
    with fewer blocks than one wave leaves SMs idle, and the last partial
    wave of a large kernel does the same.  This is the mechanism that makes
    extra mask splits (more, smaller, parallel GEMMs) profitable on
    low-parallelism workloads (Table 5) and devices (Figure 18 on Orin).
    """
    if ctas < 1 or concurrent_ctas < 1:
        raise ValueError("ctas and concurrent_ctas must be >= 1")
    waves = math.ceil(ctas / concurrent_ctas)
    return ctas / (waves * concurrent_ctas)


def _compute_time_us(
    launch: KernelLaunch, device: DeviceSpec, precision: Precision
) -> float:
    """Time on the launch's compute pipe, including scalar-op overhead."""
    eff = wave_efficiency(launch.ctas, device.concurrent_ctas)
    if launch.kind is LaunchKind.GEMM:
        tflops = device.gemm_tflops(precision, launch.tensor_core_eligible)
    else:
        # Mapping, memory and reduction (elementwise adds) launches run on
        # the CUDA cores regardless of precision.
        tflops = device.cuda_core_tflops
    t_flops = launch.flops / (tflops * 1e6 * eff * launch.compute_efficiency)
    # Scalar ops (addressing, boundary checks, hash probes) run on the CUDA
    # cores' integer pipe regardless of the launch kind.
    t_scalar = launch.scalar_ops / (device.int_giops * 1e3 * eff)
    return t_flops + t_scalar


def _memory_time_us(launch: KernelLaunch, device: DeviceSpec) -> float:
    """DRAM time: plain traffic plus serialized atomic traffic.

    Achievable bandwidth also degrades for small launches: DRAM saturates
    only with roughly one resident thread block per SM, so a 1-CTA kernel
    on a 108-SM device sees ~1/108 of peak — small kernels are latency
    bound, which matters for mapping operations on thin layers.
    """
    plain = launch.dram_read_bytes + launch.dram_write_bytes
    atomic = launch.atomic_write_bytes * device.atomic_serialization
    bw_eff = min(1.0, launch.ctas / device.sms)
    return (plain + atomic) / (device.dram_bw_gbps * 1e3 * bw_eff)


def estimate_launch_us(
    launch: KernelLaunch, device: DeviceSpec, precision: Precision
) -> float:
    """Latency of a single kernel launch in microseconds."""
    t_compute = _compute_time_us(launch, device, precision)
    t_memory = _memory_time_us(launch, device)
    if launch.overlapped:
        body = max(t_compute, t_memory)
    else:
        body = t_compute + t_memory
    return device.kernel_launch_us + body


# ---------------------------------------------------------------------- #
# Trace memoization (ROADMAP item 5)
# ---------------------------------------------------------------------- #

#: Launch fields the single-stream pricing model reads.  This tuple is the
#: single source of truth for the trace-memo key: ``launch_signature`` keys
#: on exactly these fields, and ``analyze.provenance`` audits that the
#: pricing functions above read nothing else.
PRICING_FIELDS: Tuple[str, ...] = (
    "kind",
    "flops",
    "dram_read_bytes",
    "dram_write_bytes",
    "atomic_write_bytes",
    "scalar_ops",
    "ctas",
    "overlapped",
    "tensor_core_eligible",
    "compute_efficiency",
)

#: Additional launch fields the multi-stream scheduler reads on top of
#: pricing: dependence edges come from named buffer accesses, tie-breaking
#: from launch names, and workspace liveness from per-launch workspace.
SCHEDULE_FIELDS: Tuple[str, ...] = (
    "name",
    "workspace_bytes",
    "reads",
    "writes",
)

_PRICING_GETTER = attrgetter(*PRICING_FIELDS)
_SCHEDULE_GETTER = attrgetter(*(PRICING_FIELDS + SCHEDULE_FIELDS))


def launch_signature(
    launch: KernelLaunch, scheduled: bool = False
) -> Tuple[Any, ...]:
    """Tuple of exactly the launch fields the latency model reads.

    With ``scheduled=False`` this covers the single-stream pricing path
    (:func:`estimate_launch_us`); with ``scheduled=True`` it additionally
    covers the dependence/scheduling fields read by ``streams > 1``
    estimation.  ``KernelLaunch`` is mutable (optimization passes rewrite
    launches in place), so the signature is recomputed per call rather than
    cached on the launch: a mutated launch re-keys instead of aliasing.
    """
    getter = _SCHEDULE_GETTER if scheduled else _PRICING_GETTER
    sig: Tuple[Any, ...] = getter(launch)
    return sig


def trace_signature(
    trace: KernelTrace,
    device: DeviceSpec,
    precision: "Precision | str",
    streams: int = 1,
) -> Tuple[Hashable, ...]:
    """Memo key for :func:`estimate_trace_us`.

    The key is (device, precision, streams, per-launch field signatures) —
    the kmap and layer shape are fully determined by the launch fields
    (flops, bytes, ctas all derive from them), so this *is* the (layer
    signature, kmap signature, device, precision, streams) key ROADMAP
    item 5 asks for, computed from what the pricing model actually reads.

    ``precision`` is keyed as passed (string or enum, unparsed): parsing on
    the hit path would cost more than the lookup.  Spelling aliases such as
    ``"fp16"`` vs ``Precision.FP16`` therefore occupy separate entries, but
    each maps to the value computed from its parsed form, so aliasing can
    only duplicate work, never corrupt a result.
    """
    getter = _SCHEDULE_GETTER if streams > 1 else _PRICING_GETTER
    return (device, precision, streams, tuple(map(getter, trace)))


class TraceMemo:
    """Bounded FIFO memo table for :func:`estimate_trace_us` results.

    Content-keyed via :func:`trace_signature`: mutating a launch between
    calls re-keys the trace, so a stale hit is impossible by construction.
    Eviction is insertion-ordered FIFO (deterministic, no per-hit
    bookkeeping on the fast path).
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"memo capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: Dict[Tuple[Hashable, ...], float] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Tuple[Hashable, ...]) -> Optional[float]:
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, key: Tuple[Hashable, ...], value: float) -> None:
        entries = self._entries
        if key not in entries and len(entries) >= self.capacity:
            del entries[next(iter(entries))]
            self.evictions += 1
        entries[key] = value

    def clear(self) -> None:
        """Drop all entries and reset hit/miss/eviction counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> Dict[str, int]:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


_TRACE_MEMO = TraceMemo()


def trace_memo_stats() -> Dict[str, int]:
    """Hit/miss/eviction counters of the process-wide trace memo."""
    return _TRACE_MEMO.stats()


def clear_trace_memo() -> None:
    """Empty the process-wide trace memo and reset its counters."""
    _TRACE_MEMO.clear()


def estimate_trace_us(
    trace: KernelTrace,
    device: DeviceSpec,
    precision: "Precision | str",
    streams: int = 1,
    memoize: bool = True,
) -> float:
    """Total latency of a trace in microseconds.

    With ``streams=1`` (the default) launches serialize on one stream —
    sparse convolution layers are data-dependent, so that matches what
    real single-stream libraries do.  With ``streams=K > 1`` the trace is
    list-scheduled onto K virtual streams respecting its dependence DAG
    (:mod:`repro.opt.schedule`), so the result lands in
    ``[critical_path, serialized]``.

    Results are memoized in a process-wide :class:`TraceMemo` keyed by
    :func:`trace_signature` — repeated batches replay prior estimates
    byte-identically instead of re-pricing every launch (ROADMAP item 5).
    Pass ``memoize=False`` to force a fresh computation.
    """
    if streams < 1:
        raise ValueError(f"streams must be >= 1, got {streams}")
    if memoize:
        key = trace_signature(trace, device, precision, streams)
        cached = _TRACE_MEMO.get(key)
        if cached is not None:
            return cached
    parsed = Precision.parse(precision)
    if streams > 1:
        # Imported lazily: repro.opt depends on this module for launch
        # pricing, so a top-level import would be circular.
        from repro.opt.schedule import scheduled_trace_us

        total = scheduled_trace_us(trace, device, parsed, streams)
    else:
        total = sum(
            estimate_launch_us(l, device, parsed) for l in trace
        )
    if memoize:
        _TRACE_MEMO.put(key, total)
    return total


def memory_budget_bytes(device: DeviceSpec, headroom: float = 0.0) -> float:
    """Usable DRAM on ``device`` after reserving a headroom fraction.

    The headroom models everything the simulator does not trace: the CUDA
    context, allocator fragmentation, framework reserves.
    """
    if not 0.0 <= headroom < 1.0:
        raise ValueError(f"headroom must be in [0, 1), got {headroom}")
    return device.dram_bytes * (1.0 - headroom)


def enforce_memory_budget(
    trace: KernelTrace,
    device: DeviceSpec,
    resident_bytes: float = 0.0,
    headroom: float = 0.0,
    budget_bytes: "float | None" = None,
) -> float:
    """Check a trace against the device's DRAM capacity.

    ``resident_bytes`` carries everything live for the whole execution that
    launches do not annotate as workspace: features and weights.  Raises
    :class:`~repro.errors.SimulatedOOMError` when the modeled peak (resident
    plus the trace's liveness-aware peak workspace) exceeds the budget;
    returns the modeled peak in bytes otherwise.
    """
    if resident_bytes < 0:
        raise ValueError(f"resident_bytes must be >= 0, got {resident_bytes}")
    budget = (
        float(budget_bytes)
        if budget_bytes is not None
        else memory_budget_bytes(device, headroom)
    )
    peak = trace.summary().peak_workspace_bytes + resident_bytes
    if peak > budget:
        raise SimulatedOOMError(
            f"modeled peak memory {peak / (1 << 30):.3f} GiB exceeds "
            f"budget {budget / (1 << 30):.3f} GiB on {device.name}",
            peak_bytes=peak,
            budget_bytes=budget,
        )
    return peak


def latency_breakdown(
    trace: KernelTrace, device: DeviceSpec, precision: "Precision | str"
) -> Dict[str, float]:
    """Latency split by launch kind, in microseconds.

    The ``"mapping"`` vs ``"gemm"`` split is the quantity behind the paper's
    Tables 3/4 contrast (kernel-only time vs end-to-end time).
    """
    precision = Precision.parse(precision)
    out: Dict[str, float] = {}
    for launch in trace:
        key = launch.kind.value
        out[key] = out.get(key, 0.0) + estimate_launch_us(launch, device, precision)
    return out
