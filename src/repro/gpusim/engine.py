"""Trace-to-latency conversion for a device spec."""

from __future__ import annotations

import math
from typing import Dict

from repro.errors import SimulatedOOMError
from repro.gpusim.trace import KernelLaunch, KernelTrace, LaunchKind
from repro.hw.specs import DeviceSpec
from repro.precision import Precision


def wave_efficiency(ctas: int, concurrent_ctas: int) -> float:
    """Utilization fraction from wave quantization.

    A GPU executes thread blocks in waves of ``concurrent_ctas``; a kernel
    with fewer blocks than one wave leaves SMs idle, and the last partial
    wave of a large kernel does the same.  This is the mechanism that makes
    extra mask splits (more, smaller, parallel GEMMs) profitable on
    low-parallelism workloads (Table 5) and devices (Figure 18 on Orin).
    """
    if ctas < 1 or concurrent_ctas < 1:
        raise ValueError("ctas and concurrent_ctas must be >= 1")
    waves = math.ceil(ctas / concurrent_ctas)
    return ctas / (waves * concurrent_ctas)


def _compute_time_us(
    launch: KernelLaunch, device: DeviceSpec, precision: Precision
) -> float:
    """Time on the launch's compute pipe, including scalar-op overhead."""
    eff = wave_efficiency(launch.ctas, device.concurrent_ctas)
    if launch.kind is LaunchKind.GEMM:
        tflops = device.gemm_tflops(precision, launch.tensor_core_eligible)
    else:
        # Mapping, memory and reduction (elementwise adds) launches run on
        # the CUDA cores regardless of precision.
        tflops = device.cuda_core_tflops
    t_flops = launch.flops / (tflops * 1e6 * eff * launch.compute_efficiency)
    # Scalar ops (addressing, boundary checks, hash probes) run on the CUDA
    # cores' integer pipe regardless of the launch kind.
    t_scalar = launch.scalar_ops / (device.int_giops * 1e3 * eff)
    return t_flops + t_scalar


def _memory_time_us(launch: KernelLaunch, device: DeviceSpec) -> float:
    """DRAM time: plain traffic plus serialized atomic traffic.

    Achievable bandwidth also degrades for small launches: DRAM saturates
    only with roughly one resident thread block per SM, so a 1-CTA kernel
    on a 108-SM device sees ~1/108 of peak — small kernels are latency
    bound, which matters for mapping operations on thin layers.
    """
    plain = launch.dram_read_bytes + launch.dram_write_bytes
    atomic = launch.atomic_write_bytes * device.atomic_serialization
    bw_eff = min(1.0, launch.ctas / device.sms)
    return (plain + atomic) / (device.dram_bw_gbps * 1e3 * bw_eff)


def estimate_launch_us(
    launch: KernelLaunch, device: DeviceSpec, precision: Precision
) -> float:
    """Latency of a single kernel launch in microseconds."""
    t_compute = _compute_time_us(launch, device, precision)
    t_memory = _memory_time_us(launch, device)
    if launch.overlapped:
        body = max(t_compute, t_memory)
    else:
        body = t_compute + t_memory
    return device.kernel_launch_us + body


def estimate_trace_us(
    trace: KernelTrace,
    device: DeviceSpec,
    precision: "Precision | str",
    streams: int = 1,
) -> float:
    """Total latency of a trace in microseconds.

    With ``streams=1`` (the default) launches serialize on one stream —
    sparse convolution layers are data-dependent, so that matches what
    real single-stream libraries do.  With ``streams=K > 1`` the trace is
    list-scheduled onto K virtual streams respecting its dependence DAG
    (:mod:`repro.opt.schedule`), so the result lands in
    ``[critical_path, serialized]``.
    """
    precision = Precision.parse(precision)
    if streams < 1:
        raise ValueError(f"streams must be >= 1, got {streams}")
    if streams > 1:
        # Imported lazily: repro.opt depends on this module for launch
        # pricing, so a top-level import would be circular.
        from repro.opt.schedule import scheduled_trace_us

        return scheduled_trace_us(trace, device, precision, streams)
    return sum(estimate_launch_us(l, device, precision) for l in trace)


def memory_budget_bytes(device: DeviceSpec, headroom: float = 0.0) -> float:
    """Usable DRAM on ``device`` after reserving a headroom fraction.

    The headroom models everything the simulator does not trace: the CUDA
    context, allocator fragmentation, framework reserves.
    """
    if not 0.0 <= headroom < 1.0:
        raise ValueError(f"headroom must be in [0, 1), got {headroom}")
    return device.dram_bytes * (1.0 - headroom)


def enforce_memory_budget(
    trace: KernelTrace,
    device: DeviceSpec,
    resident_bytes: float = 0.0,
    headroom: float = 0.0,
    budget_bytes: "float | None" = None,
) -> float:
    """Check a trace against the device's DRAM capacity.

    ``resident_bytes`` carries everything live for the whole execution that
    launches do not annotate as workspace: features and weights.  Raises
    :class:`~repro.errors.SimulatedOOMError` when the modeled peak (resident
    plus the trace's liveness-aware peak workspace) exceeds the budget;
    returns the modeled peak in bytes otherwise.
    """
    if resident_bytes < 0:
        raise ValueError(f"resident_bytes must be >= 0, got {resident_bytes}")
    budget = (
        float(budget_bytes)
        if budget_bytes is not None
        else memory_budget_bytes(device, headroom)
    )
    peak = trace.summary().peak_workspace_bytes + resident_bytes
    if peak > budget:
        raise SimulatedOOMError(
            f"modeled peak memory {peak / (1 << 30):.3f} GiB exceeds "
            f"budget {budget / (1 << 30):.3f} GiB on {device.name}",
            peak_bytes=peak,
            budget_bytes=budget,
        )
    return peak


def latency_breakdown(
    trace: KernelTrace, device: DeviceSpec, precision: "Precision | str"
) -> Dict[str, float]:
    """Latency split by launch kind, in microseconds.

    The ``"mapping"`` vs ``"gemm"`` split is the quantity behind the paper's
    Tables 3/4 contrast (kernel-only time vs end-to-end time).
    """
    precision = Precision.parse(precision)
    out: Dict[str, float] = {}
    for launch in trace:
        key = launch.kind.value
        out[key] = out.get(key, 0.0) + estimate_launch_us(launch, device, precision)
    return out
