"""Trace inspection: human-readable timelines and engine comparisons.

The counterpart of ``nsys``-style profiling for the analytical model:
given a trace and a device, show where the time goes — per launch, per
kind, per layer prefix.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.gpusim.engine import estimate_launch_us
from repro.gpusim.trace import KernelTrace
from repro.hw.specs import DeviceSpec, get_device
from repro.precision import Precision
from repro.utils.format import format_si, format_table


def timeline(
    trace: KernelTrace,
    device: "DeviceSpec | str",
    precision: "Precision | str",
    top: Optional[int] = None,
) -> str:
    """Per-launch timeline, longest first when ``top`` is given."""
    device = get_device(device)
    precision = Precision.parse(precision)
    rows: List[Tuple[float, List[str]]] = []
    clock = 0.0
    for launch in trace:
        duration = estimate_launch_us(launch, device, precision)
        rows.append(
            (
                duration,
                [
                    f"{clock:10.1f}",
                    f"{duration:9.1f}",
                    launch.kind.value,
                    format_si(launch.flops, "F"),
                    format_si(
                        launch.dram_read_bytes + launch.dram_write_bytes, "B"
                    ),
                    str(launch.ctas),
                    launch.name,
                ],
            )
        )
        clock += duration
    if top is not None:
        rows.sort(key=lambda r: -r[0])
        rows = rows[:top]
    return format_table(
        ["t (us)", "dur (us)", "kind", "flops", "dram", "ctas", "launch"],
        [r[1] for r in rows],
        title=f"trace timeline on {device.name} ({precision.value}), "
        f"total {clock:.1f} us over {len(trace)} launches",
    )


def by_layer(
    trace: KernelTrace,
    device: "DeviceSpec | str",
    precision: "Precision | str",
) -> Dict[str, float]:
    """Latency grouped by the layer prefix (text before the first '/')."""
    device = get_device(device)
    precision = Precision.parse(precision)
    out: Dict[str, float] = {}
    for launch in trace:
        layer = launch.name.split("/", 1)[0]
        out[layer] = out.get(layer, 0.0) + estimate_launch_us(
            launch, device, precision
        )
    return out


def layer_report(
    trace: KernelTrace,
    device: "DeviceSpec | str",
    precision: "Precision | str",
    top: int = 20,
) -> str:
    """Formatted per-layer latency table, heaviest layers first."""
    per_layer = by_layer(trace, device, precision)
    total = sum(per_layer.values()) or 1.0
    ranked = sorted(per_layer.items(), key=lambda kv: -kv[1])[:top]
    rows = [
        [name, f"{us:.1f}", f"{100 * us / total:.1f}%"]
        for name, us in ranked
    ]
    return format_table(
        ["layer", "us", "share"], rows,
        title=f"per-layer latency (top {len(rows)} of {len(per_layer)})",
    )
