"""Kernel execution traces: what a dataflow did, independent of any device."""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple


class LaunchKind(enum.Enum):
    """What hardware pipe a launch predominantly exercises."""

    GEMM = "gemm"  # matrix multiply: tensor-core eligible
    MAPPING = "mapping"  # hash build/query, bitmask, sort, reorder: CUDA cores
    MEMORY = "memory"  # gather/scatter/transpose: bandwidth bound
    REDUCTION = "reduction"  # partial-sum reduction for mask splits


@dataclasses.dataclass(frozen=True)
class BufferAccess:
    """One named-buffer access by a kernel launch.

    Buffer ids carry a storage-class tag before the first colon:

    * ``ext:<name>`` — external/resident buffers that exist (and are
      initialized, e.g. allocator-zeroed accumulators) before the trace
      starts: features, weights, kernel-map pair lists, gradients.
    * ``ws:<name>`` — transient workspace that is *defined by the trace
      itself*: staging buffers, sort keys, split partials.  A ``ws:``
      buffer read before any in-trace write is an uninitialized read;
      one written but never read is a leak; and every launch touching
      ``ws:`` buffers must account for their full extents in its
      :attr:`KernelLaunch.workspace_bytes`.

    ``nbytes`` is the byte extent of the access; ``atomic`` marks
    read-modify-write traffic whose ordering the hardware resolves
    (atomic writers to one buffer don't race each other).
    """

    buffer: str
    nbytes: float
    atomic: bool = False

    @property
    def workspace(self) -> bool:
        """Whether this access targets a trace-defined ``ws:`` buffer."""
        return self.buffer.startswith("ws:")


def ext(name: str, nbytes: float, atomic: bool = False) -> BufferAccess:
    """Access to an external (pre-existing, pre-initialized) buffer."""
    return BufferAccess(f"ext:{name}", float(nbytes), atomic)


def ws(name: str, nbytes: float, atomic: bool = False) -> BufferAccess:
    """Access to a transient workspace buffer defined by the trace."""
    return BufferAccess(f"ws:{name}", float(nbytes), atomic)


def _scoped(
    access: BufferAccess, prefix: str, renames: Mapping[str, str]
) -> BufferAccess:
    renamed = renames.get(access.buffer)
    if renamed is not None:
        return dataclasses.replace(access, buffer=renamed)
    cls, _, name = access.buffer.partition(":")
    return dataclasses.replace(access, buffer=f"{cls}:{prefix}:{name}")


def scope_buffers(
    trace: "KernelTrace",
    prefix: str,
    renames: Optional[Mapping[str, str]] = None,
) -> "KernelTrace":
    """Namespace every buffer id in ``trace`` under ``prefix`` in place.

    The prefix is inserted after the ``ext:``/``ws:`` class tag, so
    ``ws:gs_in.k0`` becomes ``ws:<prefix>:gs_in.k0``.  ``renames`` maps
    *pre-scoped* buffer ids to fully-qualified replacements and wins over
    prefixing — the convolution layer uses it to splice its input-feature
    reads onto the previous layer's output buffer.
    """
    table: Mapping[str, str] = renames or {}
    for launch in trace:
        if launch.reads:
            launch.reads = tuple(
                _scoped(a, prefix, table) for a in launch.reads
            )
        if launch.writes:
            launch.writes = tuple(
                _scoped(a, prefix, table) for a in launch.writes
            )
    return trace


@dataclasses.dataclass
class KernelLaunch:
    """One GPU kernel launch with its resource demands.

    Attributes:
        name: Diagnostic label (e.g. ``"implicit_gemm/main"``).
        kind: Which pipe the launch exercises (:class:`LaunchKind`).
        flops: Floating-point operations *issued*, including redundant
            warp-lockstep work (2 x MACs).
        dram_read_bytes / dram_write_bytes: Off-chip traffic.
        atomic_write_bytes: Bytes written with atomic read-modify-write
            operations, charged *in addition to* ``dram_write_bytes`` and
            subject to serialization on conflicts.  A launch whose writes
            all conflict (fetch-on-demand) may have ``dram_write_bytes=0``
            with all traffic here.
        scalar_ops: Integer/address/control operations executed on CUDA
            cores alongside the main pipe — un-hoisted pointer arithmetic
            and boundary checks land here (Section 3.2).
        workspace_bytes: Transient DRAM *live* while this launch executes —
            gather/scatter staging buffers, kmap structures, sort key
            arrays, split partial sums.  Excludes resident features and
            weights (those are the caller's to account).  Because launches
            serialize on one stream, the trace-wide peak is the *max* over
            launches, not the sum: a buffer freed before the next launch
            never stacks.
        ctas: Thread blocks launched (drives occupancy).
        overlapped: Whether compute and memory are pipelined (Figure 3).
        tensor_core_eligible: GEMM launches may still be barred from tensor
            cores (e.g. MinkowskiEngine FP32 paths).
        compute_efficiency: Fraction of peak MMA throughput the inner loop
            can sustain (tile quantization, pipeline fill), in ``(0, 1]``.
        reads / writes: Named-buffer access sets (:class:`BufferAccess`)
            used by the dependence analyzer to build RAW/WAR/WAW edges.
            Empty sets mean "unannotated" and opt the launch out of
            dependence checking (the byte counters above stay the source
            of truth for the latency model).
        fuse_group: Optimizer metadata: launches that share a non-empty
            ``fuse_group`` form one fusable producer/consumer chain (e.g.
            the gather -> gemm -> scatter triple for one offset).  The
            fusion pass may replace a *contiguous* run of same-group
            launches with a single fused launch; ``""`` opts out.
        hoistable_scalar_ops: Optimizer metadata: the portion of
            ``scalar_ops`` that is loop-invariant address arithmetic a
            hoisting pass may remove (Section 3.2 / Figure 20).  Must not
            exceed ``scalar_ops``.
        untracked_workspace_bytes: Optimizer metadata: transient bytes
            inside ``workspace_bytes`` that are *not* named in
            ``reads``/``writes`` (pair lists, per-CTA scratch).  The
            workspace-reuse planner keeps at least this much headroom when
            tightening a launch's declared workspace.
    """

    name: str
    kind: LaunchKind
    flops: float = 0.0
    dram_read_bytes: float = 0.0
    dram_write_bytes: float = 0.0
    atomic_write_bytes: float = 0.0
    scalar_ops: float = 0.0
    workspace_bytes: float = 0.0
    ctas: int = 1
    overlapped: bool = False
    tensor_core_eligible: bool = True
    compute_efficiency: float = 1.0
    reads: Tuple[BufferAccess, ...] = ()
    writes: Tuple[BufferAccess, ...] = ()
    fuse_group: str = ""
    hoistable_scalar_ops: float = 0.0
    untracked_workspace_bytes: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.compute_efficiency <= 1.0:
            raise ValueError(
                f"compute_efficiency must be in (0, 1], got {self.compute_efficiency}"
            )
        if self.ctas < 1:
            raise ValueError(f"ctas must be >= 1, got {self.ctas}")
        for field in ("flops", "dram_read_bytes", "dram_write_bytes",
                      "atomic_write_bytes", "scalar_ops", "workspace_bytes",
                      "hoistable_scalar_ops", "untracked_workspace_bytes"):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be non-negative")
        if self.hoistable_scalar_ops > self.scalar_ops:
            raise ValueError(
                f"hoistable_scalar_ops ({self.hoistable_scalar_ops}) must not "
                f"exceed scalar_ops ({self.scalar_ops})"
            )
        if self.untracked_workspace_bytes > self.workspace_bytes:
            raise ValueError(
                f"untracked_workspace_bytes ({self.untracked_workspace_bytes}) "
                f"must not exceed workspace_bytes ({self.workspace_bytes})"
            )
        if not isinstance(self.reads, tuple):
            self.reads = tuple(self.reads)
        if not isinstance(self.writes, tuple):
            self.writes = tuple(self.writes)


@dataclasses.dataclass
class TraceSummary:
    """Aggregate resource counts over a trace (device independent)."""

    launches: int = 0
    flops: float = 0.0
    dram_read_bytes: float = 0.0
    dram_write_bytes: float = 0.0
    atomic_write_bytes: float = 0.0
    scalar_ops: float = 0.0
    #: Liveness-aware peak transient workspace: the max over launches of
    #: :attr:`KernelLaunch.workspace_bytes` (launches serialize, so buffers
    #: freed between layers don't stack).
    peak_workspace_bytes: float = 0.0

    @property
    def dram_bytes(self) -> float:
        return self.dram_read_bytes + self.dram_write_bytes


class KernelTrace:
    """An ordered sequence of kernel launches for one operation or network."""

    def __init__(self, launches: Optional[Iterable[KernelLaunch]] = None) -> None:
        self._launches: List[KernelLaunch] = list(launches or [])

    def add(self, launch: KernelLaunch) -> KernelLaunch:
        self._launches.append(launch)
        return launch

    def extend(self, other: "KernelTrace") -> "KernelTrace":
        self._launches.extend(other._launches)
        return self

    def __iter__(self) -> Iterator[KernelLaunch]:
        return iter(self._launches)

    def __len__(self) -> int:
        return len(self._launches)

    @property
    def launches(self) -> List[KernelLaunch]:
        return list(self._launches)

    def filter(self, kind: LaunchKind) -> "KernelTrace":
        """Sub-trace of launches of one kind (e.g. kernel-only, Table 4)."""
        return KernelTrace(l for l in self._launches if l.kind is kind)

    def filter_name(self, substring: str) -> "KernelTrace":
        return KernelTrace(l for l in self._launches if substring in l.name)

    def summary(self) -> TraceSummary:
        agg = TraceSummary()
        for launch in self._launches:
            agg.launches += 1
            agg.flops += launch.flops
            agg.dram_read_bytes += launch.dram_read_bytes
            agg.dram_write_bytes += launch.dram_write_bytes
            agg.atomic_write_bytes += launch.atomic_write_bytes
            agg.scalar_ops += launch.scalar_ops
            agg.peak_workspace_bytes = max(
                agg.peak_workspace_bytes, launch.workspace_bytes
            )
        return agg

    def by_kind(self) -> Dict[LaunchKind, TraceSummary]:
        out: Dict[LaunchKind, TraceSummary] = {}
        for kind in LaunchKind:
            sub = self.filter(kind)
            if len(sub):
                out[kind] = sub.summary()
        return out

    def __repr__(self) -> str:
        s = self.summary()
        return (
            f"KernelTrace(launches={s.launches}, flops={s.flops:.3g}, "
            f"dram={s.dram_bytes:.3g}B)"
        )
