"""Heterogeneous graph workloads (Figure 16).

Relational graph convolution (R-GCN) shares sparse convolution's
computation pattern — relations play the role of kernel offsets, edge lists
play the role of kernel maps (Section 1).  This package provides:

* :mod:`repro.graph.hetero` — heterogeneous graphs and synthetic generators
  matching the five benchmark datasets' node/edge/relation statistics;
* :mod:`repro.graph.rgcn` — an R-GCN layer executing through the same
  dataflow/trace machinery as the point-cloud kernels;
* :mod:`repro.graph.engines` — execution models for DGL, PyG, Graphiler and
  TorchSparse++ with latency and memory accounting.
"""

from repro.graph.hetero import GRAPH_DATASETS, HeteroGraph, make_graph
from repro.graph.rgcn import RGCN, RGCNLayer
from repro.graph.engines import (
    GRAPH_ENGINES,
    GraphMeasurement,
    get_graph_engine,
    measure_rgcn,
)

__all__ = [
    "GRAPH_DATASETS",
    "HeteroGraph",
    "make_graph",
    "RGCN",
    "RGCNLayer",
    "GRAPH_ENGINES",
    "GraphMeasurement",
    "get_graph_engine",
    "measure_rgcn",
]
