"""Execution models for graph deep-learning systems (Figure 16).

Each engine runs the same R-GCN but differs in execution style:

* **DGL** — heterograph execution loops over relations, dispatching a
  gather / typed-matmul / scatter pipeline *per relation* plus framework
  bookkeeping ops; messages are materialised per edge.
* **PyG** — gathers all edges once and runs a *segmented* matmul over all
  relations (3 big kernels), but still issues per-relation index/view ops
  and materialises message tensors (larger workspace than DGL).
* **Graphiler** — compiles the message-passing data-flow graph into a few
  fused kernels (no per-relation work at all), but its generated kernels
  run on CUDA cores and the DFG materialises every intermediate edge
  tensor (the largest workspace).
* **TorchSparse++** — the paper's system: relations are kernel offsets of
  a block-fused fetch-on-demand sparse convolution; one on-chip kernel per
  layer, no edge materialisation, tensor cores.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict

import numpy as np

from repro.errors import GraphError
from repro.gpusim.engine import estimate_trace_us
from repro.gpusim.trace import KernelLaunch, KernelTrace, LaunchKind
from repro.graph.hetero import HeteroGraph
from repro.hw.specs import DeviceSpec, get_device
from repro.precision import Precision


@dataclasses.dataclass(frozen=True)
class GraphEngineSpec:
    """Parameters of one graph framework's execution model.

    Attributes:
        per_relation_pipeline: dispatch gather/matmul/scatter separately
            for every relation (DGL) instead of once for all (the rest).
        per_relation_index_ops: issue one small index/view kernel per
            relation even when compute is segmented (PyG).
        fetch_on_demand: keep messages on chip (TorchSparse++); otherwise
            the pipeline round-trips gathered rows and messages via DRAM.
        host_dispatch_us: CPU framework overhead per launched op.
        tensor_cores: whether matmuls run on tensor cores.
        edge_workspace_factor: workspace in units of
            ``4 * E * (C_in + C_out)`` bytes (messages, gathers, DFG
            intermediates); also charged as extra DRAM round trips.
        node_workspace_factor: extra node-sized buffers (x ``4*N*C_out``).
    """

    name: str
    per_relation_pipeline: bool
    per_relation_index_ops: bool
    fetch_on_demand: bool
    host_dispatch_us: float
    tensor_cores: bool
    edge_workspace_factor: float
    node_workspace_factor: float


DGL = GraphEngineSpec(
    name="DGL",
    per_relation_pipeline=True,
    per_relation_index_ops=False,
    fetch_on_demand=False,
    host_dispatch_us=2.0,
    tensor_cores=True,
    edge_workspace_factor=0.7,
    node_workspace_factor=1.5,
)

PYG = GraphEngineSpec(
    name="PyG",
    per_relation_pipeline=False,
    per_relation_index_ops=True,
    fetch_on_demand=False,
    host_dispatch_us=3.0,
    tensor_cores=True,
    edge_workspace_factor=1.1,  # messages + per-relation COO views
    node_workspace_factor=1.5,
)

GRAPHILER = GraphEngineSpec(
    name="Graphiler",
    per_relation_pipeline=False,
    per_relation_index_ops=False,
    fetch_on_demand=False,
    host_dispatch_us=30.0,
    tensor_cores=False,  # compiled message kernels on CUDA cores
    edge_workspace_factor=1.4,  # full DFG intermediates per edge
    node_workspace_factor=2.0,
)

TORCHSPARSEPP = GraphEngineSpec(
    name="TorchSparse++",
    per_relation_pipeline=False,
    per_relation_index_ops=False,
    fetch_on_demand=True,
    host_dispatch_us=30.0,
    tensor_cores=True,
    edge_workspace_factor=0.0,  # fetch-on-demand: nothing materialised
    node_workspace_factor=1.0,  # FP32 accumulation buffer
)

GRAPH_ENGINES: Dict[str, GraphEngineSpec] = {
    spec.name.lower(): spec for spec in (DGL, PYG, GRAPHILER, TORCHSPARSEPP)
}


def get_graph_engine(name: str) -> GraphEngineSpec:
    key = name.lower().replace(" ", "").replace("-", "")
    aliases = {"torchsparsepp": "torchsparse++", "tspp": "torchsparse++"}
    key = aliases.get(key, key)
    if key not in GRAPH_ENGINES:
        raise GraphError(
            f"unknown graph engine {name!r}; have {sorted(GRAPH_ENGINES)}"
        )
    return GRAPH_ENGINES[key]


# ---------------------------------------------------------------------- #
# Trace construction
# ---------------------------------------------------------------------- #
def _staged_pipeline(
    trace: KernelTrace,
    spec: GraphEngineSpec,
    edges: int,
    c_in: int,
    c_out: int,
    itemsize: int,
    tag: str,
) -> None:
    """Gather -> matmul -> scatter with DRAM-materialised stages."""
    trace.add(
        KernelLaunch(
            name=f"{spec.name}/gather{tag}",
            kind=LaunchKind.MEMORY,
            dram_read_bytes=itemsize * edges * c_in + 8.0 * edges,
            dram_write_bytes=4.0 * edges * c_in,
            ctas=max(1, edges * c_in // 4096),
        )
    )
    trace.add(
        KernelLaunch(
            name=f"{spec.name}/matmul{tag}",
            kind=LaunchKind.GEMM,
            flops=2.0 * edges * c_in * c_out,
            dram_read_bytes=4.0 * edges * c_in,
            dram_write_bytes=4.0 * edges * c_out,
            ctas=max(1, math.ceil(edges / 128)),
            overlapped=True,
            tensor_core_eligible=spec.tensor_cores,
            compute_efficiency=0.5,  # ragged segments
        )
    )
    trace.add(
        KernelLaunch(
            name=f"{spec.name}/scatter{tag}",
            kind=LaunchKind.MEMORY,
            dram_read_bytes=4.0 * edges * c_out + 8.0 * edges,
            atomic_write_bytes=4.0 * edges * c_out,
            ctas=max(1, edges * c_out // 4096),
        )
    )


def rgcn_layer_trace(
    spec: GraphEngineSpec,
    graph: HeteroGraph,
    c_in: int,
    c_out: int,
    precision: Precision,
    charge_index_ops: bool = True,
) -> KernelTrace:
    """Trace of one R-GCN layer under one engine's execution model.

    ``charge_index_ops=False`` models engines that precompute per-relation
    index structures once per forward pass (PyG's sorted edge index).
    """
    itemsize = precision.itemsize
    trace = KernelTrace()
    sizes = graph.relation_sizes()
    n = graph.num_nodes
    total_edges = int(sizes.sum())

    if spec.fetch_on_demand:
        ctas = sum(max(1, math.ceil(int(s) / 128)) for s in sizes if s > 0)
        trace.add(
            KernelLaunch(
                name=f"{spec.name}/rgcn_fused",
                kind=LaunchKind.GEMM,
                flops=2.0 * total_edges * c_in * c_out,
                dram_read_bytes=itemsize * total_edges * c_in
                + 16.0 * total_edges
                + itemsize * graph.num_relations * c_in * c_out,
                atomic_write_bytes=4.0 * total_edges * c_out,
                scalar_ops=2.0 * total_edges,
                ctas=max(1, ctas),
                overlapped=True,
                tensor_core_eligible=spec.tensor_cores,
                compute_efficiency=0.5,
            )
        )
    elif spec.per_relation_pipeline:
        for r, size in enumerate(sizes):
            if size:
                _staged_pipeline(
                    trace, spec, int(size), c_in, c_out, itemsize, f"_r{r}"
                )
    else:
        _staged_pipeline(trace, spec, total_edges, c_in, c_out, itemsize, "")

    if (spec.per_relation_index_ops and charge_index_ops
            and not spec.per_relation_pipeline):
        for r, size in enumerate(sizes):
            if size == 0:
                continue
            trace.add(
                KernelLaunch(
                    name=f"{spec.name}/index_r{r}",
                    kind=LaunchKind.MAPPING,
                    scalar_ops=2.0 * int(size),
                    dram_read_bytes=8.0 * int(size),
                    ctas=max(1, int(size) // 256),
                )
            )
    elif spec.per_relation_index_ops and charge_index_ops:
        # The per-relation pipeline already implies bookkeeping launches.
        for r, size in enumerate(sizes):
            if size == 0:
                continue
            trace.add(
                KernelLaunch(
                    name=f"{spec.name}/degree_r{r}",
                    kind=LaunchKind.MAPPING,
                    scalar_ops=2.0 * int(size),
                    dram_read_bytes=8.0 * int(size),
                    ctas=max(1, int(size) // 256),
                )
            )

    if spec.edge_workspace_factor > 0.5:
        # Extra DFG / view intermediates round-trip through DRAM (each
        # materialised tensor is written once and read once).
        extra = 2.0 * (spec.edge_workspace_factor - 0.5) * 4.0 * total_edges * (
            c_in + c_out
        )
        trace.add(
            KernelLaunch(
                name=f"{spec.name}/materialize",
                kind=LaunchKind.MEMORY,
                dram_read_bytes=extra,
                dram_write_bytes=extra,
                ctas=max(1, total_edges // 256),
                overlapped=True,
            )
        )

    # Self-loop GEMM + normalization (all engines).
    trace.add(
        KernelLaunch(
            name=f"{spec.name}/self_loop",
            kind=LaunchKind.GEMM,
            flops=2.0 * n * c_in * c_out,
            dram_read_bytes=itemsize * n * c_in + itemsize * c_in * c_out,
            dram_write_bytes=4.0 * n * c_out,
            ctas=max(1, math.ceil(n / 128)),
            overlapped=True,
            tensor_core_eligible=spec.tensor_cores,
            compute_efficiency=0.7,
        )
    )
    trace.add(
        KernelLaunch(
            name=f"{spec.name}/normalize",
            kind=LaunchKind.MEMORY,
            flops=float(n * c_out),
            dram_read_bytes=4.0 * n * c_out + 8.0 * n,
            dram_write_bytes=itemsize * n * c_out,
            ctas=max(1, n * c_out // 4096),
            overlapped=True,
        )
    )
    return trace


def rgcn_host_overhead_us(
    spec: GraphEngineSpec, graph: HeteroGraph, charge_index_ops: bool = True
) -> float:
    """CPU-side framework dispatch time for one layer."""
    launches = 2.0  # self-loop + normalize
    nonempty = int(np.count_nonzero(graph.relation_sizes()))
    if spec.fetch_on_demand:
        launches += 1
    elif spec.per_relation_pipeline:
        launches += 3.0 * nonempty
    else:
        launches += 3.0
        if spec.per_relation_index_ops and charge_index_ops:
            launches += nonempty
    return spec.host_dispatch_us * launches


def rgcn_memory_bytes(
    spec: GraphEngineSpec,
    graph: HeteroGraph,
    c_in: int,
    c_out: int,
    precision: Precision,
) -> float:
    """Peak workspace footprint of one layer under one engine."""
    itemsize = precision.itemsize
    base = (
        itemsize * graph.num_nodes * (c_in + c_out)
        + itemsize * graph.num_relations * c_in * c_out
        + 16.0 * graph.num_edges  # edge lists
    )
    edge_ws = (
        4.0 * graph.num_edges * (c_in + c_out) * spec.edge_workspace_factor
    )
    node_ws = 4.0 * graph.num_nodes * c_out * spec.node_workspace_factor
    return base + edge_ws + node_ws


# ---------------------------------------------------------------------- #
# Measurement
# ---------------------------------------------------------------------- #
@dataclasses.dataclass
class GraphMeasurement:
    engine: str
    dataset: str
    latency_ms: float
    memory_mb: float


def measure_rgcn(
    engine: "GraphEngineSpec | str",
    graph: HeteroGraph,
    dataset_name: str = "",
    device: "DeviceSpec | str" = "3090",
    precision: "Precision | str" = Precision.FP16,
    in_dim: int = 32,
    hidden_dim: int = 32,
    num_classes: int = 4,
) -> GraphMeasurement:
    """Simulated inference latency + memory of a 2-layer R-GCN."""
    if isinstance(engine, str):
        engine = get_graph_engine(engine)
    device = get_device(device)
    precision = Precision.parse(precision)
    dims = [(in_dim, hidden_dim), (hidden_dim, num_classes)]
    total_us = 0.0
    peak_bytes = 0.0
    for i, (c_in, c_out) in enumerate(dims):
        trace = rgcn_layer_trace(
            engine, graph, c_in, c_out, precision, charge_index_ops=(i == 0)
        )
        total_us += estimate_trace_us(trace, device, precision)
        total_us += rgcn_host_overhead_us(
            engine, graph, charge_index_ops=(i == 0)
        )
        peak_bytes = max(
            peak_bytes,
            rgcn_memory_bytes(engine, graph, c_in, c_out, precision),
        )
    return GraphMeasurement(
        engine=engine.name,
        dataset=dataset_name,
        latency_ms=total_us / 1e3,
        memory_mb=peak_bytes / 1e6,
    )
