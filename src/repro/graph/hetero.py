"""Heterogeneous graphs and synthetic dataset generators.

The five benchmark datasets follow the Graphiler/DGL R-GCN evaluation
suite; the generators match their published node, edge and relation counts
and produce power-law degree distributions (real knowledge graphs are
heavily skewed, which drives the per-relation workload imbalance the
engines must cope with).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

import numpy as np

from repro.errors import GraphError
from repro.utils.rng import SeedLike, as_rng


class HeteroGraph:
    """A multigraph with typed edges.

    Attributes:
        num_nodes: node count (single node space, as in R-GCN benchmarks).
        relations: per relation, an ``(E_r, 2)`` int64 array of
            ``(src, dst)`` pairs.
    """

    def __init__(self, num_nodes: int, relations: List[np.ndarray]):
        if num_nodes < 1:
            raise GraphError("graph must have at least one node")
        self.num_nodes = int(num_nodes)
        self.relations = []
        for r, edges in enumerate(relations):
            edges = np.asarray(edges, dtype=np.int64)
            if edges.ndim != 2 or edges.shape[1] != 2:
                raise GraphError(
                    f"relation {r} edges must be (E, 2), got {edges.shape}"
                )
            if edges.size and (edges.min() < 0 or edges.max() >= num_nodes):
                raise GraphError(f"relation {r} has out-of-range node ids")
            self.relations.append(edges)

    @property
    def num_relations(self) -> int:
        return len(self.relations)

    @property
    def num_edges(self) -> int:
        return int(sum(len(e) for e in self.relations))

    def relation_sizes(self) -> np.ndarray:
        """Edge count per relation — the graph analogue of map sizes."""
        return np.array([len(e) for e in self.relations], dtype=np.int64)

    def in_degrees(self, relation: int) -> np.ndarray:
        """Per-node in-degree under one relation (for mean aggregation)."""
        degrees = np.zeros(self.num_nodes, dtype=np.int64)
        edges = self.relations[relation]
        if len(edges):
            np.add.at(degrees, edges[:, 1], 1)
        return degrees

    def __repr__(self) -> str:
        return (
            f"HeteroGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"relations={self.num_relations})"
        )


@dataclasses.dataclass(frozen=True)
class GraphDatasetConfig:
    """Published statistics of one benchmark dataset."""

    name: str
    num_nodes: int
    num_edges: int
    num_relations: int
    num_classes: int


#: The five heterogeneous-graph benchmarks (statistics from the RGCN /
#: Graphiler literature).
GRAPH_DATASETS: Dict[str, GraphDatasetConfig] = {
    cfg.name: cfg
    for cfg in (
        GraphDatasetConfig("aifb", 8285, 29043, 45, 4),
        GraphDatasetConfig("mutag", 23644, 74227, 23, 2),
        GraphDatasetConfig("bgs", 333845, 916199, 103, 2),
        GraphDatasetConfig("am", 1666764, 5988321, 133, 11),
        GraphDatasetConfig("fb15k", 14541, 310116, 237, 16),
    )
}


def _power_law_nodes(rng: np.random.Generator, count: int, n: int) -> np.ndarray:
    """Sample ``count`` node ids with a Zipf-like (power-law) skew."""
    # Inverse-CDF sampling of a truncated zipf(1.2) over [0, n).
    u = rng.random(count)
    ranks = np.floor(n * u ** 3).astype(np.int64)  # cubic skew toward 0
    perm_seed = rng.integers(0, 2**31)
    # A fixed pseudo-random relabeling spreads the hubs over the id space.
    return (ranks * 2654435761 + perm_seed) % n


def make_graph(
    dataset: "GraphDatasetConfig | str", seed: SeedLike = 0
) -> HeteroGraph:
    """Generate a synthetic graph with a benchmark's statistics."""
    if isinstance(dataset, str):
        key = dataset.lower()
        if key not in GRAPH_DATASETS:
            raise GraphError(
                f"unknown graph dataset {dataset!r}; have "
                f"{sorted(GRAPH_DATASETS)}"
            )
        dataset = GRAPH_DATASETS[key]
    rng = as_rng(seed)
    # Relation sizes are themselves skewed: a few relations carry most
    # edges (typical of knowledge graphs).
    weights = rng.pareto(1.1, dataset.num_relations) + 0.05
    weights /= weights.sum()
    sizes = np.maximum(1, (weights * dataset.num_edges).astype(np.int64))
    relations = []
    for size in sizes:
        src = _power_law_nodes(rng, int(size), dataset.num_nodes)
        dst = _power_law_nodes(rng, int(size), dataset.num_nodes)
        relations.append(np.stack([src, dst], axis=1))
    return HeteroGraph(dataset.num_nodes, relations)
