"""Relational graph convolution on the sparse-convolution machinery.

R-GCN (Schlichtkrull et al., 2018) computes

``h_i' = W_0 h_i + sum_r sum_{j in N_r(i)} (1 / c_{i,r}) W_r h_j``

— structurally a sparse convolution where relations are kernel offsets and
per-relation edge lists are the (weight-stationary) kernel maps.  The layer
executes numerically in numpy and emits a trace through the same launch
vocabulary as the point-cloud kernels; graph engines (:mod:`engines`)
control the trace's fusion level and compute units.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.hetero import HeteroGraph
from repro.precision import Precision
from repro.utils.rng import as_rng


@dataclasses.dataclass
class RGCNLayer:
    """One R-GCN layer: per-relation weights plus a self-loop weight."""

    weights: np.ndarray  # (R, C_in, C_out)
    self_weight: np.ndarray  # (C_in, C_out)

    @classmethod
    def create(
        cls, num_relations: int, c_in: int, c_out: int, seed: int = 0
    ) -> "RGCNLayer":
        rng = as_rng(seed)
        scale = np.sqrt(2.0 / c_in)
        return cls(
            weights=rng.standard_normal((num_relations, c_in, c_out)).astype(
                np.float32
            ) * scale,
            self_weight=rng.standard_normal((c_in, c_out)).astype(np.float32)
            * scale,
        )

    @property
    def c_in(self) -> int:
        return self.weights.shape[1]

    @property
    def c_out(self) -> int:
        return self.weights.shape[2]

    def forward(
        self,
        graph: HeteroGraph,
        features: np.ndarray,
        precision: Precision = Precision.FP16,
        compute: bool = True,
    ) -> np.ndarray:
        """Numerically exact forward pass (mean aggregation per relation).

        ``compute=False`` skips the arithmetic (trace-only execution at
        full dataset scale) and returns zeros of the right shape.
        """
        if graph.num_relations != len(self.weights):
            raise GraphError(
                f"layer has {len(self.weights)} relations but graph has "
                f"{graph.num_relations}"
            )
        if features.shape != (graph.num_nodes, self.c_in):
            raise GraphError(
                f"features must be ({graph.num_nodes}, {self.c_in}), got "
                f"{features.shape}"
            )
        if not compute:
            return np.zeros(
                (graph.num_nodes, self.c_out), dtype=precision.dtype
            )
        feats = features.astype(precision.dtype).astype(np.float32)
        out = feats @ self.self_weight
        for r, edges in enumerate(graph.relations):
            if len(edges) == 0:
                continue
            messages = feats[edges[:, 0]] @ self.weights[r]
            accum = np.zeros((graph.num_nodes, self.c_out), dtype=np.float32)
            np.add.at(accum, edges[:, 1], messages)
            degrees = np.maximum(graph.in_degrees(r), 1).reshape(-1, 1)
            out += accum / degrees
        return out.astype(precision.dtype)


class RGCN:
    """A two-layer R-GCN classifier (the benchmark configuration)."""

    def __init__(
        self,
        num_relations: int,
        in_dim: int = 32,
        hidden_dim: int = 32,
        num_classes: int = 4,
        seed: int = 0,
    ):
        self.layer1 = RGCNLayer.create(num_relations, in_dim, hidden_dim, seed)
        self.layer2 = RGCNLayer.create(
            num_relations, hidden_dim, num_classes, seed + 1
        )

    @property
    def layers(self) -> Tuple[RGCNLayer, RGCNLayer]:
        return (self.layer1, self.layer2)

    def forward(
        self,
        graph: HeteroGraph,
        features: np.ndarray,
        precision: Precision = Precision.FP16,
        compute: bool = True,
    ) -> np.ndarray:
        hidden = self.layer1.forward(graph, features, precision, compute)
        hidden = np.maximum(hidden, 0)
        return self.layer2.forward(graph, hidden, precision, compute)


def dense_reference_rgcn(
    graph: HeteroGraph, features: np.ndarray, layer: RGCNLayer
) -> np.ndarray:
    """Brute-force reference via dense adjacency matrices (testing aid)."""
    out = features.astype(np.float64) @ layer.self_weight.astype(np.float64)
    n = graph.num_nodes
    for r, edges in enumerate(graph.relations):
        adj = np.zeros((n, n))
        for src, dst in edges:
            adj[dst, src] += 1.0
        degrees = np.maximum(adj.sum(axis=1, keepdims=True), 1)
        out += (adj / degrees) @ features.astype(np.float64) @ layer.weights[
            r
        ].astype(np.float64)
    return out
