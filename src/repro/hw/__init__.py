"""Hardware models: GPU device specifications and the PointAcc ASIC model."""

from repro.hw.specs import (
    DeviceSpec,
    get_device,
    list_devices,
    register_device,
    A100,
    RTX_3090,
    RTX_2080TI,
    GTX_1080TI,
    JETSON_ORIN,
)
from repro.hw.pointacc import PointAccSpec, POINTACC, POINTACC_L

__all__ = [
    "DeviceSpec",
    "get_device",
    "list_devices",
    "register_device",
    "A100",
    "RTX_3090",
    "RTX_2080TI",
    "GTX_1080TI",
    "JETSON_ORIN",
    "PointAccSpec",
    "POINTACC",
    "POINTACC_L",
]
