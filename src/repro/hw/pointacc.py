"""Analytical model of the PointAcc point-cloud accelerator (MICRO 2021).

Table 2 of the TorchSparse++ paper compares an RTX 3090 running
TorchSparse++ against a *scaled-up* PointAcc ("PointAcc-L", systolic array
enlarged from 64x64 to 128x128 with proportionally scaled memory bandwidth).
The paper's comparison is itself an analytic projection assuming linear
speedup when layers have large enough channel counts ("IC-OC parallelism"),
so an analytic model is the faithful reproduction.

The model processes each sparse convolution layer as a sequence of per-offset
GEMMs of shape ``(M=|map_delta|, K=C_in, N=C_out)`` on an ``S x S``
weight-stationary systolic array, plus the mapping operations (neighbour
search) executed on PointAcc's bitonic-sort-based mapping unit.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, Sequence


@dataclasses.dataclass(frozen=True)
class PointAccSpec:
    """Configuration of a PointAcc-style systolic-array accelerator."""

    name: str
    array_dim: int  # S: the array is S x S MACs
    frequency_ghz: float
    dram_bw_gbps: float

    @property
    def macs(self) -> int:
        """Total multiply-accumulate units."""
        return self.array_dim * self.array_dim

    @property
    def peak_tmacs(self) -> float:
        """Peak throughput in Tera-MACs/s."""
        return self.macs * self.frequency_ghz / 1e3

    # ------------------------------------------------------------------ #
    def gemm_cycles(self, m: int, k: int, n: int) -> float:
        """Cycles for one ``m x k x n`` GEMM on the systolic array.

        The array is tiled over K (rows of weights) and N (columns); each
        ``S x S`` weight tile streams all ``m`` activations through, with an
        ``S``-cycle pipeline fill.  IC-OC parallelism means utilization is
        perfect only when both ``k`` and ``n`` reach the array dimension —
        exactly the paper's "large enough input and output channels" proviso.
        """
        if m <= 0 or k <= 0 or n <= 0:
            return 0.0
        s = self.array_dim
        k_tiles = math.ceil(k / s)
        n_tiles = math.ceil(n / s)
        return k_tiles * n_tiles * (m + s)

    def mapping_cycles(self, num_inputs: int, num_outputs: int, volume: int) -> float:
        """Cycles for kernel-map construction on the bitonic mapping unit.

        PointAcc merges coordinate streams with a ``array_dim``-wide bitonic
        sorter; a merge-sort pass over ``n`` keys takes ``n log2(n) / width``
        cycles, and one pass per kernel offset is required.
        """
        n = max(num_inputs + num_outputs, 2)
        passes = math.log2(n)
        per_offset = n * passes / self.array_dim
        return per_offset * max(volume, 1)

    def layer_latency_ms(
        self,
        map_sizes: Sequence[int],
        c_in: int,
        c_out: int,
        num_inputs: int,
        num_outputs: int,
        itemsize: int = 2,
        build_map: bool = True,
    ) -> float:
        """Latency of one sparse convolution layer in milliseconds.

        Args:
            map_sizes: ``|map_delta|`` for each kernel offset.
            c_in / c_out: channel counts.
            num_inputs / num_outputs: point counts (for mapping + DRAM cost).
            itemsize: bytes per feature element (2 for FP16).
            build_map: whether this layer must construct its kernel map (false
                when the map is reused from an earlier layer, as in
                submanifold residual blocks).
        """
        compute = sum(self.gemm_cycles(m, c_in, c_out) for m in map_sizes)
        mapping = (
            self.mapping_cycles(num_inputs, num_outputs, len(map_sizes))
            if build_map
            else 0.0
        )
        # DRAM: read inputs + weights once per offset tile, write outputs.
        gathered = sum(map_sizes)
        bytes_moved = itemsize * (
            gathered * c_in + len(map_sizes) * c_in * c_out + gathered * c_out
        )
        mem_cycles = bytes_moved / self.dram_bw_gbps * self.frequency_ghz
        # Compute and memory are double-buffered on PointAcc; mapping is not.
        cycles = max(compute, mem_cycles) + mapping
        return cycles / (self.frequency_ghz * 1e6)

    def network_latency_ms(self, layers: Iterable[dict]) -> float:
        """Sum of :meth:`layer_latency_ms` over layer descriptors."""
        return sum(self.layer_latency_ms(**layer) for layer in layers)


POINTACC = PointAccSpec(
    name="PointAcc", array_dim=64, frequency_ghz=1.0, dram_bw_gbps=256.0
)

#: Scaled-up variant from Table 2: 128x128 array, bandwidth scaled 4x to
#: match the 4x MAC count increase.
POINTACC_L = PointAccSpec(
    name="PointAcc-L", array_dim=128, frequency_ghz=1.0, dram_bw_gbps=1024.0
)
