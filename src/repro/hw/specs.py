"""GPU device specifications used by the performance model.

Every number here comes from public NVIDIA spec sheets (peak throughput, SM
count, DRAM bandwidth); nothing is fitted to the paper's measurements.  The
paper's qualitative results hinge on two machine-balance ratios that these
specs capture directly:

* tensor-core vs CUDA-core throughput (16x on A100, ~3x on 2080 Ti,
  Section 6.1) — this drives whether mapping overhead or redundant
  computation dominates, and therefore which autotuner binding scheme wins;
* compute vs memory bandwidth and SM count — this drives whether extra
  mask splits (more parallelism, more DRAM traffic) pay off.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.errors import DeviceError
from repro.precision import Precision

#: Threads per warp on every NVIDIA architecture modelled here.
WARP_SIZE = 32


@dataclasses.dataclass(frozen=True)
class DeviceSpec:
    """Analytical model of one GPU.

    Attributes:
        name: Human-readable device name.
        arch: Architecture family (``pascal``, ``turing``, ``ampere``,
            ``ampere-edge``).
        sms: Number of streaming multiprocessors.
        concurrent_ctas_per_sm: Thread blocks resident per SM for a typical
            GEMM-shaped kernel (occupancy-limited).
        cuda_core_tflops: Peak FP32 CUDA-core throughput in TFLOP/s.  Mapping
            operations (hashing, sorting, reordering) always run here.
        fp16_tensor_tflops: Peak FP16 tensor-core throughput (FP32 accumulate)
            in TFLOP/s.  ``None`` when the device has no tensor cores.
        tf32_tensor_tflops: Peak TF32 tensor-core throughput; ``None`` when
            unsupported (pre-Ampere).
        dram_bw_gbps: Peak DRAM bandwidth in GB/s.
        kernel_launch_us: Fixed host-side cost per kernel launch in
            microseconds.
        int_giops: Integer/address-generation throughput of the CUDA cores in
            Giga-ops/s, used to cost un-hoisted pointer arithmetic and
            boundary checks.
        dram_gib: DRAM capacity in GiB (spec-sheet value).  On unified-memory
            parts (Jetson) this is the full SoC memory pool.
        atomic_serialization: Multiplier applied to conflicting atomic DRAM
            writes (fetch-on-demand write-back contention).
        sync_event_us: Cost in microseconds of one cross-stream
            synchronization (an event record + stream wait pair).  Charged
            by the multi-stream scheduler for every sync event it must
            emit, so claimed overlap pays for its synchronization.
    """

    name: str
    arch: str
    sms: int
    concurrent_ctas_per_sm: int
    cuda_core_tflops: float
    fp16_tensor_tflops: Optional[float]
    tf32_tensor_tflops: Optional[float]
    dram_bw_gbps: float
    kernel_launch_us: float
    int_giops: float
    dram_gib: float = 16.0
    atomic_serialization: float = 2.0
    sync_event_us: float = 1.0

    def __post_init__(self) -> None:
        if self.sms <= 0 or self.cuda_core_tflops <= 0 or self.dram_bw_gbps <= 0:
            raise DeviceError(f"inconsistent device spec: {self}")
        if self.dram_gib <= 0:
            raise DeviceError(f"device {self.name!r} has no DRAM capacity")
        if self.sync_event_us < 0:
            raise DeviceError(
                f"device {self.name!r} has negative sync_event_us"
            )

    def __hash__(self) -> int:
        # Device specs are immutable and sit in every memoization key the
        # framework builds (tuning DB, policy cache, gpusim trace memo), so
        # hashing one is a hot operation.  Cache the field-tuple hash on
        # first use; ``dataclasses.replace`` builds a fresh instance, so the
        # cache can never go stale.
        try:
            cached: int = object.__getattribute__(self, "_cached_hash")
            return cached
        except AttributeError:
            pass
        value = hash((
            self.name, self.arch, self.sms, self.concurrent_ctas_per_sm,
            self.cuda_core_tflops, self.fp16_tensor_tflops,
            self.tf32_tensor_tflops, self.dram_bw_gbps,
            self.kernel_launch_us, self.int_giops, self.dram_gib,
            self.atomic_serialization, self.sync_event_us,
        ))
        object.__setattr__(self, "_cached_hash", value)
        return value

    # ------------------------------------------------------------------ #
    # Throughput queries
    # ------------------------------------------------------------------ #
    def gemm_tflops(self, precision: Precision, tensor_cores: bool = True) -> float:
        """Peak matrix-multiply throughput for ``precision``.

        Falls back to CUDA-core FP32 throughput when tensor cores are absent,
        disabled (``tensor_cores=False``), or the precision is unsupported on
        them (e.g. TF32 on Turing).
        """
        if tensor_cores:
            if precision is Precision.FP16 and self.fp16_tensor_tflops:
                return self.fp16_tensor_tflops
            if precision is Precision.TF32 and self.tf32_tensor_tflops:
                return self.tf32_tensor_tflops
        return self.cuda_core_tflops

    @property
    def concurrent_ctas(self) -> int:
        """Thread blocks the whole device can keep resident at once."""
        return self.sms * self.concurrent_ctas_per_sm

    @property
    def dram_bytes(self) -> float:
        """DRAM capacity in bytes."""
        return self.dram_gib * (1 << 30)

    @property
    def tensor_to_cuda_ratio(self) -> float:
        """FP16 tensor-core : FP32 CUDA-core throughput ratio (Section 6.1)."""
        if not self.fp16_tensor_tflops:
            return 1.0
        return self.fp16_tensor_tflops / self.cuda_core_tflops

    # ------------------------------------------------------------------ #
    # Derived / modified specs
    # ------------------------------------------------------------------ #
    def scaled(
        self,
        bandwidth_scale: float = 1.0,
        compute_scale: float = 1.0,
        name: Optional[str] = None,
    ) -> "DeviceSpec":
        """Return a spec with scaled bandwidth and/or compute (Section 6.3)."""

        def _scale(value: Optional[float]) -> Optional[float]:
            return None if value is None else value * compute_scale

        return dataclasses.replace(
            self,
            name=name or f"{self.name}(bw*{bandwidth_scale:g},fl*{compute_scale:g})",
            cuda_core_tflops=self.cuda_core_tflops * compute_scale,
            fp16_tensor_tflops=_scale(self.fp16_tensor_tflops),
            tf32_tensor_tflops=_scale(self.tf32_tensor_tflops),
            dram_bw_gbps=self.dram_bw_gbps * bandwidth_scale,
        )


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #
A100 = DeviceSpec(
    name="A100",
    arch="ampere",
    sms=108,
    concurrent_ctas_per_sm=2,
    cuda_core_tflops=19.5,
    fp16_tensor_tflops=312.0,
    tf32_tensor_tflops=156.0,
    dram_bw_gbps=1555.0,
    kernel_launch_us=4.0,
    int_giops=9750.0,
    dram_gib=40.0,
    sync_event_us=0.8,
)

RTX_3090 = DeviceSpec(
    name="RTX 3090",
    arch="ampere",
    sms=82,
    concurrent_ctas_per_sm=2,
    cuda_core_tflops=35.6,
    fp16_tensor_tflops=71.0,
    tf32_tensor_tflops=35.5,
    dram_bw_gbps=936.0,
    kernel_launch_us=4.0,
    int_giops=8900.0,
    dram_gib=24.0,
    sync_event_us=0.8,
)

RTX_2080TI = DeviceSpec(
    name="RTX 2080 Ti",
    arch="turing",
    sms=68,
    concurrent_ctas_per_sm=2,
    cuda_core_tflops=13.4,
    fp16_tensor_tflops=40.3,
    tf32_tensor_tflops=None,
    dram_bw_gbps=616.0,
    kernel_launch_us=4.5,
    int_giops=6700.0,
    dram_gib=11.0,
    sync_event_us=0.9,
)

GTX_1080TI = DeviceSpec(
    name="GTX 1080 Ti",
    arch="pascal",
    sms=28,
    concurrent_ctas_per_sm=2,
    cuda_core_tflops=11.3,
    fp16_tensor_tflops=None,
    tf32_tensor_tflops=None,
    dram_bw_gbps=484.0,
    kernel_launch_us=5.0,
    int_giops=5650.0,
    dram_gib=11.0,
    sync_event_us=1.0,
)

JETSON_ORIN = DeviceSpec(
    name="Jetson AGX Orin",
    arch="ampere-edge",
    sms=16,
    concurrent_ctas_per_sm=2,
    cuda_core_tflops=5.3,
    fp16_tensor_tflops=21.3,
    tf32_tensor_tflops=10.6,
    dram_bw_gbps=204.8,
    kernel_launch_us=9.0,
    int_giops=2650.0,
    dram_gib=32.0,
    sync_event_us=1.8,
)

_REGISTRY: Dict[str, DeviceSpec] = {}


def register_device(spec: DeviceSpec) -> DeviceSpec:
    """Add ``spec`` to the global registry (keyed case-insensitively)."""
    _REGISTRY[spec.name.lower()] = spec
    return spec


for _spec in (A100, RTX_3090, RTX_2080TI, GTX_1080TI, JETSON_ORIN):
    register_device(_spec)

#: Short aliases accepted by :func:`get_device`.
_ALIASES = {
    "a100": "a100",
    "3090": "rtx 3090",
    "rtx3090": "rtx 3090",
    "2080ti": "rtx 2080 ti",
    "rtx2080ti": "rtx 2080 ti",
    "1080ti": "gtx 1080 ti",
    "gtx1080ti": "gtx 1080 ti",
    "orin": "jetson agx orin",
    "jetson": "jetson agx orin",
}


def get_device(name: "str | DeviceSpec") -> DeviceSpec:
    """Look up a device by name or alias, or pass through a spec."""
    if isinstance(name, DeviceSpec):
        return name
    key = name.lower().strip()
    key = _ALIASES.get(key.replace(" ", ""), key)
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise DeviceError(f"unknown device {name!r}; known devices: {known}")
    return _REGISTRY[key]


def list_devices() -> list:
    """All registered device specs, sorted by name."""
    return sorted(_REGISTRY.values(), key=lambda s: s.name)
