"""Sparse convolution dataflow kernels (Section 2.2 of the paper).

Every kernel here is a *numerically exact* implementation of its dataflow —
outputs are identical across dataflows up to floating-point accumulation
order — and simultaneously emits a :class:`repro.gpusim.KernelTrace`
describing what a GPU executing that dataflow would do.  The three families:

* :mod:`repro.kernels.gather_scatter` — weight-stationary
  gather-GEMM-scatter (SparseConvNet / SpConv v1) and the fused,
  adaptively-grouped variant (TorchSparse, MLSys'22);
* :mod:`repro.kernels.fetch_on_demand` — kernel-fused weight-stationary
  dataflow (MinkowskiEngine; block-fused variant from PCEngine);
* :mod:`repro.kernels.implicit_gemm` — output-stationary implicit GEMM
  (SpConv v2) extended with unsorted execution and arbitrary mask splits
  (TorchSparse++, Figure 10).

Weight-gradient (wgrad) kernels live in :mod:`repro.kernels.wgrad`.
"""

from repro.kernels.base import (
    ConvSpec,
    KernelSchedule,
    dense_gemm_trace,
    gemm_efficiency,
)
from repro.kernels.gather_scatter import (
    gather_gemm_scatter,
    gather_gemm_scatter_trace,
)
from repro.kernels.fetch_on_demand import fetch_on_demand, fetch_on_demand_trace
from repro.kernels.implicit_gemm import (
    ImplicitGemmConfig,
    implicit_gemm,
    implicit_gemm_trace,
)
from repro.kernels.wgrad import wgrad, wgrad_trace
from repro.kernels.registry import (
    DATAFLOWS,
    Dataflow,
    dataflow_choices,
    run_dataflow,
    trace_dataflow,
)

__all__ = [
    "ConvSpec",
    "KernelSchedule",
    "dense_gemm_trace",
    "gemm_efficiency",
    "gather_gemm_scatter",
    "gather_gemm_scatter_trace",
    "fetch_on_demand",
    "fetch_on_demand_trace",
    "ImplicitGemmConfig",
    "implicit_gemm",
    "implicit_gemm_trace",
    "wgrad",
    "wgrad_trace",
    "DATAFLOWS",
    "Dataflow",
    "dataflow_choices",
    "run_dataflow",
    "trace_dataflow",
]
