"""Shared kernel infrastructure: schedules, efficiency and overhead models.

A :class:`KernelSchedule` is the contract between the Sparse Kernel Generator
(:mod:`repro.codegen`) and the dataflow kernels: it fixes the tile sizes and
says which of the paper's code-generation optimizations are applied.  The
scalar-overhead constants below are per-element instruction counts read off
the kernel templates (Figure 7), not fitted values:

* a *naive dynamic-shape* kernel recomputes the ``X_in`` address in the
  innermost ``ldA`` loop — an integer divide, modulo and pointer add against
  an RF-resident ``C_in`` (Section 3.2), roughly a dozen issue slots;
* *loop-invariant hoisting* lifts everything except one add out of the loop
  (4-8x fewer by the paper's count for ``LD_A_THR`` in {4, 8}, further
  reduced by hoisting across the outer loops);
* a *fixed-shape* (compile-time constant folded) kernel still performs the
  folded multiply-add addressing;
* an un-padded map adds a bounds predicate + branch per map access.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Tuple

import numpy as np

from repro.errors import ConfigError
from repro.gpusim.trace import KernelLaunch, KernelTrace, LaunchKind
from repro.precision import Precision

#: Scalar instructions per A-operand element for address generation.
ADDRESS_OPS_NAIVE_DYNAMIC = 12.0
ADDRESS_OPS_FIXED_SHAPE = 2.0
ADDRESS_OPS_HOISTED = 1.5
#: Scalar instructions per A-operand element for a map boundary check.
BOUNDARY_CHECK_OPS = 4.0
#: Extra indirection cost per element when the map is reordered *online*
#: (inside the kernel) instead of offline (Figure 19).
ONLINE_REORDER_OPS = 3.0
#: Software-pipeline depth in K-loop iterations (pipeline fill penalty).
PIPELINE_DEPTH = 3.0
#: Tile data-reuse balance point: a CTA tile computes ``tm*tn`` outputs
#: while streaming ``tm+tn`` operand rows/columns per K step, so its
#: arithmetic intensity is the harmonic mean ``tm*tn/(tm+tn)``.  Achieved
#: MMA throughput saturates once that reuse exceeds this constant —
#: large tiles (128x128, reuse 64) run near peak while small tiles
#: (64x32, reuse ~21) cap out around 60% (the reason adaptive tiling
#: matters, Section 6.2).
TILE_REUSE_BALANCE = 12.0


@dataclasses.dataclass(frozen=True)
class KernelSchedule:
    """Tiling and code-generation options for one kernel.

    Attributes:
        tile_m / tile_n / tile_k: CTA tile sizes of the GEMM loop nest.
        warp_rows: output rows executed in lockstep by one warp — the
            granularity of redundant computation (Figure 5).
        double_buffer: overlap DRAM loads with MMA (always on in generated
            kernels; exposed for ablations).
        hoist_invariants: apply loop-invariant hoisting to addressing
            (Figure 20).
        pad_maps: pad the map's first dimension to ``tile_m`` so boundary
            checks disappear (Figure 21).
        fixed_shape: pretend the workload shape is a compile-time constant
            (the idealized upper bound of Figure 8; impossible to deploy).
        codegen_quality: relative MMA efficiency of the kernel generator
            that produced this kernel (1.0 = TorchSparse++'s generator).
            SpConv v2's hand-rolled metaprogrammer produces kernels
            1.1-1.2x slower at identical dataflow parameters (Figure 23),
            modelled as ``codegen_quality ~= 0.87``.
    """

    tile_m: int = 128
    tile_n: int = 64
    tile_k: int = 32
    warp_rows: int = 32
    double_buffer: bool = True
    hoist_invariants: bool = True
    pad_maps: bool = True
    fixed_shape: bool = False
    codegen_quality: float = 1.0

    def __post_init__(self) -> None:
        for field in ("tile_m", "tile_n", "tile_k", "warp_rows"):
            if getattr(self, field) < 1:
                raise ConfigError(f"{field} must be >= 1")
        if self.warp_rows > self.tile_m:
            raise ConfigError(
                f"warp_rows ({self.warp_rows}) cannot exceed tile_m "
                f"({self.tile_m})"
            )
        if not 0.0 < self.codegen_quality <= 1.0:
            raise ConfigError(
                f"codegen_quality must be in (0, 1], got {self.codegen_quality}"
            )

    @property
    def address_ops_per_element(self) -> float:
        """Scalar ops per A element from address generation (Section 3.2)."""
        if self.fixed_shape:
            return ADDRESS_OPS_FIXED_SHAPE
        if self.hoist_invariants:
            return ADDRESS_OPS_HOISTED
        return ADDRESS_OPS_NAIVE_DYNAMIC

    @property
    def boundary_ops_per_element(self) -> float:
        """Scalar ops per A element from boundary checking."""
        if self.pad_maps or self.fixed_shape:
            return 0.0
        return BOUNDARY_CHECK_OPS


#: Schedule pair used by adaptive tiling (Section 6.2): a large tile for
#: compute-heavy layers and a small tile for thin layers.
LARGE_TILE = KernelSchedule(tile_m=128, tile_n=128, tile_k=32, warp_rows=32)
SMALL_TILE = KernelSchedule(tile_m=64, tile_n=32, tile_k=16, warp_rows=16)
DEFAULT_SCHEDULE = KernelSchedule()


@dataclasses.dataclass(frozen=True)
class ConvSpec:
    """Shape summary of one sparse convolution (for reports and costing)."""

    num_inputs: int
    num_outputs: int
    volume: int
    c_in: int
    c_out: int

    @property
    def gemm_k(self) -> int:
        """K extent of the equivalent implicit GEMM: ``V * C_in``."""
        return self.volume * self.c_in


def check_conv_args(
    feats: np.ndarray, weights: np.ndarray, volume: int
) -> Tuple[int, int]:
    """Validate features against ``(V, C_in, C_out)`` weights; return channels."""
    if weights.ndim != 3:
        raise ConfigError(
            f"weights must be (V, C_in, C_out), got shape {weights.shape}"
        )
    if weights.shape[0] != volume:
        raise ConfigError(
            f"weights have {weights.shape[0]} offsets but the map has {volume}"
        )
    if feats.ndim != 2 or feats.shape[1] != weights.shape[1]:
        raise ConfigError(
            f"features {feats.shape} do not match weights C_in={weights.shape[1]}"
        )
    return weights.shape[1], weights.shape[2]


def gemm_efficiency(
    m: int, n: int, k: int, schedule: KernelSchedule
) -> float:
    """Fraction of peak MMA throughput a tiled GEMM sustains.

    Captures tile quantization along N and pipeline fill along K.  (M-side
    quantization is accounted explicitly by the callers: padded/redundant
    rows appear in the issued-FLOPs count instead.)
    """
    if min(m, n, k) <= 0:
        return 1.0
    n_eff = n / (math.ceil(n / schedule.tile_n) * schedule.tile_n)
    k_iters = max(1.0, k / schedule.tile_k)
    k_eff = k_iters / (k_iters + PIPELINE_DEPTH)
    reuse = (schedule.tile_m * schedule.tile_n) / (
        schedule.tile_m + schedule.tile_n
    )
    tile_eff = reuse / (reuse + TILE_REUSE_BALANCE)
    return max(1e-3, n_eff * k_eff * tile_eff * schedule.codegen_quality)


def matmul_accumulate(
    a: np.ndarray, w: np.ndarray, precision: Precision
) -> np.ndarray:
    """Tensor-core-style matmul: inputs in storage dtype, FP32 accumulate."""
    a_cast = a.astype(precision.dtype, copy=False)
    w_cast = w.astype(precision.dtype, copy=False)
    return a_cast.astype(np.float32) @ w_cast.astype(np.float32)


def gemm_ctas(m: int, n: int, schedule: KernelSchedule) -> int:
    """Thread blocks launched for an ``m x n`` output tile grid."""
    return max(1, math.ceil(m / schedule.tile_m) * math.ceil(n / schedule.tile_n))


def dense_gemm_trace(
    m: int,
    k: int,
    n: int,
    schedule: KernelSchedule,
    precision: Precision,
    name: str = "dense_gemm",
) -> KernelTrace:
    """Trace of an equivalent-size *dense* GEMM (the cuBLAS reference of
    Figure 8): ``C[m,n] = A[m,k] @ B[k,n]``."""
    itemsize = precision.itemsize
    m_pad = math.ceil(m / schedule.tile_m) * schedule.tile_m
    flops = 2.0 * m_pad * k * n
    trace = KernelTrace()
    trace.add(
        KernelLaunch(
            name=name,
            kind=LaunchKind.GEMM,
            flops=flops,
            # The B operand stays L2-resident across M tiles (stream + one
            # prefetch pass), matching the sparse kernels' weight model.
            dram_read_bytes=itemsize * (m * k + 2 * k * n),
            dram_write_bytes=itemsize * m * n,
            scalar_ops=ADDRESS_OPS_FIXED_SHAPE * m_pad * k,
            ctas=gemm_ctas(m_pad, n, schedule),
            overlapped=schedule.double_buffer,
            compute_efficiency=gemm_efficiency(m, n, k, schedule),
        )
    )
    return trace
