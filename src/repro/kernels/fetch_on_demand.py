"""Fetch-on-demand dataflow (Section 2.2.2).

The gather, GEMM and scatter stages are fused into one kernel: input
features are fetched on demand into shared memory, multiplied on chip, and
partial sums are scattered straight from the register file with atomic adds.
Compute overlaps memory (Figure 3c) and the staging buffers disappear, but
every (input, output) pair still writes ``C_out`` partial sums to DRAM —
``sum(|M_delta|) / N_out`` (4-10x) more write-back traffic than the
output-stationary optimum, serialized by atomics on conflicts.

``block_fused=True`` models the PCEngine/TorchSparse++ variant where the
host loop over offsets becomes a thread-block dimension (one launch total);
``block_fused=False`` models MinkowskiEngine's one-launch-per-offset kernels,
which also run on CUDA cores rather than tensor cores.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.gpusim.trace import KernelLaunch, KernelTrace, LaunchKind, ext
from repro.kernels.base import (
    ADDRESS_OPS_HOISTED,
    DEFAULT_SCHEDULE,
    KernelSchedule,
    check_conv_args,
    gemm_ctas,
    gemm_efficiency,
    matmul_accumulate,
)
from repro.precision import Precision
from repro.sparse.kmap import KernelMap


def _offset_launch(
    name: str,
    size: int,
    c_in: int,
    c_out: int,
    ctas: int,
    schedule: KernelSchedule,
    precision: Precision,
    tensor_cores: bool,
    weight_bytes: float,
    efficiency_m: int,
    workspace_bytes: float,
) -> KernelLaunch:
    itemsize = precision.itemsize
    # Naive dynamic-shape addressing above the hoisted floor is
    # loop-invariant arithmetic the hoisting pass (repro.opt) may remove;
    # fixed-shape kernels already folded it at compile time.
    hoistable = 0.0
    if not schedule.fixed_shape and not schedule.hoist_invariants:
        hoistable = (
            (schedule.address_ops_per_element - ADDRESS_OPS_HOISTED)
            * size
            * c_in
        )
    return KernelLaunch(
        name=name,
        kind=LaunchKind.GEMM,
        flops=2.0 * size * c_in * c_out,
        dram_read_bytes=itemsize * size * c_in + 8.0 * size + weight_bytes,
        dram_write_bytes=0.0,
        atomic_write_bytes=4.0 * size * c_out,
        scalar_ops=schedule.address_ops_per_element * size * c_in,
        workspace_bytes=workspace_bytes,
        ctas=ctas,
        overlapped=schedule.double_buffer,
        tensor_core_eligible=tensor_cores,
        compute_efficiency=gemm_efficiency(
            efficiency_m, c_out, c_in, schedule
        ),
        hoistable_scalar_ops=hoistable,
        # The streamed pair lists are the launch's whole workspace and are
        # not named ws: buffers (the kmap is external).
        untracked_workspace_bytes=workspace_bytes,
        reads=(
            ext("feats_in", itemsize * size * c_in),
            ext("kmap_pairs", 8.0 * size),
            ext("weights", weight_bytes),
        ),
        # Every partial sum lands via atomic add: write order is resolved
        # by the hardware, so per-offset launches don't race each other.
        writes=(ext("out_accum", 4.0 * size * c_out, atomic=True),),
    )


def fetch_on_demand_trace(
    kmap: KernelMap,
    c_in: int,
    c_out: int,
    schedule: KernelSchedule = DEFAULT_SCHEDULE,
    precision: Precision = Precision.FP32,
    block_fused: bool = True,
    tensor_cores: bool = True,
) -> KernelTrace:
    """Execution trace of the fetch-on-demand dataflow (no numerics)."""
    itemsize = precision.itemsize
    map_sizes = kmap.map_sizes
    trace = KernelTrace()
    # The only DRAM the dataflow holds beyond features/weights is the
    # per-offset (in, out) pair lists it streams on demand — fetches stage
    # through shared memory and partials scatter straight from registers,
    # which is exactly why this is the minimal-footprint fallback.
    pair_bytes = 8.0 * kmap.total_pairs
    if block_fused:
        total = int(map_sizes.sum())
        ctas = sum(
            gemm_ctas(int(size), c_out, schedule)
            for size in map_sizes
            if size > 0
        )
        weight_bytes = float(itemsize * kmap.volume * c_in * c_out)
        mean_size = total / max(1, np.count_nonzero(map_sizes))
        trace.add(
            _offset_launch(
                "fetch_on_demand/fused",
                total,
                c_in,
                c_out,
                max(1, ctas),
                schedule,
                precision,
                tensor_cores,
                weight_bytes,
                efficiency_m=int(max(1, mean_size)),
                workspace_bytes=pair_bytes,
            )
        )
    else:
        for k, size in enumerate(map_sizes):
            if size == 0:
                continue
            trace.add(
                _offset_launch(
                    f"fetch_on_demand/offset{k}",
                    int(size),
                    c_in,
                    c_out,
                    gemm_ctas(int(size), c_out, schedule),
                    schedule,
                    precision,
                    tensor_cores,
                    float(itemsize * c_in * c_out),
                    efficiency_m=int(size),
                    workspace_bytes=pair_bytes,
                )
            )
    # Output materialization: convert the atomically accumulated FP32
    # buffer to the storage dtype.
    trace.add(
        KernelLaunch(
            name="fetch_on_demand/writeback",
            kind=LaunchKind.MEMORY,
            dram_read_bytes=4.0 * kmap.num_outputs * c_out,
            dram_write_bytes=itemsize * kmap.num_outputs * c_out,
            ctas=max(1, kmap.num_outputs * c_out // 4096),
            reads=(ext("out_accum", 4.0 * kmap.num_outputs * c_out),),
            writes=(ext("feats_out", itemsize * kmap.num_outputs * c_out),),
        )
    )
    return trace


def fetch_on_demand(
    feats: np.ndarray,
    weights: np.ndarray,
    kmap: KernelMap,
    schedule: KernelSchedule = DEFAULT_SCHEDULE,
    precision: Precision = Precision.FP32,
    block_fused: bool = True,
    tensor_cores: bool = True,
) -> Tuple[np.ndarray, KernelTrace]:
    """Run sparse convolution with the fetch-on-demand dataflow.

    Returns ``(out_feats, trace)``; numerics are identical to the other
    dataflows up to floating-point accumulation order.
    """
    c_in, c_out = check_conv_args(feats, weights, kmap.volume)
    accum = np.zeros((kmap.num_outputs, c_out), dtype=np.float32)
    for k, (in_idx, out_idx) in enumerate(kmap.pairs()):
        if len(in_idx) == 0:
            continue
        partial = matmul_accumulate(feats[in_idx], weights[k], precision)
        np.add.at(accum, out_idx, partial)
    trace = fetch_on_demand_trace(
        kmap, c_in, c_out, schedule, precision, block_fused, tensor_cores
    )
    return accum.astype(precision.dtype), trace
