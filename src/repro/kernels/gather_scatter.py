"""Weight-stationary gather-GEMM-scatter dataflows (Section 2.2.1).

Two variants are provided:

* ``fused=False`` — the vanilla dataflow of SparseConvNet / SpConv v1: a
  host loop over kernel offsets, each iteration launching a gather kernel, a
  dense (cuBLAS) GEMM and a scatter kernel.  Three launches per offset, a
  DRAM round trip for both staging buffers, and no compute/memory overlap
  between stages (Figure 3a).
* ``fused=True`` — TorchSparse (MLSys'22): all gathers are fused into one
  locality-aware kernel, GEMMs for offsets with similar ``|M_delta|`` are
  batched together (padding the smaller ones — *adaptive grouping*), and all
  scatters are fused into one kernel.

Trace construction (``gather_gemm_scatter_trace``) is independent of feature
values, so the performance model and the autotuner can cost full-scale
workloads without executing the matrix arithmetic.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.gpusim.trace import KernelLaunch, KernelTrace, LaunchKind, ext, ws
from repro.kernels.base import (
    DEFAULT_SCHEDULE,
    KernelSchedule,
    check_conv_args,
    gemm_ctas,
    gemm_efficiency,
    matmul_accumulate,
)
from repro.precision import Precision
from repro.sparse.kmap import KernelMap

#: Offsets whose map sizes are within this ratio share one batched GEMM
#: group in the adaptive-grouping variant (TorchSparse's tolerance).
GROUP_SIZE_TOLERANCE = 1.5


def adaptive_groups(map_sizes: Sequence[int]) -> List[List[int]]:
    """Group offset indices by similar map size (TorchSparse Section 3).

    Offsets are sorted by ``|M_delta|`` descending and greedily grouped while
    the largest member stays within :data:`GROUP_SIZE_TOLERANCE` of the
    smallest; batched GEMMs pad every member to the group maximum.
    """
    nonempty = [k for k, size in enumerate(map_sizes) if size > 0]
    nonempty.sort(key=lambda k: -map_sizes[k])
    groups: List[List[int]] = []
    for k in nonempty:
        if (
            groups
            and map_sizes[groups[-1][0]] <= GROUP_SIZE_TOLERANCE * map_sizes[k]
        ):
            groups[-1].append(k)
        else:
            groups.append([k])
    return groups


def _gemm_launch(
    name: str,
    m: int,
    k: int,
    n: int,
    batch: int,
    schedule: KernelSchedule,
    precision: Precision,
    tensor_cores: bool,
) -> KernelLaunch:
    """A dense (possibly batched) GEMM over DRAM staging buffers."""
    itemsize = precision.itemsize
    m_pad = math.ceil(m / schedule.tile_m) * schedule.tile_m if m else 0
    return KernelLaunch(
        name=name,
        kind=LaunchKind.GEMM,
        flops=2.0 * batch * m_pad * k * n,
        dram_read_bytes=itemsize * batch * (m * k + k * n),
        dram_write_bytes=itemsize * batch * m * n,
        ctas=batch * gemm_ctas(max(m, 1), n, schedule),
        overlapped=schedule.double_buffer,
        tensor_core_eligible=tensor_cores,
        compute_efficiency=gemm_efficiency(m, n, k, schedule),
    )


def gather_gemm_scatter_trace(
    kmap: KernelMap,
    c_in: int,
    c_out: int,
    schedule: KernelSchedule = DEFAULT_SCHEDULE,
    precision: Precision = Precision.FP32,
    fused: bool = False,
    tensor_cores: bool = True,
    chunks: int = 1,
) -> KernelTrace:
    """Execution trace of the gather-GEMM-scatter dataflow (no numerics).

    ``chunks > 1`` splits each offset's gather/GEMM/scatter staging into
    that many sequential row chunks (SpConv-style sub-batching): the
    staging workspace shrinks by ``chunks`` at the cost of extra kernel
    launches.  Only the unfused variant chunks — the fused variant's whole
    point is one monolithic staging pass.
    """
    if chunks < 1:
        raise ValueError(f"chunks must be >= 1, got {chunks}")
    itemsize = precision.itemsize
    trace = KernelTrace()
    map_sizes = kmap.map_sizes
    total_pairs = kmap.total_pairs
    # Weight-stationary engines keep the kmap as per-offset (in, out) index
    # pair lists: two int32 entries per pair, live for the whole dataflow.
    pair_bytes = 8.0 * total_pairs

    if not fused:
        for k, size in enumerate(map_sizes):
            if size == 0:
                continue
            size = int(size)
            n_chunks = min(chunks, size)
            base, extra = divmod(size, n_chunks)
            for ci in range(n_chunks):
                rows = base + (1 if ci < extra else 0)
                suffix = f".chunk{ci}" if n_chunks > 1 else ""
                stage_in = f"gs_in.k{k}{suffix}"
                stage_out = f"gs_out.k{k}{suffix}"
                # Each triple is one fusable producer/consumer chain; the
                # group id is also the fused launch's name, chosen so the
                # race checker still sees a single-offset scatter class.
                group = f"gather_gemm_scatter/offset{k}{suffix}"
                trace.add(
                    KernelLaunch(
                        name=f"gather/offset{k}{suffix}",
                        kind=LaunchKind.MEMORY,
                        dram_read_bytes=itemsize * rows * c_in + 8.0 * rows,
                        dram_write_bytes=itemsize * rows * c_in,
                        scalar_ops=2.0 * rows,
                        workspace_bytes=pair_bytes + itemsize * rows * c_in,
                        ctas=max(1, rows * c_in // 4096),
                        reads=(
                            ext("feats_in", itemsize * rows * c_in),
                            ext("kmap_pairs", 8.0 * rows),
                        ),
                        writes=(ws(stage_in, itemsize * rows * c_in),),
                        fuse_group=group,
                        untracked_workspace_bytes=pair_bytes,
                    )
                )
                gemm = _gemm_launch(
                    f"gemm/offset{k}{suffix}", rows, c_in, c_out, 1,
                    schedule, precision, tensor_cores,
                )
                gemm.workspace_bytes = (
                    pair_bytes + itemsize * rows * (c_in + c_out)
                )
                gemm.reads = (
                    ws(stage_in, itemsize * rows * c_in),
                    ext("weights", itemsize * c_in * c_out),
                )
                gemm.writes = (ws(stage_out, itemsize * rows * c_out),)
                gemm.fuse_group = group
                gemm.untracked_workspace_bytes = pair_bytes
                trace.add(gemm)
                trace.add(
                    KernelLaunch(
                        name=f"scatter/offset{k}{suffix}",
                        kind=LaunchKind.MEMORY,
                        dram_read_bytes=itemsize * rows * c_out + 8.0 * rows
                        # scatter-accumulate reads the destination rows too
                        + 4.0 * rows * c_out,
                        dram_write_bytes=4.0 * rows * c_out,
                        scalar_ops=2.0 * rows,
                        workspace_bytes=pair_bytes + itemsize * rows * c_out,
                        ctas=max(1, rows * c_out // 4096),
                        reads=(
                            ws(stage_out, itemsize * rows * c_out),
                            ext("kmap_pairs", 8.0 * rows),
                            # read-modify-write accumulation: the RAW chain
                            # through ext:out_accum serializes the scatters.
                            ext("out_accum", 4.0 * rows * c_out),
                        ),
                        writes=(ext("out_accum", 4.0 * rows * c_out),),
                        fuse_group=group,
                        untracked_workspace_bytes=pair_bytes,
                    )
                )
    else:
        # The fused variant materializes one gather buffer for *all* offsets
        # and keeps every group's padded GEMM output staged until the single
        # fused scatter consumes it — this is the dataflow's workspace hog.
        gather_buf = itemsize * total_pairs * c_in
        groups = adaptive_groups(map_sizes)
        staged_out = itemsize * c_out * sum(
            int(max(map_sizes[k] for k in group)) * len(group)
            for group in groups
        )
        trace.add(
            KernelLaunch(
                name="gather/fused",
                kind=LaunchKind.MEMORY,
                dram_read_bytes=itemsize * total_pairs * c_in + 8.0 * total_pairs,
                dram_write_bytes=itemsize * total_pairs * c_in,
                scalar_ops=2.0 * total_pairs,
                workspace_bytes=pair_bytes + gather_buf,
                ctas=max(1, total_pairs * c_in // 4096),
                reads=(
                    ext("feats_in", itemsize * total_pairs * c_in),
                    ext("kmap_pairs", 8.0 * total_pairs),
                ),
                writes=(ws("gs_in", gather_buf),),
                untracked_workspace_bytes=pair_bytes,
            )
        )
        # Each group stages its padded output in its own buffer, so the
        # batched GEMMs are mutually independent (no WAW between groups).
        staged_group: List[Tuple[str, float]] = []
        for g, group in enumerate(groups):
            padded_m = int(max(map_sizes[k] for k in group))
            group_out = itemsize * c_out * padded_m * len(group)
            staged_group.append((f"gs_staged.g{g}", group_out))
            gemm = _gemm_launch(
                f"gemm/group{g}", padded_m, c_in, c_out, len(group),
                schedule, precision, tensor_cores,
            )
            gemm.workspace_bytes = pair_bytes + gather_buf + staged_out
            group_rows = sum(int(map_sizes[k]) for k in group)
            gemm.reads = (
                ws("gs_in", itemsize * group_rows * c_in),
                ext("weights", itemsize * len(group) * c_in * c_out),
            )
            gemm.writes = (ws(f"gs_staged.g{g}", group_out),)
            gemm.untracked_workspace_bytes = pair_bytes
            trace.add(gemm)
        # One kernel scatters every offset's partials at once, so rows
        # targeting the same output index race within the launch: only the
        # first touch of each output row can be a plain store; every
        # further accumulation must be an atomic add.  (The unfused
        # variant is conflict-free per launch because one offset maps each
        # output at most once, and launches serialize.)
        touched = int(np.count_nonzero((kmap.nbmap >= 0).any(axis=1)))
        conflicts = total_pairs - touched
        accum_writes = [ext("out_accum", 4.0 * touched * c_out)]
        if conflicts:
            accum_writes.append(
                ext("out_accum", 4.0 * conflicts * c_out, atomic=True)
            )
        trace.add(
            KernelLaunch(
                name="scatter/fused",
                kind=LaunchKind.MEMORY,
                dram_read_bytes=itemsize * total_pairs * c_out
                + 8.0 * total_pairs + 4.0 * total_pairs * c_out,
                dram_write_bytes=4.0 * touched * c_out,
                atomic_write_bytes=4.0 * conflicts * c_out,
                scalar_ops=2.0 * total_pairs,
                workspace_bytes=pair_bytes + staged_out,
                ctas=max(1, total_pairs * c_out // 4096),
                reads=tuple(
                    [ws(name, nbytes) for name, nbytes in staged_group]
                    + [
                        ext("kmap_pairs", 8.0 * total_pairs),
                        ext("out_accum", 4.0 * total_pairs * c_out),
                    ]
                ),
                writes=tuple(accum_writes),
                untracked_workspace_bytes=pair_bytes,
            )
        )

    # Final output materialization (accumulator -> storage dtype).
    trace.add(
        KernelLaunch(
            name="writeback",
            kind=LaunchKind.MEMORY,
            dram_read_bytes=4.0 * kmap.num_outputs * c_out,
            dram_write_bytes=itemsize * kmap.num_outputs * c_out,
            ctas=max(1, kmap.num_outputs * c_out // 4096),
            reads=(ext("out_accum", 4.0 * kmap.num_outputs * c_out),),
            writes=(ext("feats_out", itemsize * kmap.num_outputs * c_out),),
        )
    )
    return trace


def gather_gemm_scatter(
    feats: np.ndarray,
    weights: np.ndarray,
    kmap: KernelMap,
    schedule: KernelSchedule = DEFAULT_SCHEDULE,
    precision: Precision = Precision.FP32,
    fused: bool = False,
    tensor_cores: bool = True,
    chunks: int = 1,
) -> Tuple[np.ndarray, KernelTrace]:
    """Run sparse convolution with the gather-GEMM-scatter dataflow.

    Returns ``(out_feats, trace)`` with ``out_feats`` of shape
    ``(N_out, C_out)`` in the precision's storage dtype.  ``chunks`` only
    affects staging-buffer granularity (launch structure and workspace),
    never the arithmetic.
    """
    c_in, c_out = check_conv_args(feats, weights, kmap.volume)
    accum = np.zeros((kmap.num_outputs, c_out), dtype=np.float32)
    for k, (in_idx, out_idx) in enumerate(kmap.pairs()):
        if len(in_idx) == 0:
            continue
        partial = matmul_accumulate(feats[in_idx], weights[k], precision)
        np.add.at(accum, out_idx, partial)
    trace = gather_gemm_scatter_trace(
        kmap, c_in, c_out, schedule, precision, fused, tensor_cores, chunks
    )
    return accum.astype(precision.dtype), trace
