"""Output-stationary implicit GEMM dataflow (Sections 2.2.3 and 4.1).

The sparse convolution is executed as one GEMM
``X_out[M, N] = X_im2col[M, K] @ W[K, N]`` with ``M = N_out``,
``N = C_out`` and ``K = V * C_in``, where the A operand is never
materialised: loads from ``X_in`` go through the output-stationary map with
one level of indirection (Figure 7).  Write-back traffic is the theoretical
minimum, but warp-lockstep execution issues redundant MACs wherever a warp's
rows disagree about neighbour presence (Figure 5).

Configuration axes (the TorchSparse++ design-space extension, Figure 9/10):

* ``sort`` — reorder rows by descending neighbour bitmask (SpConv v2 style,
  Figure 6); ``sort=False`` is the *unsorted* dataflow SpConv v2 excluded
  and the paper rehabilitates (Table 3);
* ``num_splits`` — split the K loop over offsets into ``s`` independently
  sorted segments computing into separate partial-sum buffers, reduced by a
  final summation kernel (Figure 10, SplitK analogue);
* ``offline_reorder`` — materialise the reordered map ahead of time instead
  of chasing the permutation inside the kernel (Section 4.1 / Figure 19).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Tuple

import numpy as np

from repro.errors import ConfigError
from repro.gpusim.trace import KernelLaunch, KernelTrace, LaunchKind, ext, ws
from repro.kernels.base import (
    ADDRESS_OPS_HOISTED,
    DEFAULT_SCHEDULE,
    ONLINE_REORDER_OPS,
    KernelSchedule,
    check_conv_args,
    gemm_ctas,
    gemm_efficiency,
    matmul_accumulate,
)
from repro.precision import Precision
from repro.sparse.bitmask import MaskReordering, warp_mac_slots
from repro.sparse.kmap import KernelMap

#: Scalar ops per radix-sort pass per key (compare/scatter on CUDA cores).
SORT_OPS_PER_PASS = 16.0
#: Bits retired per radix-sort pass.
RADIX_BITS = 8
#: Random-scatter DRAM amplification: 4-16 byte scattered accesses move
#: full 32-byte sectors, so sorting/reordering runs far below peak
#: bandwidth — the reason sorting overhead is end-to-end significant
#: (Tables 3/4, Figure 17).
SECTOR_FACTOR = 8.0
#: Loss of gathered-row contiguity when the permutation is chased inside
#: the kernel instead of materialised offline (Figure 19).
ONLINE_REORDER_READ_AMPLIFICATION = 2.0


@dataclasses.dataclass(frozen=True)
class ImplicitGemmConfig:
    """Dataflow parameters for implicit GEMM.

    ``num_splits=1, sort=False`` is the unsorted dataflow ("split 0" in the
    paper's Table 5 notation); ``num_splits=1, sort=True`` matches SpConv v2.
    """

    num_splits: int = 1
    sort: bool = True
    offline_reorder: bool = True

    def __post_init__(self) -> None:
        if self.num_splits < 1:
            raise ConfigError(f"num_splits must be >= 1, got {self.num_splits}")
        if not self.sort and self.num_splits > 1:
            raise ConfigError("mask splitting requires sorting (Figure 10)")

    @classmethod
    def from_paper_notation(cls, split: int) -> "ImplicitGemmConfig":
        """Table 5 notation: 0 = unsorted, s >= 1 = sorted with s splits."""
        if split == 0:
            return cls(num_splits=1, sort=False)
        return cls(num_splits=split, sort=True)


def _mapping_trace(
    kmap: KernelMap, config: ImplicitGemmConfig, num_rows: int
) -> KernelTrace:
    """Launches for bitmask computation, sorting and (offline) reordering."""
    trace = KernelTrace()
    if not config.sort or kmap.volume <= 1:
        # Nothing to sort for pointwise (V = 1) convolutions.
        return trace
    volume = kmap.volume
    seg_bits = math.ceil(volume / config.num_splits)
    passes = max(1, math.ceil(seg_bits / RADIX_BITS))
    # The dense output-stationary map (4 bytes x V per row) is live through
    # every mapping stage; sort keys and the radix ping-pong buffers come
    # and go around it.
    map_bytes = 4.0 * num_rows * volume
    key_bytes = 8.0 * num_rows * config.num_splits
    trace.add(
        KernelLaunch(
            name="mapping/bitmask",
            kind=LaunchKind.MAPPING,
            dram_read_bytes=4.0 * num_rows * volume,
            dram_write_bytes=8.0 * num_rows * config.num_splits,
            scalar_ops=2.0 * num_rows * volume,
            workspace_bytes=map_bytes + key_bytes,
            ctas=max(1, num_rows // 256),
            reads=(ext("nbmap", map_bytes),),
            writes=(ws("ig_keys", key_bytes),),
            # The dense map is charged as transient here but read through
            # the external nbmap buffer: untracked by ws: liveness.
            untracked_workspace_bytes=map_bytes,
        )
    )
    trace.add(
        KernelLaunch(
            name="mapping/argsort",
            kind=LaunchKind.MAPPING,
            dram_read_bytes=16.0 * num_rows * passes * config.num_splits,
            # Radix scatter writes are random: sector-amplified.
            dram_write_bytes=SECTOR_FACTOR
            * 16.0 * num_rows * passes * config.num_splits,
            scalar_ops=SORT_OPS_PER_PASS * num_rows * passes * config.num_splits,
            # Keys plus the (key, index) ping-pong pair of the radix sort.
            workspace_bytes=map_bytes + 3.0 * key_bytes,
            ctas=max(1, num_rows // 256),
            reads=(ws("ig_keys", key_bytes),),
            writes=(ws("ig_perm", 4.0 * num_rows),),
            # Dense map + radix ping-pong buffers beyond the named keys/perm.
            untracked_workspace_bytes=map_bytes
            + 2.0 * key_bytes
            - 4.0 * num_rows,
        )
    )
    if config.offline_reorder:
        trace.add(
            KernelLaunch(
                name="mapping/reorder",
                kind=LaunchKind.MAPPING,
                # Row gather through the permutation: random row reads.
                dram_read_bytes=SECTOR_FACTOR * 4.0 * num_rows * volume
                + 4.0 * num_rows,
                dram_write_bytes=4.0 * num_rows * volume,
                scalar_ops=2.0 * num_rows * volume,
                # Source map + materialised reordered copy + permutation.
                workspace_bytes=2.0 * map_bytes + 4.0 * num_rows,
                ctas=max(1, num_rows // 256),
                reads=(
                    ext("nbmap", map_bytes),
                    ws("ig_perm", 4.0 * num_rows),
                ),
                writes=(ws("ig_map_sorted", map_bytes),),
                # The external source map is charged transient here.
                untracked_workspace_bytes=map_bytes,
            )
        )
    return trace


def implicit_gemm_trace(
    kmap: KernelMap,
    c_in: int,
    c_out: int,
    schedule: KernelSchedule = DEFAULT_SCHEDULE,
    precision: Precision = Precision.FP32,
    config: ImplicitGemmConfig = ImplicitGemmConfig(),
    tensor_cores: bool = True,
    charge_mapping: bool = True,
) -> KernelTrace:
    """Execution trace of the implicit GEMM dataflow (no numerics).

    The trace includes the mapping launches (bitmask / sort / reorder) so
    end-to-end comparisons see the sorting overhead the paper highlights
    (Tables 3/4, Figure 17).  Pass ``charge_mapping=False`` for layers that
    reuse an already-reordered map (all but the first layer of a group).
    """
    itemsize = precision.itemsize
    nbmap = kmap.nbmap
    num_rows = kmap.num_outputs
    if config.num_splits > kmap.volume:
        # A map cannot be split finer than one offset per segment
        # (pointwise convolutions have V = 1).
        config = dataclasses.replace(
            config, num_splits=kmap.volume
        )
    if charge_mapping:
        trace = _mapping_trace(kmap, config, num_rows)
    else:
        trace = KernelTrace()

    pad_rows = (
        math.ceil(max(num_rows, 1) / schedule.tile_m) * schedule.tile_m
        if schedule.pad_maps
        else num_rows
    )
    cache_key = (
        "ig_slots", config.num_splits, config.sort, schedule.warp_rows, pad_rows
    )
    if cache_key in kmap.analysis_cache:
        effective_total, issued_total = kmap.analysis_cache[cache_key]
    else:
        reorder = MaskReordering.build(
            nbmap, num_splits=config.num_splits, sort=config.sort
        )
        effective_total = 0
        issued_total = 0
        for submap in reorder.reordered_submaps(nbmap):
            masks = submap >= 0
            if schedule.pad_maps and pad_rows > num_rows:
                masks = np.concatenate(
                    [masks,
                     np.zeros((pad_rows - num_rows, masks.shape[1]), bool)]
                )
            effective, issued = warp_mac_slots(masks, schedule.warp_rows)
            effective_total += effective
            issued_total += issued
        kmap.analysis_cache[cache_key] = (effective_total, issued_total)
    ctas_total = config.num_splits * gemm_ctas(pad_rows, c_out, schedule)

    a_loads = float(issued_total) * c_in
    scalar_per_element = (
        schedule.address_ops_per_element + schedule.boundary_ops_per_element
    )
    # Naive dynamic-shape addressing above the hoisted floor is the
    # loop-invariant arithmetic the hoisting pass (repro.opt) removes —
    # exactly the Figure 20 quantity.  Boundary checks and online-reorder
    # indirections are per-element and stay.
    hoistable_per_element = 0.0
    if not schedule.fixed_shape and not schedule.hoist_invariants:
        hoistable_per_element = (
            schedule.address_ops_per_element - ADDRESS_OPS_HOISTED
        )
    a_read_amplification = 1.0
    if config.sort and not config.offline_reorder:
        # Online reordering chases the permutation inside the kernel: an
        # extra indirection per element plus disrupted access contiguity
        # on the gathered rows (Section 6.2 / Figure 19).
        scalar_per_element += ONLINE_REORDER_OPS
        a_read_amplification = ONLINE_REORDER_READ_AMPLIFICATION

    split_k = max(1, kmap.volume // config.num_splits) * c_in
    # Weights are small enough to stay L2-resident across output tiles
    # (a 27x256x256 FP16 tensor is ~3.5 MB); charge one streaming read
    # plus one prefetch pass rather than a re-read per M tile.
    weight_reads = 2.0 * itemsize * kmap.volume * c_in * c_out
    split_buffers = config.num_splits > 1
    out_bytes_per_split = (4.0 if split_buffers else itemsize) * num_rows * c_out
    # Workspace of the main launch: the dense map (doubled when a reordered
    # copy was materialised offline, plus the permutation when it is chased
    # online) and, with mask splitting, one FP32 partial-sum buffer per
    # split segment.  Output rows accumulate in registers — no staging.
    sorted_here = config.sort and kmap.volume > 1
    map_bytes = 4.0 * num_rows * kmap.volume
    main_workspace = map_bytes
    if sorted_here:
        if config.offline_reorder:
            main_workspace += map_bytes
        else:
            main_workspace += 4.0 * num_rows * config.num_splits
    if split_buffers:
        main_workspace += 4.0 * config.num_splits * num_rows * c_out
    # Map structures produced by the mapping launches above are trace-local
    # workspace; when the layer reuses an already-reordered map (warm cache,
    # ``charge_mapping=False``) they pre-exist and are external.
    map_cls = ws if charge_mapping else ext
    map_reads = [ext("nbmap", map_bytes)]
    if sorted_here:
        if config.offline_reorder:
            map_reads = [map_cls("ig_map_sorted", map_bytes)]
        else:
            map_reads.append(map_cls("ig_perm", 4.0 * num_rows))
    main_writes = (
        (ws("ig_partials", 4.0 * config.num_splits * num_rows * c_out),)
        if split_buffers
        else (ext("feats_out", itemsize * num_rows * c_out),)
    )
    # Workspace the main launch holds beyond its named ws: accesses (the
    # dense map read through external buffers, the online permutation when
    # maps are warm): the reuse planner must keep this much headroom.
    tracked_ws = 0.0
    if sorted_here and charge_mapping:
        tracked_ws += map_bytes if config.offline_reorder else 4.0 * num_rows
    if split_buffers:
        tracked_ws += 4.0 * config.num_splits * num_rows * c_out
    trace.add(
        KernelLaunch(
            name="implicit_gemm/main",
            kind=LaunchKind.GEMM,
            flops=2.0 * issued_total * c_in * c_out,
            dram_read_bytes=(
                a_read_amplification * itemsize * effective_total * c_in
                + 4.0 * issued_total  # map loads
                + weight_reads
            ),
            dram_write_bytes=out_bytes_per_split * config.num_splits,
            scalar_ops=scalar_per_element * a_loads,
            workspace_bytes=main_workspace,
            ctas=max(1, ctas_total),
            overlapped=schedule.double_buffer,
            tensor_core_eligible=tensor_cores,
            compute_efficiency=gemm_efficiency(
                num_rows, c_out, split_k, schedule
            ),
            reads=tuple(
                [
                    ext("feats_in", itemsize * effective_total * c_in),
                    ext("weights", weight_reads),
                ]
                + map_reads
            ),
            writes=main_writes,
            hoistable_scalar_ops=hoistable_per_element * a_loads,
            untracked_workspace_bytes=main_workspace - tracked_ws,
        )
    )
    if split_buffers:
        trace.add(
            KernelLaunch(
                name="implicit_gemm/reduce",
                kind=LaunchKind.REDUCTION,
                flops=float(config.num_splits) * num_rows * c_out,
                dram_read_bytes=4.0 * config.num_splits * num_rows * c_out,
                dram_write_bytes=float(itemsize) * num_rows * c_out,
                workspace_bytes=4.0 * config.num_splits * num_rows * c_out,
                ctas=max(1, num_rows * c_out // 4096),
                overlapped=True,
                reads=(
                    ws("ig_partials", 4.0 * config.num_splits * num_rows * c_out),
                ),
                writes=(ext("feats_out", itemsize * num_rows * c_out),),
            )
        )
    return trace


def implicit_gemm(
    feats: np.ndarray,
    weights: np.ndarray,
    kmap: KernelMap,
    schedule: KernelSchedule = DEFAULT_SCHEDULE,
    precision: Precision = Precision.FP32,
    config: ImplicitGemmConfig = ImplicitGemmConfig(),
    tensor_cores: bool = True,
    charge_mapping: bool = True,
) -> Tuple[np.ndarray, KernelTrace]:
    """Run sparse convolution with the implicit GEMM dataflow.

    ``charge_mapping=False`` omits the bitmask/sort/reorder launches for
    layers reusing an already-restructured map; the trace's map reads are
    then external-class, matching the warm-cache reality.
    """
    c_in, c_out = check_conv_args(feats, weights, kmap.volume)
    nbmap = kmap.nbmap
    accum = np.zeros((kmap.num_outputs, c_out), dtype=np.float32)
    for k in range(kmap.volume):
        idx = nbmap[:, k]
        valid = idx >= 0
        if not valid.any():
            continue
        accum[valid] += matmul_accumulate(
            feats[idx[valid]], weights[k], precision
        )
    trace = implicit_gemm_trace(
        kmap, c_in, c_out, schedule, precision, config, tensor_cores,
        charge_mapping=charge_mapping,
    )
    return accum.astype(precision.dtype), trace
