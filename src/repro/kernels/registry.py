"""Dataflow registry: name-addressable forward kernels for the autotuner."""

from __future__ import annotations

import enum
from typing import Tuple

import numpy as np

from repro.errors import ConfigError
from repro.gpusim.trace import KernelTrace
from repro.kernels.base import DEFAULT_SCHEDULE, KernelSchedule
from repro.kernels.fetch_on_demand import fetch_on_demand
from repro.kernels.gather_scatter import gather_gemm_scatter
from repro.kernels.implicit_gemm import ImplicitGemmConfig, implicit_gemm
from repro.precision import Precision
from repro.sparse.kmap import KernelMap


class Dataflow(enum.Enum):
    """The dataflow families in the TorchSparse++ design space (Figure 9)."""

    GATHER_SCATTER = "gather_scatter"
    GATHER_SCATTER_FUSED = "gather_scatter_fused"
    FETCH_ON_DEMAND = "fetch_on_demand"
    FETCH_ON_DEMAND_UNFUSED = "fetch_on_demand_unfused"
    IMPLICIT_GEMM = "implicit_gemm"

    @property
    def weight_stationary(self) -> bool:
        """Whether the dataflow needs weight-stationary maps (Section 4.2)."""
        return self is not Dataflow.IMPLICIT_GEMM


#: All dataflow names, for CLI/docs enumeration.
DATAFLOWS = tuple(d.value for d in Dataflow)


def dataflow_choices() -> Tuple[str, ...]:
    """Valid dataflow names, for CLI choice listings and error messages."""
    return DATAFLOWS


def run_dataflow(
    dataflow: "Dataflow | str",
    feats: np.ndarray,
    weights: np.ndarray,
    kmap: KernelMap,
    schedule: KernelSchedule = DEFAULT_SCHEDULE,
    precision: "Precision | str" = Precision.FP32,
    ig_config: ImplicitGemmConfig = ImplicitGemmConfig(),
    tensor_cores: bool = True,
    gs_chunks: int = 1,
    charge_mapping: bool = True,
) -> Tuple[np.ndarray, KernelTrace]:
    """Execute one sparse convolution with the named dataflow.

    This is the single entry point the autotuner and the baseline engines
    drive; every dataflow produces numerically equivalent output.
    ``gs_chunks`` sub-batches the gather-scatter staging buffers (workspace
    relief for the degradation ladder); ``charge_mapping=False`` omits
    implicit GEMM's map-restructuring launches for layers reusing a warm
    map; other dataflows ignore both.
    """
    if isinstance(dataflow, str):
        try:
            dataflow = Dataflow(dataflow)
        except ValueError:
            raise ConfigError(
                f"unknown dataflow {dataflow!r}; expected one of {DATAFLOWS}"
            ) from None
    precision = Precision.parse(precision)

    if dataflow is Dataflow.GATHER_SCATTER:
        return gather_gemm_scatter(
            feats, weights, kmap, schedule, precision,
            fused=False, tensor_cores=tensor_cores, chunks=gs_chunks,
        )
    if dataflow is Dataflow.GATHER_SCATTER_FUSED:
        return gather_gemm_scatter(
            feats, weights, kmap, schedule, precision,
            fused=True, tensor_cores=tensor_cores,
        )
    if dataflow is Dataflow.FETCH_ON_DEMAND:
        return fetch_on_demand(
            feats, weights, kmap, schedule, precision,
            block_fused=True, tensor_cores=tensor_cores,
        )
    if dataflow is Dataflow.FETCH_ON_DEMAND_UNFUSED:
        return fetch_on_demand(
            feats, weights, kmap, schedule, precision,
            block_fused=False, tensor_cores=tensor_cores,
        )
    return implicit_gemm(
        feats, weights, kmap, schedule, precision,
        config=ig_config, tensor_cores=tensor_cores,
        charge_mapping=charge_mapping,
    )


def trace_dataflow(
    dataflow: "Dataflow | str",
    kmap: KernelMap,
    c_in: int,
    c_out: int,
    schedule: KernelSchedule = DEFAULT_SCHEDULE,
    precision: "Precision | str" = Precision.FP32,
    ig_config: ImplicitGemmConfig = ImplicitGemmConfig(),
    tensor_cores: bool = True,
    charge_mapping: bool = True,
    gs_chunks: int = 1,
) -> KernelTrace:
    """Trace one sparse convolution without executing numerics.

    Trace quantities depend only on the kernel map and shapes, never on
    feature values, so the autotuner and full-scale workload simulations
    use this path and skip the matrix arithmetic entirely.
    """
    from repro.kernels.fetch_on_demand import fetch_on_demand_trace
    from repro.kernels.gather_scatter import gather_gemm_scatter_trace
    from repro.kernels.implicit_gemm import implicit_gemm_trace

    if isinstance(dataflow, str):
        try:
            dataflow = Dataflow(dataflow)
        except ValueError:
            raise ConfigError(
                f"unknown dataflow {dataflow!r}; expected one of {DATAFLOWS}"
            ) from None
    precision = Precision.parse(precision)

    if dataflow is Dataflow.GATHER_SCATTER:
        return gather_gemm_scatter_trace(
            kmap, c_in, c_out, schedule, precision,
            fused=False, tensor_cores=tensor_cores, chunks=gs_chunks,
        )
    if dataflow is Dataflow.GATHER_SCATTER_FUSED:
        return gather_gemm_scatter_trace(
            kmap, c_in, c_out, schedule, precision,
            fused=True, tensor_cores=tensor_cores,
        )
    if dataflow is Dataflow.FETCH_ON_DEMAND:
        return fetch_on_demand_trace(
            kmap, c_in, c_out, schedule, precision,
            block_fused=True, tensor_cores=tensor_cores,
        )
    if dataflow is Dataflow.FETCH_ON_DEMAND_UNFUSED:
        return fetch_on_demand_trace(
            kmap, c_in, c_out, schedule, precision,
            block_fused=False, tensor_cores=tensor_cores,
        )
    return implicit_gemm_trace(
        kmap, c_in, c_out, schedule, precision,
        config=ig_config, tensor_cores=tensor_cores,
        charge_mapping=charge_mapping,
    )
