"""Weight-gradient (wgrad) kernels for training (Section 4.2 / Figure 19).

For every kernel offset the weight gradient is

``dW_delta = X_in[in_idx]^T @ dY[out_idx]``

— a GEMM of shape ``(M=C_in, N=C_out, K=|M_delta|)`` whose *K loop runs over
output points*.  This inverts the memory-access structure of forward/dgrad:
the long, innermost loop performs the indirect map accesses, which is why
online map reordering (an extra indirection in that loop) slows wgrad far
more than the other kernels (Section 6.2).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.gpusim.trace import KernelLaunch, KernelTrace, LaunchKind, ext, ws
from repro.kernels.base import (
    DEFAULT_SCHEDULE,
    ONLINE_REORDER_OPS,
    KernelSchedule,
    check_conv_args,
    gemm_ctas,
    gemm_efficiency,
)
from repro.precision import Precision
from repro.sparse.kmap import KernelMap


#: Extra memory inefficiency when wgrad iterates a bitmask-sorted map: the
#: K loop visits output points in sorted (spatially random) order, so row
#: reads lose coalescing that the natural map order provides.
SORTED_MAP_READ_AMPLIFICATION = 2.0
#: Additional amplification when the map permutation is chased *online*
#: inside the wgrad K loop (Figure 19).
ONLINE_REORDER_WGRAD_AMPLIFICATION = 1.3


def wgrad_trace(
    kmap: KernelMap,
    c_in: int,
    c_out: int,
    schedule: KernelSchedule = DEFAULT_SCHEDULE,
    precision: Precision = Precision.FP32,
    gathered: bool = False,
    online_reorder: bool = False,
    sorted_maps: bool = False,
    tensor_cores: bool = True,
) -> KernelTrace:
    """Execution trace of the wgrad kernel (no numerics).

    ``sorted_maps`` marks that the maps were bitmask-sorted for the bound
    forward/dgrad kernels; the wgrad K loop then reads rows in a spatially
    random order (Section 6.2's locality argument), amplifying its DRAM
    traffic — the reason wgrad prefers unsorted dataflow parameters.
    """
    itemsize = precision.itemsize
    trace = KernelTrace()
    total_pairs = kmap.total_pairs
    # Pair lists are live for the whole kernel; the gathered variant adds
    # staged copies of both operands on top.
    pair_bytes = 8.0 * total_pairs
    staging_bytes = 0.0
    if gathered:
        staging_bytes = itemsize * total_pairs * (c_in + c_out)
        trace.add(
            KernelLaunch(
                name="wgrad/gather",
                kind=LaunchKind.MEMORY,
                dram_read_bytes=itemsize * total_pairs * (c_in + c_out)
                + 16.0 * total_pairs,
                dram_write_bytes=itemsize * total_pairs * (c_in + c_out),
                scalar_ops=4.0 * total_pairs,
                workspace_bytes=pair_bytes + staging_bytes,
                ctas=max(1, total_pairs * (c_in + c_out) // 4096),
                reads=(
                    ext("feats_in", itemsize * total_pairs * c_in),
                    ext("grad_out", itemsize * total_pairs * c_out),
                    ext("kmap_pairs", 16.0 * total_pairs),
                ),
                writes=(ws("wgrad_staged", staging_bytes),),
            )
        )
        k_loads_scalar = 0.0
        read_bytes = itemsize * total_pairs * (c_in + c_out)
    else:
        # Implicit wgrad: indirect loads of both operands in the K loop.
        per_element = schedule.address_ops_per_element + (
            ONLINE_REORDER_OPS if online_reorder else 0.0
        )
        k_loads_scalar = per_element * total_pairs * (c_in + c_out)
        amplification = SORTED_MAP_READ_AMPLIFICATION if sorted_maps else 1.0
        if online_reorder:
            # Chasing the permutation inside the long K loop destroys the
            # continuous access pattern entirely (Section 6.2) — the
            # dominant cost of online reordering in training (Figure 19).
            amplification *= ONLINE_REORDER_WGRAD_AMPLIFICATION
        read_bytes = (
            amplification * itemsize * total_pairs * (c_in + c_out)
            + 8.0 * total_pairs
        )

    # wgrad output tiles are few (C_in x C_out per offset); real kernels
    # split the long K loop (over output points) to fill the device, with
    # partial sums reduced by atomics into the FP32 gradient buffer.
    mean_k = total_pairs / max(1, kmap.volume)
    base_ctas = kmap.volume * gemm_ctas(c_in, c_out, schedule)
    k_splits = max(1, min(16, int(mean_k // (4 * schedule.tile_k) + 1)))
    ctas = base_ctas * k_splits
    if gathered:
        gemm_reads = [ws("wgrad_staged", staging_bytes)]
    else:
        gemm_reads = [
            ext("feats_in", itemsize * total_pairs * c_in),
            ext("grad_out", itemsize * total_pairs * c_out),
            ext("kmap_pairs", 8.0 * total_pairs),
        ]
    grad_w_bytes = 4.0 * kmap.volume * c_in * c_out
    # Gradients accumulate (+=) into the FP32 master buffer: the kernel
    # reads existing partials, which also serializes successive wgrad
    # launches over the same weights via a RAW chain.
    gemm_reads.append(ext("grad_weights", grad_w_bytes))
    # One CTA per output tile writes its first partial plainly; the other
    # K-split partials land via atomic adds into the FP32 gradient buffer.
    gemm_writes = [ext("grad_weights", grad_w_bytes)]
    if k_splits > 1:
        gemm_writes.append(
            ext("grad_weights", grad_w_bytes * (k_splits - 1), atomic=True)
        )
    trace.add(
        KernelLaunch(
            name="wgrad/gemm",
            kind=LaunchKind.GEMM,
            flops=2.0 * total_pairs * c_in * c_out,
            dram_read_bytes=read_bytes,
            dram_write_bytes=4.0 * kmap.volume * c_in * c_out,
            atomic_write_bytes=4.0 * kmap.volume * c_in * c_out
            * (k_splits - 1),
            scalar_ops=k_loads_scalar,
            workspace_bytes=pair_bytes + staging_bytes,
            ctas=max(1, ctas),
            overlapped=schedule.double_buffer,
            tensor_core_eligible=tensor_cores,
            compute_efficiency=gemm_efficiency(
                c_in, c_out, int(math.ceil(mean_k / k_splits)), schedule
            ),
            reads=tuple(gemm_reads),
            writes=tuple(gemm_writes),
        )
    )
    return trace


def wgrad(
    feats: np.ndarray,
    grad_out: np.ndarray,
    kmap: KernelMap,
    schedule: KernelSchedule = DEFAULT_SCHEDULE,
    precision: Precision = Precision.FP32,
    gathered: bool = False,
    online_reorder: bool = False,
    sorted_maps: bool = False,
    tensor_cores: bool = True,
) -> Tuple[np.ndarray, KernelTrace]:
    """Compute weight gradients for all kernel offsets.

    Args:
        feats: ``(N_in, C_in)`` forward input features.
        grad_out: ``(N_out, C_out)`` output gradient.
        kmap: the forward kernel map.
        schedule: tiling configuration.
        precision: numeric precision (gradients in FP16 under mixed
            precision, Figure 15).
        gathered: stage both operands through DRAM gather buffers
            (gather-GEMM-scatter-family wgrad) instead of indirect
            addressing inside the GEMM (implicit-GEMM-family wgrad).
        online_reorder: the forward pass reordered its maps online, so the
            wgrad K loop pays an extra indirection per element (Figure 19).
        tensor_cores: allow tensor cores.

    Returns:
        ``(grad_weights, trace)`` with ``grad_weights`` of shape
        ``(V, C_in, C_out)`` in FP32 (master weights accumulate in FP32).
    """
    if grad_out.ndim != 2:
        raise ValueError(f"grad_out must be 2-D, got {grad_out.shape}")
    c_in = feats.shape[1]
    c_out = grad_out.shape[1]
    check_conv_args(
        feats, np.zeros((kmap.volume, c_in, c_out), dtype=np.float32), kmap.volume
    )
    grad_w = np.zeros((kmap.volume, c_in, c_out), dtype=np.float32)
    for k, (in_idx, out_idx) in enumerate(kmap.pairs()):
        if len(in_idx) == 0:
            continue
        a = feats[in_idx].astype(precision.dtype, copy=False).astype(np.float32)
        b = grad_out[out_idx].astype(precision.dtype, copy=False).astype(np.float32)
        grad_w[k] = a.T @ b
    trace = wgrad_trace(
        kmap, c_in, c_out, schedule, precision, gathered,
        online_reorder, sorted_maps, tensor_cores,
    )
    return grad_w, trace
