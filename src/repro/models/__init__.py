"""Model zoo: the seven benchmark workloads of Section 5.1.

* :class:`MinkUNet` — U-Net-shaped segmentation backbone (SemanticKITTI /
  nuScenes-LiDARSeg), width 0.5x or 1x;
* :class:`CenterPointBackbone` — SECOND-style sparse 3-D encoder used by
  CenterPoint detection (nuScenes / Waymo); the paper evaluates only the
  SparseConv layers of detection models, which is exactly this module.
"""

from repro.models.minkunet import MinkUNet
from repro.models.centerpoint import CenterPointBackbone
from repro.models.registry import WORKLOADS, Workload, get_workload

__all__ = [
    "MinkUNet",
    "CenterPointBackbone",
    "WORKLOADS",
    "Workload",
    "get_workload",
]
