"""CenterPoint's sparse 3-D encoder (the SECOND/VoxelNet middle extractor).

CenterPoint (Yin et al., CVPR 2021) runs a sparse convolutional backbone
over the voxelized point cloud, flattens to BEV and continues with dense 2-D
heads.  The paper evaluates "only the runtime of SparseConv layers" for
detection workloads (Section 5.1), i.e. exactly this backbone:

* an input submanifold convolution;
* 3 downsampling stages (stride-2 sparse conv + two submanifold convs),
  16 -> 32 -> 64 -> 128 channels;
* a final stride-(2,2,2) convolution producing the BEV-ready volume.
"""

from __future__ import annotations

import numpy as np

from repro.nn.blocks import ConvBlock
from repro.nn.context import ExecutionContext
from repro.nn.module import Module, ModuleList
from repro.nn.sequential import Sequential
from repro.sparse.tensor import SparseTensor

#: Channel plan of the SECOND-style encoder.
STAGE_CHANNELS = (16, 32, 64, 128)


class CenterPointBackbone(Module):
    """Sparse encoder of CenterPoint; detection benchmarks time this only."""

    def __init__(self, in_channels: int = 5, seed: int = 0):
        super().__init__()
        c0 = STAGE_CHANNELS[0]
        self.input_conv = ConvBlock(
            in_channels, c0, 3, label="input", seed=seed
        )
        self.stages = ModuleList()
        prev = c0
        for i, ch in enumerate(STAGE_CHANNELS[1:], start=1):
            self.stages.append(
                Sequential(
                    ConvBlock(
                        prev, ch, kernel_size=3, stride=2,
                        label=f"stage{i}.down", seed=seed + 10 * i,
                    ),
                    ConvBlock(
                        ch, ch, 3, label=f"stage{i}.subm1", seed=seed + 10 * i + 1
                    ),
                    ConvBlock(
                        ch, ch, 3, label=f"stage{i}.subm2", seed=seed + 10 * i + 2
                    ),
                )
            )
            prev = ch
        self.out_conv = ConvBlock(
            prev, prev, kernel_size=2, stride=2, label="out.down",
            seed=seed + 90,
        )

    def forward(self, x: SparseTensor, ctx: ExecutionContext) -> SparseTensor:
        x = self.input_conv(x, ctx)
        for stage in self.stages:
            x = stage(x, ctx)
        return self.out_conv(x, ctx)

    def backward(self, grad: np.ndarray, ctx: ExecutionContext) -> np.ndarray:
        grad = self.out_conv.backward(grad, ctx)
        for stage in reversed(list(self.stages)):
            grad = stage.backward(grad, ctx)
        return self.input_conv.backward(grad, ctx)
