"""MinkUNet: the U-Net segmentation backbone of Choy et al. (CVPR 2019).

Structure (matching the MinkUNet used by TorchSparse and the paper):

* stem: two 3x3x3 submanifold convolutions;
* 4 encoder stages: a 2x2x2 stride-2 downsampling convolution followed by
  two residual blocks;
* 4 decoder stages: a 2x2x2 stride-2 *inverse* convolution (reusing the
  encoder's kernel map), concatenation with the encoder skip tensor, and
  two residual blocks;
* a pointwise classifier.

``width`` scales every channel count (the paper evaluates 0.5x and 1x on
SemanticKITTI).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn.blocks import ConvBlock, ResidualBlock
from repro.nn.context import ExecutionContext
from repro.nn.conv import SparseConv3d
from repro.nn.join import ConcatSkip
from repro.nn.module import Module, ModuleList
from repro.nn.sequential import Sequential
from repro.sparse.tensor import SparseTensor

#: Channel plan at width 1.0 (stem, 4 encoder stages, 4 decoder stages).
STEM_CHANNELS = 32
ENCODER_CHANNELS = (32, 64, 128, 256)
DECODER_CHANNELS = (256, 128, 96, 96)


def _scaled(channels: int, width: float) -> int:
    return max(8, int(round(channels * width)))


class MinkUNet(Module):
    """Sparse U-Net for point cloud segmentation."""

    def __init__(
        self,
        in_channels: int = 4,
        num_classes: int = 19,
        width: float = 1.0,
        seed: int = 0,
    ):
        super().__init__()
        self.width = width
        stem_ch = _scaled(STEM_CHANNELS, width)
        enc_chs = [_scaled(c, width) for c in ENCODER_CHANNELS]
        dec_chs = [_scaled(c, width) for c in DECODER_CHANNELS]

        self.stem = Sequential(
            ConvBlock(in_channels, stem_ch, 3, label="stem1", seed=seed),
            ConvBlock(stem_ch, stem_ch, 3, label="stem2", seed=seed + 1),
        )

        self.down_convs = ModuleList()
        self.enc_blocks = ModuleList()
        prev = stem_ch
        for i, ch in enumerate(enc_chs):
            self.down_convs.append(
                ConvBlock(
                    prev, prev, kernel_size=2, stride=2,
                    label=f"enc{i}.down", seed=seed + 10 + i,
                )
            )
            self.enc_blocks.append(
                Sequential(
                    ResidualBlock(prev, ch, label=f"enc{i}.res1",
                                  seed=seed + 20 + 2 * i),
                    ResidualBlock(ch, ch, label=f"enc{i}.res2",
                                  seed=seed + 21 + 2 * i),
                )
            )
            prev = ch

        self.up_convs = ModuleList()
        self.concats = ModuleList()
        self.dec_blocks = ModuleList()
        skip_channels = [stem_ch] + enc_chs[:-1]  # skips, shallow to deep
        for j, ch in enumerate(dec_chs):
            skip_ch = skip_channels[len(dec_chs) - 1 - j]
            self.up_convs.append(
                ConvBlock(
                    prev, ch, kernel_size=2, stride=2, transposed=True,
                    label=f"dec{j}.up", seed=seed + 40 + j,
                )
            )
            self.concats.append(ConcatSkip(label=f"dec{j}.concat"))
            self.dec_blocks.append(
                Sequential(
                    ResidualBlock(ch + skip_ch, ch, label=f"dec{j}.res1",
                                  seed=seed + 50 + 2 * j),
                    ResidualBlock(ch, ch, label=f"dec{j}.res2",
                                  seed=seed + 51 + 2 * j),
                )
            )
            prev = ch

        self.classifier = SparseConv3d(
            prev, num_classes, kernel_size=1, label="classifier",
            seed=seed + 99,
        )
        self._skips: List[SparseTensor] = []

    # ------------------------------------------------------------------ #
    def forward(self, x: SparseTensor, ctx: ExecutionContext) -> SparseTensor:
        x = self.stem(x, ctx)
        skips: List[SparseTensor] = []
        for down, blocks in zip(self.down_convs, self.enc_blocks):
            skips.append(x)
            x = blocks(down(x, ctx), ctx)
        for up, concat, blocks in zip(
            self.up_convs, self.concats, self.dec_blocks
        ):
            x = up(x, ctx)
            x = concat.forward(x, skips.pop(), ctx)
            x = blocks(x, ctx)
        if self.training:
            self._skips = []  # skip grads flow through ConcatSkip.backward
        return self.classifier(x, ctx)

    def backward(self, grad: np.ndarray, ctx: ExecutionContext) -> np.ndarray:
        grad = self.classifier.backward(grad, ctx)
        skip_grads: List[np.ndarray] = []
        for up, concat, blocks in zip(
            reversed(list(self.up_convs)),
            reversed(list(self.concats)),
            reversed(list(self.dec_blocks)),
        ):
            grad = blocks.backward(grad, ctx)
            grad, skip_grad = concat.backward(grad, ctx)
            skip_grads.append(skip_grad)
            grad = up.backward(grad, ctx)
        # skip_grads was filled shallowest-first (decoder reversed); the
        # encoder backward consumes deepest-first, so pop from the end.
        for down, blocks in zip(
            reversed(list(self.down_convs)), reversed(list(self.enc_blocks))
        ):
            grad = blocks.backward(grad, ctx)
            grad = down.backward(grad, ctx)
            grad = grad + skip_grads.pop().astype(grad.dtype)
        return self.stem.backward(grad, ctx)
