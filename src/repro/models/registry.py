"""The seven benchmark workloads of Section 5.1.

========  =============================  ===================  ======
id        model                          dataset              frames
========  =============================  ===================  ======
SK-M-0.5  MinkUNet (0.5x width)          SemanticKITTI        1
SK-M-1.0  MinkUNet (1x width)            SemanticKITTI        1
NS-M-1f   MinkUNet (1x)                  nuScenes-LiDARSeg    1
NS-M-3f   MinkUNet (1x)                  nuScenes-LiDARSeg    3
NS-C-10f  CenterPoint sparse encoder     nuScenes detection   10
WM-C-1f   CenterPoint sparse encoder     Waymo Open Dataset   1
WM-C-3f   CenterPoint sparse encoder     Waymo Open Dataset   3
========  =============================  ===================  ======
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.data.datasets import DATASETS, DatasetConfig
from repro.errors import ConfigError
from repro.models.centerpoint import CenterPointBackbone
from repro.models.minkunet import MinkUNet
from repro.nn.module import Module
from repro.sparse.tensor import SparseTensor


@dataclasses.dataclass(frozen=True)
class Workload:
    """One benchmark: a model family on a dataset with a frame count."""

    id: str
    model_family: str  # "minkunet" or "centerpoint"
    dataset: str
    frames: int = 1
    width: float = 1.0
    task: str = "segmentation"

    def build_model(self, seed: int = 0) -> Module:
        """Instantiate the (randomly initialised) model."""
        in_channels = DATASETS[self.dataset].in_channels
        if self.model_family == "minkunet":
            return MinkUNet(
                in_channels=in_channels, width=self.width, seed=seed
            )
        if self.model_family == "centerpoint":
            return CenterPointBackbone(in_channels=in_channels, seed=seed)
        raise ConfigError(f"unknown model family {self.model_family!r}")

    def make_input(self, seed: int = 0, batch_size: int = 1) -> SparseTensor:
        """Generate a voxelized input sample (or batch) for this workload."""
        from repro.data.datasets import make_batch, make_sample

        if batch_size == 1:
            return make_sample(self.dataset, frames=self.frames, seed=seed)
        return make_batch(
            self.dataset, batch_size=batch_size, frames=self.frames, seed=seed
        )

    @property
    def dataset_config(self) -> DatasetConfig:
        return DATASETS[self.dataset]


WORKLOADS: Dict[str, Workload] = {
    w.id: w
    for w in (
        Workload("SK-M-0.5", "minkunet", "semantickitti", width=0.5),
        Workload("SK-M-1.0", "minkunet", "semantickitti", width=1.0),
        Workload("NS-M-1f", "minkunet", "nuscenes", frames=1),
        Workload("NS-M-3f", "minkunet", "nuscenes", frames=3),
        Workload(
            "NS-C-10f", "centerpoint", "nuscenes", frames=10, task="detection"
        ),
        Workload("WM-C-1f", "centerpoint", "waymo", frames=1, task="detection"),
        Workload("WM-C-3f", "centerpoint", "waymo", frames=3, task="detection"),
    )
}

#: The segmentation / detection partitions used by several analyses.
SEGMENTATION_WORKLOADS = tuple(
    w for w in WORKLOADS.values() if w.task == "segmentation"
)
DETECTION_WORKLOADS = tuple(
    w for w in WORKLOADS.values() if w.task == "detection"
)


#: Spoken-form aliases ("1x width") accepted alongside canonical ids.
_WORKLOAD_ALIASES = {
    "sk-m-1x": "sk-m-1.0",
    "sk-m-1.0x": "sk-m-1.0",
    "sk-m-0.5x": "sk-m-0.5",
}


def get_workload(workload_id: str) -> Workload:
    """Look up a workload by id (case-insensitive, common aliases ok)."""
    wanted = _WORKLOAD_ALIASES.get(workload_id.lower(), workload_id.lower())
    for key, workload in WORKLOADS.items():
        if key.lower() == wanted:
            return workload
    raise ConfigError(
        f"unknown workload {workload_id!r}; have {sorted(WORKLOADS)}"
    )
