"""Sparse neural-network layers and the module system.

Layers execute on :class:`repro.sparse.SparseTensor` inputs through an
:class:`ExecutionContext` that selects the dataflow configuration per layer
(fixed for the baseline engines, group-tuned for TorchSparse++) and
accumulates the :class:`repro.gpusim.KernelTrace` of everything the network
did — including kernel-map construction, which the paper shows can be half
of end-to-end runtime.
"""

from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.context import ExecutionContext, FixedPolicy, LayerConfig, Role
from repro.nn.conv import SparseConv3d
from repro.nn.norm import BatchNorm
from repro.nn.activation import ReLU
from repro.nn.sequential import Sequential
from repro.nn.blocks import ResidualBlock, ConvBlock
from repro.nn.join import ConcatSkip
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.summary import summarize, summary_table

__all__ = [
    "Module",
    "ModuleList",
    "Parameter",
    "ExecutionContext",
    "FixedPolicy",
    "LayerConfig",
    "Role",
    "SparseConv3d",
    "BatchNorm",
    "ReLU",
    "Sequential",
    "ResidualBlock",
    "ConvBlock",
    "ConcatSkip",
    "SGD",
    "Adam",
    "Optimizer",
    "summarize",
    "summary_table",
]
