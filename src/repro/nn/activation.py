"""Elementwise activations."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gpusim.trace import KernelLaunch, KernelTrace, LaunchKind
from repro.nn.context import ExecutionContext
from repro.nn.module import Module
from repro.sparse.tensor import SparseTensor


class ReLU(Module):
    """Rectified linear unit (bandwidth-bound elementwise pass)."""

    def __init__(self, label: Optional[str] = None):
        super().__init__()
        self.label = label or f"relu{id(self) % 10000}"
        self._saved: Optional[np.ndarray] = None

    def _charge(self, elements: int, ctx: ExecutionContext) -> None:
        bytes_ = float(ctx.precision.itemsize) * elements
        trace = KernelTrace()
        trace.add(
            KernelLaunch(
                name=f"{self.label}/relu",
                kind=LaunchKind.MEMORY,
                flops=float(elements),
                dram_read_bytes=bytes_,
                dram_write_bytes=bytes_,
                ctas=max(1, elements // 4096),
                overlapped=True,
            )
        )
        ctx.trace.extend(trace)

    def forward(self, x: SparseTensor, ctx: ExecutionContext) -> SparseTensor:
        self._charge(x.feats.size, ctx)
        if ctx.simulate_only:
            if self.training:
                self._saved = np.ones((1, 1), dtype=bool)  # broadcastable
            return x
        mask = x.feats > 0
        out = np.where(mask, x.feats, np.zeros((), dtype=x.feats.dtype))
        if self.training:
            self._saved = mask
        return x.with_feats(out)

    def backward(self, grad_out: np.ndarray, ctx: ExecutionContext) -> np.ndarray:
        if self._saved is None:
            raise RuntimeError(f"{self.label}: backward without forward")
        self._charge(grad_out.size, ctx)
        if ctx.simulate_only:
            return grad_out
        return np.where(self._saved, grad_out, np.zeros((), dtype=grad_out.dtype))
