"""Composite blocks: conv-bn-relu and residual blocks (MinkUNet units)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.activation import ReLU
from repro.nn.context import ExecutionContext
from repro.nn.conv import SparseConv3d
from repro.nn.module import Module
from repro.nn.norm import BatchNorm
from repro.nn.sequential import Sequential
from repro.sparse.tensor import SparseTensor


class ConvBlock(Sequential):
    """``SparseConv3d -> BatchNorm -> ReLU``."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        transposed: bool = False,
        label: str = "block",
        seed: int = 0,
    ):
        super().__init__(
            SparseConv3d(
                in_channels,
                out_channels,
                kernel_size,
                stride=stride,
                transposed=transposed,
                label=f"{label}.conv",
                seed=seed,
            ),
            BatchNorm(out_channels, label=f"{label}.bn"),
            ReLU(label=f"{label}.relu"),
        )


class ResidualBlock(Module):
    """Two 3x3x3 submanifold convolutions with an identity (or projected)
    skip connection — the repeating unit of MinkUNet encoders/decoders.

    Submanifold convolutions preserve coordinates, so the skip addition is
    an aligned elementwise add.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        label: str = "res",
        seed: int = 0,
    ):
        super().__init__()
        self.conv1 = SparseConv3d(
            in_channels, out_channels, 3, label=f"{label}.conv1", seed=seed
        )
        self.bn1 = BatchNorm(out_channels, label=f"{label}.bn1")
        self.relu1 = ReLU(label=f"{label}.relu1")
        self.conv2 = SparseConv3d(
            out_channels, out_channels, 3, label=f"{label}.conv2", seed=seed + 1
        )
        self.bn2 = BatchNorm(out_channels, label=f"{label}.bn2")
        self.relu_out = ReLU(label=f"{label}.relu_out")
        if in_channels != out_channels:
            self.projection: Optional[Sequential] = Sequential(
                SparseConv3d(
                    in_channels, out_channels, 1,
                    label=f"{label}.proj", seed=seed + 2,
                ),
                BatchNorm(out_channels, label=f"{label}.proj_bn"),
            )
        else:
            self.projection = None

    def forward(self, x: SparseTensor, ctx: ExecutionContext) -> SparseTensor:
        identity = self.projection(x, ctx) if self.projection else x
        out = self.relu1(self.bn1(self.conv1(x, ctx), ctx), ctx)
        out = self.bn2(self.conv2(out, ctx), ctx)
        summed = out.with_feats(out.feats + identity.feats.astype(out.feats.dtype))
        return self.relu_out(summed, ctx)

    def backward(self, grad: np.ndarray, ctx: ExecutionContext) -> np.ndarray:
        grad = self.relu_out.backward(grad, ctx)
        grad_main = self.bn2.backward(grad, ctx)
        grad_main = self.conv2.backward(grad_main, ctx)
        grad_main = self.relu1.backward(grad_main, ctx)
        grad_main = self.bn1.backward(grad_main, ctx)
        grad_main = self.conv1.backward(grad_main, ctx)
        if self.projection:
            grad_skip = self.projection.backward(grad, ctx)
        else:
            grad_skip = grad
        return grad_main + grad_skip.astype(grad_main.dtype)
