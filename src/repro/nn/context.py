"""Execution context: per-layer dataflow policy + accumulated trace.

The context is the seam where the Sparse Autotuner plugs in: it maps each
layer's *map signature* (the paper's group identity, Section 4.2) and kernel
*role* (forward / dgrad / wgrad, Figure 13) to a :class:`LayerConfig`, and
it accumulates everything the network executed into one trace whose
simulated latency is the tuner's objective.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, Optional, Tuple

from repro.gpusim.engine import estimate_trace_us, latency_breakdown
from repro.gpusim.trace import KernelTrace
from repro.hw.specs import DeviceSpec, get_device
from repro.kernels.base import DEFAULT_SCHEDULE, KernelSchedule
from repro.kernels.implicit_gemm import ImplicitGemmConfig
from repro.kernels.registry import Dataflow
from repro.precision import Precision

#: A layer's map signature: (tensor_stride, kernel_size, stride, transposed).
#: Layers sharing a signature share kernel maps and therefore form one
#: autotuner group.
Signature = Tuple


class Role(enum.Enum):
    """Which kernel of a layer a config applies to (training tuner axis)."""

    FORWARD = "forward"
    DGRAD = "dgrad"
    WGRAD = "wgrad"


@dataclasses.dataclass(frozen=True)
class LayerConfig:
    """One point in the TorchSparse++ design space (Figure 9).

    ``gs_chunks`` sub-batches the gather-scatter staging buffers (the
    degradation ladder's "raise split counts" rung); it never changes the
    arithmetic, only workspace and launch granularity.
    """

    dataflow: Dataflow = Dataflow.IMPLICIT_GEMM
    schedule: KernelSchedule = DEFAULT_SCHEDULE
    ig_config: ImplicitGemmConfig = ImplicitGemmConfig()
    tensor_cores: bool = True
    gs_chunks: int = 1

    def describe(self) -> str:
        parts = [self.dataflow.value]
        if self.dataflow is Dataflow.IMPLICIT_GEMM:
            if not self.ig_config.sort:
                parts.append("unsorted")
            else:
                parts.append(f"splits={self.ig_config.num_splits}")
        if self.gs_chunks > 1:
            parts.append(f"chunks={self.gs_chunks}")
        parts.append(
            f"tile={self.schedule.tile_m}x{self.schedule.tile_n}"
            f"x{self.schedule.tile_k}"
        )
        return " ".join(parts)


class FixedPolicy:
    """Every layer and role gets the same config (baseline engines)."""

    def __init__(
        self,
        config: Optional[LayerConfig] = None,
        per_role: Optional[Dict[Role, LayerConfig]] = None,
    ):
        self._config = config or LayerConfig()
        self._per_role = per_role or {}

    def config(self, signature: Signature, role: Role = Role.FORWARD) -> LayerConfig:
        return self._per_role.get(role, self._config)


class GroupPolicy:
    """Per-group (and optionally per-role) configs from the autotuner."""

    def __init__(
        self,
        assignments: Dict[Signature, Dict[Role, LayerConfig]],
        default: Optional[LayerConfig] = None,
    ):
        self._assignments = assignments
        self._default = default or LayerConfig()

    def config(self, signature: Signature, role: Role = Role.FORWARD) -> LayerConfig:
        by_role = self._assignments.get(signature)
        if not by_role:
            return self._default
        return by_role.get(role) or by_role.get(Role.FORWARD, self._default)

    # -- public iteration API (serialization, policy caches) ----------- #
    @property
    def default(self) -> LayerConfig:
        """Config served for signatures the tuner never saw."""
        return self._default

    def signatures(self) -> Tuple[Signature, ...]:
        return tuple(self._assignments)

    def items(self) -> Iterator[Tuple[Signature, Dict[Role, LayerConfig]]]:
        """Iterate ``(signature, {role: config})`` pairs.

        Mappings are copies: mutating them does not alter the policy.
        """
        for signature, by_role in self._assignments.items():
            yield signature, dict(by_role)

    def __len__(self) -> int:
        return len(self._assignments)


class ExecutionContext:
    """Runtime state for one network execution.

    Attributes:
        device: the simulated GPU.
        precision: numeric precision for all layers.
        policy: per-layer/per-role config provider.
        trace: accumulated kernel trace (reset with :meth:`reset_trace`).
        training: whether layers should save activations for backward.
        adaptive_tiling: let conv layers pick tile sizes by workload MACs
            (Section 6.2) instead of the policy's fixed tiles.
        simulate_only: skip the matrix arithmetic and propagate zero
            features — traces (and therefore simulated latency) are exact
            either way because they depend only on geometry and shapes.
            This is how full-scale workloads (100k+ voxels, 256 channels)
            are costed without paying for the numpy matmuls.
        gpu_streams: virtual GPU streams for the latency model; with
            ``> 1`` the accumulated trace is list-scheduled onto its
            dependence DAG (:mod:`repro.opt.schedule`) instead of
            serialized.
    """

    def __init__(
        self,
        device: "DeviceSpec | str" = "a100",
        precision: "Precision | str" = Precision.FP16,
        policy: Optional[object] = None,
        training: bool = False,
        adaptive_tiling: bool = False,
        simulate_only: bool = False,
        map_cost_scale: float = 1.0,
        gpu_streams: int = 1,
    ):
        if gpu_streams < 1:
            raise ValueError(f"gpu_streams must be >= 1, got {gpu_streams}")
        self.device = get_device(device)
        self.precision = Precision.parse(precision)
        self.policy = policy or FixedPolicy()
        self.trace = KernelTrace()
        self.training = training
        self.adaptive_tiling = adaptive_tiling
        self.simulate_only = simulate_only
        self.gpu_streams = gpu_streams
        #: Multiplier on kernel-map construction cost (engines with slow
        #: coordinate managers, e.g. MinkowskiEngine, set this > 1).
        self.map_cost_scale = map_cost_scale
        #: One-shot charge markers: map builds, reorderings and backward
        #: preparations are charged once per map *per context* — a fresh
        #: context models a fresh engine run even when the Python-level
        #: map cache is shared for wall-clock efficiency.
        self._charged: set = set()
        #: Optional callback ``(signature=, kmap=, c_in=, c_out=, label=)``
        #: invoked by every convolution layer — the autotuner's probe hook.
        self.recorder: Optional[Callable] = None
        #: Fully-qualified buffer id of the most recent forward conv's
        #: output features; the next forward conv reads it, chaining
        #: layers with real RAW edges in the dependence analyzer.
        self.feature_buffer: Optional[str] = None

    def charge_once(self, key: tuple) -> bool:
        """Return True exactly once per key per context."""
        if key in self._charged:
            return False
        self._charged.add(key)
        return True

    def charged_keys(self) -> FrozenSet[tuple]:
        """Snapshot of the one-shot charges this context has paid."""
        return frozenset(self._charged)

    def precharge(self, keys: "Iterable[tuple]") -> None:
        """Mark one-shot charges as already paid.

        The serving runtime uses this to model warm kernel-map state: a
        context pre-charged with the keys a previous execution of the same
        scene paid will not re-charge map builds, sorts or reorderings.
        """
        self._charged.update(keys)

    # ------------------------------------------------------------------ #
    def config(self, signature: Signature, role: Role = Role.FORWARD) -> LayerConfig:
        return self.policy.config(signature, role)

    def reset_trace(self) -> None:
        self.trace = KernelTrace()
        self.feature_buffer = None

    def latency_us(self) -> float:
        """Simulated latency of everything traced so far."""
        return estimate_trace_us(
            self.trace, self.device, self.precision, self.gpu_streams
        )

    def latency_ms(self) -> float:
        return self.latency_us() / 1e3

    def stream_schedule(self):
        """Sync-aware stream schedule of the traced execution.

        ``None`` when ``gpu_streams == 1`` (serialized: no events) or the
        trace is empty; otherwise the best sync-charged schedule over
        1..``gpu_streams`` streams, carrying the explicit sync events the
        serving runtime reports per run.
        """
        if self.gpu_streams <= 1 or len(self.trace) == 0:
            return None
        from repro.opt.schedule import best_schedule

        return best_schedule(
            self.trace, self.device, self.precision, self.gpu_streams
        )

    def breakdown_us(self) -> Dict[str, float]:
        return latency_breakdown(self.trace, self.device, self.precision)

    def memory_bytes(self) -> float:
        """Peak-ish DRAM footprint proxy: total bytes written."""
        return self.trace.summary().dram_write_bytes

    def peak_workspace_bytes(self) -> float:
        """Liveness-aware peak transient workspace of the traced execution."""
        return self.trace.summary().peak_workspace_bytes
