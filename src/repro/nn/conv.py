"""Sparse 3-D convolution layer.

Supports submanifold convolution (stride 1: outputs coincide with inputs),
strided/generalized convolution (downsampling), transposed ("inverse")
convolution reusing the encoder's cached kernel map, and pointwise
(kernel size 1) convolution executed as a plain GEMM with no mapping cost.

The layer resolves its kernel map through the tensor's shared
:class:`~repro.sparse.tensor.MapCache`; a cache miss charges the mapping
cost to the execution trace.  In training mode the forward pass saves what
backward needs; :meth:`backward` runs the dgrad dataflow (forward dataflow
on the transposed map with transposed weights) and the wgrad kernel, each
under its own :class:`~repro.nn.context.Role` config — the axis the
training tuner exploits (Figure 13 / Figure 22).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigError, MapError
from repro.gpusim.trace import scope_buffers
from repro.kernels.registry import Dataflow, run_dataflow, trace_dataflow
from repro.kernels.wgrad import wgrad as wgrad_kernel
from repro.kernels.wgrad import wgrad_trace
from repro.nn.context import ExecutionContext, LayerConfig, Role, Signature
from repro.nn.mapping_cost import map_build_trace, map_reorder_trace
from repro.nn.module import Module, Parameter
from repro.sparse.hashmap import HashMapStats
from repro.sparse.kernel_offsets import kernel_volume, normalize_kernel_size
from repro.sparse.kmap import KernelMap, MapKey, build_kernel_map
from repro.sparse.tensor import SparseTensor


def _identity_kmap(tensor: SparseTensor) -> KernelMap:
    """Trivial map for pointwise convolution: every output is its input."""
    n = tensor.num_points
    return KernelMap(
        nbmap=np.arange(n, dtype=np.int32).reshape(n, 1),
        offsets=np.zeros((1, tensor.ndim), dtype=np.int32),
        num_inputs=n,
        out_coords=tensor.coords,
        build_stats=HashMapStats(),
        key=MapKey(
            kernel_size=(1,) * tensor.ndim,
            stride=(1,) * tensor.ndim,
            tensor_stride=tensor.stride,
        ),
        in_coords=tensor.coords,
    )


class SparseConv3d(Module):
    """Sparse convolution over a :class:`SparseTensor`.

    Args:
        in_channels / out_channels: feature widths.
        kernel_size: scalar or per-dimension ``K``.
        stride: convolution stride; with ``transposed=True`` this is the
            upsampling factor instead.
        transposed: inverse convolution — requires that the matching
            downsampling convolution ran earlier on the same map cache
            (standard U-Net usage).
        bias: add a learned per-channel bias.
        label: name used to prefix this layer's trace launches.
        seed: weight initialisation seed.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: "int | Tuple[int, ...]" = 3,
        stride: int = 1,
        transposed: bool = False,
        bias: bool = False,
        label: Optional[str] = None,
        seed: int = 0,
        ndim: int = 3,
    ):
        super().__init__()
        if in_channels < 1 or out_channels < 1:
            raise ConfigError("channel counts must be >= 1")
        if transposed and stride == 1:
            raise ConfigError("transposed convolution requires stride > 1")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.ndim = ndim
        self.kernel_size = normalize_kernel_size(kernel_size, ndim)
        self.stride = normalize_kernel_size(stride, ndim)
        self.transposed = transposed
        self.label = label or f"conv{id(self) % 10000}"
        volume = kernel_volume(self.kernel_size, ndim)
        rng = np.random.default_rng(seed)
        std = math.sqrt(2.0 / (volume * in_channels))
        self.weight = Parameter(
            rng.standard_normal((volume, in_channels, out_channels)) * std
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None
        self._saved: Optional[dict] = None

    # ------------------------------------------------------------------ #
    @property
    def volume(self) -> int:
        return self.weight.shape[0]

    @property
    def is_pointwise(self) -> bool:
        return all(k == 1 for k in self.kernel_size) and all(
            s == 1 for s in self.stride
        )

    def signature(self, tensor_stride: Tuple[int, ...]) -> Signature:
        """The layer's map signature = its autotuner group identity."""
        return (tensor_stride, self.kernel_size, self.stride, self.transposed)

    # ------------------------------------------------------------------ #
    def _resolve_kmap(
        self, x: SparseTensor, ctx: ExecutionContext
    ) -> Tuple[KernelMap, Tuple[int, ...]]:
        """Fetch or build the kernel map; charges build cost on miss."""
        if self.is_pointwise:
            key = (x.stride, (1,) * self.ndim, (1,) * self.ndim, False)
            kmap = x.cache.get(key)
            if kmap is None:
                kmap = x.cache.put(key, _identity_kmap(x))
            return kmap, x.stride

        if not self.transposed:
            out_stride = tuple(
                t * s for t, s in zip(x.stride, self.stride)
            )
            key = (x.stride, self.kernel_size, self.stride, False)
            kmap = x.cache.get(key)
            if kmap is None:
                kmap = build_kernel_map(
                    x.coords,
                    kernel_size=self.kernel_size,
                    stride=self.stride,
                    tensor_stride=x.stride,
                )
                x.cache.put(key, kmap)
            # Build cost is charged once per map per context: a fresh
            # context models a fresh engine run even when the Python-level
            # map cache is retained across runs for wall-clock efficiency.
            if ctx.charge_once((id(kmap), "build")):
                build = map_build_trace(kmap, f"{self.label}/map")
                if ctx.map_cost_scale != 1.0:
                    for launch in build:
                        launch.scalar_ops *= ctx.map_cost_scale
                        launch.dram_read_bytes *= ctx.map_cost_scale
                        launch.dram_write_bytes *= ctx.map_cost_scale
                ctx.trace.extend(build)
            return kmap, out_stride

        # Transposed: reuse the map built by the matching downsample conv.
        out_stride = tuple(t // s for t, s in zip(x.stride, self.stride))
        if any(t % s for t, s in zip(x.stride, self.stride)):
            raise ConfigError(
                f"cannot upsample stride {x.stride} by {self.stride}"
            )
        t_key = (x.stride, self.kernel_size, self.stride, True)
        kmap = x.cache.get(t_key)
        if kmap is None:
            base_key = (out_stride, self.kernel_size, self.stride, False)
            base = x.cache.get(base_key)
            if base is None:
                raise MapError(
                    f"{self.label}: transposed convolution found no cached "
                    f"map for {base_key}; run the matching downsample first"
                )
            kmap = base.transposed()
            x.cache.put(t_key, kmap)
            # Transposition reuses the stored pairs; only a relabeling pass
            # is charged (already near-free, covered by the cached stats).
        return kmap, out_stride

    def _run(
        self,
        feats: np.ndarray,
        weights: np.ndarray,
        kmap: KernelMap,
        config: LayerConfig,
        ctx: ExecutionContext,
        tag: str,
    ) -> np.ndarray:
        schedule = config.schedule
        if ctx.adaptive_tiling:
            from repro.codegen.tiling import adaptive_schedule

            macs = float(kmap.total_pairs) * weights.shape[1] * weights.shape[2]
            schedule = adaptive_schedule(
                macs,
                base=schedule,
                shape=(
                    kmap.num_outputs,
                    weights.shape[2],
                    kmap.volume * weights.shape[1],
                ),
                device=ctx.device,
            )
        # Sorting/reordering happens once per (map, config) and is reused
        # by every other layer in the group (Section 4.2): charge it on
        # first use only (per context — see MapCache note in _resolve_kmap).
        charge_mapping = ctx.charge_once(
            (id(kmap), "reorder", config.dataflow, config.ig_config)
        )

        if ctx.simulate_only:
            out = np.zeros(
                (kmap.num_outputs, weights.shape[2]), dtype=ctx.precision.dtype
            )
            trace = trace_dataflow(
                config.dataflow,
                kmap,
                weights.shape[1],
                weights.shape[2],
                schedule=schedule,
                precision=ctx.precision,
                ig_config=config.ig_config,
                tensor_cores=config.tensor_cores,
                charge_mapping=charge_mapping,
                gs_chunks=config.gs_chunks,
            )
        else:
            out, trace = run_dataflow(
                config.dataflow,
                feats,
                weights,
                kmap,
                schedule=schedule,
                precision=ctx.precision,
                ig_config=config.ig_config,
                tensor_cores=config.tensor_cores,
                gs_chunks=config.gs_chunks,
                charge_mapping=charge_mapping,
            )
        for launch in trace:
            launch.name = f"{self.label}/{tag}:{launch.name}"
        # Namespace buffer ids per layer and pass; forward passes splice
        # their input-feature reads onto the previous layer's output buffer
        # so consecutive convolutions are chained by real RAW edges.
        prefix = f"{self.label}/{tag}"
        renames = {}
        if tag == "fwd" and ctx.feature_buffer is not None:
            renames["ext:feats_in"] = ctx.feature_buffer
        scope_buffers(trace, prefix, renames)
        if tag == "fwd":
            ctx.feature_buffer = f"ext:{prefix}:feats_out"
        ctx.trace.extend(trace)
        return out

    # ------------------------------------------------------------------ #
    def forward(self, x: SparseTensor, ctx: ExecutionContext) -> SparseTensor:
        if x.num_channels != self.in_channels:
            raise ConfigError(
                f"{self.label}: expected {self.in_channels} input channels, "
                f"got {x.num_channels}"
            )
        kmap, out_stride = self._resolve_kmap(x, ctx)
        signature = self.signature(x.stride)
        if ctx.recorder is not None:
            ctx.recorder(
                signature=signature,
                kmap=kmap,
                c_in=self.in_channels,
                c_out=self.out_channels,
                label=self.label,
            )
        config = ctx.config(signature, Role.FORWARD)
        self._mark_structure(kmap, config.dataflow.weight_stationary, ctx)
        out_feats = self._run(
            x.feats, self.weight.data, kmap, config, ctx, "fwd"
        )
        if self.bias is not None:
            out_feats = out_feats + self.bias.data.astype(out_feats.dtype)
        if self.training:
            self._saved = {
                "feats": x.feats,
                "kmap": kmap,
                "signature": signature,
            }
        return SparseTensor(
            kmap.out_coords, out_feats, stride=out_stride, cache=x.cache
        )

    def _mark_structure(
        self, kmap: KernelMap, weight_stationary: bool, ctx: ExecutionContext
    ) -> None:
        """Charge a map-restructure pass the first time a map is needed in
        a storage order it was not built in (Section 4.2: maps are stored
        weight- or output-stationary and converting costs real time — the
        reason intra-group heterogeneous dataflows are not allowed)."""
        if kmap.volume <= 1:
            return  # pointwise maps have no structure to convert
        if weight_stationary == kmap.native_weight_stationary:
            return  # the map already exists in this storage order
        if not ctx.charge_once((id(kmap), "structure", weight_stationary)):
            return
        ctx.trace.extend(map_reorder_trace(kmap, f"{self.label}/map"))

    def _charge_backward_prep(
        self, kmap: KernelMap, config: LayerConfig, ctx: ExecutionContext
    ) -> None:
        """Charge backward map preparation once per distinct backward
        config (Figure 13): dgrad and wgrad share the same maps, so when
        the training tuner binds them (sparse-mapping oriented scheme) the
        backward pass prepares maps once; decoupled configs pay twice."""
        key = (id(kmap), "bwd_prep", config.dataflow, config.ig_config,
               config.schedule.tile_m)
        if not ctx.charge_once(key):
            return
        if ctx.charge_once((id(kmap), "bwd_prep_any")):
            return  # dgrad's own trace already charges its preparation
        ctx.trace.extend(map_reorder_trace(kmap, f"{self.label}/bwd_map"))

    def backward(self, grad_out: np.ndarray, ctx: ExecutionContext) -> np.ndarray:
        """Compute input gradients; accumulates weight/bias gradients."""
        if self._saved is None:
            raise RuntimeError(
                f"{self.label}: backward called without a training forward"
            )
        feats = self._saved["feats"]
        kmap: KernelMap = self._saved["kmap"]
        signature = self._saved["signature"]

        # dgrad: forward dataflow on the transposed map with W^T per offset.
        dgrad_cfg = ctx.config(signature, Role.DGRAD)
        self._charge_backward_prep(kmap, dgrad_cfg, ctx)
        if "transposed" not in kmap.analysis_cache:
            kmap.analysis_cache["transposed"] = kmap.transposed()
        t_kmap = kmap.analysis_cache["transposed"]
        w_t = np.ascontiguousarray(self.weight.data.transpose(0, 2, 1))
        grad_in = self._run(grad_out, w_t, t_kmap, dgrad_cfg, ctx, "dgrad")

        # wgrad under its own config.
        wgrad_cfg = ctx.config(signature, Role.WGRAD)
        gathered = wgrad_cfg.dataflow in (
            Dataflow.GATHER_SCATTER,
            Dataflow.GATHER_SCATTER_FUSED,
        )
        self._charge_backward_prep(kmap, wgrad_cfg, ctx)
        online = (
            wgrad_cfg.dataflow is Dataflow.IMPLICIT_GEMM
            and wgrad_cfg.ig_config.sort
            and not wgrad_cfg.ig_config.offline_reorder
        )
        sorted_maps = (
            wgrad_cfg.dataflow is Dataflow.IMPLICIT_GEMM
            and wgrad_cfg.ig_config.sort
        )
        if ctx.simulate_only:
            grad_w = np.zeros_like(self.weight.data)
            trace = wgrad_trace(
                kmap,
                self.in_channels,
                self.out_channels,
                schedule=wgrad_cfg.schedule,
                precision=ctx.precision,
                gathered=gathered,
                online_reorder=online,
                sorted_maps=sorted_maps,
                tensor_cores=wgrad_cfg.tensor_cores,
            )
        else:
            grad_w, trace = wgrad_kernel(
                feats,
                grad_out,
                kmap,
                schedule=wgrad_cfg.schedule,
                precision=ctx.precision,
                gathered=gathered,
                online_reorder=online,
                sorted_maps=sorted_maps,
                tensor_cores=wgrad_cfg.tensor_cores,
            )
        for launch in trace:
            launch.name = f"{self.label}/wgrad:{launch.name}"
        scope_buffers(trace, f"{self.label}/wgrad")
        ctx.trace.extend(trace)
        self.weight.accumulate(grad_w)
        if self.bias is not None:
            self.bias.accumulate(grad_out.sum(axis=0))
        return grad_in
