"""Feature joining for U-Net skip connections."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ShapeError
from repro.gpusim.trace import KernelLaunch, KernelTrace, LaunchKind
from repro.nn.context import ExecutionContext
from repro.nn.module import Module
from repro.sparse.tensor import SparseTensor


class ConcatSkip(Module):
    """Concatenate decoder features with an encoder skip tensor.

    Both tensors must live on the same coordinate set (guaranteed when the
    decoder's inverse convolution reuses the encoder's kernel map, which
    returns to exactly the encoder's coordinates in the same order).
    """

    def __init__(self, label: str = "concat"):
        super().__init__()
        self.label = label
        self._split_at = 0

    def _charge(self, elements: int, ctx: ExecutionContext) -> None:
        bytes_ = float(ctx.precision.itemsize) * elements
        ctx.trace.extend(
            KernelTrace(
                [
                    KernelLaunch(
                        name=f"{self.label}/concat",
                        kind=LaunchKind.MEMORY,
                        dram_read_bytes=bytes_,
                        dram_write_bytes=bytes_,
                        ctas=max(1, elements // 4096),
                        overlapped=True,
                    )
                ]
            )
        )

    def forward(
        self, x: SparseTensor, skip: SparseTensor, ctx: ExecutionContext
    ) -> SparseTensor:
        if x.num_points != skip.num_points:
            raise ShapeError(
                f"{self.label}: cannot concat {x.num_points} with "
                f"{skip.num_points} points"
            )
        self._split_at = x.num_channels
        feats = np.concatenate(
            [x.feats, skip.feats.astype(x.feats.dtype)], axis=1
        )
        self._charge(feats.size, ctx)
        return x.with_feats(feats)

    def backward(
        self, grad: np.ndarray, ctx: ExecutionContext
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Split the gradient back into (main, skip) parts."""
        self._charge(grad.size, ctx)
        return grad[:, : self._split_at], grad[:, self._split_at:]
