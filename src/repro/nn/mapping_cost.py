"""Device cost of kernel-map construction and preparation.

Mapping operations — building the coordinate hash table, querying it for
every (output, offset) pair, sorting/reordering maps — run on CUDA cores
with *random-access* memory patterns and account for up to 50% of
end-to-end sparse convolution time (Section 6.3, Tables 3/4).  Two effects
dominate and are modelled explicitly:

* **sector waste**: a random 4-16 byte probe still moves a full 32-byte
  DRAM sector (often two, for the key+value of an open-addressing slot), so
  effective traffic is ``SECTOR_BYTES``-granular;
* **kernel fragmentation**: real map pipelines (thrust sort + unique +
  hash build + query) issue many small launches with synchronization,
  charged as multiple launches here.
"""

from __future__ import annotations

from repro.gpusim.trace import (
    KernelLaunch,
    KernelTrace,
    LaunchKind,
    ext,
    scope_buffers,
    ws,
)
from repro.sparse.kmap import KernelMap

#: Scalar ops per hash probe (hash mix, compare, CAS/select, loop control).
OPS_PER_PROBE = 24.0
#: Effective DRAM bytes per random probe: key + value slots, each touching
#: a 32-byte sector.
BYTES_PER_PROBE = 96.0
#: Random-scatter amplification for map reordering (4-byte elements moved
#: at 32-byte sector granularity).
SECTOR_FACTOR = 8.0
#: Radix-sort passes for 64-bit coordinate keys.
COORD_SORT_PASSES = 8


def map_build_trace(kmap: KernelMap, name: str = "map") -> KernelTrace:
    """Launches for constructing ``kmap`` on device."""
    stats = kmap.build_stats
    trace = KernelTrace()
    # Open-addressing hash table (key + value slots at ~1.5x load factor),
    # live from build through the last query.
    hash_bytes = 24.0 * max(stats.inserts, 1)
    # The hash table is trace-local workspace when a query consumes it in
    # this same build; with no queries it would look leaked, so it stays
    # external-class in that (degenerate) case.
    hash_cls = ws if stats.queries else ext
    nbmap_bytes = 4.0 * kmap.num_outputs * kmap.volume
    if stats.inserts:
        trace.add(
            KernelLaunch(
                name=f"{name}/hash_build",
                kind=LaunchKind.MAPPING,
                scalar_ops=OPS_PER_PROBE * stats.insert_probes,
                dram_read_bytes=8.0 * stats.inserts,
                dram_write_bytes=BYTES_PER_PROBE * stats.insert_probes,
                workspace_bytes=hash_bytes,
                ctas=max(1, stats.inserts // 256),
                reads=(ext("coords", 8.0 * stats.inserts),),
                writes=(hash_cls("hash", hash_bytes),),
            )
        )
    if stats.queries:
        trace.add(
            KernelLaunch(
                name=f"{name}/hash_query",
                kind=LaunchKind.MAPPING,
                scalar_ops=OPS_PER_PROBE * stats.query_probes,
                dram_read_bytes=BYTES_PER_PROBE * stats.query_probes,
                dram_write_bytes=4.0 * kmap.num_outputs * kmap.volume,
                workspace_bytes=hash_bytes
                + 4.0 * kmap.num_outputs * kmap.volume,
                ctas=max(1, stats.queries // 256),
                reads=(
                    hash_cls("hash", hash_bytes),
                    ext("coords", 8.0 * stats.queries),
                ),
                writes=(ext("nbmap", nbmap_bytes),),
            )
        )
        # The query pipeline is several kernels (candidate generation,
        # probe, compaction) with host synchronization between them.
        stage_access = {
            "candidates": dict(
                reads=(
                    ext("coords", 8.0 * stats.queries),
                    hash_cls("hash", hash_bytes),
                ),
                writes=(ws("candidates", 8.0 * stats.queries),),
            ),
            "compact": dict(
                reads=(
                    ws("candidates", 8.0 * stats.queries),
                    # Compaction rewrites the probe results in place.
                    ext("nbmap", 8.0 * stats.queries),
                ),
                writes=(ext("nbmap", 8.0 * stats.queries),),
            ),
        }
        for stage in ("candidates", "compact"):
            trace.add(
                KernelLaunch(
                    name=f"{name}/{stage}",
                    kind=LaunchKind.MAPPING,
                    scalar_ops=4.0 * stats.queries,
                    dram_read_bytes=8.0 * stats.queries,
                    dram_write_bytes=8.0 * stats.queries,
                    workspace_bytes=hash_bytes + 16.0 * stats.queries,
                    ctas=max(1, stats.queries // 256),
                    **stage_access[stage],
                )
            )
    if kmap.key.stride and any(s != 1 for s in kmap.key.stride):
        # Strided convolutions deduplicate the coarsened coordinates with a
        # radix sort + unique over 64-bit keys.
        n = max(kmap.num_inputs, 2)
        trace.add(
            KernelLaunch(
                name=f"{name}/downsample_sort",
                kind=LaunchKind.MAPPING,
                scalar_ops=8.0 * n * COORD_SORT_PASSES,
                dram_read_bytes=16.0 * n * COORD_SORT_PASSES,
                dram_write_bytes=2.0 * SECTOR_FACTOR * 8.0 * n,
                # 64-bit keys in a radix ping-pong pair.
                workspace_bytes=32.0 * n,
                ctas=max(1, n // 256),
                reads=(ext("coords", 16.0 * n),),
                writes=(ws("coord_keys", 32.0 * n),),
            )
        )
        trace.add(
            KernelLaunch(
                name=f"{name}/downsample_unique",
                kind=LaunchKind.MAPPING,
                scalar_ops=8.0 * n,
                dram_read_bytes=16.0 * n,
                dram_write_bytes=16.0 * kmap.num_outputs,
                # The sorted key ping-pong pair is still live while unique
                # consumes it (a fix forced by the lifetime checker).
                workspace_bytes=32.0 * n,
                ctas=max(1, n // 256),
                reads=(ws("coord_keys", 32.0 * n),),
                writes=(ext("coords_out", 16.0 * kmap.num_outputs),),
            )
        )
    # Buffer ids are namespaced by the caller-supplied trace name so maps
    # built by different layers never alias.
    return scope_buffers(trace, name)


def map_reorder_trace(kmap: KernelMap, name: str = "map") -> KernelTrace:
    """Launches for re-materializing a map in a new order/structure.

    Used when the backward pass needs the maps prepared under a different
    dataflow configuration than an existing preparation (the training
    tuner's binding penalty, Section 4.2), and for weight-stationary /
    output-stationary conversions.
    """
    n, volume = kmap.num_outputs, kmap.volume
    trace = KernelTrace()
    trace.add(
        KernelLaunch(
            name=f"{name}/restructure",
            kind=LaunchKind.MAPPING,
            scalar_ops=6.0 * n * volume,
            dram_read_bytes=4.0 * n * volume,
            dram_write_bytes=SECTOR_FACTOR * 4.0 * kmap.total_pairs
            + 4.0 * n * volume,
            # Source map plus the re-materialised copy being written.
            workspace_bytes=8.0 * n * volume,
            ctas=max(1, n // 256),
            reads=(ext("nbmap", 4.0 * n * volume),),
            # The restructured copy outlives the trace (layers reuse it),
            # so it is external-class, not workspace.
            writes=(ext("nbmap_restructured", 4.0 * n * volume),),
        )
    )
    trace.add(
        KernelLaunch(
            name=f"{name}/restructure_index",
            kind=LaunchKind.MAPPING,
            scalar_ops=8.0 * n,
            dram_read_bytes=8.0 * n,
            dram_write_bytes=8.0 * n,
            ctas=max(1, n // 256),
            reads=(ext("nbmap_restructured", 8.0 * n),),
            writes=(ext("map_index", 8.0 * n),),
        )
    )
    return scope_buffers(trace, name)
