"""Minimal module system: parameters, containment, training mode.

Deliberately torch-like in shape (``Module.forward``, ``parameters()``)
but tiny: layers receive the :class:`~repro.nn.context.ExecutionContext`
explicitly, and backward is an explicit reverse traversal (each layer saves
what it needs during a training-mode forward)."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np


class Parameter:
    """A learnable array with an accumulated gradient."""

    def __init__(self, data: np.ndarray):
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: Optional[np.ndarray] = None

    @property
    def shape(self) -> tuple:
        return self.data.shape

    def zero_grad(self) -> None:
        self.grad = None

    def accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad.astype(np.float32)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.data.shape})"


class Module:
    """Base class for all layers and networks."""

    def __init__(self) -> None:
        self.training = False

    # ------------------------------------------------------------------ #
    # Containment (discovered by attribute scan; no __setattr__ magic)
    # ------------------------------------------------------------------ #
    def children(self) -> Iterator[Tuple[str, "Module"]]:
        for name, value in vars(self).items():
            if isinstance(value, Module):
                yield name, value
            elif isinstance(value, ModuleList):
                for i, child in enumerate(value):
                    yield f"{name}.{i}", child

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix or type(self).__name__, self
        for name, child in self.children():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, value in vars(self).items():
            if isinstance(value, Parameter):
                yield (f"{prefix}.{name}" if prefix else name), value
        for name, child in self.children():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_parameters(child_prefix)

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        return sum(int(np.prod(p.shape)) for p in self.parameters())

    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for _, child in self.children():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """All parameters (and batch-norm running stats) by name."""
        state = {
            name: param.data.copy()
            for name, param in self.named_parameters()
        }
        for name, module in self.named_modules():
            for attr in ("running_mean", "running_var"):
                value = getattr(module, attr, None)
                if isinstance(value, np.ndarray):
                    state[f"{name}.{attr}"] = value.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore a :meth:`state_dict`; shapes must match exactly."""
        params = dict(self.named_parameters())
        consumed = set()
        for name, param in params.items():
            if name not in state:
                raise KeyError(f"state dict is missing parameter {name!r}")
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: checkpoint "
                    f"{value.shape} vs model {param.data.shape}"
                )
            param.data = value.astype(np.float32).copy()
            consumed.add(name)
        for name, module in self.named_modules():
            for attr in ("running_mean", "running_var"):
                key = f"{name}.{attr}"
                if key in state and hasattr(module, attr):
                    setattr(module, attr, np.asarray(state[key]).copy())
                    consumed.add(key)
        extra = set(state) - consumed
        if extra:
            raise KeyError(f"unexpected keys in state dict: {sorted(extra)}")

    # ------------------------------------------------------------------ #
    def forward(self, x, ctx):  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad, ctx):  # pragma: no cover - abstract
        raise NotImplementedError(
            f"{type(self).__name__} does not implement backward"
        )

    def __call__(self, x, ctx):
        return self.forward(x, ctx)

    def __repr__(self) -> str:
        child_names = ", ".join(name for name, _ in self.children())
        return f"{type(self).__name__}({child_names})"


class ModuleList:
    """A list of modules discovered by the containment scan."""

    def __init__(self, modules: Optional[List[Module]] = None):
        self._modules: List[Module] = list(modules or [])

    def append(self, module: Module) -> None:
        self._modules.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules)

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return self._modules[index]
