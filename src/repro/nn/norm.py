"""Batch normalization over sparse tensor features."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigError
from repro.gpusim.trace import KernelLaunch, KernelTrace, LaunchKind
from repro.nn.context import ExecutionContext
from repro.nn.module import Module, Parameter
from repro.sparse.tensor import SparseTensor


class BatchNorm(Module):
    """BatchNorm1d over the channel dimension of a sparse tensor.

    Normalizes across all points (the sparse analogue of spatial batch
    norm).  Elementwise layers are bandwidth bound; the trace charges two
    passes in training (stats + normalize) and one in inference.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1,
                 label: Optional[str] = None):
        super().__init__()
        if num_features < 1:
            raise ConfigError("num_features must be >= 1")
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.label = label or f"bn{id(self) % 10000}"
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.running_mean = np.zeros(num_features, dtype=np.float32)
        self.running_var = np.ones(num_features, dtype=np.float32)
        self._saved: Optional[dict] = None

    def _charge(self, n: int, ctx: ExecutionContext, passes: int) -> None:
        bytes_ = float(ctx.precision.itemsize) * n * self.num_features
        trace = KernelTrace()
        trace.add(
            KernelLaunch(
                name=f"{self.label}/batchnorm",
                kind=LaunchKind.MEMORY,
                flops=5.0 * n * self.num_features,
                dram_read_bytes=bytes_ * passes,
                dram_write_bytes=bytes_,
                ctas=max(1, n * self.num_features // 4096),
                overlapped=True,
            )
        )
        ctx.trace.extend(trace)

    def forward(self, x: SparseTensor, ctx: ExecutionContext) -> SparseTensor:
        if ctx.simulate_only:
            self._charge(x.num_points, ctx, passes=2 if self.training else 1)
            if self.training:
                self._saved = {
                    "normalized": x.feats,
                    "inv_std": np.ones(self.num_features, dtype=np.float32),
                    "n": x.num_points,
                }
            return x
        feats = x.feats.astype(np.float32)
        if self.training:
            mean = feats.mean(axis=0)
            var = feats.var(axis=0)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            )
            self._charge(x.num_points, ctx, passes=2)
        else:
            mean = self.running_mean
            var = self.running_var
            self._charge(x.num_points, ctx, passes=1)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        normalized = (feats - mean) * inv_std
        out = normalized * self.gamma.data + self.beta.data
        if self.training:
            self._saved = {"normalized": normalized, "inv_std": inv_std,
                           "n": x.num_points}
        return x.with_feats(out.astype(ctx.precision.dtype))

    def backward(self, grad_out: np.ndarray, ctx: ExecutionContext) -> np.ndarray:
        if self._saved is None:
            raise RuntimeError(f"{self.label}: backward without forward")
        if ctx.simulate_only:
            self._charge(self._saved["n"], ctx, passes=2)
            self.gamma.accumulate(np.zeros(self.num_features))
            self.beta.accumulate(np.zeros(self.num_features))
            return grad_out
        normalized = self._saved["normalized"]
        inv_std = self._saved["inv_std"]
        n = self._saved["n"]
        grad = grad_out.astype(np.float32)
        self.gamma.accumulate((grad * normalized).sum(axis=0))
        self.beta.accumulate(grad.sum(axis=0))
        # Standard batch-norm input gradient.
        g = grad * self.gamma.data
        grad_in = (
            inv_std
            / n
            * (n * g - g.sum(axis=0) - normalized * (g * normalized).sum(axis=0))
        )
        self._charge(n, ctx, passes=2)
        return grad_in.astype(ctx.precision.dtype)
