"""Optimizers for the training substrate.

Mixed-precision training keeps FP32 master weights (gradients are computed
in FP16 by the kernels and accumulated into FP32, Figure 15); these
optimizers update the master copies in place.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Parameter


class Optimizer:
    """Base class: holds parameters, applies updates, clears gradients."""

    def __init__(self, parameters: Iterable[Parameter]):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ConfigError("optimizer needs at least one parameter")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ConfigError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ConfigError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(
            self.parameters
        )

    def step(self) -> None:
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(param.data)
                self._velocity[i] = (
                    self.momentum * self._velocity[i] + grad
                )
                grad = self._velocity[i]
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) on FP32 master weights."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ConfigError(f"lr must be positive, got {lr}")
        beta1, beta2 = betas
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ConfigError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self._m[i] is None:
                self._m[i] = np.zeros_like(param.data)
                self._v[i] = np.zeros_like(param.data)
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad**2
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
