"""Sequential container with explicit backward traversal."""

from __future__ import annotations

from typing import Iterator

from repro.nn.context import ExecutionContext
from repro.nn.module import Module, ModuleList
from repro.sparse.tensor import SparseTensor


class Sequential(Module):
    """Run modules in order; backward runs them in reverse."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = ModuleList(list(modules))

    def forward(self, x: SparseTensor, ctx: ExecutionContext) -> SparseTensor:
        for layer in self.layers:
            x = layer(x, ctx)
        return x

    def backward(self, grad, ctx: ExecutionContext):
        for layer in reversed(self.layers):
            grad = layer.backward(grad, ctx)
        return grad

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
