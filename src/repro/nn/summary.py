"""Model inspection: per-layer parameter / workload summaries."""

from __future__ import annotations

import dataclasses
from typing import List

from repro.nn.context import ExecutionContext
from repro.nn.module import Module
from repro.sparse.tensor import SparseTensor
from repro.utils.format import format_si, format_table


@dataclasses.dataclass
class LayerSummary:
    """Shape and workload of one convolution layer on a given input."""

    label: str
    signature: tuple
    num_outputs: int
    c_in: int
    c_out: int
    effective_macs: float
    mean_neighbors: float


def summarize(model: Module, sample: SparseTensor) -> List[LayerSummary]:
    """Probe ``model`` on ``sample`` and collect per-conv-layer workloads."""
    rows: List[LayerSummary] = []

    def record(signature, kmap, c_in, c_out, label):
        rows.append(
            LayerSummary(
                label=label,
                signature=signature,
                num_outputs=kmap.num_outputs,
                c_in=c_in,
                c_out=c_out,
                effective_macs=float(kmap.total_pairs) * c_in * c_out,
                mean_neighbors=kmap.mean_neighbors,
            )
        )

    ctx = ExecutionContext(simulate_only=True)
    ctx.recorder = record
    was_training = model.training
    model.eval()
    model(sample, ctx)
    model.train(was_training)
    return rows


def summary_table(model: Module, sample: SparseTensor) -> str:
    """Formatted per-layer summary plus totals."""
    layers = summarize(model, sample)
    total_macs = sum(l.effective_macs for l in layers)
    rows = [
        [
            l.label,
            l.num_outputs,
            f"{l.c_in}->{l.c_out}",
            format_si(l.effective_macs, ""),
            f"{l.mean_neighbors:.1f}",
        ]
        for l in layers
    ]
    rows.append(
        ["TOTAL", "", f"{model.num_parameters()} params",
         format_si(total_macs, ""), ""]
    )
    return format_table(
        ["layer", "outputs", "channels", "MACs", "nbrs"],
        rows,
        title=f"{type(model).__name__} on {sample}",
    )
