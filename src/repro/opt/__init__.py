"""Launch-program optimization: IR, verified rewrite passes, and the
multi-stream scheduler.

The simulator's flat :class:`~repro.gpusim.trace.KernelTrace` becomes an
optimizable :class:`~repro.opt.program.LaunchProgram`; the passes in
:mod:`repro.opt.passes` rewrite it under conservation contracts checked
by the dependence analyzer, and :mod:`repro.opt.schedule` prices the
result on K virtual streams (``critical_path <= scheduled <=
serialized``).
"""

from repro.opt.passes import (
    DEFAULT_PIPELINE,
    PASSES,
    EliminateDeadLaunches,
    FuseGatherGemmScatter,
    HoistLoopInvariants,
    HoistMapBuilds,
    OptError,
    Pass,
    PassPipeline,
    PassResult,
    PassSoundnessError,
    PlanWorkspaceReuse,
    optimize_trace,
)
from repro.opt.program import LaunchProgram, ProgramLaunch
from repro.opt.schedule import (
    ScheduledLaunch,
    StreamSchedule,
    best_schedule,
    list_schedule,
    schedule_report_json,
    scheduled_trace_us,
)

__all__ = [
    "DEFAULT_PIPELINE",
    "PASSES",
    "EliminateDeadLaunches",
    "FuseGatherGemmScatter",
    "HoistLoopInvariants",
    "HoistMapBuilds",
    "LaunchProgram",
    "OptError",
    "Pass",
    "PassPipeline",
    "PassResult",
    "PassSoundnessError",
    "PlanWorkspaceReuse",
    "ProgramLaunch",
    "ScheduledLaunch",
    "StreamSchedule",
    "best_schedule",
    "list_schedule",
    "optimize_trace",
    "schedule_report_json",
    "scheduled_trace_us",
]
