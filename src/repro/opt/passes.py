"""Verified rewrite passes over :class:`~repro.opt.program.LaunchProgram`.

Every pass declares which aggregate counters it may *reduce*
(``may_reduce``); everything else is conserved.  The pipeline sandwiches
each pass between soundness checks:

* :func:`repro.analyze.depgraph.check_dependences` must be no worse
  after the rewrite than before (clean stays clean);
* :func:`repro.analyze.tracecheck.check_trace` structural invariants
  must hold after the rewrite;
* the :class:`~repro.gpusim.trace.TraceSummary` conservation contract:
  counters outside ``may_reduce`` are unchanged (to float slack), and
  counters inside it never *increase*.

A pass that breaks its contract raises :class:`PassSoundnessError` and
the program is left at its last sound state, so optimization can never
silently corrupt a trace.

The passes themselves mirror the schedule rewrites of TorchSparse /
TorchSparse++ and Minuet:

* :class:`FuseGatherGemmScatter` — collapse gather -> gemm -> scatter
  chains (marked by :attr:`KernelLaunch.fuse_group`) into one fused
  launch, eliminating the staging-buffer round trips (Figure 9's fused
  dataflow, derived instead of hand-built);
* :class:`HoistLoopInvariants` — remove loop-invariant address
  arithmetic declared in :attr:`KernelLaunch.hoistable_scalar_ops`
  (Section 3.2, the Figure 20 mechanism);
* :class:`HoistMapBuilds` — conservative cross-layer CSE of identical
  map-build launches (paper Figure 20's kernel-map reuse);
* :class:`EliminateDeadLaunches` — drop launches whose only effect is
  writing workspace nobody reads;
* :class:`PlanWorkspaceReuse` — tighten over-declared per-launch
  workspace to what liveness actually requires, provably never
  increasing ``peak_workspace_bytes``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Type

from repro.analyze.depgraph import check_dependences
from repro.analyze.tracecheck import TraceViolation, check_trace
from repro.errors import ReproError
from repro.gpusim.trace import (
    BufferAccess,
    KernelLaunch,
    KernelTrace,
    LaunchKind,
    TraceSummary,
)
from repro.opt.program import LaunchProgram, ProgramLaunch

#: Absolute slack for float counter comparisons (bytes / flops).
_EPS = 0.5

#: TraceSummary fields subject to the conservation contract.
_COUNTER_FIELDS = (
    "launches",
    "flops",
    "dram_read_bytes",
    "dram_write_bytes",
    "atomic_write_bytes",
    "scalar_ops",
    "peak_workspace_bytes",
)


class OptError(ReproError):
    """An optimization pass was misused (bad pipeline configuration)."""


class PassSoundnessError(OptError):
    """A pass broke its declared contract; the rewrite was rejected."""


@dataclasses.dataclass(frozen=True)
class PassResult:
    """What one verified pass application did."""

    name: str
    changed: bool
    before: TraceSummary
    after: TraceSummary

    @property
    def launches_removed(self) -> int:
        return self.before.launches - self.after.launches

    @property
    def workspace_saved_bytes(self) -> float:
        return (
            self.before.peak_workspace_bytes - self.after.peak_workspace_bytes
        )


class Pass:
    """Base class: a named rewrite with a declared conservation contract."""

    #: Unique pass name (used by ``--passes`` and reports).
    name: str = "pass"
    #: TraceSummary counters this pass may legitimately reduce.
    may_reduce: FrozenSet[str] = frozenset()

    def run(self, program: LaunchProgram) -> bool:
        """Rewrite ``program`` in place; return whether anything changed."""
        raise NotImplementedError


# ---------------------------------------------------------------------- #
# Kernel fusion
# ---------------------------------------------------------------------- #
def _internal_ws_buffers(members: Sequence[KernelLaunch]) -> Set[str]:
    """``ws:`` buffers accessed only within this launch run (so fusion can
    keep them in registers/shared memory instead of DRAM)."""
    internal: Set[str] = set()
    for launch in members:
        for access in (*launch.reads, *launch.writes):
            if access.workspace:
                internal.add(access.buffer)
    return internal


def _fused_launch(members: Sequence[KernelLaunch]) -> KernelLaunch:
    """Fuse a producer/consumer run into one launch.

    Staging buffers internal to the run stop touching DRAM: their access
    bytes leave the read/write traffic and their extents leave the
    workspace requirement (each member's declared workspace minus its own
    internal-staging bytes stays as headroom for untracked transients).
    """
    internal = _internal_ws_buffers(members)
    reads: List[BufferAccess] = []
    writes: List[BufferAccess] = []
    flops = scalar = hoistable = atomic = 0.0
    read_bytes = write_bytes = 0.0
    workspace = untracked = 0.0
    ctas = 1
    tc_eligible = False
    efficiency = 1.0
    for launch in members:
        flops += launch.flops
        scalar += launch.scalar_ops
        hoistable += launch.hoistable_scalar_ops
        atomic += launch.atomic_write_bytes
        read_bytes += launch.dram_read_bytes
        write_bytes += launch.dram_write_bytes
        ctas = max(ctas, launch.ctas)
        member_internal = 0.0
        touched: Dict[str, float] = {}
        for access in launch.reads:
            if access.buffer in internal:
                read_bytes -= access.nbytes
                touched[access.buffer] = max(
                    touched.get(access.buffer, 0.0), access.nbytes
                )
            else:
                reads.append(access)
        for access in launch.writes:
            if access.buffer in internal:
                if access.atomic:
                    atomic -= access.nbytes
                else:
                    write_bytes -= access.nbytes
                touched[access.buffer] = max(
                    touched.get(access.buffer, 0.0), access.nbytes
                )
            else:
                writes.append(access)
        member_internal = sum(touched.values())
        workspace = max(workspace, launch.workspace_bytes - member_internal)
        untracked = max(untracked, launch.untracked_workspace_bytes)
        if launch.kind is LaunchKind.GEMM:
            tc_eligible = launch.tensor_core_eligible
            efficiency = launch.compute_efficiency
    # The group id doubles as the fused launch's name; generators pick ids
    # the race checker understands (e.g. "gather_gemm_scatter/offset3"
    # stays scatter-class and names the single offset it covers).
    name = members[0].fuse_group or "fused"
    return KernelLaunch(
        name=name,
        kind=LaunchKind.GEMM,
        flops=flops,
        dram_read_bytes=max(0.0, read_bytes),
        dram_write_bytes=max(0.0, write_bytes),
        atomic_write_bytes=max(0.0, atomic),
        scalar_ops=scalar,
        workspace_bytes=max(workspace, untracked),
        ctas=ctas,
        overlapped=True,
        tensor_core_eligible=tc_eligible,
        compute_efficiency=efficiency,
        reads=tuple(reads),
        writes=tuple(writes),
        fuse_group="",
        hoistable_scalar_ops=hoistable,
        untracked_workspace_bytes=untracked,
    )


class FuseGatherGemmScatter(Pass):
    """Fuse contiguous same-``fuse_group`` producer/consumer chains.

    Reduces launch count, DRAM traffic (the staging round trips) and
    workspace; total flops and scalar ops are conserved — fusion changes
    where data lives, not how much math runs.
    """

    name = "fuse"
    may_reduce = frozenset(
        {
            "launches",
            "dram_read_bytes",
            "dram_write_bytes",
            "atomic_write_bytes",
            "peak_workspace_bytes",
        }
    )

    def run(self, program: LaunchProgram) -> bool:
        entries = program.entries
        # Buffers used outside a group must survive fusion; collect each
        # buffer's set of accessor groups ("" = ungrouped).
        accessor_groups: Dict[str, Set[str]] = {}
        for entry in entries:
            for access in (*entry.launch.reads, *entry.launch.writes):
                accessor_groups.setdefault(access.buffer, set()).add(
                    entry.launch.fuse_group
                )
        out: List[ProgramLaunch] = []
        run: List[ProgramLaunch] = []
        changed = False

        def flush() -> None:
            nonlocal changed
            if len(run) >= 2:
                members = [e.launch for e in run]
                internal = _internal_ws_buffers(members)
                group = members[0].fuse_group
                if all(
                    accessor_groups.get(buf, set()) <= {group}
                    for buf in internal
                ):
                    out.append(
                        ProgramLaunch(program.fresh_id(), _fused_launch(members))
                    )
                    changed = True
                    run.clear()
                    return
            out.extend(run)
            run.clear()

        for entry in entries:
            group = entry.launch.fuse_group
            if not group:
                flush()
                out.append(entry)
                continue
            if run and run[-1].launch.fuse_group != group:
                flush()
            run.append(entry)
        flush()
        if changed:
            program.replace(out)
        return changed


# ---------------------------------------------------------------------- #
# Loop-invariant hoisting
# ---------------------------------------------------------------------- #
class HoistLoopInvariants(Pass):
    """Remove the scalar address arithmetic a code generator can hoist.

    Launches declare the removable portion in ``hoistable_scalar_ops``
    (Section 3.2: dynamic-shape address computation that specializing or
    hoisting eliminates, the quantity behind Figure 20).
    """

    name = "hoist-invariants"
    may_reduce = frozenset({"scalar_ops"})

    def run(self, program: LaunchProgram) -> bool:
        changed = False
        for entry in program.entries:
            launch = entry.launch
            if launch.hoistable_scalar_ops > 0.0:
                launch.scalar_ops -= launch.hoistable_scalar_ops
                launch.hoistable_scalar_ops = 0.0
                changed = True
        if changed:
            program.replace(program.entries)
        return changed


# ---------------------------------------------------------------------- #
# Cross-layer map-build hoisting (conservative CSE)
# ---------------------------------------------------------------------- #
def _launch_key(launch: KernelLaunch) -> Tuple[object, ...]:
    return (
        launch.name,
        launch.kind,
        launch.flops,
        launch.dram_read_bytes,
        launch.dram_write_bytes,
        launch.atomic_write_bytes,
        launch.scalar_ops,
        launch.workspace_bytes,
        launch.ctas,
        launch.reads,
        launch.writes,
    )


class HoistMapBuilds(Pass):
    """Eliminate repeated identical mapping launches (kernel-map reuse).

    A mapping launch is redundant with an earlier *identical* launch when
    no intervening launch wrote any buffer either of them touches — the
    recomputation would produce byte-identical results, so layers sharing
    a stride configuration can reuse the first build (Figure 20's map
    reuse, here derived from the trace instead of hand-modeled).
    """

    name = "hoist-maps"
    may_reduce = frozenset(
        {
            "launches",
            "flops",
            "dram_read_bytes",
            "dram_write_bytes",
            "atomic_write_bytes",
            "scalar_ops",
            "peak_workspace_bytes",
        }
    )

    def run(self, program: LaunchProgram) -> bool:
        out: List[ProgramLaunch] = []
        # last surviving occurrence of each key -> index in `out` order
        seen: Dict[Tuple[object, ...], int] = {}
        write_epoch: Dict[str, int] = {}  # buffer -> out-position of last write
        changed = False
        for entry in program.entries:
            launch = entry.launch
            if launch.kind is LaunchKind.MAPPING and launch.reads:
                key = _launch_key(launch)
                prior = seen.get(key)
                if prior is not None:
                    buffers = {
                        a.buffer
                        for a in (*launch.reads, *launch.writes)
                    }
                    if all(
                        write_epoch.get(buf, -1) <= prior for buf in buffers
                    ):
                        changed = True
                        continue  # redundant rebuild: drop it
            pos = len(out)
            out.append(entry)
            for access in launch.writes:
                write_epoch[access.buffer] = pos
            if launch.kind is LaunchKind.MAPPING and launch.reads:
                seen[_launch_key(launch)] = pos
        if changed:
            program.replace(out)
        return changed


# ---------------------------------------------------------------------- #
# Dead-launch elimination
# ---------------------------------------------------------------------- #
class EliminateDeadLaunches(Pass):
    """Drop launches whose only effect is writing workspace nobody reads.

    Runs to a fixpoint (removing a consumer can orphan its producer).
    Only fully-annotated launches whose writes all target unread ``ws:``
    buffers qualify — external and atomic writes are observable effects.
    """

    name = "dle"
    may_reduce = frozenset(
        {
            "launches",
            "flops",
            "dram_read_bytes",
            "dram_write_bytes",
            "atomic_write_bytes",
            "scalar_ops",
            "peak_workspace_bytes",
        }
    )

    def run(self, program: LaunchProgram) -> bool:
        changed = False
        while True:
            entries = program.entries
            read_buffers = {
                access.buffer
                for entry in entries
                for access in entry.launch.reads
            }
            keep: List[ProgramLaunch] = []
            removed = False
            for entry in entries:
                launch = entry.launch
                dead = (
                    bool(launch.writes)
                    and all(
                        access.workspace
                        and not access.atomic
                        and access.buffer not in read_buffers
                        for access in launch.writes
                    )
                )
                if dead:
                    removed = True
                else:
                    keep.append(entry)
            if not removed:
                break
            program.replace(keep)
            changed = True
        return changed


# ---------------------------------------------------------------------- #
# Workspace re-use planning
# ---------------------------------------------------------------------- #
class PlanWorkspaceReuse(Pass):
    """Tighten over-declared workspace to the liveness-true requirement.

    For each launch the pass computes the workspace actually live while
    it runs — every ``ws:`` buffer whose lifetime (first write to last
    access) covers the launch — plus the launch's declared untracked
    transients, and clamps ``workspace_bytes`` down to that (never below
    the launch's own touched extents, so the depgraph lifetime check
    stays satisfiable; never above the original declaration, so the peak
    provably cannot increase).
    """

    name = "plan-workspace"
    may_reduce = frozenset({"peak_workspace_bytes"})

    def run(self, program: LaunchProgram) -> bool:
        entries = program.entries
        n = len(entries)
        extent: Dict[str, float] = {}
        first: Dict[str, int] = {}
        last: Dict[str, int] = {}
        for i, entry in enumerate(entries):
            for access in (*entry.launch.reads, *entry.launch.writes):
                if not access.workspace:
                    continue
                buf = access.buffer
                extent[buf] = max(extent.get(buf, 0.0), access.nbytes)
                first.setdefault(buf, i)
                last[buf] = i
        changed = False
        for i in range(n):
            launch = entries[i].launch
            if not launch.reads and not launch.writes:
                continue  # unannotated: nothing provable, leave declared
            live = sum(
                extent[buf]
                for buf in extent
                if first[buf] <= i <= last[buf]
            )
            touched: Dict[str, float] = {}
            for access in (*launch.reads, *launch.writes):
                if access.workspace:
                    touched[access.buffer] = max(
                        touched.get(access.buffer, 0.0), access.nbytes
                    )
            floor = sum(touched.values())
            need = max(floor, live + launch.untracked_workspace_bytes)
            planned = min(launch.workspace_bytes, need)
            if planned < launch.workspace_bytes - _EPS:
                launch.workspace_bytes = planned
                changed = True
        if changed:
            program.replace(program.entries)
        return changed


# ---------------------------------------------------------------------- #
# The verified pipeline
# ---------------------------------------------------------------------- #
PASSES: Dict[str, Type[Pass]] = {
    cls.name: cls
    for cls in (
        FuseGatherGemmScatter,
        HoistLoopInvariants,
        HoistMapBuilds,
        EliminateDeadLaunches,
        PlanWorkspaceReuse,
    )
}

#: The default -O pipeline, in application order.
DEFAULT_PIPELINE = (
    "hoist-maps",
    "fuse",
    "hoist-invariants",
    "dle",
    "plan-workspace",
)


def _violation_keys(violations: Sequence[TraceViolation]) -> Set[str]:
    return {v.invariant for v in violations}


def _check_conservation(
    name: str,
    may_reduce: FrozenSet[str],
    before: TraceSummary,
    after: TraceSummary,
) -> None:
    for field in _COUNTER_FIELDS:
        b = float(getattr(before, field))
        a = float(getattr(after, field))
        if field in may_reduce:
            if a > b + _EPS:
                raise PassSoundnessError(
                    f"pass {name!r} increased {field} ({b:.0f} -> {a:.0f}) "
                    f"despite declaring it reducible"
                )
        elif abs(a - b) > _EPS:
            raise PassSoundnessError(
                f"pass {name!r} changed conserved counter {field} "
                f"({b:.0f} -> {a:.0f})"
            )


class PassPipeline:
    """Apply passes in order, verifying soundness around every rewrite."""

    def __init__(self, passes: Optional[Sequence[str]] = None):
        names = list(DEFAULT_PIPELINE if passes is None else passes)
        unknown = [n for n in names if n not in PASSES]
        if unknown:
            raise OptError(
                f"unknown pass(es) {unknown}; available: {sorted(PASSES)}"
            )
        self.passes: List[Pass] = [PASSES[n]() for n in names]

    def run(self, program: LaunchProgram) -> List[PassResult]:
        """Run the pipeline; every pass is check-sandwiched.

        New violation kinds after a rewrite (relative to the pre-pass
        state) are a soundness failure — an already-broken input trace
        stays diagnosable, but a pass may never *introduce* breakage.
        """
        results: List[PassResult] = []
        for p in self.passes:
            before_summary = program.summary()
            before_keys = _violation_keys(
                check_dependences(program.launches)
            ) | _violation_keys(check_trace(program.to_trace()))
            changed = p.run(program)
            after_summary = program.summary()
            if changed:
                after = _violation_keys(
                    check_dependences(program.launches)
                ) | _violation_keys(check_trace(program.to_trace()))
                introduced = after - before_keys
                if introduced:
                    raise PassSoundnessError(
                        f"pass {p.name!r} introduced violation(s) "
                        f"{sorted(introduced)}"
                    )
                _check_conservation(
                    p.name, p.may_reduce, before_summary, after_summary
                )
            results.append(
                PassResult(
                    name=p.name,
                    changed=changed,
                    before=before_summary,
                    after=after_summary,
                )
            )
        return results


def optimize_trace(
    trace: "KernelTrace | Sequence[KernelLaunch]",
    passes: Optional[Sequence[str]] = None,
) -> Tuple[LaunchProgram, List[PassResult]]:
    """Convenience: wrap a trace, run a (default) pipeline, return both."""
    program = LaunchProgram.from_trace(trace)
    results = PassPipeline(passes).run(program)
    return program, results


__all__ = [
    "DEFAULT_PIPELINE",
    "EliminateDeadLaunches",
    "FuseGatherGemmScatter",
    "HoistLoopInvariants",
    "HoistMapBuilds",
    "OptError",
    "Pass",
    "PassPipeline",
    "PassResult",
    "PassSoundnessError",
    "PlanWorkspaceReuse",
    "PASSES",
    "optimize_trace",
]
