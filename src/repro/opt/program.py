"""The optimizable launch-program IR.

A :class:`LaunchProgram` promotes a flat :class:`~repro.gpusim.trace.
KernelTrace` into a rewritable program: every launch carries a stable
integer id that survives pass rewrites (fused launches get fresh ids;
deleted launches retire theirs), and the dependence DAG from
:mod:`repro.analyze.depgraph` is cached and invalidated on mutation.

Passes (:mod:`repro.opt.passes`) rewrite the program; the scheduler
(:mod:`repro.opt.schedule`) prices it on K virtual streams.  The program
converts losslessly back to a trace with :meth:`LaunchProgram.to_trace`,
so everything downstream of gpusim (tracecheck, memory budgets, serving)
keeps working on optimized programs.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.analyze.depgraph import DependenceGraph
from repro.gpusim.engine import estimate_trace_us
from repro.gpusim.trace import KernelLaunch, KernelTrace, TraceSummary
from repro.hw.specs import DeviceSpec
from repro.precision import Precision


@dataclasses.dataclass
class ProgramLaunch:
    """One launch plus its stable program-wide id."""

    id: int
    launch: KernelLaunch


class LaunchProgram:
    """A rewritable sequence of kernel launches with stable ids.

    Program order is execution order on one stream, and — because the
    dependence builder only ever emits forward edges — it is also a
    topological order of the DAG.  Passes must preserve that invariant:
    any rewrite keeps consumers after producers.
    """

    def __init__(self, entries: Optional[Sequence[ProgramLaunch]] = None):
        self._entries: List[ProgramLaunch] = list(entries or [])
        self._next_id = 1 + max(
            (e.id for e in self._entries), default=-1
        )
        self._graph: Optional[DependenceGraph] = None

    # ------------------------------------------------------------------ #
    @classmethod
    def from_trace(
        cls, trace: "KernelTrace | Sequence[KernelLaunch]"
    ) -> "LaunchProgram":
        """Wrap a flat trace; ids are assigned in program order."""
        return cls(
            [ProgramLaunch(i, launch) for i, launch in enumerate(trace)]
        )

    def to_trace(self) -> KernelTrace:
        """The flat trace in current program order."""
        return KernelTrace(e.launch for e in self._entries)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> Tuple[ProgramLaunch, ...]:
        return tuple(self._entries)

    @property
    def launches(self) -> List[KernelLaunch]:
        return [e.launch for e in self._entries]

    def ids(self) -> List[int]:
        return [e.id for e in self._entries]

    def fresh_id(self) -> int:
        """Allocate a new stable id (for launches created by passes)."""
        nid = self._next_id
        self._next_id += 1
        return nid

    def replace(self, entries: Sequence[ProgramLaunch]) -> None:
        """Install a rewritten entry list (ids must stay unique)."""
        ids = [e.id for e in entries]
        if len(ids) != len(set(ids)):
            raise ValueError("duplicate launch ids after rewrite")
        self._entries = list(entries)
        self._next_id = max(self._next_id, 1 + max(ids, default=-1))
        self._graph = None

    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> DependenceGraph:
        """The dependence DAG of the current program (cached)."""
        if self._graph is None:
            self._graph = DependenceGraph.build(self.launches)
        return self._graph

    def summary(self) -> TraceSummary:
        return self.to_trace().summary()

    def serialized_us(
        self, device: DeviceSpec, precision: "Precision | str"
    ) -> float:
        return estimate_trace_us(self.to_trace(), device, precision)

    def critical_path_us(
        self, device: DeviceSpec, precision: "Precision | str"
    ) -> float:
        _, span = self.graph.critical_path(device, Precision.parse(precision))
        return span

    def __repr__(self) -> str:
        s = self.summary()
        return (
            f"LaunchProgram(launches={s.launches}, flops={s.flops:.3g}, "
            f"peak_ws={s.peak_workspace_bytes:.3g}B)"
        )


__all__ = ["LaunchProgram", "ProgramLaunch"]
