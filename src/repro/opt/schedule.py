"""Multi-stream latency model: list-schedule a trace's DAG onto K streams.

The scheduler walks launches in program order (a topological order of
the dependence DAG) and places each on the stream where it can start
earliest, subject to every dependence predecessor having finished.  This
is classic Graham list scheduling with a program-order priority list:

* every hazard edge is respected (a launch never starts before any of
  its RAW/WAR/WAW predecessors finishes), so the schedule is valid by
  construction;
* ``K = 1`` reproduces the serialized estimate *exactly* — same launches,
  same left-to-right summation order — so single-stream callers see
  bit-identical latencies;
* unannotated launches (empty read *and* write sets) are treated as
  barriers: they wait for everything issued so far and everything after
  waits for them.  A fully unannotated trace therefore schedules exactly
  serialized — the model never claims overlap it cannot prove.

Cross-stream orderings are made *explicit*: for every dependence edge
whose endpoints land on different streams (and for every barrier's
cross-stream fences) the scheduler emits a candidate
:class:`~repro.analyze.hb.SyncEvent` — the model of a
``cudaEventRecord``/``cudaStreamWaitEvent`` pair.  A transitive
reduction over the happens-before graph then drops every event already
implied by stream program order plus the remaining events, and the
survivors are charged ``DeviceSpec.sync_event_us`` each when the
placement is re-timed.  Overlap that does not pay for its
synchronization stops being claimed, and :func:`check_schedule
<repro.analyze.hb.check_schedule>` can verify the emitted event set
independently.

Raw list scheduling is not monotone in K (Graham's anomalies: more
streams can finish later), and with sync charging a fixed K can even
exceed serialized — so :func:`scheduled_trace_us` reports the best
makespan over 1..K streams.  That restores monotonicity and keeps the
result inside ``[critical_path, serialized]``.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analyze.depgraph import DependenceGraph
from repro.analyze.hb import SyncEvent, redundant_sync_edges, stream_sequences
from repro.gpusim.engine import estimate_launch_us
from repro.gpusim.trace import KernelLaunch, KernelTrace
from repro.hw.specs import DeviceSpec
from repro.precision import Precision


@dataclasses.dataclass(frozen=True)
class ScheduledLaunch:
    """Placement of one launch: stream assignment and time window (us)."""

    index: int
    name: str
    stream: int
    start_us: float
    end_us: float


@dataclasses.dataclass(frozen=True)
class StreamSchedule:
    """A complete K-stream schedule of one trace, with its sync events."""

    streams: int
    makespan_us: float
    serialized_us: float
    critical_path_us: float
    assignments: Tuple[ScheduledLaunch, ...]
    events: Tuple[SyncEvent, ...] = ()
    redundant_events_removed: int = 0
    sync_event_us: float = 0.0

    @property
    def used_streams(self) -> int:
        return len({a.stream for a in self.assignments})

    @property
    def speedup(self) -> float:
        """Serialized over scheduled latency (claimable overlap win)."""
        if self.makespan_us <= 0.0:
            return 1.0
        return self.serialized_us / self.makespan_us

    @property
    def sync_us(self) -> float:
        """Nominal synchronization overhead charged by this schedule."""
        return len(self.events) * self.sync_event_us


def _is_barrier(launch: KernelLaunch) -> bool:
    """Unannotated launches carry no hazard info: schedule conservatively."""
    return not launch.reads and not launch.writes


def _place_streams(
    launches: Sequence[KernelLaunch],
    weights: Sequence[float],
    preds: Sequence[Sequence[int]],
    streams: int,
) -> List[int]:
    """Phase 1: greedy earliest-start stream assignment (sync cost free).

    This is the original Graham placement; sync overhead is charged only
    in the re-timing phase, so placement stays deterministic and K=1
    stays degenerate-serialized.
    """
    free_at = [0.0] * streams
    ends = [0.0] * len(launches)
    horizon = 0.0
    barrier_end = 0.0
    stream_of: List[int] = []
    for i, launch in enumerate(launches):
        ready = barrier_end
        for p in preds[i]:
            ready = max(ready, ends[p])
        if _is_barrier(launch):
            ready = max(ready, horizon)
            # A barrier cannot start before the whole horizon, so place
            # it on the *busiest* stream: it starts at the same time but
            # needs no sync against that stream's tail (and a fully
            # unannotated trace stays on one stream with zero events).
            stream = min(range(streams), key=lambda s: (-free_at[s], s))
        else:
            # Earliest-free stream; ties break to the lowest index so the
            # schedule is deterministic (and K=1 degenerates to
            # serialized).
            stream = min(range(streams), key=lambda s: (free_at[s], s))
        start = max(ready, free_at[stream])
        end = start + weights[i]
        free_at[stream] = end
        ends[i] = end
        horizon = max(horizon, end)
        if _is_barrier(launch):
            barrier_end = max(barrier_end, end)
        stream_of.append(stream)
    return stream_of


def _candidate_sync_edges(
    launches: Sequence[KernelLaunch],
    graph: DependenceGraph,
    stream_of: Sequence[int],
) -> List[Tuple[int, int]]:
    """Phase 2: one candidate event per cross-stream ordering requirement.

    Dependence edges whose endpoints sit on different streams need an
    explicit sync; barriers additionally fence every *other* stream, so
    they sync against the last launch before and the first launch after
    them on each one.
    """
    candidates: List[Tuple[int, int]] = []
    seen: Set[Tuple[int, int]] = set()

    def add(src: int, dst: int) -> None:
        if (src, dst) not in seen:
            seen.add((src, dst))
            candidates.append((src, dst))

    for edge in graph.edges:
        if stream_of[edge.src] != stream_of[edge.dst]:
            add(edge.src, edge.dst)
    members: Dict[int, List[int]] = {}
    for i, stream in enumerate(stream_of):
        members.setdefault(stream, []).append(i)
    for i, launch in enumerate(launches):
        if not _is_barrier(launch):
            continue
        for stream, indices in sorted(members.items()):
            if stream == stream_of[i]:
                continue
            pos = bisect.bisect_left(indices, i)
            if pos > 0:
                add(indices[pos - 1], i)
            if pos < len(indices):
                add(i, indices[pos])
    return candidates


def list_schedule(
    trace: "KernelTrace | Sequence[KernelLaunch]",
    device: DeviceSpec,
    precision: "Precision | str",
    streams: int,
    graph: Optional[DependenceGraph] = None,
) -> StreamSchedule:
    """Greedy program-order list schedule onto exactly ``streams`` streams.

    Runs in four phases: greedy placement, sync-event emission for
    every cross-stream ordering, transitive reduction of the event set,
    and a final re-timing pass that charges ``device.sync_event_us``
    per surviving event.

    Note: makespan is not guaranteed monotone in ``streams`` (Graham's
    scheduling anomalies), and with nonzero sync cost a fixed K can
    schedule *worse* than serialized; use :func:`scheduled_trace_us`
    for a monotone latency figure.
    """
    if streams < 1:
        raise ValueError(f"streams must be >= 1, got {streams}")
    precision = Precision.parse(precision)
    launches = list(trace)
    if graph is None:
        graph = DependenceGraph.build(launches)
    weights = [
        estimate_launch_us(launch, device, precision) for launch in launches
    ]
    preds: List[List[int]] = [[] for _ in launches]
    for edge in graph.edges:
        preds[edge.dst].append(edge.src)

    stream_of = _place_streams(launches, weights, preds, streams)

    # Phases 2+3: emit candidate events, then transitively reduce them.
    # Program-order edges (consecutive launches per stream) are part of
    # the HB graph but are fixed by the placement — only sync edges are
    # removable.
    candidates = _candidate_sync_edges(launches, graph, stream_of)
    program_edges: List[Tuple[int, int]] = []
    members: Dict[int, List[int]] = {}
    for i, stream in enumerate(stream_of):
        members.setdefault(stream, []).append(i)
    for _, indices in sorted(members.items()):
        program_edges.extend(zip(indices, indices[1:]))
    removed = set(
        redundant_sync_edges(len(launches), program_edges, candidates)
    )
    kept = sorted(
        (
            pair
            for position, pair in enumerate(candidates)
            if position not in removed
        ),
        key=lambda pair: (pair[1], pair[0]),
    )
    events = tuple(
        SyncEvent(
            event_id=event_id,
            record_index=src,
            record_stream=stream_of[src],
            wait_index=dst,
            wait_stream=stream_of[dst],
        )
        for event_id, (src, dst) in enumerate(kept)
    )

    # Phase 4: re-time the placement charging sync cost.  Program order
    # plus the reduced event set closes over every dependence (the
    # reduction is closure-preserving), so waiting on direct events and
    # the stream's own tail is sufficient.  With no events (K=1, or a
    # fully serial placement) this is the same left-to-right sum as the
    # serialized estimate, bitwise.
    waiters: Dict[int, List[int]] = {}
    for src, dst in kept:
        waiters.setdefault(dst, []).append(src)
    sync_cost = device.sync_event_us
    free_at = [0.0] * streams
    ends = [0.0] * len(launches)
    horizon = 0.0
    assignments: List[ScheduledLaunch] = []
    for i, launch in enumerate(launches):
        stream = stream_of[i]
        start = free_at[stream]
        for record in waiters.get(i, ()):
            start = max(start, ends[record] + sync_cost)
        end = start + weights[i]
        free_at[stream] = end
        ends[i] = end
        horizon = max(horizon, end)
        assignments.append(
            ScheduledLaunch(
                index=i,
                name=launch.name,
                stream=stream,
                start_us=start,
                end_us=end,
            )
        )

    # Serialized latency summed in program order: for K=1 the makespan is
    # the same left-to-right sum, so the two agree bitwise.
    serialized = 0.0
    for w in weights:
        serialized += w
    _, span = graph.critical_path(device, precision)
    return StreamSchedule(
        streams=streams,
        makespan_us=horizon,
        serialized_us=serialized,
        critical_path_us=span,
        assignments=tuple(assignments),
        events=events,
        redundant_events_removed=len(candidates) - len(kept),
        sync_event_us=sync_cost,
    )


def best_schedule(
    trace: "KernelTrace | Sequence[KernelLaunch]",
    device: DeviceSpec,
    precision: "Precision | str",
    streams: int,
    graph: Optional[DependenceGraph] = None,
) -> StreamSchedule:
    """The best list schedule over 1..``streams`` streams.

    Taking the min over stream counts sidesteps Graham's anomalies and
    sync-cost blowups at large K: the result is monotone non-increasing
    in ``streams`` and always in ``[critical_path, serialized]``.  Ties
    go to the smallest stream count, so overlap whose sync cost eats
    the whole win falls back to fewer streams (ultimately K=1 with zero
    events).
    """
    launches = list(trace)
    if graph is None:
        graph = DependenceGraph.build(launches)
    best: Optional[StreamSchedule] = None
    for k in range(1, streams + 1):
        candidate = list_schedule(launches, device, precision, k, graph)
        if best is None or candidate.makespan_us < best.makespan_us:
            best = candidate
    assert best is not None
    return best


def scheduled_trace_us(
    trace: "KernelTrace | Sequence[KernelLaunch]",
    device: DeviceSpec,
    precision: "Precision | str",
    streams: int,
    graph: Optional[DependenceGraph] = None,
) -> float:
    """Scheduled latency (us) of a trace on up to ``streams`` streams."""
    return best_schedule(trace, device, precision, streams, graph).makespan_us


def schedule_report_json(
    schedule: StreamSchedule, ndigits: int = 3
) -> Dict[str, object]:
    """Deterministic JSON fragment for one schedule."""
    return {
        "streams": schedule.streams,
        "used_streams": schedule.used_streams,
        "scheduled_us": round(schedule.makespan_us, ndigits),
        "serialized_us": round(schedule.serialized_us, ndigits),
        "critical_path_us": round(schedule.critical_path_us, ndigits),
        "speedup": round(schedule.speedup, ndigits),
        "sync_events": len(schedule.events),
        "sync_event_us": round(schedule.sync_event_us, ndigits),
        "sync_us": round(schedule.sync_us, ndigits),
        "events_removed": schedule.redundant_events_removed,
        "assignments": [
            {
                "index": a.index,
                "name": a.name,
                "stream": a.stream,
                "start_us": round(a.start_us, ndigits),
                "end_us": round(a.end_us, ndigits),
            }
            for a in schedule.assignments
        ],
        "events": [
            {
                "id": e.event_id,
                "record": e.record_index,
                "record_stream": e.record_stream,
                "wait": e.wait_index,
                "wait_stream": e.wait_stream,
            }
            for e in schedule.events
        ],
    }


def schedule_from_json(doc: Mapping[str, object]) -> StreamSchedule:
    """Rebuild a schedule from its :func:`schedule_report_json` fragment.

    Lets the CLI verify externally supplied (possibly tampered)
    schedules against a freshly traced workload.  Raises ``ValueError``
    on documents missing required fields.
    """
    try:
        assignments = tuple(
            ScheduledLaunch(
                index=int(a["index"]),
                name=str(a["name"]),
                stream=int(a["stream"]),
                start_us=float(a["start_us"]),
                end_us=float(a["end_us"]),
            )
            for a in doc["assignments"]  # type: ignore[index, union-attr]
        )
        events = tuple(
            SyncEvent(
                event_id=int(e["id"]),
                record_index=int(e["record"]),
                record_stream=int(e["record_stream"]),
                wait_index=int(e["wait"]),
                wait_stream=int(e["wait_stream"]),
            )
            for e in doc.get("events", [])  # type: ignore[union-attr]
        )
        return StreamSchedule(
            streams=int(doc["streams"]),  # type: ignore[call-overload]
            makespan_us=float(doc["scheduled_us"]),  # type: ignore[arg-type]
            serialized_us=float(doc["serialized_us"]),  # type: ignore[arg-type]
            critical_path_us=float(
                doc["critical_path_us"]  # type: ignore[arg-type]
            ),
            assignments=assignments,
            events=events,
            redundant_events_removed=int(
                doc.get("events_removed", 0)  # type: ignore[call-overload]
            ),
            sync_event_us=float(
                doc.get("sync_event_us", 0.0)  # type: ignore[arg-type]
            ),
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed schedule document: {exc}") from exc


#: Fill colors for stream lanes in the Gantt DOT export.
_LANE_COLORS = (
    "#dbeafe",
    "#dcfce7",
    "#fef9c3",
    "#fde2e2",
    "#ede9fe",
    "#cffafe",
    "#fce7f3",
    "#e2e8f0",
)


def schedule_to_dot(schedule: StreamSchedule) -> str:
    """Graphviz DOT Gantt view: one color lane per stream, launches in
    issue order (bold program-order chain), sync events dashed red."""
    by_index = {a.index: a for a in schedule.assignments}
    lines = [
        "digraph schedule {",
        "  rankdir=LR;",
        "  node [shape=box, style=filled];",
    ]
    for stream, sequence in sorted(stream_sequences(schedule).items()):
        color = _LANE_COLORS[stream % len(_LANE_COLORS)]
        lines.append(f"  subgraph cluster_stream{stream} {{")
        lines.append(f'    label="stream {stream}";')
        lines.append(f'    color="{color}";')
        for i in sequence:
            a = by_index[i]
            name = a.name.replace('"', "'")
            lines.append(
                f'    n{i} [label="{i}: {name}\\n'
                f'{a.start_us:.1f}-{a.end_us:.1f} us", '
                f'fillcolor="{color}"];'
            )
        for src, dst in zip(sequence, sequence[1:]):
            lines.append(f"    n{src} -> n{dst} [style=bold];")
        lines.append("  }")
    for e in schedule.events:
        lines.append(
            f"  n{e.record_index} -> n{e.wait_index} "
            f'[style=dashed, color=red, label="ev{e.event_id}"];'
        )
    lines.append("}")
    return "\n".join(lines)


__all__ = [
    "ScheduledLaunch",
    "StreamSchedule",
    "SyncEvent",
    "list_schedule",
    "best_schedule",
    "scheduled_trace_us",
    "schedule_report_json",
    "schedule_from_json",
    "schedule_to_dot",
]
