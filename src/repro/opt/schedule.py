"""Multi-stream latency model: list-schedule a trace's DAG onto K streams.

The scheduler walks launches in program order (a topological order of
the dependence DAG) and places each on the stream where it can start
earliest, subject to every dependence predecessor having finished.  This
is classic Graham list scheduling with a program-order priority list:

* every hazard edge is respected (a launch never starts before any of
  its RAW/WAR/WAW predecessors finishes), so the schedule is valid by
  construction;
* ``K = 1`` reproduces the serialized estimate *exactly* — same launches,
  same left-to-right summation order — so single-stream callers see
  bit-identical latencies;
* unannotated launches (empty read *and* write sets) are treated as
  barriers: they wait for everything issued so far and everything after
  waits for them.  A fully unannotated trace therefore schedules exactly
  serialized — the model never claims overlap it cannot prove.

Raw list scheduling is not monotone in K (Graham's anomalies: more
streams can finish later), so :func:`scheduled_trace_us` reports the best
makespan over 1..K streams.  That restores monotonicity and keeps the
result inside ``[critical_path, serialized]``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analyze.depgraph import DependenceGraph
from repro.gpusim.engine import estimate_launch_us
from repro.gpusim.trace import KernelLaunch, KernelTrace
from repro.hw.specs import DeviceSpec
from repro.precision import Precision


@dataclasses.dataclass(frozen=True)
class ScheduledLaunch:
    """Placement of one launch: stream assignment and time window (us)."""

    index: int
    name: str
    stream: int
    start_us: float
    end_us: float


@dataclasses.dataclass(frozen=True)
class StreamSchedule:
    """A complete K-stream schedule of one trace."""

    streams: int
    makespan_us: float
    serialized_us: float
    critical_path_us: float
    assignments: Tuple[ScheduledLaunch, ...]

    @property
    def used_streams(self) -> int:
        return len({a.stream for a in self.assignments})

    @property
    def speedup(self) -> float:
        """Serialized over scheduled latency (claimable overlap win)."""
        if self.makespan_us <= 0.0:
            return 1.0
        return self.serialized_us / self.makespan_us


def _is_barrier(launch: KernelLaunch) -> bool:
    """Unannotated launches carry no hazard info: schedule conservatively."""
    return not launch.reads and not launch.writes


def list_schedule(
    trace: "KernelTrace | Sequence[KernelLaunch]",
    device: DeviceSpec,
    precision: "Precision | str",
    streams: int,
    graph: Optional[DependenceGraph] = None,
) -> StreamSchedule:
    """Greedy program-order list schedule onto exactly ``streams`` streams.

    Note: makespan is not guaranteed monotone in ``streams`` (Graham's
    scheduling anomalies); use :func:`scheduled_trace_us` for a monotone
    latency figure.
    """
    if streams < 1:
        raise ValueError(f"streams must be >= 1, got {streams}")
    precision = Precision.parse(precision)
    launches = list(trace)
    if graph is None:
        graph = DependenceGraph.build(launches)
    weights = [
        estimate_launch_us(launch, device, precision) for launch in launches
    ]
    preds: List[List[int]] = [[] for _ in launches]
    for edge in graph.edges:
        preds[edge.dst].append(edge.src)

    free_at = [0.0] * streams  # per-stream earliest free time
    ends = [0.0] * len(launches)
    horizon = 0.0  # max end time over everything issued so far
    barrier_end = 0.0  # end of the latest barrier issued so far
    assignments: List[ScheduledLaunch] = []
    for i, launch in enumerate(launches):
        ready = barrier_end
        for p in preds[i]:
            ready = max(ready, ends[p])
        if _is_barrier(launch):
            ready = max(ready, horizon)
        # Earliest-free stream; ties break to the lowest index so the
        # schedule is deterministic (and K=1 degenerates to serialized).
        stream = min(range(streams), key=lambda s: (free_at[s], s))
        start = max(ready, free_at[stream])
        end = start + weights[i]
        free_at[stream] = end
        ends[i] = end
        horizon = max(horizon, end)
        if _is_barrier(launch):
            barrier_end = max(barrier_end, end)
        assignments.append(
            ScheduledLaunch(
                index=i,
                name=launch.name,
                stream=stream,
                start_us=start,
                end_us=end,
            )
        )

    # Serialized latency summed in program order: for K=1 the makespan is
    # the same left-to-right sum, so the two agree bitwise.
    serialized = 0.0
    for w in weights:
        serialized += w
    _, span = graph.critical_path(device, precision)
    return StreamSchedule(
        streams=streams,
        makespan_us=horizon,
        serialized_us=serialized,
        critical_path_us=span,
        assignments=tuple(assignments),
    )


def best_schedule(
    trace: "KernelTrace | Sequence[KernelLaunch]",
    device: DeviceSpec,
    precision: "Precision | str",
    streams: int,
    graph: Optional[DependenceGraph] = None,
) -> StreamSchedule:
    """The best list schedule over 1..``streams`` streams.

    Taking the min over stream counts sidesteps Graham's anomalies:
    the result is monotone non-increasing in ``streams`` and always in
    ``[critical_path, serialized]``.
    """
    launches = list(trace)
    if graph is None:
        graph = DependenceGraph.build(launches)
    best: Optional[StreamSchedule] = None
    for k in range(1, streams + 1):
        candidate = list_schedule(launches, device, precision, k, graph)
        if best is None or candidate.makespan_us < best.makespan_us:
            best = candidate
    assert best is not None
    return best


def scheduled_trace_us(
    trace: "KernelTrace | Sequence[KernelLaunch]",
    device: DeviceSpec,
    precision: "Precision | str",
    streams: int,
    graph: Optional[DependenceGraph] = None,
) -> float:
    """Scheduled latency (us) of a trace on up to ``streams`` streams."""
    return best_schedule(trace, device, precision, streams, graph).makespan_us


def schedule_report_json(
    schedule: StreamSchedule, ndigits: int = 3
) -> Dict[str, object]:
    """Deterministic JSON fragment for one schedule."""
    return {
        "streams": schedule.streams,
        "used_streams": schedule.used_streams,
        "scheduled_us": round(schedule.makespan_us, ndigits),
        "serialized_us": round(schedule.serialized_us, ndigits),
        "critical_path_us": round(schedule.critical_path_us, ndigits),
        "speedup": round(schedule.speedup, ndigits),
        "assignments": [
            {
                "index": a.index,
                "name": a.name,
                "stream": a.stream,
                "start_us": round(a.start_us, ndigits),
                "end_us": round(a.end_us, ndigits),
            }
            for a in schedule.assignments
        ],
    }


__all__ = [
    "ScheduledLaunch",
    "StreamSchedule",
    "list_schedule",
    "best_schedule",
    "scheduled_trace_us",
    "schedule_report_json",
]
