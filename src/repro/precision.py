"""Numeric precision handling.

The paper evaluates three data precisions (Figure 14): FP16 (tensor cores),
TF32 (tensor cores, Ampere only) and FP32 (CUDA cores, or tensor cores where
the device supports it).  In this reproduction a :class:`Precision` selects

* the numpy dtype used for *storage and compute* in the numerically exact
  dataflow kernels, and
* which throughput column of a :class:`repro.hw.DeviceSpec` the performance
  model uses.

TF32 stores 19 bits of mantissa; numerically we model it as float32 storage
with float32 compute (the error characteristics of TF32 are irrelevant to the
dataflow logic), but it occupies its own throughput class.
"""

from __future__ import annotations

import enum

import numpy as np


class Precision(enum.Enum):
    """Data precision for sparse convolution compute."""

    FP16 = "fp16"
    TF32 = "tf32"
    FP32 = "fp32"

    @property
    def dtype(self) -> np.dtype:
        """Numpy dtype used for feature/weight storage."""
        if self is Precision.FP16:
            return np.dtype(np.float16)
        return np.dtype(np.float32)

    @property
    def accumulator_dtype(self) -> np.dtype:
        """Accumulation dtype: tensor cores accumulate FP16 GEMMs in FP32."""
        return np.dtype(np.float32)

    @property
    def itemsize(self) -> int:
        """Bytes per element in DRAM."""
        return int(self.dtype.itemsize)

    @classmethod
    def parse(cls, value: "Precision | str") -> "Precision":
        """Coerce a string like ``"fp16"`` (case-insensitive) to a member."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            valid = ", ".join(p.value for p in cls)
            raise ValueError(
                f"unknown precision {value!r}; expected one of {valid}"
            ) from None


def cast_features(array: np.ndarray, precision: Precision) -> np.ndarray:
    """Cast a feature/weight array to the storage dtype of ``precision``."""
    return np.ascontiguousarray(array, dtype=precision.dtype)
