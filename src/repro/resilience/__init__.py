"""OOM resilience: memory-footprint modeling and graceful degradation.

The paper's dataflow menu spans a workspace-memory axis as well as a
performance one: gather-GEMM-scatter materializes staging buffers for
every (input, output) pair, implicit GEMM carries dense output-stationary
map structures (doubled when sorted copies are materialized offline, plus
FP32 partial buffers per mask split), and fetch-on-demand streams pair
lists with no staging at all — the minimal-footprint fallback.  This
package turns that axis into a recovery mechanism: model the footprint of
an execution (:mod:`repro.resilience.footprint`), and when it exceeds a
device budget walk a deterministic, policy-ordered degradation ladder
(:mod:`repro.resilience.ladder`) instead of dying.
"""

from repro.resilience.footprint import (
    FootprintReport,
    LayerFootprint,
    model_footprint,
    model_weight_bytes,
)
from repro.resilience.ladder import (
    DEFAULT_RUNGS,
    DegradationLadder,
    ExecState,
    LadderPlan,
    LadderStep,
    apply_rung,
)

__all__ = [
    "DEFAULT_RUNGS",
    "DegradationLadder",
    "ExecState",
    "FootprintReport",
    "LadderPlan",
    "LadderStep",
    "LayerFootprint",
    "apply_rung",
    "model_footprint",
    "model_weight_bytes",
]
