"""Modeled DRAM footprint of executing a model on a batch of scenes.

The footprint of one execution decomposes into three parts:

* **weights** — every layer's parameters at storage precision, resident
  for the whole run;
* **features** — activations.  Inference frees a layer's input once its
  output exists, so one sample's feature peak is the largest single
  (input + output) pair along the network; a batch keeps every member's
  activations around (double-buffered streams), so chunking the batch
  into sequential sub-batches divides this term;
* **workspace** — the transient buffers the kernels annotate per launch
  (:attr:`~repro.gpusim.trace.KernelLaunch.workspace_bytes`); launches
  serialize, so the peak is the max over launches, *not* the sum.

Everything here is a pure function of (model, samples, config): the same
inputs always produce the same report, which is what lets the serving
runtime's degradation ladder be deterministic.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hw.specs import DeviceSpec, get_device
from repro.nn.context import ExecutionContext
from repro.nn.module import Module
from repro.precision import Precision
from repro.sparse.kmap import KernelMap
from repro.sparse.tensor import SparseTensor


def model_weight_bytes(model: Module, precision: "Precision | str") -> float:
    """Resident parameter bytes at storage precision."""
    precision = Precision.parse(precision)
    return float(precision.itemsize) * model.num_parameters()


@dataclasses.dataclass(frozen=True)
class LayerFootprint:
    """Per-layer footprint row (worst case over the swept samples)."""

    label: str
    c_in: int
    c_out: int
    num_inputs: int
    num_outputs: int
    feature_bytes: float
    workspace_bytes: float


@dataclasses.dataclass(frozen=True)
class FootprintReport:
    """Modeled peak DRAM footprint of one (model, batch) execution."""

    device: str
    precision: str
    batch_chunks: int
    weights_bytes: float
    peak_feature_bytes: float
    peak_workspace_bytes: float
    latency_us: float
    layers: Tuple[LayerFootprint, ...]

    @property
    def total_bytes(self) -> float:
        return (
            self.weights_bytes
            + self.peak_feature_bytes
            + self.peak_workspace_bytes
        )

    def fits(self, budget_bytes: float) -> bool:
        return self.total_bytes <= budget_bytes

    def table(self) -> str:
        """Per-layer footprint table (MiB), largest workspace first."""
        mib = float(1 << 20)
        header = (
            f"{'layer':<28} {'shape':>12} {'points':>9} "
            f"{'feat MiB':>9} {'ws MiB':>9}"
        )
        lines = [header, "-" * len(header)]
        rows = sorted(self.layers, key=lambda l: -l.workspace_bytes)
        for row in rows:
            lines.append(
                f"{row.label:<28} {row.c_in:>5}->{row.c_out:<6} "
                f"{row.num_outputs:>9} "
                f"{row.feature_bytes / mib:>9.2f} "
                f"{row.workspace_bytes / mib:>9.2f}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"{'total (weights + features + workspace)':<42}"
            f"{self.total_bytes / mib:>19.2f}"
        )
        return "\n".join(lines)


def _chunked(samples: Sequence[SparseTensor], chunks: int) -> List[List[SparseTensor]]:
    """Split ``samples`` into ``chunks`` contiguous, near-equal sub-batches."""
    n = len(samples)
    chunks = max(1, min(chunks, n))
    base, extra = divmod(n, chunks)
    out: List[List[SparseTensor]] = []
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        out.append(list(samples[start:start + size]))
        start += size
    return out


def model_footprint(
    model: Module,
    samples: Sequence[SparseTensor],
    device: "DeviceSpec | str" = "a100",
    precision: "Precision | str" = Precision.FP16,
    policy: Optional[object] = None,
    batch_chunks: int = 1,
    warm: bool = False,
) -> FootprintReport:
    """Model the peak DRAM footprint of running ``samples`` through ``model``.

    ``batch_chunks > 1`` processes the batch as that many sequential
    sub-batches: feature residency divides accordingly while workspace
    (a max over serialized launches) is unchanged — the degradation
    ladder's final rung.

    ``warm=True`` models steady state: kernel maps already exist (cached
    by a previous execution of the same scenes), so one-shot map
    construction and reordering launches — whose workspace is identical
    across dataflows — do not appear in the trace.  The degradation
    ladder plans on warm footprints because an OOM retry reuses the maps
    the failed attempt already built.
    """
    if not samples:
        raise ValueError("model_footprint needs at least one sample")
    if batch_chunks < 1:
        raise ValueError(f"batch_chunks must be >= 1, got {batch_chunks}")
    device = get_device(device)
    precision = Precision.parse(precision)
    itemsize = precision.itemsize
    weights = model_weight_bytes(model, precision)

    charged: frozenset = frozenset()
    if warm:
        dry = ExecutionContext(
            device=device,
            precision=precision,
            policy=policy,
            simulate_only=True,
        )
        for sample in samples:
            model(sample, dry)
        charged = dry.charged_keys()

    layer_rows: Dict[str, LayerFootprint] = {}
    peak_feature = 0.0
    peak_workspace = 0.0
    latency_us = 0.0
    for chunk in _chunked(samples, batch_chunks):
        ctx = ExecutionContext(
            device=device,
            precision=precision,
            policy=policy,
            simulate_only=True,
        )
        if charged:
            ctx.precharge(charged)
        chunk_feature = 0.0
        for sample in chunk:
            recorded: List[Tuple[str, int, int, int, int]] = []

            def record(
                signature: object = None,
                kmap: Optional[KernelMap] = None,
                c_in: int = 0,
                c_out: int = 0,
                label: str = "",
            ) -> None:
                assert kmap is not None
                recorded.append(
                    (label, c_in, c_out, kmap.num_inputs, kmap.num_outputs)
                )

            ctx.recorder = record
            model(sample, ctx)
            ctx.recorder = None
            sample_peak = 0.0
            for label, c_in, c_out, n_in, n_out in recorded:
                feature = float(itemsize) * (n_in * c_in + n_out * c_out)
                sample_peak = max(sample_peak, feature)
                prev = layer_rows.get(label)
                if prev is None or feature > prev.feature_bytes:
                    layer_rows[label] = LayerFootprint(
                        label=label,
                        c_in=c_in,
                        c_out=c_out,
                        num_inputs=n_in,
                        num_outputs=n_out,
                        feature_bytes=feature,
                        workspace_bytes=(
                            prev.workspace_bytes if prev else 0.0
                        ),
                    )
            chunk_feature += sample_peak
        peak_feature = max(peak_feature, chunk_feature)
        # Workspace liveness: launches serialize on one stream, so the
        # chunk's peak is the max over its launches and the run's peak is
        # the max over chunks.
        peak_workspace = max(
            peak_workspace, ctx.trace.summary().peak_workspace_bytes
        )
        latency_us += ctx.latency_us()
        for launch in ctx.trace:
            label = launch.name.split("/", 1)[0]
            row = layer_rows.get(label)
            if row is not None and launch.workspace_bytes > row.workspace_bytes:
                layer_rows[label] = dataclasses.replace(
                    row, workspace_bytes=launch.workspace_bytes
                )
    return FootprintReport(
        device=device.name,
        precision=precision.value,
        batch_chunks=batch_chunks,
        weights_bytes=weights,
        peak_feature_bytes=peak_feature,
        peak_workspace_bytes=peak_workspace,
        latency_us=latency_us,
        layers=tuple(layer_rows[k] for k in sorted(layer_rows)),
    )
