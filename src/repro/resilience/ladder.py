"""Deterministic degradation ladder for simulated out-of-memory recovery.

When an execution's modeled footprint exceeds the device budget, the
runtime does not fail the request — it walks a policy-ordered ladder of
*rungs*, each trading performance (or precision) for memory:

1. ``dataflow:gather_scatter`` — leave implicit GEMM's dense
   output-stationary map structures behind;
2. ``dataflow:fetch_on_demand`` — drop staging buffers entirely; the
   minimal-workspace dataflow (pair lists only);
3. ``chunks:N`` — sub-batch gather-scatter staging buffers N ways;
4. ``precision:drop`` — halve feature/weight storage (FP32/TF32 → FP16);
5. ``batch:N`` — chunk the request batch into N sequential sub-batches,
   dividing feature residency.

A rung is **taken** only if it *strictly reduces* the modeled footprint;
otherwise it is recorded as skipped, with the evaluated delta, and the
walk continues.  The walk stops at the first state that fits the budget.
Planning is a pure function of (start state, footprint function, budget):
no randomness, no wall-clock — the same OOM always degrades the same way,
which is what makes seeded serving runs byte-reproducible.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Tuple

from repro.kernels.registry import Dataflow
from repro.nn.context import LayerConfig
from repro.precision import Precision

#: Default rung order: cheapest-latency recovery first, batch chunking last.
DEFAULT_RUNGS: Tuple[str, ...] = (
    "dataflow:gather_scatter",
    "dataflow:fetch_on_demand",
    "chunks:2",
    "chunks:4",
    "precision:drop",
    "batch:2",
    "batch:4",
    "batch:8",
)

#: Precision downgrade map for the ``precision:drop`` rung.
_PRECISION_DROP = {
    Precision.FP32: Precision.FP16,
    Precision.TF32: Precision.FP16,
}


@dataclasses.dataclass(frozen=True)
class ExecState:
    """One point on the ladder: how an execution would be configured."""

    config: LayerConfig
    precision: Precision
    batch_chunks: int = 1

    def describe(self) -> str:
        parts = [self.config.describe(), self.precision.value]
        if self.batch_chunks > 1:
            parts.append(f"batch_chunks={self.batch_chunks}")
        return " ".join(parts)


@dataclasses.dataclass(frozen=True)
class LadderStep:
    """One evaluated rung: taken (footprint strictly dropped) or skipped."""

    rung: str
    taken: bool
    before_bytes: float
    after_bytes: float
    note: str = ""

    @property
    def delta_bytes(self) -> float:
        return self.after_bytes - self.before_bytes


@dataclasses.dataclass(frozen=True)
class LadderPlan:
    """The outcome of one ladder walk."""

    start: ExecState
    final: ExecState
    start_bytes: float
    final_bytes: float
    budget_bytes: float
    steps: Tuple[LadderStep, ...]

    @property
    def fits(self) -> bool:
        return self.final_bytes <= self.budget_bytes

    @property
    def taken(self) -> Tuple[str, ...]:
        return tuple(s.rung for s in self.steps if s.taken)

    def describe(self) -> str:
        mib = float(1 << 20)
        lines = [
            f"budget {self.budget_bytes / mib:.1f} MiB, "
            f"start {self.start_bytes / mib:.1f} MiB ({self.start.describe()})"
        ]
        for step in self.steps:
            if step.taken:
                lines.append(
                    f"  take {step.rung:<26} "
                    f"{step.before_bytes / mib:9.1f} -> "
                    f"{step.after_bytes / mib:.1f} MiB"
                )
            else:
                lines.append(f"  skip {step.rung:<26} ({step.note})")
        verdict = "fits" if self.fits else "DOES NOT FIT"
        lines.append(
            f"final {self.final_bytes / mib:.1f} MiB "
            f"({self.final.describe()}) -- {verdict}"
        )
        return "\n".join(lines)


def apply_rung(state: ExecState, rung: str) -> Optional[ExecState]:
    """Candidate state after applying ``rung``, or None if not applicable.

    Applicability is purely structural (e.g. a dataflow switch to the
    current dataflow is a no-op); whether the candidate actually *reduces*
    memory is the planner's job.
    """
    kind, _, arg = rung.partition(":")
    if kind == "dataflow":
        target = Dataflow(arg)
        if state.config.dataflow is target:
            return None
        return dataclasses.replace(
            state, config=dataclasses.replace(state.config, dataflow=target)
        )
    if kind == "chunks":
        n = int(arg)
        if state.config.dataflow is not Dataflow.GATHER_SCATTER:
            return None
        if state.config.gs_chunks >= n:
            return None
        return dataclasses.replace(
            state, config=dataclasses.replace(state.config, gs_chunks=n)
        )
    if kind == "precision":
        lower = _PRECISION_DROP.get(state.precision)
        if lower is None:
            return None
        return dataclasses.replace(state, precision=lower)
    if kind == "batch":
        n = int(arg)
        if n <= state.batch_chunks:
            return None
        return dataclasses.replace(state, batch_chunks=n)
    raise ValueError(f"unknown ladder rung {rung!r}")


class DegradationLadder:
    """Policy-ordered rung walker with strict-reduction take logic."""

    def __init__(self, rungs: Tuple[str, ...] = DEFAULT_RUNGS) -> None:
        if not rungs:
            raise ValueError("degradation ladder needs at least one rung")
        self.rungs = tuple(rungs)

    def plan(
        self,
        footprint_fn: Callable[[ExecState], float],
        start: ExecState,
        budget_bytes: float,
        precision_veto: Optional[str] = None,
    ) -> LadderPlan:
        """Walk the ladder until the modeled footprint fits ``budget_bytes``.

        ``footprint_fn`` maps a candidate :class:`ExecState` to modeled
        total bytes; it is consulted for every applicable rung, and a rung
        is taken only when it strictly reduces the current footprint.

        ``precision_veto`` — a reason string from the static value-range
        pass (:func:`repro.analyze.ranges.precision_drop_veto`) — forbids
        every ``precision:*`` rung: dropping storage precision would push
        the model's features outside the reduced format's range, so the
        degraded result could not stay within the documented error bounds
        of the dense reference.  The rung is recorded as skipped with the
        veto reason, and the walk continues down the ladder.
        """
        current = start
        start_bytes = float(footprint_fn(start))
        current_bytes = start_bytes
        steps = []
        for rung in self.rungs:
            if current_bytes <= budget_bytes:
                break
            if rung.startswith("precision") and precision_veto is not None:
                steps.append(
                    LadderStep(
                        rung=rung,
                        taken=False,
                        before_bytes=current_bytes,
                        after_bytes=current_bytes,
                        note=f"vetoed: {precision_veto}",
                    )
                )
                continue
            candidate = apply_rung(current, rung)
            if candidate is None:
                steps.append(
                    LadderStep(
                        rung=rung,
                        taken=False,
                        before_bytes=current_bytes,
                        after_bytes=current_bytes,
                        note="not applicable",
                    )
                )
                continue
            candidate_bytes = float(footprint_fn(candidate))
            if candidate_bytes < current_bytes:
                steps.append(
                    LadderStep(
                        rung=rung,
                        taken=True,
                        before_bytes=current_bytes,
                        after_bytes=candidate_bytes,
                    )
                )
                current = candidate
                current_bytes = candidate_bytes
            else:
                steps.append(
                    LadderStep(
                        rung=rung,
                        taken=False,
                        before_bytes=current_bytes,
                        after_bytes=candidate_bytes,
                        note="does not reduce",
                    )
                )
        return LadderPlan(
            start=start,
            final=current,
            start_bytes=start_bytes,
            final_bytes=current_bytes,
            budget_bytes=float(budget_bytes),
            steps=tuple(steps),
        )
