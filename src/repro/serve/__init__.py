"""Request-driven inference serving runtime (``repro.serve``).

Turns the one-shot ``measure``/``tune`` machinery into a serving system:
synthetic LiDAR scenes arrive as a request stream (Poisson or bursty),
a dynamic batcher groups them under a point budget and deadline window,
and a cluster of N simulated device replicas serves batches behind a
pluggable load balancer (round-robin, least-loaded, join-shortest-queue,
cache-affinity).  Models are statically linted at admission
(:func:`repro.analyze.lint_model`): error-level findings raise
:class:`~repro.errors.AdmissionError` before any replica accepts traffic
for that model.  A deterministic fault model can stall replicas, fail
batches transiently and skew replica speed; requests retry with
exponential backoff (seeded jitter), long batches can hedge onto a second
replica, and queued requests can time out.  Warm caches carry tuned
policies (cluster-global) and kernel-map state (per replica) across
requests.  End-to-end latency comes from :mod:`repro.gpusim` on a virtual
clock, so every run — faulty or not — is byte-for-byte deterministic.

Overload robustness (multi-tenant serving) layers on top:

* **traffic programs** (:mod:`repro.serve.traffic`) — diurnal curves and
  flash crowds as composable rate segments, sampled into deterministic
  arrival schedules;
* **per-tenant admission** (:mod:`repro.serve.admission`) — priority
  classes with lowest-priority-first shedding, token-bucket rate quotas
  and retry budgets;
* **circuit breakers** (:mod:`repro.serve.breaker`) — replicas that keep
  failing batches are taken out of balancer rotation and probed back in;
* **SLO-driven autoscaling** (:mod:`repro.serve.autoscale`) — top-class
  p99 and error budget over a sliding window grow the fleet (cold caches,
  real warmup cost) and drain it when utilization falls.

Entry points: ``python -m repro serve-bench`` (CLI) or::

    from repro.serve import (
        FaultPlan, PoissonArrivals, ServeConfig, ServingRuntime,
        generate_requests,
    )

    runtime = ServingRuntime(ServeConfig(
        device="rtx3090", replicas=4, balancer="least_loaded",
        faults=FaultPlan.parse("fail=0.1,skew=2", seed=0), max_retries=3,
    ))
    runtime.warm_policy("SK-M-1.0")       # optional: pre-warm tuned policy
    requests = generate_requests(
        "SK-M-1.0", PoissonArrivals(rate_per_s=30, seed=0), count=64
    )
    result = runtime.serve(requests)
    print(result.describe())
"""

from repro.serve.admission import (
    DEFAULT_TENANT,
    PriorityRequestQueue,
    RetryBudget,
    TenantSpec,
    TokenBucket,
    parse_tenants,
)
from repro.serve.arrivals import BurstyArrivals, PoissonArrivals, generate_requests
from repro.serve.autoscale import AutoscalePolicy, Autoscaler, ScaleEvent
from repro.serve.balancer import (
    BALANCERS,
    CacheAffinityBalancer,
    JoinShortestQueueBalancer,
    LeastLoadedBalancer,
    LoadBalancer,
    RoundRobinBalancer,
    get_balancer,
)
from repro.serve.batcher import DynamicBatcher, RequestQueue
from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.cache import KmapCache, KmapEntry, PolicyCache
from repro.serve.faults import NO_FAULTS, FaultInjector, FaultPlan
from repro.serve.metrics import ServingMetrics, compute_metrics, percentile_ms
from repro.serve.request import InferenceRequest, RequestOutcome, RequestStatus
from repro.serve.runtime import (
    DeviceReplica,
    SceneProvider,
    ServeConfig,
    ServeResult,
    ServingRuntime,
)
from repro.serve.traffic import (
    TRAFFIC_PRESETS,
    TrafficSegment,
    TrafficTrace,
    generate_traffic_requests,
    parse_traffic,
)

__all__ = [
    "DEFAULT_TENANT",
    "PriorityRequestQueue",
    "RetryBudget",
    "TenantSpec",
    "TokenBucket",
    "parse_tenants",
    "BurstyArrivals",
    "PoissonArrivals",
    "generate_requests",
    "AutoscalePolicy",
    "Autoscaler",
    "ScaleEvent",
    "BALANCERS",
    "CacheAffinityBalancer",
    "JoinShortestQueueBalancer",
    "LeastLoadedBalancer",
    "LoadBalancer",
    "RoundRobinBalancer",
    "get_balancer",
    "DynamicBatcher",
    "RequestQueue",
    "BreakerState",
    "CircuitBreaker",
    "KmapCache",
    "KmapEntry",
    "PolicyCache",
    "NO_FAULTS",
    "FaultInjector",
    "FaultPlan",
    "ServingMetrics",
    "compute_metrics",
    "percentile_ms",
    "InferenceRequest",
    "RequestOutcome",
    "RequestStatus",
    "DeviceReplica",
    "SceneProvider",
    "ServeConfig",
    "ServeResult",
    "ServingRuntime",
    "TRAFFIC_PRESETS",
    "TrafficSegment",
    "TrafficTrace",
    "generate_traffic_requests",
    "parse_traffic",
]
