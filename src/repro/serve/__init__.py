"""Request-driven inference serving runtime (``repro.serve``).

Turns the one-shot ``measure``/``tune`` machinery into a serving system:
synthetic LiDAR scenes arrive as a request stream (Poisson or bursty),
a dynamic batcher groups them under a point budget and deadline window,
N simulated device replicas serve batches, and warm caches carry tuned
policies and kernel-map state across requests.  End-to-end latency comes
from :mod:`repro.gpusim` on a virtual clock, so every run is deterministic.

Entry points: ``python -m repro serve-bench`` (CLI) or::

    from repro.serve import (
        PoissonArrivals, ServeConfig, ServingRuntime, generate_requests,
    )

    runtime = ServingRuntime(ServeConfig(device="rtx3090"))
    runtime.warm_policy("SK-M-1.0")       # optional: pre-warm tuned policy
    requests = generate_requests(
        "SK-M-1.0", PoissonArrivals(rate_per_s=30, seed=0), count=64
    )
    result = runtime.serve(requests)
    print(result.describe())
"""

from repro.serve.arrivals import BurstyArrivals, PoissonArrivals, generate_requests
from repro.serve.batcher import DynamicBatcher, RequestQueue
from repro.serve.cache import KmapCache, KmapEntry, PolicyCache
from repro.serve.metrics import ServingMetrics, compute_metrics, percentile_ms
from repro.serve.request import InferenceRequest, RequestOutcome, RequestStatus
from repro.serve.runtime import (
    DeviceReplica,
    SceneProvider,
    ServeConfig,
    ServeResult,
    ServingRuntime,
)

__all__ = [
    "BurstyArrivals",
    "PoissonArrivals",
    "generate_requests",
    "DynamicBatcher",
    "RequestQueue",
    "KmapCache",
    "KmapEntry",
    "PolicyCache",
    "ServingMetrics",
    "compute_metrics",
    "percentile_ms",
    "InferenceRequest",
    "RequestOutcome",
    "RequestStatus",
    "DeviceReplica",
    "SceneProvider",
    "ServeConfig",
    "ServeResult",
    "ServingRuntime",
]
