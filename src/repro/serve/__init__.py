"""Request-driven inference serving runtime (``repro.serve``).

Turns the one-shot ``measure``/``tune`` machinery into a serving system:
synthetic LiDAR scenes arrive as a request stream (Poisson or bursty),
a dynamic batcher groups them under a point budget and deadline window,
and a cluster of N simulated device replicas serves batches behind a
pluggable load balancer (round-robin, least-loaded, join-shortest-queue,
cache-affinity).  Models are statically linted at admission
(:func:`repro.analyze.lint_model`): error-level findings raise
:class:`~repro.errors.AdmissionError` before any replica accepts traffic
for that model.  A deterministic fault model can stall replicas, fail
batches transiently and skew replica speed; requests retry with
exponential backoff, long batches can hedge onto a second replica, and
queued requests can time out.  Warm caches carry tuned policies
(cluster-global) and kernel-map state (per replica) across requests.
End-to-end latency comes from :mod:`repro.gpusim` on a virtual clock, so
every run — faulty or not — is byte-for-byte deterministic.

Entry points: ``python -m repro serve-bench`` (CLI) or::

    from repro.serve import (
        FaultPlan, PoissonArrivals, ServeConfig, ServingRuntime,
        generate_requests,
    )

    runtime = ServingRuntime(ServeConfig(
        device="rtx3090", replicas=4, balancer="least_loaded",
        faults=FaultPlan.parse("fail=0.1,skew=2", seed=0), max_retries=3,
    ))
    runtime.warm_policy("SK-M-1.0")       # optional: pre-warm tuned policy
    requests = generate_requests(
        "SK-M-1.0", PoissonArrivals(rate_per_s=30, seed=0), count=64
    )
    result = runtime.serve(requests)
    print(result.describe())
"""

from repro.serve.arrivals import BurstyArrivals, PoissonArrivals, generate_requests
from repro.serve.balancer import (
    BALANCERS,
    CacheAffinityBalancer,
    JoinShortestQueueBalancer,
    LeastLoadedBalancer,
    LoadBalancer,
    RoundRobinBalancer,
    get_balancer,
)
from repro.serve.batcher import DynamicBatcher, RequestQueue
from repro.serve.cache import KmapCache, KmapEntry, PolicyCache
from repro.serve.faults import NO_FAULTS, FaultInjector, FaultPlan
from repro.serve.metrics import ServingMetrics, compute_metrics, percentile_ms
from repro.serve.request import InferenceRequest, RequestOutcome, RequestStatus
from repro.serve.runtime import (
    DeviceReplica,
    SceneProvider,
    ServeConfig,
    ServeResult,
    ServingRuntime,
)

__all__ = [
    "BurstyArrivals",
    "PoissonArrivals",
    "generate_requests",
    "BALANCERS",
    "CacheAffinityBalancer",
    "JoinShortestQueueBalancer",
    "LeastLoadedBalancer",
    "LoadBalancer",
    "RoundRobinBalancer",
    "get_balancer",
    "DynamicBatcher",
    "RequestQueue",
    "KmapCache",
    "KmapEntry",
    "PolicyCache",
    "NO_FAULTS",
    "FaultInjector",
    "FaultPlan",
    "ServingMetrics",
    "compute_metrics",
    "percentile_ms",
    "InferenceRequest",
    "RequestOutcome",
    "RequestStatus",
    "DeviceReplica",
    "SceneProvider",
    "ServeConfig",
    "ServeResult",
    "ServingRuntime",
]
