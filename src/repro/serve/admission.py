"""Per-tenant admission control: quotas, priorities, retry budgets.

A multi-tenant serving cluster cannot treat every request the same once
it is past its provisioned load.  This module supplies the three
mechanisms the runtime composes into predictable degradation:

* :class:`TenantSpec` / :func:`parse_tenants` — the tenant roster: each
  tenant carries a **priority class** (0 = highest), a **share** of the
  aggregate traffic, an optional **quota** (token bucket on the virtual
  clock), a workload **mix**, and a **retry-budget ratio**;
* :class:`TokenBucket` — deterministic rate limiting on the virtual
  clock.  A tenant past its quota is shed *at arrival*, before it can
  occupy queue space that higher-paying tenants need;
* :class:`RetryBudget` — the retry-storm damper.  Retries are paid from
  a budget that accrues with *successes* (``ratio`` retries per success,
  plus a small constant floor so cold tenants can retry at all).  When a
  replica stall fails a hundred batches at once, the budget bounds the
  total retry volume to a fraction of the tenant's goodput instead of
  letting every failure multiply into ``max_retries`` re-dispatches;
* :class:`PriorityRequestQueue` — a bounded queue that sheds
  **lowest-priority-first** under pressure: an arriving high-priority
  request evicts the worst queued lower-priority request instead of
  being dropped on the floor FIFO-style.

All state advances only on the virtual clock; a seeded run is
byte-identical regardless of tenant count.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.serve.batcher import RequestQueue
from repro.serve.request import InferenceRequest


@dataclasses.dataclass(frozen=True)
class TenantSpec:
    """One tenant of the serving cluster.

    Attributes:
        name: Tenant identifier (unique within a roster).
        priority: Priority class, 0 = highest.  Shedding and queue order
            are lowest-priority-first (numerically largest first).
        share: Relative weight of this tenant in the aggregate arrival
            stream (traffic generation only; admission never reads it).
        quota_rps: Token-bucket refill rate in requests per simulated
            second; 0 disables the quota (unlimited).
        quota_burst: Token-bucket capacity (burst allowance); defaults to
            two seconds of quota when left at 0.
        retry_budget: Retries allowed per success (the classic retry
            budget ratio); negative inherits the runtime default.
        deadline_ms: Per-tenant latency deadline; 0 inherits the
            generator default.
        streams: Scene streams (vehicles) this tenant's requests cycle
            over.
        mix: Workload ids the tenant draws from (aliases allowed).
    """

    name: str
    priority: int = 0
    share: float = 1.0
    quota_rps: float = 0.0
    quota_burst: float = 0.0
    retry_budget: float = -1.0
    deadline_ms: float = 0.0
    streams: int = 4
    mix: Tuple[str, ...] = ("SK-M-1.0",)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant name must be non-empty")
        if self.priority < 0:
            raise ConfigError(
                f"tenant {self.name!r}: priority must be >= 0, "
                f"got {self.priority}"
            )
        if self.share <= 0:
            raise ConfigError(
                f"tenant {self.name!r}: share must be positive, "
                f"got {self.share}"
            )
        if self.quota_rps < 0 or self.quota_burst < 0:
            raise ConfigError(
                f"tenant {self.name!r}: quota must be >= 0"
            )
        if self.deadline_ms < 0:
            raise ConfigError(
                f"tenant {self.name!r}: deadline must be >= 0"
            )
        if self.streams < 1:
            raise ConfigError(
                f"tenant {self.name!r}: streams must be >= 1, "
                f"got {self.streams}"
            )
        if not self.mix:
            raise ConfigError(
                f"tenant {self.name!r}: workload mix must be non-empty"
            )


#: The implicit tenant of single-tenant runs (legacy request schedules).
DEFAULT_TENANT = TenantSpec(name="default")

#: Spec keys accepted by :func:`parse_tenants` and their TenantSpec fields.
TENANT_SPEC_KEYS: Dict[str, str] = {
    "prio": "priority",
    "share": "share",
    "rps": "quota_rps",
    "burst": "quota_burst",
    "retry_budget": "retry_budget",
    "deadline": "deadline_ms",
    "streams": "streams",
    "mix": "mix",
}


def parse_tenants(spec: str) -> Tuple[TenantSpec, ...]:
    """Parse a CLI tenant roster.

    Format: semicolon-separated tenants, each ``name:key=value,...`` —
    for example ``gold:prio=0,share=1,rps=60;free:prio=1,share=4``.
    Keys: ``prio``, ``share``, ``rps`` (quota), ``burst``,
    ``retry_budget``, ``deadline`` (ms), ``streams``, ``mix``
    (``+``-separated workload ids, e.g. ``mix=sk-m-1x+sk-m-0.5x``).
    Malformed items raise :class:`~repro.errors.ConfigError` naming the
    offending token and the valid keys.
    """
    tenants: List[TenantSpec] = []
    seen: set = set()
    for chunk in filter(None, (c.strip() for c in spec.split(";"))):
        name, _, rest = chunk.partition(":")
        name = name.strip()
        if not name:
            raise ConfigError(f"tenant spec {chunk!r} is missing a name")
        if name in seen:
            raise ConfigError(f"duplicate tenant name {name!r}")
        seen.add(name)
        fields: Dict[str, object] = {"name": name}
        for part in filter(None, (p.strip() for p in rest.split(","))):
            if "=" not in part:
                raise ConfigError(
                    f"bad tenant spec item {part!r} for tenant {name!r}; "
                    f"expected key=value with keys {sorted(TENANT_SPEC_KEYS)}"
                )
            key, _, value = part.partition("=")
            key = key.strip()
            if key not in TENANT_SPEC_KEYS:
                raise ConfigError(
                    f"unknown tenant key {key!r} for tenant {name!r}; "
                    f"expected one of {sorted(TENANT_SPEC_KEYS)}"
                )
            field = TENANT_SPEC_KEYS[key]
            if key == "mix":
                workloads = tuple(
                    w.strip() for w in value.split("+") if w.strip()
                )
                if not workloads:
                    raise ConfigError(
                        f"bad tenant mix {value!r} for tenant {name!r}"
                    )
                fields[field] = workloads
                continue
            try:
                number = float(value)
            except ValueError:
                raise ConfigError(
                    f"bad tenant value {value!r} for key {key!r} "
                    f"(tenant {name!r})"
                ) from None
            if key in ("prio", "streams"):
                fields[field] = int(number)
            else:
                fields[field] = number
        tenants.append(TenantSpec(**fields))  # type: ignore[arg-type]
    if not tenants:
        raise ConfigError(
            "tenant spec is empty; expected e.g. "
            "'gold:prio=0,share=1;free:prio=1,share=4'"
        )
    return tuple(tenants)


class TokenBucket:
    """Deterministic token bucket on the virtual clock.

    ``rate_per_s`` tokens accrue per simulated second up to ``capacity``;
    :meth:`take` spends one.  A zero rate means "unlimited" (every take
    succeeds), so a roster can mix metered and unmetered tenants.
    """

    def __init__(self, rate_per_s: float, capacity: float = 0.0):
        if rate_per_s < 0 or capacity < 0:
            raise ConfigError("token bucket rate/capacity must be >= 0")
        self.rate_per_s = rate_per_s
        self.capacity = capacity if capacity > 0 else max(2.0 * rate_per_s, 1.0)
        self.tokens = self.capacity
        self._last_ms = 0.0
        self.denied = 0

    def take(self, now_ms: float) -> bool:
        """Spend one token at ``now_ms``; False (and counted) when dry."""
        if self.rate_per_s <= 0:
            return True
        elapsed = max(now_ms - self._last_ms, 0.0)
        self._last_ms = max(self._last_ms, now_ms)
        self.tokens = min(
            self.capacity, self.tokens + elapsed * self.rate_per_s / 1000.0
        )
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        self.denied += 1
        return False


class RetryBudget:
    """Bound retries to a ratio of successes (anti-retry-storm).

    The budget is ``floor + ratio * successes`` total retries; once spent
    retries are denied until new successes accrue.  A negative ratio
    disables the budget entirely (every retry allowed) — the legacy
    behaviour of runs that predate tenancy.
    """

    def __init__(self, ratio: float, floor: int = 3):
        if floor < 0:
            raise ConfigError(f"retry budget floor must be >= 0, got {floor}")
        self.ratio = ratio
        self.floor = floor
        self.successes = 0
        self.spent = 0
        self.exhausted = 0

    @property
    def enabled(self) -> bool:
        return self.ratio >= 0

    def allow(self) -> bool:
        """Spend one retry; False (and counted) when the budget is dry."""
        if not self.enabled:
            self.spent += 1
            return True
        if self.spent < self.floor + self.ratio * self.successes:
            self.spent += 1
            return True
        self.exhausted += 1
        return False

    def record_success(self) -> None:
        self.successes += 1


class PriorityRequestQueue(RequestQueue):
    """Bounded queue ordered by (priority class, admission order).

    Dispatch order is highest class first (priority 0 before 1) and FIFO
    within a class.  Under pressure the queue sheds lowest-priority-first:
    :meth:`admit_displacing` evicts the most recently admitted request of
    the *worst* class when a strictly better-class request arrives at a
    full queue.  Retried requests re-enter at the head of their class
    (they have already waited a service attempt plus backoff).
    """

    def __init__(self, max_depth: int = 64):
        super().__init__(max_depth=max_depth)
        self._seq = 0
        self._keys: List[Tuple[int, int]] = []  # sorted (priority, seq)

    def _insert(self, request: InferenceRequest, seq: int) -> None:
        key = (request.priority, seq)
        pos = bisect.bisect_left(self._keys, key)
        self._keys.insert(pos, key)
        self._items.insert(pos, request)

    def admit(self, request: InferenceRequest) -> bool:
        if len(self._items) >= self.max_depth:
            self.shed_count += 1
            return False
        self._seq += 1
        self._insert(request, self._seq)
        return True

    def admit_displacing(
        self, request: InferenceRequest
    ) -> Optional[InferenceRequest]:
        """Admit ``request``, shedding lowest-priority-first under pressure.

        Returns the request that was shed: ``None`` when there was room,
        the displaced lower-priority victim when the arrival bumped one,
        or ``request`` itself when it *is* the lowest class present.
        """
        if len(self._items) < self.max_depth:
            self._seq += 1
            self._insert(request, self._seq)
            return None
        worst = self._items[-1]  # largest (priority, seq): worst class,
        if worst.priority > request.priority:  # youngest within it
            self._items.pop()
            self._keys.pop()
            self.shed_count += 1
            self._seq += 1
            self._insert(request, self._seq)
            return worst
        self.shed_count += 1
        return request

    def requeue(self, request: InferenceRequest) -> None:
        """Re-enqueue a retried request at the head of its class."""
        # seq below every live entry: first among equals.
        self._seq += 1
        key = (request.priority, -self._seq)
        pos = bisect.bisect_left(self._keys, key)
        self._keys.insert(pos, key)
        self._items.insert(pos, request)

    def expire(self, now_ms: float, timeout_ms: float) -> List[InferenceRequest]:
        expired = [
            r for r in self._items if now_ms - r.arrival_ms >= timeout_ms
        ]
        if expired:
            dead = {r.request_id for r in expired}
            kept = [
                (key, item)
                for key, item in zip(self._keys, self._items)
                if item.request_id not in dead
            ]
            self._keys = [key for key, _ in kept]
            self._items = [item for _, item in kept]
        return expired

    def take(self, requests: List[InferenceRequest]) -> None:
        taken = {r.request_id for r in requests}
        kept = [
            (key, item)
            for key, item in zip(self._keys, self._items)
            if item.request_id not in taken
        ]
        self._keys = [key for key, _ in kept]
        self._items = [item for _, item in kept]
