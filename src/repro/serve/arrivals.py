"""Deterministic arrival-process generators for the serving runtime.

Two processes cover the interesting serving regimes:

* :class:`PoissonArrivals` — memoryless traffic at a fixed mean rate, the
  standard open-loop serving model;
* :class:`BurstyArrivals` — an on/off modulated Poisson process (periods
  alternate between a burst rate and a base rate), which is what exposes
  admission control: a queue sized for the mean rate overflows during
  bursts.

Both draw from a seeded :class:`numpy.random.Generator`, so a given
configuration always produces the identical request schedule.

For richer load shapes — diurnal curves, flash crowds with ramp/peak/
decay phases, multi-tenant rosters with per-tenant workload mixes — use
the trace-driven programs in :mod:`repro.serve.traffic`, which generalise
these two processes (``serve-bench --traffic`` on the CLI).
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from repro.errors import ConfigError
from repro.serve.request import InferenceRequest


@dataclasses.dataclass(frozen=True)
class PoissonArrivals:
    """Poisson process: exponential inter-arrival times at ``rate_per_s``."""

    rate_per_s: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ConfigError(f"rate must be positive, got {self.rate_per_s}")

    def times_ms(self, count: int) -> List[float]:
        rng = np.random.default_rng(self.seed)
        gaps = rng.exponential(1000.0 / self.rate_per_s, size=count)
        return np.cumsum(gaps).tolist()


@dataclasses.dataclass(frozen=True)
class BurstyArrivals:
    """On/off modulated Poisson process.

    Each ``period_ms`` window spends its first ``burst_fraction`` at
    ``burst_rate_per_s`` and the remainder at ``base_rate_per_s``.
    """

    base_rate_per_s: float
    burst_rate_per_s: float
    period_ms: float = 1000.0
    burst_fraction: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_rate_per_s <= 0 or self.burst_rate_per_s <= 0:
            raise ConfigError("rates must be positive")
        if not 0.0 < self.burst_fraction < 1.0:
            raise ConfigError(
                f"burst_fraction must be in (0, 1), got {self.burst_fraction}"
            )
        if self.period_ms <= 0:
            raise ConfigError("period_ms must be positive")

    def _rate_at(self, t_ms: float) -> float:
        phase = (t_ms % self.period_ms) / self.period_ms
        if phase < self.burst_fraction:
            return self.burst_rate_per_s
        return self.base_rate_per_s

    def times_ms(self, count: int) -> List[float]:
        # Thinning-free piecewise sampling: draw the next gap at the rate
        # in effect when the previous request arrived.  Exact enough for a
        # serving benchmark and exactly reproducible.
        rng = np.random.default_rng(self.seed)
        times: List[float] = []
        t = 0.0
        for _ in range(count):
            t += rng.exponential(1000.0 / self._rate_at(t))
            times.append(t)
        return times


def generate_requests(
    workload_id: str,
    arrivals: "PoissonArrivals | BurstyArrivals",
    count: int,
    num_streams: int = 4,
    deadline_ms: float = 200.0,
    scene_seed_base: int = 0,
) -> List[InferenceRequest]:
    """Build the request schedule for one serving run.

    Streams are assigned round-robin, modelling ``num_streams`` vehicles
    whose frames interleave on the wire.  All frames of a stream share a
    ``scene_seed`` (identical geometry), which is what the serve-side
    kernel-map cache exploits.
    """
    if count < 1:
        raise ConfigError(f"count must be >= 1, got {count}")
    if num_streams < 1:
        raise ConfigError(f"num_streams must be >= 1, got {num_streams}")
    if deadline_ms <= 0:
        raise ConfigError(f"deadline_ms must be positive, got {deadline_ms}")
    times = arrivals.times_ms(count)
    frame_counters = [0] * num_streams
    requests: List[InferenceRequest] = []
    for i, t in enumerate(times):
        stream = i % num_streams
        requests.append(
            InferenceRequest(
                request_id=i,
                workload_id=workload_id,
                stream_id=stream,
                frame_index=frame_counters[stream],
                scene_seed=scene_seed_base * 10007 + stream,
                arrival_ms=float(t),
                deadline_ms=deadline_ms,
            )
        )
        frame_counters[stream] += 1
    return requests
