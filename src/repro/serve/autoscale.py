"""SLO-driven autoscaling for the serving cluster.

The control loop the ROADMAP asks for: watch per-tenant tail latency and
an error budget over a sliding virtual-time window, add replicas when the
highest-priority tenants are missing their SLO, drain replicas when the
fleet is over-provisioned.  Everything runs on the virtual clock and is a
pure function of the observed outcome stream, so seeded runs stay
byte-identical.

Design notes:

* **Signals.**  Scale-up triggers on either signal: windowed p99 latency
  of the *top priority class* above ``slo_ms``, or the windowed SLO-miss
  fraction above the error budget.  Queue pressure (standing queue deeper
  than one full batch per replica) is a third, leading signal — it fires
  before latencies have finished degrading.
* **Warm-up is real.**  A new replica joins with a cold kernel-map cache
  and is unavailable for ``warmup_ms`` (model load, CUDA context, first
  kmap/tuning-cache fills are charged by the runtime on top, because the
  cold cache itself makes early batches slower).
* **Scale-down is conservative.**  Only when the window shows p99 well
  under the SLO *and* fleet utilization below ``scale_down_util`` does
  the scaler drain one replica (never below ``min_replicas``), and the
  runtime removes it only once its in-flight work resolves.
* **Cooldown.**  One scaling action per ``cooldown_ms`` prevents
  oscillation on the sawtooth a flash crowd produces.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.errors import ConfigError
from repro.serve.metrics import percentile_ms


@dataclasses.dataclass(frozen=True)
class AutoscalePolicy:
    """Configuration of the SLO control loop.

    Attributes:
        slo_ms: Target p99 end-to-end latency for the top priority class.
        window_ms: Sliding observation window on the virtual clock.
        interval_ms: Control-loop evaluation period.
        min_replicas / max_replicas: Fleet bounds (min is the provisioned
            floor; max caps flash-crowd spend).
        error_budget: Tolerated windowed SLO-miss fraction before a
            scale-up (0.05 = 5% of requests may miss).
        scale_down_util: Fleet utilization below which an over-SLO-healthy
            window drains one replica.
        warmup_ms: Simulated unavailability of a freshly added replica
            (model load + context creation); its caches start cold on top.
        cooldown_ms: Minimum virtual time between scaling actions.
    """

    slo_ms: float = 200.0
    window_ms: float = 2000.0
    interval_ms: float = 250.0
    min_replicas: int = 1
    max_replicas: int = 8
    error_budget: float = 0.05
    scale_down_util: float = 0.35
    warmup_ms: float = 300.0
    cooldown_ms: float = 1000.0

    def __post_init__(self) -> None:
        if self.slo_ms <= 0:
            raise ConfigError(f"slo_ms must be positive, got {self.slo_ms}")
        if self.window_ms <= 0 or self.interval_ms <= 0:
            raise ConfigError("window_ms / interval_ms must be positive")
        if self.min_replicas < 1:
            raise ConfigError(
                f"min_replicas must be >= 1, got {self.min_replicas}"
            )
        if self.max_replicas < self.min_replicas:
            raise ConfigError(
                f"max_replicas ({self.max_replicas}) must be >= "
                f"min_replicas ({self.min_replicas})"
            )
        if not 0.0 <= self.error_budget < 1.0:
            raise ConfigError(
                f"error_budget must be in [0, 1), got {self.error_budget}"
            )
        if not 0.0 <= self.scale_down_util <= 1.0:
            raise ConfigError(
                f"scale_down_util must be in [0, 1], got {self.scale_down_util}"
            )
        if self.warmup_ms < 0 or self.cooldown_ms < 0:
            raise ConfigError("warmup_ms / cooldown_ms must be >= 0")


@dataclasses.dataclass(frozen=True)
class ScaleEvent:
    """One scaling action (for the metrics report)."""

    at_ms: float
    action: str  # "up" | "down"
    replicas: int  # fleet size after the action
    p99_ms: float
    miss_fraction: float


@dataclasses.dataclass
class _Observation:
    finish_ms: float
    latency_ms: float
    priority: int
    slo_missed: bool


class Autoscaler:
    """The control loop: observe outcomes, decide scale actions."""

    def __init__(self, policy: AutoscalePolicy):
        self.policy = policy
        self._window: List[_Observation] = []
        self._last_action_ms = -1e18
        self.events: List[ScaleEvent] = []

    # ------------------------------------------------------------------ #
    def observe(
        self,
        finish_ms: float,
        latency_ms: float,
        priority: int,
        slo_missed: bool,
    ) -> None:
        """Record one resolved request (called by the runtime)."""
        self._window.append(
            _Observation(finish_ms, latency_ms, priority, slo_missed)
        )

    def _prune(self, now_ms: float) -> None:
        horizon = now_ms - self.policy.window_ms
        if self._window and self._window[0].finish_ms < horizon:
            self._window = [
                o for o in self._window if o.finish_ms >= horizon
            ]

    def window_stats(self, now_ms: float) -> Tuple[float, float]:
        """(p99 latency, SLO-miss fraction) of the top class in window."""
        self._prune(now_ms)
        if not self._window:
            return 0.0, 0.0
        top = min(o.priority for o in self._window)
        top_obs = [o for o in self._window if o.priority == top]
        p99 = percentile_ms([o.latency_ms for o in top_obs], 99)
        miss = sum(1 for o in top_obs if o.slo_missed) / len(top_obs)
        return p99, miss

    # ------------------------------------------------------------------ #
    def decide(
        self,
        now_ms: float,
        replicas: int,
        queue_depth: int,
        utilization: float,
        batch_capacity: int = 8,
    ) -> Optional[str]:
        """One control-loop tick: returns "up", "down" or None.

        Args:
            replicas: current fleet size (excluding draining replicas).
            queue_depth: standing queue length at ``now_ms``.
            utilization: recent fleet utilization in [0, 1].
            batch_capacity: requests one dispatch absorbs (queue-pressure
                normalization).
        """
        policy = self.policy
        if now_ms - self._last_action_ms < policy.cooldown_ms:
            return None
        p99, miss = self.window_stats(now_ms)
        pressured = queue_depth > replicas * batch_capacity
        if (
            p99 > policy.slo_ms or miss > policy.error_budget or pressured
        ) and replicas < policy.max_replicas:
            self._last_action_ms = now_ms
            self.events.append(
                ScaleEvent(now_ms, "up", replicas + 1, p99, miss)
            )
            return "up"
        if (
            replicas > policy.min_replicas
            and not pressured
            and queue_depth == 0
            and p99 < 0.5 * policy.slo_ms
            and miss <= policy.error_budget
            and utilization < policy.scale_down_util
        ):
            self._last_action_ms = now_ms
            self.events.append(
                ScaleEvent(now_ms, "down", replicas - 1, p99, miss)
            )
            return "down"
        return None

    @property
    def scale_ups(self) -> int:
        return sum(1 for e in self.events if e.action == "up")

    @property
    def scale_downs(self) -> int:
        return sum(1 for e in self.events if e.action == "down")
