"""Pluggable replica load balancers for the serving cluster.

PR 1's runtime picked replicas in hardcoded index order ("earliest free
first"), which is indistinguishable from round-robin on a healthy
homogeneous fleet — and measurably wrong on a real one, where replicas
differ in accumulated load (skewed scene sizes), in speed (thermal /
contention stragglers) and in warm state (per-replica kernel-map caches).
This module extracts the decision behind an interface and ships the four
classic policies:

* :class:`RoundRobinBalancer` — cycle replica indices; the load-oblivious
  baseline every other policy is judged against;
* :class:`LeastLoadedBalancer` — route to the replica with the least
  outstanding work (then least lifetime busy time), which automatically
  starves stragglers of new work;
* :class:`JoinShortestQueueBalancer` — route to the replica with the
  fewest in-flight batches, the textbook JSQ policy;
* :class:`CacheAffinityBalancer` — steer a batch to the replica whose
  kernel-map cache is warm for the batch's scene geometries, falling back
  to least-loaded when nobody is warm.  Affinity is what makes per-replica
  kmap caches scale: without it, every replica re-derives every stream's
  maps and small caches thrash.

Balancers see only sanctioned candidates — the runtime filters out stalled
/ draining replicas, replicas whose circuit breaker is open
(:mod:`repro.serve.breaker`) and replicas at their in-flight bound — and
must pick one of them.  All decisions are pure functions of replica state,
so a seeded run is byte-identical regardless of the policy.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.errors import ConfigError
from repro.serve.request import InferenceRequest


class LoadBalancer:
    """Strategy interface: pick one candidate replica for the next batch."""

    #: Registry name; subclasses override.
    name = "base"

    def select(
        self,
        candidates: Sequence["DeviceReplica"],  # noqa: F821 (runtime type)
        batch: Sequence[InferenceRequest],
        now_ms: float,
    ) -> "DeviceReplica":  # noqa: F821
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    @staticmethod
    def outstanding_ms(replica, now_ms: float) -> float:
        """Work already dispatched to ``replica`` but not yet finished."""
        return max(replica.free_at_ms - now_ms, 0.0)


class RoundRobinBalancer(LoadBalancer):
    """Cycle through replica indices, skipping unavailable ones."""

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def select(self, candidates, batch, now_ms):
        total = max(r.index for r in candidates) + 1
        chosen = min(
            candidates, key=lambda r: ((r.index - self._cursor) % total)
        )
        self._cursor = chosen.index + 1
        return chosen


class LeastLoadedBalancer(LoadBalancer):
    """Route to the replica with the least outstanding, then lifetime, work.

    Outstanding work (queued-but-unfinished service time) balances skewed
    scene sizes; lifetime busy time breaks ties away from slow replicas,
    which accumulate more busy-ms per batch than their healthy peers.
    """

    name = "least_loaded"

    def select(self, candidates, batch, now_ms):
        return min(
            candidates,
            key=lambda r: (
                self.outstanding_ms(r, now_ms), r.busy_ms, r.index
            ),
        )


class JoinShortestQueueBalancer(LoadBalancer):
    """Route to the replica with the fewest in-flight batches (JSQ)."""

    name = "jsq"

    def select(self, candidates, batch, now_ms):
        return min(
            candidates,
            key=lambda r: (r.inflight, r.free_at_ms, r.index),
        )


class CacheAffinityBalancer(LoadBalancer):
    """Steer repeated stream geometries to the replica that has them warm.

    A candidate's affinity score is the number of the batch's scene keys
    already resident in its kernel-map cache; the warmest candidate wins
    and ties fall back to least-loaded order.  Because the score reads the
    caches directly, eviction automatically releases affinity (no stale
    routing table to invalidate).
    """

    name = "cache_affinity"

    def select(self, candidates, batch, now_ms):
        scene_keys = {request.scene_key for request in batch}

        def warmth(replica) -> int:
            cache = replica.kmap_cache
            if cache is None:
                return 0
            return sum(1 for key in scene_keys if key in cache)

        return min(
            candidates,
            key=lambda r: (
                -warmth(r),
                self.outstanding_ms(r, now_ms),
                r.busy_ms,
                r.index,
            ),
        )


#: Registry of selectable balancer policies (CLI ``--balancer`` choices).
BALANCERS: Dict[str, type] = {
    cls.name: cls
    for cls in (
        RoundRobinBalancer,
        LeastLoadedBalancer,
        JoinShortestQueueBalancer,
        CacheAffinityBalancer,
    )
}


def get_balancer(name: str) -> LoadBalancer:
    """Instantiate a balancer by registry name (fresh state each call)."""
    try:
        return BALANCERS[name]()
    except KeyError:
        raise ConfigError(
            f"unknown balancer {name!r}; known balancers: "
            f"{', '.join(sorted(BALANCERS))}"
        ) from None
