"""Bounded request queue and dynamic batcher.

Admission control is the queue's job: it is bounded (``max_depth``), and a
request arriving at a full queue is *shed* immediately — backpressure
instead of unbounded latency growth.  The batcher then groups queued
requests into dispatches under two constraints:

* a **point-count budget** — sparse-conv batch cost scales with total
  voxels, not request count, so the budget caps the batch's service time;
* a **deadline window** — a batch is dispatched once its oldest member has
  waited ``window_ms``, bounding the latency cost of waiting for company.

The batcher never mixes workloads in one batch (different models cannot
share a launch sequence).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

from repro.errors import ConfigError
from repro.serve.request import InferenceRequest


class RequestQueue:
    """FIFO queue with a hard depth bound (admission control)."""

    def __init__(self, max_depth: int = 64):
        if max_depth < 1:
            raise ConfigError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self._items: List[InferenceRequest] = []
        self.shed_count = 0

    def admit(self, request: InferenceRequest) -> bool:
        """Enqueue ``request``; False (and counted) when the queue is full."""
        if len(self._items) >= self.max_depth:
            self.shed_count += 1
            return False
        self._items.append(request)
        return True

    def requeue(self, request: InferenceRequest) -> None:
        """Re-enqueue a retried request at the head of the line.

        Retries bypass admission control: the request was already admitted
        once and shedding it now would turn a transient replica fault into
        a dropped request.  Head placement bounds retry latency — the
        request has already waited a full service attempt plus backoff.
        """
        self._items.insert(0, request)

    def expire(
        self, now_ms: float, timeout_ms: float
    ) -> List[InferenceRequest]:
        """Drop (and return) queued requests older than ``timeout_ms``."""
        expired = [
            r for r in self._items if now_ms - r.arrival_ms >= timeout_ms
        ]
        if expired:
            dead = {r.request_id for r in expired}
            self._items = [
                r for r in self._items if r.request_id not in dead
            ]
        return expired

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def oldest(self) -> Optional[InferenceRequest]:
        return self._items[0] if self._items else None

    def peek(self) -> List[InferenceRequest]:
        return list(self._items)

    def take(self, requests: List[InferenceRequest]) -> None:
        """Remove a batch the batcher formed (must be queued members)."""
        taken = {r.request_id for r in requests}
        self._items = [r for r in self._items if r.request_id not in taken]


@dataclasses.dataclass
class DynamicBatcher:
    """Group queued requests under a point budget and deadline window.

    Args:
        point_budget: Maximum total scene points per batch.  A single
            request larger than the budget still forms a batch of one.
        max_batch_requests: Hard cap on requests per batch.
        window_ms: Dispatch once the oldest queued request has waited this
            long, even if the budget is not filled.
        scene_points: Callback mapping a request to its scene's point
            count (the runtime supplies this from its scene provider).
    """

    point_budget: int = 400_000
    max_batch_requests: int = 8
    window_ms: float = 10.0
    scene_points: Callable[[InferenceRequest], int] = lambda request: 1

    def __post_init__(self) -> None:
        if self.point_budget < 1:
            raise ConfigError("point_budget must be >= 1")
        if self.max_batch_requests < 1:
            raise ConfigError("max_batch_requests must be >= 1")
        if self.window_ms < 0:
            raise ConfigError("window_ms must be >= 0")

    # ------------------------------------------------------------------ #
    def form_batch(self, queue: RequestQueue, now_ms: float) -> List[InferenceRequest]:
        """Head-of-line batch: same workload, budget- and count-capped."""
        items = queue.peek()
        if not items:
            return []
        head = items[0]
        batch: List[InferenceRequest] = []
        points = 0
        for request in items:
            if request.workload_id != head.workload_id:
                continue  # a later dispatch picks these up
            cost = self.scene_points(request)
            if batch and (
                points + cost > self.point_budget
                or len(batch) >= self.max_batch_requests
            ):
                break
            batch.append(request)
            points += cost
        queue.take(batch)
        return batch

    def ready(
        self, queue: RequestQueue, now_ms: float, more_arrivals: bool
    ) -> bool:
        """Should a free device dispatch now rather than wait for company?"""
        oldest = queue.oldest
        if oldest is None:
            return False
        if not more_arrivals:
            return True  # nothing else is coming; drain
        if now_ms - oldest.arrival_ms >= self.window_ms:
            return True
        points = 0
        count = 0
        for request in queue.peek():
            if request.workload_id != oldest.workload_id:
                continue
            points += self.scene_points(request)
            count += 1
            if points >= self.point_budget or count >= self.max_batch_requests:
                return True
        return False

    def next_decision_ms(self, queue: RequestQueue) -> Optional[float]:
        """When the window of the oldest queued request expires."""
        oldest = queue.oldest
        if oldest is None:
            return None
        return oldest.arrival_ms + self.window_ms
