"""Per-replica circuit breakers for the serving cluster.

A replica that fails batches back-to-back (driver wedge, flaky ECC, a
stall window the fault model opened) should stop receiving traffic
*before* every batch routed to it burns a service attempt and a retry.
The breaker is the standard three-state machine, driven entirely by the
virtual clock:

* **CLOSED** — healthy; failures increment a consecutive counter,
  successes reset it.  ``failure_threshold`` consecutive failures trip
  the breaker;
* **OPEN** — the balancer's candidate filter skips the replica for
  ``cooldown_ms``;
* **HALF_OPEN** — after the cooldown one *probe* batch is allowed
  through.  Success closes the breaker (counter reset), failure re-opens
  it for another cooldown.

State transitions are recorded (open / close / probe counts) so the
metrics report can show the full open→probe→close cycle a fault-injection
run exercised.  Everything is deterministic: transitions happen at batch
*resolution* times, which are themselves pure functions of the seed.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import ConfigError


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker for one replica."""

    def __init__(self, failure_threshold: int, cooldown_ms: float):
        if failure_threshold < 1:
            raise ConfigError(
                f"breaker failure threshold must be >= 1, "
                f"got {failure_threshold}"
            )
        if cooldown_ms <= 0:
            raise ConfigError(
                f"breaker cooldown must be positive, got {cooldown_ms}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown_ms = cooldown_ms
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at_ms = 0.0
        self._probe_inflight = False
        self.opens = 0
        self.closes = 0
        self.probes = 0

    # ------------------------------------------------------------------ #
    def allows(self, now_ms: float) -> bool:
        """May the balancer hand this replica a batch at ``now_ms``?

        Advances OPEN -> HALF_OPEN when the cooldown has elapsed.  In
        HALF_OPEN exactly one probe may be in flight at a time.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now_ms - self.opened_at_ms < self.cooldown_ms:
                return False
            self.state = BreakerState.HALF_OPEN
            self._probe_inflight = False
        return not self._probe_inflight

    def next_probe_at_ms(self) -> Optional[float]:
        """When an OPEN breaker will admit its half-open probe."""
        if self.state is BreakerState.OPEN:
            return self.opened_at_ms + self.cooldown_ms
        return None

    def on_dispatch(self) -> None:
        """A batch was handed to the replica (marks half-open probes)."""
        if self.state is BreakerState.HALF_OPEN:
            self._probe_inflight = True
            self.probes += 1

    # ------------------------------------------------------------------ #
    def record_success(self, now_ms: float) -> None:
        """A batch on this replica resolved successfully at ``now_ms``."""
        self.consecutive_failures = 0
        self._probe_inflight = False
        if self.state is not BreakerState.CLOSED:
            self.state = BreakerState.CLOSED
            self.closes += 1

    def record_failure(self, now_ms: float) -> None:
        """A batch on this replica failed at ``now_ms``."""
        self.consecutive_failures += 1
        self._probe_inflight = False
        if self.state is BreakerState.HALF_OPEN or (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.state = BreakerState.OPEN
            self.opened_at_ms = now_ms
            self.opens += 1
