"""Warm-state caches for the serving runtime.

Two kinds of state survive across requests in a deployed engine:

* **Tuned policies** (:class:`PolicyCache`) — the Sparse Autotuner's output,
  keyed by ``(model key, device, precision)``.  The paper's deployment story
  is precisely this reuse: tune once on sample scenes, serve millions
  (Section 4.2).  Policies can be pre-warmed from JSON files written by
  ``python -m repro tune`` (:func:`repro.tune.cache.save_policy`).

* **Kernel maps** (:class:`KmapCache`) — consecutive frames of one scene
  stream share coordinates, so their hash-built maps, bitmask sorting and
  reorderings are reusable.  The cache is LRU-bounded (maps are the
  dominant memory consumer of a sparse-conv engine) and keeps hit/miss/
  eviction accounting for the metrics report.

The policy cache is cluster-global (a tuned policy depends only on model /
device / precision), while each :class:`~repro.serve.runtime.DeviceReplica`
owns a *private* kernel-map cache — warm map state lives in one device's
memory and does not teleport between replicas.  That locality is what the
``cache_affinity`` balancer (:mod:`repro.serve.balancer`) exploits:
membership checks (``key in cache``) are free and never perturb the
hit/miss accounting, so routing can inspect warmth without skewing metrics.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from pathlib import Path
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.nn.context import GroupPolicy
from repro.sparse.tensor import SparseTensor

#: Policy identity: (model key, device name, precision value).
PolicyKey = Tuple[str, str, str]

#: Scene identity: (workload id, scene seed).  See :func:`scene_key`.
SceneKey = Tuple[str, int]


def scene_key(workload_id: str, scene_seed: int) -> SceneKey:
    """Canonical scene identity used by *every* scene-keyed cache.

    A scene is fully determined by its workload (dataset, frame geometry,
    scale all hang off the workload id) and the seed that generated it —
    :meth:`repro.serve.request.InferenceRequest.scene_key`, the
    :class:`KmapCache` keys fed to :meth:`KmapCache.batch_fingerprint`,
    and the runtime's per-sample cost memo all derive their keys here, so
    the derivations cannot drift apart.  ``analyze.provenance`` audits the
    sample memo against exactly this derivation.
    """
    return (str(workload_id), int(scene_seed))


class PolicyCache:
    """Tuned :class:`GroupPolicy` objects keyed by (model, device, precision)."""

    def __init__(self) -> None:
        self._policies: Dict[PolicyKey, GroupPolicy] = {}
        self.hits = 0
        self.misses = 0
        #: Monotone content version: bumped on every :meth:`put`.  The
        #: runtime's batch-execution memo keys on it, so a policy install
        #: (inline tune, background tune landing) invalidates memo entries
        #: computed against the older cache content.
        self.version = 0

    @staticmethod
    def make_key(
        model_key: str, device: str, precision: str
    ) -> PolicyKey:
        return (str(model_key), str(device), str(precision))

    def get(self, key: PolicyKey) -> Optional[GroupPolicy]:
        found = self._policies.get(key)
        if found is not None:
            self.hits += 1
        else:
            self.misses += 1
        return found

    def put(self, key: PolicyKey, policy: GroupPolicy) -> GroupPolicy:
        self._policies[key] = policy
        self.version += 1
        return policy

    def warm_from_file(self, key: PolicyKey, path: "str | Path") -> GroupPolicy:
        """Load a policy saved by ``python -m repro tune --output``."""
        from repro.tune.cache import load_policy

        policy = load_policy(path)
        if not len(policy):
            raise ConfigError(f"policy file {path} contains no groups")
        return self.put(key, policy)

    def __len__(self) -> int:
        return len(self._policies)

    def __contains__(self, key: PolicyKey) -> bool:
        return key in self._policies

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclasses.dataclass
class KmapEntry:
    """Warm kernel-map state for one scene geometry.

    Holds the scene's :class:`SparseTensor` (whose ``MapCache`` owns the
    kernel maps — keeping the tensor alive pins the maps' identities) and
    the set of one-shot charge keys a cold execution paid: map builds,
    bitmask sorts, reorderings, structure conversions.  A warm execution
    pre-charges these keys so the simulated trace contains no mapping work,
    exactly as a real engine skips rebuilding maps for an unchanged scene.
    """

    sample: SparseTensor
    charge_keys: FrozenSet[tuple]
    uses: int = 0


class KmapCache:
    """LRU cache of :class:`KmapEntry` keyed by scene identity."""

    def __init__(self, capacity: int = 16):
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, KmapEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, scene_key: tuple) -> Optional[KmapEntry]:
        entry = self._entries.get(scene_key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(scene_key)
        self.hits += 1
        entry.uses += 1
        return entry

    def put(self, scene_key: tuple, entry: KmapEntry) -> KmapEntry:
        if scene_key in self._entries:
            self._entries.move_to_end(scene_key)
        self._entries[scene_key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, scene_key: tuple) -> bool:
        return scene_key in self._entries

    def warm_keys(self) -> Tuple[tuple, ...]:
        """Resident scene keys, LRU-first (diagnostics / affinity tests)."""
        return tuple(self._entries)

    def peek(self, scene_key: tuple) -> Optional[KmapEntry]:
        """Entry for ``scene_key`` without touching hit/miss accounting,
        use counts or LRU order (pure inspection, like ``in``)."""
        return self._entries.get(scene_key)

    def batch_fingerprint(
        self, scene_keys: Sequence[tuple], ordered: bool = False
    ) -> tuple:
        """Hashable summary of everything an interleaved get/put sequence
        over ``scene_keys`` depends on — the runtime's batch-execution
        memo keys on this.  Read-only: accounting and LRU order are
        untouched.

        When even the worst case (every absent key inserted) cannot
        overflow the cache, eviction is impossible and the sequence
        depends only on how often each scene occurs and whether it is
        resident (with which pre-charge keys) — scene charge keys are
        per-kernel-map and disjoint across scenes, so batch cost is
        order-insensitive and the summary canonicalises to a sorted
        multiset (maximising memo reuse across equivalent batch
        orderings).  With ``ordered=True`` (multi-stream pricing, where
        launch order can shift sync placement) or when eviction is
        possible, the summary keeps the exact sequence plus cache size,
        capacity and each key's LRU rank: positions not held by one of
        ``scene_keys`` are interchangeable unrelated entries, so equal
        summaries still guarantee identical behaviour."""
        # Reuse the stored frozensets: their hashes are cached, so key
        # hashing stays cheap across thousands of lookups.
        warmth = [
            (
                self._entries[key].charge_keys
                if key in self._entries else None
            )
            for key in scene_keys
        ]
        absent = {key for key in scene_keys if key not in self._entries}
        if ordered or len(self._entries) + len(absent) > self.capacity:
            rank = {key: i for i, key in enumerate(self._entries)}
            return (
                "ordered",
                tuple(scene_keys),
                len(self._entries),
                self.capacity,
                tuple(
                    (rank.get(key, -1), keys)
                    for key, keys in zip(scene_keys, warmth)
                ),
            )
        counts: Dict[tuple, int] = {}
        for key in scene_keys:
            counts[key] = counts.get(key, 0) + 1
        warm_by_scene = dict(zip(scene_keys, warmth))
        return (
            "multiset",
            tuple(sorted(
                (
                    (key, count, warm_by_scene[key])
                    for key, count in counts.items()
                ),
                key=lambda item: (item[0], item[1]),
            )),
        )

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
