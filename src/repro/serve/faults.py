"""Deterministic fault injection for the serving cluster.

Three failure modes cover what actually goes wrong in a multi-replica
sparse-conv serving fleet:

* **replica stalls** — a replica stops accepting new batches for a window
  (driver hiccup, preemption, thermal throttling).  In-flight work drains;
  the replica rejoins when the window ends (recovery on the virtual clock);
* **transient batch failures** — a dispatched batch dies partway through
  (ECC retry, OOM race, kernel launch failure).  The replica loses a
  fraction of the batch's service time and the requests must be retried;
* **slow-replica skew** — one or more replicas serve every batch at a
  service-time multiple (a thermally limited or contended device), the
  canonical straggler that load-aware balancers exist to route around.

Everything is drawn from seeded :class:`random.Random` streams and keyed so
the same :class:`FaultPlan` produces the identical fault trace on every run:
stall windows come from one per-replica generator queried in virtual-time
order, and each batch-failure draw is a pure function of ``(seed, batch
id)`` — independent of event interleaving.  A faulty serving run is exactly
as reproducible as a clean one.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """Configuration of the injected failure modes.

    Attributes:
        stall_rate_per_s: expected stall windows per simulated second, per
            replica (0 disables stalls).
        stall_ms: mean stall-window duration (exponentially distributed).
        fail_rate: probability that one dispatched batch fails transiently.
        fail_cost_fraction: fraction of the batch's service time a failed
            attempt still occupies the replica for before it errors out.
        oom_rate: probability that one dispatched batch hits a simulated
            out-of-memory condition.  Unlike a transient failure, an OOM
            is *recoverable in place*: the runtime walks the degradation
            ladder (:mod:`repro.resilience`) and re-executes, so the
            requests resolve DEGRADED rather than FAILED.
        skew_factor: service-time multiplier applied to the skewed replicas.
        skew_replicas: replica indices that run slow; empty with a
            ``skew_factor != 1`` means "the last replica".
        seed: seed of every fault stream.
    """

    stall_rate_per_s: float = 0.0
    stall_ms: float = 50.0
    fail_rate: float = 0.0
    fail_cost_fraction: float = 0.5
    oom_rate: float = 0.0
    skew_factor: float = 1.0
    skew_replicas: Tuple[int, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.stall_rate_per_s < 0:
            raise ConfigError(
                f"stall rate must be >= 0, got {self.stall_rate_per_s}"
            )
        if self.stall_ms <= 0:
            raise ConfigError(f"stall_ms must be positive, got {self.stall_ms}")
        if not 0.0 <= self.fail_rate < 1.0:
            raise ConfigError(
                f"fail_rate must be in [0, 1), got {self.fail_rate}"
            )
        if not 0.0 <= self.fail_cost_fraction <= 1.0:
            raise ConfigError(
                "fail_cost_fraction must be in [0, 1], "
                f"got {self.fail_cost_fraction}"
            )
        if not 0.0 <= self.oom_rate < 1.0:
            raise ConfigError(
                f"oom_rate must be in [0, 1), got {self.oom_rate}"
            )
        if self.skew_factor < 1.0:
            raise ConfigError(
                f"skew_factor must be >= 1, got {self.skew_factor}"
            )

    @property
    def active(self) -> bool:
        return (
            self.stall_rate_per_s > 0
            or self.fail_rate > 0
            or self.oom_rate > 0
            or self.skew_factor != 1.0
        )

    # ------------------------------------------------------------------ #
    #: Spec keys accepted by :meth:`parse` and their plan fields.
    SPEC_KEYS = {
        "stall": "stall_rate_per_s",
        "stall_ms": "stall_ms",
        "fail": "fail_rate",
        "fail_cost": "fail_cost_fraction",
        "oom": "oom_rate",
        "skew": "skew_factor",
        "skew_replica": "skew_replicas",
    }

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from a CLI spec like ``"stall=2,fail=0.1,skew=3"``.

        Keys: ``stall`` (windows per second per replica), ``stall_ms``,
        ``fail`` (per-batch probability), ``fail_cost``, ``oom``
        (per-batch simulated-OOM probability), ``skew`` (multiplier),
        ``skew_replica`` (index, repeatable).

        Every malformed item — unknown key, junk number, negative rate,
        out-of-range probability — raises
        :class:`~repro.errors.ConfigError` naming the offending token
        and listing the valid keys, so a CLI typo fails fast with a
        usable message instead of a traceback mid-run.
        """
        fields: Dict[str, object] = {"seed": seed}
        skew_replicas: List[int] = []
        for part in filter(None, (p.strip() for p in spec.split(","))):
            if "=" not in part:
                raise ConfigError(
                    f"bad fault spec item {part!r}; expected key=value "
                    f"with keys {sorted(cls.SPEC_KEYS)}"
                )
            key, _, value = part.partition("=")
            key = key.strip()
            if key not in cls.SPEC_KEYS:
                raise ConfigError(
                    f"unknown fault key {key!r} in {part!r}; expected one "
                    f"of {sorted(cls.SPEC_KEYS)}"
                )
            try:
                if key == "skew_replica":
                    skew_replicas.append(int(value))
                else:
                    number = float(value)
                    if not math.isfinite(number):
                        raise ValueError(value)
                    fields[cls.SPEC_KEYS[key]] = number
            except ValueError:
                raise ConfigError(
                    f"bad fault value {value!r} for key {key!r} "
                    f"(valid keys: {sorted(cls.SPEC_KEYS)})"
                ) from None
        if skew_replicas:
            fields["skew_replicas"] = tuple(skew_replicas)
        try:
            return cls(**fields)  # type: ignore[arg-type]
        except ConfigError as exc:
            # Re-raise range errors with the spec context so the CLI user
            # sees which token of their --faults string is out of range.
            raise ConfigError(
                f"bad fault spec {spec!r}: {exc} "
                f"(valid keys: {sorted(cls.SPEC_KEYS)})"
            ) from None


class _StallStream:
    """Lazy per-replica stall-window generator.

    Windows are drawn on demand in virtual-time order (gap and duration
    both exponential), so the stream is a pure function of the seed as
    long as queries are monotone in time — which the event loop guarantees.
    """

    def __init__(self, plan: FaultPlan, replica: int):
        # str seeds hash via sha512: deterministic across runs/platforms.
        self._rng = random.Random(f"{plan.seed}/stall/{replica}")
        self._gap_ms = 1000.0 / plan.stall_rate_per_s
        self._mean_ms = plan.stall_ms
        self._start = self._rng.expovariate(1.0 / self._gap_ms)
        self._end = self._start + self._rng.expovariate(1.0 / self._mean_ms)
        self.windows_seen = 0

    def stalled_until(self, t_ms: float) -> Optional[float]:
        """End of the stall window covering ``t_ms``, or None when up."""
        while self._end <= t_ms:
            self.windows_seen += 1
            self._start = self._end + self._rng.expovariate(1.0 / self._gap_ms)
            self._end = self._start + self._rng.expovariate(1.0 / self._mean_ms)
        if self._start <= t_ms:
            return self._end
        return None


class FaultInjector:
    """Runtime-facing view of one :class:`FaultPlan` over N replicas."""

    def __init__(self, plan: FaultPlan, replicas: int):
        if replicas < 1:
            raise ConfigError(f"replicas must be >= 1, got {replicas}")
        self.plan = plan
        self.replicas = replicas
        self._stalls: Dict[int, _StallStream] = {}
        if plan.stall_rate_per_s > 0:
            self._stalls = {
                r: _StallStream(plan, r) for r in range(replicas)
            }
        skewed = plan.skew_replicas
        if not skewed and plan.skew_factor != 1.0:
            skewed = (replicas - 1,)
        for r in skewed:
            if not 0 <= r < replicas:
                raise ConfigError(
                    f"skew replica {r} out of range for {replicas} replicas"
                )
        self._skewed = frozenset(skewed)
        self.batch_failures = 0
        self.batch_ooms_injected = 0

    # ------------------------------------------------------------------ #
    def stalled_until(self, replica: int, now_ms: float) -> Optional[float]:
        """If ``replica`` is stalled at ``now_ms``, when it recovers."""
        stream = self._stalls.get(replica)
        if stream is None:
            return None
        return stream.stalled_until(now_ms)

    def slow_factor(self, replica: int) -> float:
        """Service-time multiplier of ``replica`` (1.0 = healthy)."""
        return self.plan.skew_factor if replica in self._skewed else 1.0

    def batch_fails(self, batch_id: int) -> bool:
        """Deterministic per-dispatch failure draw.

        Keyed by the global batch id (every retry/hedge dispatch gets a
        fresh id), so the draw does not depend on event interleaving.
        """
        if self.plan.fail_rate <= 0:
            return False
        draw = random.Random(f"{self.plan.seed}/fail/{batch_id}").random()
        failed = draw < self.plan.fail_rate
        if failed:
            self.batch_failures += 1
        return failed

    def batch_ooms(self, batch_id: int) -> bool:
        """Deterministic per-dispatch simulated-OOM draw.

        Same contract as :meth:`batch_fails`: keyed by the global batch
        id, so the draw is a pure function of ``(seed, batch_id)`` and
        independent of event interleaving.
        """
        if self.plan.oom_rate <= 0:
            return False
        draw = random.Random(f"{self.plan.seed}/oom/{batch_id}").random()
        oomed = draw < self.plan.oom_rate
        if oomed:
            self.batch_ooms_injected += 1
        return oomed

    def stalls_for(self, replica: int) -> int:
        """Stall windows fully elapsed so far on ``replica``."""
        stream = self._stalls.get(replica)
        return stream.windows_seen if stream is not None else 0

    @property
    def stall_windows(self) -> int:
        """Stall windows fully elapsed so far, across all replicas."""
        return sum(s.windows_seen for s in self._stalls.values())


#: A plan that injects nothing — the default for a healthy cluster.
NO_FAULTS = FaultPlan()
