"""Serving metrics: latency percentiles, throughput, queue depth, caches.

Everything is computed from the simulated clock, so a fixed-seed run always
reports the same numbers.  Rendering follows the repository's report idiom
(:func:`repro.utils.format.format_table`); :meth:`ServingMetrics.to_json`
exports the same data for machine consumption.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.request import RequestOutcome, RequestStatus
from repro.utils.format import format_table


def percentile_ms(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (0 for an empty sample)."""
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


@dataclasses.dataclass
class ServingMetrics:
    """Summary of one serving run.

    The cluster fields (``failed`` onward) were added with the
    fault-tolerant scale-out: retry / hedge / timeout counters, injected
    fault accounting and a per-replica breakdown rendered by
    :meth:`cluster_table`.
    """

    requests: int
    completed: int
    degraded: int
    shed: int
    deadline_misses: int
    makespan_ms: float
    throughput_rps: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    queue_wait_mean_ms: float
    service_mean_ms: float
    queue_depth_max: int
    queue_depth_mean: float
    policy_hit_rate: float
    kmap_hit_rate: float
    kmap_evictions: int
    batches: int
    mean_batch_size: float
    replica_utilization: float
    stage_us_per_request: Dict[str, float]
    failed: int = 0
    timed_out: int = 0
    retries: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    replica_stalls: int = 0
    batch_failures: int = 0
    oom_events: int = 0
    ladder_steps: int = 0
    oom_degraded: int = 0
    balancer: str = "round_robin"
    tuning_db_hits: int = 0
    tuning_db_misses: int = 0
    background_tunes: int = 0
    #: Virtual time at which the first batch was served with a *tuned*
    #: policy; -1 when no batch ever was.  The warm-vs-cold amortization
    #: signal: a pre-warmed tuning DB pulls it toward the first arrival.
    time_to_first_tuned_ms: float = -1.0
    #: Total cross-stream sync events charged across all executed batches
    #: (0 when ``gpu_streams == 1``: serialized runs need no events).
    sync_events: int = 0
    #: Overload / multi-tenancy counters (PR 9): arrivals denied by their
    #: tenant's token bucket, retries denied by an exhausted retry budget,
    #: circuit-breaker transitions, and autoscaler actions.
    quota_denied: int = 0
    retry_budget_exhausted: int = 0
    breaker_opens: int = 0
    breaker_closes: int = 0
    breaker_probes: int = 0
    scale_ups: int = 0
    scale_downs: int = 0
    replicas_final: int = 0
    replicas_peak: int = 0
    #: Total replica-provisioned virtual time (fleet-seconds paid for),
    #: and the headline efficiency figure derived from it: replica-hours
    #: per million completed requests.
    provisioned_ms: float = 0.0
    cost_per_million: float = 0.0
    #: The SLO the run was judged against (0 = per-request deadlines) and
    #: the fraction of requests that met it, overall and for the top
    #: (numerically lowest) priority class.
    slo_ms: float = 0.0
    slo_attainment: float = 0.0
    slo_attainment_top: float = 0.0
    per_replica: List[Dict[str, float]] = dataclasses.field(
        default_factory=list
    )
    #: Per-tenant breakdown rendered by :meth:`tenant_table`; one row per
    #: tenant, keyed "tenant" (name) plus numeric counters.
    per_tenant: List[Dict[str, object]] = dataclasses.field(
        default_factory=list
    )

    # ------------------------------------------------------------------ #
    def to_table(self) -> str:
        rows = [
            ["requests", str(self.requests)],
            ["completed", str(self.completed)],
            ["degraded", str(self.degraded)],
            ["shed", str(self.shed)],
            ["failed", str(self.failed)],
            ["timed out", str(self.timed_out)],
            ["retries", str(self.retries)],
            ["hedges", f"{self.hedges} ({self.hedge_wins} won)"],
            ["replica stalls", str(self.replica_stalls)],
            ["batch failures", str(self.batch_failures)],
            ["oom events", str(self.oom_events)],
            ["ladder steps taken", str(self.ladder_steps)],
            ["oom-degraded requests", str(self.oom_degraded)],
            ["balancer", self.balancer],
            ["deadline misses", str(self.deadline_misses)],
            ["makespan", f"{self.makespan_ms:.1f} ms"],
            ["throughput", f"{self.throughput_rps:.2f} req/s"],
            ["latency p50", f"{self.latency_p50_ms:.2f} ms"],
            ["latency p95", f"{self.latency_p95_ms:.2f} ms"],
            ["latency p99", f"{self.latency_p99_ms:.2f} ms"],
            ["latency mean", f"{self.latency_mean_ms:.2f} ms"],
            ["queue wait mean", f"{self.queue_wait_mean_ms:.2f} ms"],
            ["service mean", f"{self.service_mean_ms:.2f} ms"],
            ["queue depth max", str(self.queue_depth_max)],
            ["queue depth mean", f"{self.queue_depth_mean:.2f}"],
            ["policy cache hit rate", f"{100 * self.policy_hit_rate:.1f}%"],
            ["tuning db hits / misses",
             f"{self.tuning_db_hits} / {self.tuning_db_misses}"],
            ["background tunes", str(self.background_tunes)],
            ["time to first tuned",
             (f"{self.time_to_first_tuned_ms:.1f} ms"
              if self.time_to_first_tuned_ms >= 0 else "never")],
            ["kmap cache hit rate", f"{100 * self.kmap_hit_rate:.1f}%"],
            ["kmap evictions", str(self.kmap_evictions)],
            ["batches", str(self.batches)],
            ["mean batch size", f"{self.mean_batch_size:.2f}"],
            ["replica utilization", f"{100 * self.replica_utilization:.1f}%"],
            ["gpu sync events", str(self.sync_events)],
            ["quota denied", str(self.quota_denied)],
            ["retry budget exhausted", str(self.retry_budget_exhausted)],
            ["breaker opens / closes / probes",
             f"{self.breaker_opens} / {self.breaker_closes} / "
             f"{self.breaker_probes}"],
            ["scale ups / downs", f"{self.scale_ups} / {self.scale_downs}"],
            ["replicas final / peak",
             f"{self.replicas_final} / {self.replicas_peak}"],
            ["provisioned", f"{self.provisioned_ms:.1f} replica-ms"],
            ["cost / 1M requests",
             f"{self.cost_per_million:.3f} replica-hours"],
            ["slo target",
             f"{self.slo_ms:.1f} ms" if self.slo_ms > 0 else "deadline"],
            ["slo attainment", f"{100 * self.slo_attainment:.2f}%"],
            ["slo attainment (top class)",
             f"{100 * self.slo_attainment_top:.2f}%"],
        ]
        return format_table(["metric", "value"], rows, title="serving summary")

    def stage_table(self) -> str:
        total = sum(self.stage_us_per_request.values()) or 1.0
        rows = [
            [stage, f"{us:.1f}", f"{100 * us / total:.1f}%"]
            for stage, us in sorted(
                self.stage_us_per_request.items(), key=lambda kv: -kv[1]
            )
        ]
        return format_table(
            ["stage", "us/request", "share"], rows,
            title="per-request stage breakdown (simulated)",
        )

    def cluster_table(self) -> str:
        """Per-replica utilization / fault summary (the cluster view)."""
        rows = [
            [
                str(int(r["replica"])),
                str(int(r["batches"])),
                f"{r['busy_ms']:.1f}",
                f"{100 * r['utilization']:.1f}%",
                f"{100 * r['kmap_hit_rate']:.1f}%",
                str(int(r["stalls"])),
                str(int(r["failures"])),
                str(int(r.get("ooms", 0))),
                str(int(r["retries_served"])),
                str(int(r["hedges_served"])),
                (f"{int(r.get('breaker_opens', 0))}/"
                 f"{int(r.get('breaker_closes', 0))}"),
                f"{r.get('provisioned_ms', 0.0):.1f}",
            ]
            for r in self.per_replica
        ]
        return format_table(
            ["replica", "batches", "busy ms", "util", "kmap hits",
             "stalls", "failures", "ooms", "retries", "hedges",
             "brk o/c", "prov ms"],
            rows,
            title=f"cluster summary ({self.balancer} balancer)",
        )

    def tenant_table(self) -> str:
        """Per-tenant admission / outcome / SLO summary."""
        rows = [
            [
                str(r["tenant"]),
                str(int(r["priority"])),
                str(int(r["requests"])),
                str(int(r["completed"])),
                str(int(r["degraded"])),
                str(int(r["shed"])),
                str(int(r["quota_denied"])),
                str(int(r["timed_out"])),
                str(int(r["failed"])),
                str(int(r["retries"])),
                str(int(r["budget_exhausted"])),
                str(int(r["deadline_misses"])),
                f"{r['latency_p99_ms']:.2f}",
                f"{100 * r['slo_attainment']:.2f}%",
            ]
            for r in self.per_tenant
        ]
        return format_table(
            ["tenant", "prio", "reqs", "done", "degr", "shed", "quota",
             "t/o", "fail", "retry", "budget", "miss", "p99 ms", "slo"],
            rows,
            title="per-tenant summary",
        )

    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ServingMetrics":
        """Inverse of :meth:`to_json` (every field is JSON-native)."""
        payload = json.loads(text)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown ServingMetrics fields in JSON: {sorted(unknown)}"
            )
        return cls(**payload)


def _slo_met(outcome: RequestOutcome, slo_ms: float) -> bool:
    """Did one request meet the run's SLO?

    ``slo_ms > 0`` judges end-to-end latency against that fixed target;
    ``slo_ms == 0`` falls back to the request's own deadline.  Requests
    that never completed (shed / timed out / failed) always miss.
    """
    if not outcome.completed:
        return False
    if slo_ms > 0:
        return outcome.latency_ms <= slo_ms
    return not outcome.deadline_missed


def _tenant_rows(
    outcomes: Sequence[RequestOutcome], slo_ms: float
) -> List[Dict[str, object]]:
    """One summary row per tenant, ordered by (priority, name)."""
    by_tenant: Dict[str, List[RequestOutcome]] = {}
    for o in outcomes:
        by_tenant.setdefault(o.request.tenant, []).append(o)
    rows: List[Dict[str, object]] = []
    for name, group in by_tenant.items():
        served = [o for o in group if o.completed]
        latencies = [o.latency_ms for o in served]
        rows.append({
            "tenant": name,
            "priority": min(o.request.priority for o in group),
            "requests": len(group),
            "completed": len(served),
            "degraded": sum(1 for o in group if o.degraded),
            "shed": sum(
                1 for o in group if o.status is RequestStatus.SHED
            ),
            "quota_denied": sum(1 for o in group if o.quota_denied),
            "timed_out": sum(
                1 for o in group if o.status is RequestStatus.TIMED_OUT
            ),
            "failed": sum(
                1 for o in group if o.status is RequestStatus.FAILED
            ),
            "retries": sum(max(o.attempts - 1, 0) for o in group),
            "budget_exhausted": sum(
                1 for o in group if o.budget_exhausted
            ),
            "deadline_misses": sum(1 for o in served if o.deadline_missed),
            "latency_p99_ms": percentile_ms(latencies, 99),
            "slo_attainment": (
                sum(1 for o in group if _slo_met(o, slo_ms)) / len(group)
            ),
        })
    rows.sort(key=lambda r: (r["priority"], r["tenant"]))  # type: ignore[arg-type, return-value]
    return rows


def compute_metrics(
    outcomes: Sequence[RequestOutcome],
    depth_samples: Sequence[Tuple[float, int]],
    policy_hit_rate: float,
    kmap_hit_rate: float,
    kmap_evictions: int,
    batches: int,
    replica_busy_ms: float,
    replicas: int,
    stage_us_totals: Optional[Dict[str, float]] = None,
    replica_stalls: int = 0,
    batch_failures: int = 0,
    oom_events: int = 0,
    ladder_steps: int = 0,
    balancer: str = "round_robin",
    tuning_db_hits: int = 0,
    tuning_db_misses: int = 0,
    background_tunes: int = 0,
    time_to_first_tuned_ms: float = -1.0,
    sync_events: int = 0,
    per_replica: Optional[List[Dict[str, float]]] = None,
    quota_denied: int = 0,
    retry_budget_exhausted: int = 0,
    breaker_opens: int = 0,
    breaker_closes: int = 0,
    breaker_probes: int = 0,
    scale_ups: int = 0,
    scale_downs: int = 0,
    replicas_peak: int = 0,
    provisioned_ms: float = 0.0,
    slo_ms: float = 0.0,
) -> ServingMetrics:
    """Fold raw run records into a :class:`ServingMetrics`."""
    served = [o for o in outcomes if o.completed]
    latencies = [o.latency_ms for o in served]
    queue_waits = [o.queue_ms for o in served]
    services = [o.service_ms for o in served]
    finish = max((o.finish_ms for o in served), default=0.0)
    first_arrival = min(
        (o.request.arrival_ms for o in outcomes), default=0.0
    )
    makespan = max(finish - first_arrival, 0.0)
    depths = [d for _, d in depth_samples]
    stage_totals = stage_us_totals or {}
    per_request = {
        stage: us / max(len(served), 1) for stage, us in stage_totals.items()
    }
    replica_rows = []
    for row in per_replica or []:
        row = dict(row)
        # An autoscaled replica is only accountable for the window it was
        # provisioned; fall back to the run makespan for static fleets.
        horizon = row.get("provisioned_ms", 0.0) or makespan
        row["utilization"] = row["busy_ms"] / horizon if horizon else 0.0
        replica_rows.append(row)
    # Fleet-level capacity actually paid for: the sum of per-replica
    # provisioned windows when autoscaling tracked them, else the static
    # fleet for the whole makespan.
    fleet_ms = provisioned_ms or replicas * makespan
    slo_met = sum(1 for o in outcomes if _slo_met(o, slo_ms))
    top = min((o.request.priority for o in outcomes), default=0)
    top_group = [o for o in outcomes if o.request.priority == top]
    top_met = sum(1 for o in top_group if _slo_met(o, slo_ms))
    return ServingMetrics(
        requests=len(outcomes),
        completed=len(served),
        degraded=sum(1 for o in outcomes if o.status is RequestStatus.DEGRADED),
        shed=sum(1 for o in outcomes if o.status is RequestStatus.SHED),
        deadline_misses=sum(1 for o in served if o.deadline_missed),
        makespan_ms=makespan,
        throughput_rps=(1000.0 * len(served) / makespan) if makespan else 0.0,
        latency_p50_ms=percentile_ms(latencies, 50),
        latency_p95_ms=percentile_ms(latencies, 95),
        latency_p99_ms=percentile_ms(latencies, 99),
        latency_mean_ms=float(np.mean(latencies)) if latencies else 0.0,
        queue_wait_mean_ms=float(np.mean(queue_waits)) if queue_waits else 0.0,
        service_mean_ms=float(np.mean(services)) if services else 0.0,
        queue_depth_max=max(depths) if depths else 0,
        queue_depth_mean=float(np.mean(depths)) if depths else 0.0,
        policy_hit_rate=policy_hit_rate,
        kmap_hit_rate=kmap_hit_rate,
        kmap_evictions=kmap_evictions,
        batches=batches,
        mean_batch_size=(len(served) / batches) if batches else 0.0,
        replica_utilization=(
            replica_busy_ms / fleet_ms if fleet_ms else 0.0
        ),
        stage_us_per_request=per_request,
        failed=sum(1 for o in outcomes if o.status is RequestStatus.FAILED),
        timed_out=sum(
            1 for o in outcomes if o.status is RequestStatus.TIMED_OUT
        ),
        retries=sum(max(o.attempts - 1, 0) for o in outcomes),
        hedges=sum(1 for o in outcomes if o.hedged),
        hedge_wins=sum(1 for o in outcomes if o.hedge_won),
        replica_stalls=replica_stalls,
        batch_failures=batch_failures,
        oom_events=oom_events,
        ladder_steps=ladder_steps,
        oom_degraded=sum(1 for o in outcomes if o.ladder),
        balancer=balancer,
        tuning_db_hits=tuning_db_hits,
        tuning_db_misses=tuning_db_misses,
        background_tunes=background_tunes,
        time_to_first_tuned_ms=time_to_first_tuned_ms,
        sync_events=sync_events,
        quota_denied=quota_denied,
        retry_budget_exhausted=retry_budget_exhausted,
        breaker_opens=breaker_opens,
        breaker_closes=breaker_closes,
        breaker_probes=breaker_probes,
        scale_ups=scale_ups,
        scale_downs=scale_downs,
        replicas_final=replicas,
        replicas_peak=replicas_peak or replicas,
        provisioned_ms=fleet_ms,
        cost_per_million=(
            fleet_ms / len(served) * 1e6 / 3.6e6 if served else 0.0
        ),
        slo_ms=slo_ms,
        slo_attainment=slo_met / len(outcomes) if outcomes else 0.0,
        slo_attainment_top=(
            top_met / len(top_group) if top_group else 0.0
        ),
        per_replica=replica_rows,
        per_tenant=_tenant_rows(outcomes, slo_ms),
    )
