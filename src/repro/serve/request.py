"""Request model for the serving runtime.

A request asks for one inference over a LiDAR scene.  Requests belong to a
*stream* (one vehicle's sensor feed): consecutive frames of a stream share
scene geometry, which is what makes the serve-side kernel-map cache
(:class:`repro.serve.cache.KmapCache`) profitable — exactly the "reuse a
tuned schedule for millions of scenes" deployment story of Section 4.2.

All times are in *simulated* milliseconds on the runtime's virtual clock;
nothing here reads a wall clock, so every serving run is deterministic.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional, Tuple

from repro.serve.cache import scene_key


class RequestStatus(enum.Enum):
    """Terminal state of a request."""

    COMPLETED = "completed"  # served within the normal path
    DEGRADED = "degraded"  # served with the fallback (untuned) config
    SHED = "shed"  # rejected at admission: queue full
    TIMED_OUT = "timed_out"  # dropped from the queue after timeout_ms
    FAILED = "failed"  # every attempt failed and retries are exhausted


@dataclasses.dataclass(frozen=True)
class InferenceRequest:
    """One inference request over a synthetic LiDAR scene.

    Attributes:
        request_id: Monotonically increasing id (arrival order).
        workload_id: Which benchmark workload the scene belongs to
            (:mod:`repro.models`), e.g. ``"SK-M-1.0"``.
        stream_id: Scene stream (vehicle).  Frames of one stream share
            coordinates, enabling kernel-map reuse across requests.
        frame_index: Frame number within the stream.
        scene_seed: Seed for the scene generator — equal seeds mean equal
            geometry (and therefore kmap-cache hits).
        arrival_ms: Arrival time on the simulated clock.
        deadline_ms: Relative latency budget; the absolute deadline is
            ``arrival_ms + deadline_ms``.
        tenant: Name of the tenant the request belongs to
            (:class:`repro.serve.admission.TenantSpec`); single-tenant
            schedules use ``"default"``.
        priority: Priority class inherited from the tenant (0 = highest).
            Under queue pressure the runtime sheds lowest-priority-first.
    """

    request_id: int
    workload_id: str
    stream_id: int
    frame_index: int
    scene_seed: int
    arrival_ms: float
    deadline_ms: float
    tenant: str = "default"
    priority: int = 0

    @property
    def absolute_deadline_ms(self) -> float:
        return self.arrival_ms + self.deadline_ms

    @property
    def scene_key(self) -> tuple:
        """Cache identity of the request's scene geometry.

        Delegates to :func:`repro.serve.cache.scene_key` — the one
        canonical derivation shared with the kmap cache and the runtime's
        per-sample cost memo.
        """
        return scene_key(self.workload_id, self.scene_seed)


@dataclasses.dataclass
class RequestOutcome:
    """What happened to one request.

    ``start_ms``/``finish_ms`` are ``None`` for requests that never ran
    (shed / timed out in the queue).  Latency is end-to-end: admission to
    batch completion, queueing and any retry backoff included.
    ``attempts`` counts dispatches (1 = first try succeeded); ``hedged``
    marks requests whose batch was duplicated onto a second replica, and
    ``hedge_won`` marks those the hedge finished first for.  ``ladder``
    lists the degradation-ladder rungs taken to recover the request's
    batch from a simulated OOM (empty when memory never ran out).
    ``budget_exhausted`` marks FAILED requests whose tenant's retry
    budget denied a retry that ``max_retries`` would still have granted;
    ``quota_denied`` marks SHED requests dropped by their tenant's token
    bucket rather than by queue pressure.
    """

    request: InferenceRequest
    status: RequestStatus
    start_ms: Optional[float] = None
    finish_ms: Optional[float] = None
    batch_id: Optional[int] = None
    batch_size: int = 0
    replica: Optional[int] = None
    policy_hit: bool = False
    kmap_hit: bool = False
    service_ms: float = 0.0
    attempts: int = 1
    hedged: bool = False
    hedge_won: bool = False
    ladder: Tuple[str, ...] = ()
    budget_exhausted: bool = False
    quota_denied: bool = False

    @property
    def completed(self) -> bool:
        return self.status in (RequestStatus.COMPLETED, RequestStatus.DEGRADED)

    @property
    def degraded(self) -> bool:
        return self.status is RequestStatus.DEGRADED

    @property
    def latency_ms(self) -> float:
        if self.finish_ms is None:
            raise ValueError("shed requests have no latency")
        return self.finish_ms - self.request.arrival_ms

    @property
    def queue_ms(self) -> float:
        if self.start_ms is None:
            raise ValueError("shed requests have no queue time")
        return self.start_ms - self.request.arrival_ms

    @property
    def deadline_missed(self) -> bool:
        return (
            self.finish_ms is not None
            and self.finish_ms > self.request.absolute_deadline_ms
        )
