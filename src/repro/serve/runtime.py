"""The serving runtime: a deterministic, simulated-clock inference cluster.

Architecture (one `serve()` call = one serving run):

* a precomputed **request schedule** (from :mod:`repro.serve.arrivals`)
  drives a discrete-event loop — events are request arrivals, device
  completions, batching-window timers and retry re-admissions, all on one
  virtual clock;
* a bounded :class:`~repro.serve.batcher.RequestQueue` applies admission
  control (overflowing arrivals are shed; optionally, queued requests
  older than ``timeout_ms`` are dropped), and a
  :class:`~repro.serve.batcher.DynamicBatcher` groups queued requests
  under a point budget and deadline window;
* **N device replicas** (:class:`DeviceReplica`) serve batches; a pluggable
  :class:`~repro.serve.balancer.LoadBalancer` decides which replica a batch
  lands on (round-robin, least-loaded, join-shortest-queue, or
  cache-affinity routing onto warm kernel-map state).  Each batch executes
  the workload's model through an
  :class:`~repro.nn.context.ExecutionContext` in ``simulate_only`` mode,
  and :mod:`repro.gpusim` turns the trace into the batch's service time;
* a deterministic **fault model** (:mod:`repro.serve.faults`) may stall
  replicas (they drain in-flight work and rejoin on recovery), fail
  batches transiently, and skew per-replica speed; failed requests are
  retried with exponential backoff up to ``max_retries`` and batches
  predicted to run long can be **hedged** onto a second replica, taking
  whichever copy finishes first;
* a cluster-global :class:`~repro.serve.cache.PolicyCache` holds tuned
  :class:`~repro.nn.context.GroupPolicy` objects (pre-warmed from
  ``python -m repro tune`` output or tuned inline), while each replica
  owns a private :class:`~repro.serve.cache.KmapCache` — warm map state
  lives in one device's memory, which is what cache-affinity routing
  exploits;
* when the policy cache misses **under deadline pressure** the batch is
  served with the untuned default :class:`LayerConfig` instead of waiting
  for a tuner run — graceful degradation, counted and reported.

Nothing reads a wall clock, and every fault decision is a seeded pure
function of the schedule: a fixed configuration yields bit-identical
metrics on every run, faults included.
"""

from __future__ import annotations

import dataclasses
import heapq
import random
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import AdmissionError, ConfigError, SimulatedOOMError
from repro.gpusim.engine import enforce_memory_budget, memory_budget_bytes
from repro.hw.specs import DeviceSpec, get_device
from repro.models.registry import Workload, get_workload
from repro.nn.context import ExecutionContext, FixedPolicy, GroupPolicy, LayerConfig
from repro.nn.module import Module
from repro.precision import Precision
from repro.serve.admission import (
    PriorityRequestQueue,
    RetryBudget,
    TenantSpec,
    TokenBucket,
)
from repro.serve.autoscale import AutoscalePolicy, Autoscaler
from repro.serve.balancer import BALANCERS, get_balancer
from repro.serve.batcher import DynamicBatcher, RequestQueue
from repro.serve.breaker import CircuitBreaker
from repro.serve.cache import KmapCache, KmapEntry, PolicyCache, PolicyKey
from repro.serve.faults import NO_FAULTS, FaultInjector, FaultPlan
from repro.serve.metrics import ServingMetrics, compute_metrics
from repro.serve.request import InferenceRequest, RequestOutcome, RequestStatus
from repro.resilience import (
    DegradationLadder,
    ExecState,
    model_footprint,
    model_weight_bytes,
)
from repro.sparse.tensor import SparseTensor


@dataclasses.dataclass(frozen=True)
class ServeConfig:
    """Configuration of one serving runtime.

    Attributes:
        device / precision: the simulated GPU replicas and numeric
            precision every batch runs at.
        replicas: number of identical device replicas.
        balancer: replica-selection policy; one of
            :data:`repro.serve.balancer.BALANCERS` (``round_robin``,
            ``least_loaded``, ``jsq``, ``cache_affinity``).
        replica_queue_depth: in-flight batches one replica may hold; 1
            dispatches only to idle replicas, >1 lets load-aware balancers
            pipeline work behind busy replicas.
        queue_depth: admission-control bound; arrivals past it are shed.
        point_budget / max_batch_requests / batch_window_ms: dynamic
            batching knobs (see :class:`DynamicBatcher`).
        kmap_cache_size: LRU capacity of each replica's kernel-map reuse
            cache, in scenes.
        dispatch_overhead_us: fixed host-side cost per batch dispatch
            (scheduler decision, output routing).
        preprocess_us_per_point: per-request voxelization/feature cost,
            proportional to scene points.
        autotune_on_miss: tune inline on a policy-cache miss (paying
            ``tune_penalty_ms`` of simulated device time) instead of
            degrading to the default config.  Off by default: serving
            stacks pre-warm policies offline.
        tune_penalty_ms: simulated device occupancy of one inline tuner
            run.
        pressure_fraction: a request is under deadline pressure once it
            has waited this fraction of its deadline; pressured batches
            never wait for an inline tuner.
        scene_scale: azimuth-resolution scale of generated scenes — a
            wall-clock knob only (simulated numbers scale with it but
            stay internally consistent; comparisons hold at any scale).
        tune_scenes: sample scenes per inline/warmup tuner run.
        faults: injected failure model (:class:`FaultPlan`); None serves
            a healthy cluster.
        max_retries: re-dispatches granted to a request whose batch fails
            transiently; past it the request's status is ``FAILED``.
        retry_backoff_ms: base of the exponential retry backoff — attempt
            ``k`` waits ``retry_backoff_ms * 2**(k-1)`` after the failure.
        timeout_ms: drop queued requests older than this (``TIMED_OUT``);
            0 disables timeouts.  In-flight requests always resolve.
        hedge_ms: duplicate a batch onto a second replica when its
            predicted service time exceeds this (tail-latency hedging;
            the earlier copy wins); 0 disables hedging.
        tuning_db: path to a persistent :class:`repro.autotune`
            tuning database.  When set, policy-cache misses are resolved
            by the online tuner: a warm DB yields a tuned policy
            immediately (the surrogate only ranks, the DB supplies
            verified winners), while cold layers serve degraded and
            enqueue a background tuning job on the virtual clock.  The
            path need not exist yet (a cold replica starts empty); use
            :meth:`ServingRuntime.save_tuning_db` to persist what was
            learned.
        background_tune_ms: simulated latency of one background online
            tuning job (surrogate ranking + top-k trace verification on
            a worker thread); the tuned policy installs once the virtual
            clock passes it.
        lint_admission: statically lint every model at admission
            (:func:`repro.analyze.lint_model`) and reject models with
            error-level findings (:class:`~repro.errors.AdmissionError`)
            before any replica accepts traffic for them.
        gpu_streams: virtual GPU streams each replica overlaps
            independent kernel launches on; ``> 1`` prices every batch
            with the dependence-aware multi-stream scheduler
            (:mod:`repro.opt.schedule`) instead of serializing launches.
        mem_headroom: fraction of each replica's DRAM reserved for what
            the simulator does not trace (CUDA context, fragmentation);
            the usable budget is ``dram_bytes * (1 - mem_headroom)``.  A
            batch whose modeled peak exceeds its replica's budget raises
            a simulated OOM and is recovered in place via the degradation
            ladder (:mod:`repro.resilience`); admission rejects models
            whose static weight footprint alone exceeds the smallest
            replica budget.
        tenants: the tenant roster (:class:`TenantSpec`); empty serves a
            single implicit ``"default"`` tenant.  Tenants bring per-tenant
            quotas (token buckets), priority classes and retry budgets.
        priority_shedding: shed lowest-priority-first under queue
            pressure (an arriving higher-class request displaces the
            youngest worst-class queued request) instead of dropping
            arrivals FIFO-style.  Only takes effect when the schedule
            actually carries more than one priority class.
        retry_jitter: multiply every retry backoff by a seeded factor in
            ``[0.5, 1.5)`` so synchronized failures do not re-arrive as a
            synchronized retry wave.  Deterministic per (seed, request,
            attempt); disable for the legacy fixed-backoff behaviour.
        retry_budget: default retries-per-success ratio of every tenant
            that does not set its own; negative disables retry budgets.
        breaker_failures: consecutive batch failures that open a
            replica's circuit breaker (balancers then skip it for
            ``breaker_cooldown_ms``, after which one half-open probe
            decides re-close vs re-open); 0 disables breakers.
        breaker_cooldown_ms: OPEN-state duration before the probe.
        autoscale: SLO-driven autoscaling policy
            (:class:`~repro.serve.autoscale.AutoscalePolicy`); None keeps
            the fleet static at ``replicas``.
        slo_ms: latency target requests are judged against in the SLO
            attainment metrics (and by the autoscaler when active); 0
            judges each request against its own deadline.
        batch_memo: memoize the expensive model-execution portion of
            identical batches (same workload, scenes, cache-warmth
            pattern and policy-cache content).  Purely an evaluation-
            speed knob: memoized and unmemoized runs produce identical
            metrics, it only skips re-simulating work whose outcome is
            already known.  On by default; large traffic sweeps are
            infeasible without it.
    """

    device: str = "a100"
    precision: str = "fp16"
    replicas: int = 1
    balancer: str = "round_robin"
    replica_queue_depth: int = 1
    queue_depth: int = 32
    point_budget: int = 400_000
    max_batch_requests: int = 8
    batch_window_ms: float = 10.0
    kmap_cache_size: int = 16
    dispatch_overhead_us: float = 150.0
    preprocess_us_per_point: float = 0.002
    autotune_on_miss: bool = False
    tune_penalty_ms: float = 250.0
    pressure_fraction: float = 0.5
    scene_scale: float = 0.25
    tune_scenes: int = 1
    faults: Optional[FaultPlan] = None
    max_retries: int = 0
    retry_backoff_ms: float = 5.0
    timeout_ms: float = 0.0
    hedge_ms: float = 0.0
    tuning_db: Optional[str] = None
    background_tune_ms: float = 25.0
    lint_admission: bool = True
    mem_headroom: float = 0.1
    gpu_streams: int = 1
    tenants: Tuple[TenantSpec, ...] = ()
    priority_shedding: bool = True
    retry_jitter: bool = True
    retry_budget: float = -1.0
    breaker_failures: int = 0
    breaker_cooldown_ms: float = 250.0
    autoscale: Optional[AutoscalePolicy] = None
    slo_ms: float = 0.0
    batch_memo: bool = True

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ConfigError(f"replicas must be >= 1, got {self.replicas}")
        if self.gpu_streams < 1:
            raise ConfigError(
                f"gpu_streams must be >= 1, got {self.gpu_streams}"
            )
        if self.balancer not in BALANCERS:
            raise ConfigError(
                f"unknown balancer {self.balancer!r}; known balancers: "
                f"{', '.join(sorted(BALANCERS))}"
            )
        if self.replica_queue_depth < 1:
            raise ConfigError(
                f"replica_queue_depth must be >= 1, "
                f"got {self.replica_queue_depth}"
            )
        if not 0.0 < self.pressure_fraction <= 1.0:
            raise ConfigError(
                f"pressure_fraction must be in (0, 1], got {self.pressure_fraction}"
            )
        if self.dispatch_overhead_us < 0 or self.preprocess_us_per_point < 0:
            raise ConfigError("overheads must be non-negative")
        if self.tune_penalty_ms < 0:
            raise ConfigError("tune_penalty_ms must be non-negative")
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff_ms < 0:
            raise ConfigError("retry_backoff_ms must be non-negative")
        if self.timeout_ms < 0 or self.hedge_ms < 0:
            raise ConfigError("timeout_ms / hedge_ms must be non-negative")
        if self.background_tune_ms < 0:
            raise ConfigError("background_tune_ms must be non-negative")
        if self.tuning_db is not None and not str(self.tuning_db).strip():
            raise ConfigError("tuning_db path must be non-empty when set")
        if not 0.0 <= self.mem_headroom < 1.0:
            raise ConfigError(
                f"mem_headroom must be in [0, 1), got {self.mem_headroom}"
            )
        names = [t.name for t in self.tenants]
        if len(names) != len(set(names)):
            raise ConfigError(f"duplicate tenant names in roster: {names}")
        if self.breaker_failures < 0:
            raise ConfigError(
                f"breaker_failures must be >= 0, got {self.breaker_failures}"
            )
        if self.breaker_cooldown_ms <= 0:
            raise ConfigError(
                f"breaker_cooldown_ms must be positive, "
                f"got {self.breaker_cooldown_ms}"
            )
        if self.slo_ms < 0:
            raise ConfigError(f"slo_ms must be >= 0, got {self.slo_ms}")


@dataclasses.dataclass
class DeviceReplica:
    """One simulated device with its own clock, queue and warm map cache.

    The lifecycle fields support autoscaling: ``provisioned_at_ms`` marks
    when the replica joined the fleet (0 for the static fleet), a
    draining replica accepts no new batches, and ``retired_at_ms`` is set
    once its in-flight work resolved and it left the fleet.  ``breaker``
    is the replica's circuit breaker when breakers are enabled.
    """

    index: int
    spec: DeviceSpec
    busy_ms: float = 0.0
    batches: int = 0
    inflight: int = 0
    free_at_ms: float = 0.0
    kmap_cache: Optional[KmapCache] = None
    failures: int = 0
    retries_served: int = 0
    hedges_served: int = 0
    ooms: int = 0
    breaker: Optional[CircuitBreaker] = None
    provisioned_at_ms: float = 0.0
    draining: bool = False
    retired_at_ms: Optional[float] = None

    @property
    def retired(self) -> bool:
        return self.retired_at_ms is not None


@dataclasses.dataclass(frozen=True)
class _BatchCost:
    """Memoized result of one batch's (simulated) model execution.

    Everything downstream of :meth:`ServingRuntime._execute`'s expensive
    portion — service time, stage breakdown, OOM/ladder outcome and the
    per-request kernel-map charge keys — as a pure value.  The memo key
    captures every input the execution depends on, so replaying a cached
    cost is byte-identical to re-simulating it.
    """

    service_ms: float  # model + ladder retry + preprocess (no dispatch)
    stages: Tuple[Tuple[str, float], ...]
    ladder: Tuple[str, ...]
    sync_events: int
    oomed: bool
    degraded: bool
    #: Charge keys of each scene the execution cold-filled, keyed by
    #: scene — not by batch position, so one memoized cost replays
    #: correctly for any batch ordering with the same fingerprint.
    charges: Tuple[Tuple[tuple, FrozenSet[tuple]], ...]


@dataclasses.dataclass(frozen=True)
class _SampleCost:
    """Memoized single-sample simulation at a fixed cache warmth.

    On one GPU stream the simulated trace serializes, so every batch
    quantity is a per-sample sum (latency, stage breakdown, preprocess,
    co-resident feature bytes) or max (liveness-aware peak workspace) —
    scene charge keys are per-kernel-map and disjoint across scenes, so
    a sample's cost is independent of its batchmates.  Batch costs
    compose from these (:meth:`ServingRuntime._compose_cost`), which
    collapses the memo space from "every distinct batch composition"
    to "every distinct (scene, warmth)".
    """

    latency_us: float
    stages: Tuple[Tuple[str, float], ...]
    preprocess_us: float
    feature_bytes: float
    peak_workspace_bytes: float
    charge: FrozenSet[tuple]  # keys a cold fill would record (empty if warm)


@dataclasses.dataclass
class _Attempt:
    """One dispatch of a batch onto one replica (primary or hedge copy)."""

    replica: DeviceReplica
    batch_id: int
    start_ms: float
    finish_ms: float
    service_ms: float
    failed: bool
    policy_hit: bool
    degraded: bool
    kmap_hits: List[bool]
    ladder: Tuple[str, ...] = ()


class SceneProvider:
    """Materialises (and memoises) request scenes.

    Frames of one stream share a ``scene_seed``, so they resolve to the
    *same* :class:`SparseTensor` — its ``MapCache`` then carries kernel
    maps across requests, mirroring an engine that keeps per-stream map
    state resident.
    """

    def __init__(self, scale: float):
        self.scale = scale
        self._samples: Dict[tuple, SparseTensor] = {}

    def sample(self, workload: Workload, request: InferenceRequest) -> SparseTensor:
        key = request.scene_key
        if key not in self._samples:
            from repro.data.datasets import make_sample

            self._samples[key] = make_sample(
                workload.dataset,
                frames=workload.frames,
                seed=request.scene_seed,
                scale=self.scale,
            )
        return self._samples[key]

    def points(self, workload: Workload, request: InferenceRequest) -> int:
        return self.sample(workload, request).num_points


@dataclasses.dataclass
class ServeResult:
    """Everything one serving run produced."""

    config: ServeConfig
    outcomes: List[RequestOutcome]
    metrics: ServingMetrics

    def describe(self) -> str:
        parts = [self.metrics.to_table(), self.metrics.stage_table()]
        if self.metrics.per_replica:
            parts.append(self.metrics.cluster_table())
        tenants = self.metrics.per_tenant
        if tenants and (
            len(tenants) > 1 or tenants[0].get("tenant") != "default"
        ):
            parts.append(self.metrics.tenant_table())
        return "\n\n".join(parts)


class ServingRuntime:
    """Request-driven serving over a cluster of simulated device replicas."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        policy_cache: Optional[PolicyCache] = None,
    ):
        self.config = config or ServeConfig()
        self.device = get_device(self.config.device)
        self.precision = Precision.parse(self.config.precision)
        self.policy_cache = policy_cache or PolicyCache()
        self.scenes = SceneProvider(scale=self.config.scene_scale)
        self.default_config = LayerConfig()
        self.ladder = DegradationLadder()
        self.memory_budget = memory_budget_bytes(
            self.device, self.config.mem_headroom
        )
        self._models: Dict[str, Module] = {}
        self._tuned_inline: set = set()
        #: Online-tuning state (active only when config.tuning_db is set).
        self.tuning_db = None
        self.online_tuner = None
        if self.config.tuning_db is not None:
            from repro.autotune import OnlineTuner, TuningDatabase

            self.tuning_db = TuningDatabase.load_or_create(
                self.config.tuning_db
            )
            self.online_tuner = OnlineTuner(self.tuning_db)
        #: Pending background tunes: policy key -> (completes_at_ms, policy).
        self._bg_tunes: Dict[PolicyKey, Tuple[float, GroupPolicy]] = {}
        self.background_tunes = 0
        #: Virtual time the first batch was served with a tuned policy.
        self.first_tuned_ms: Optional[float] = None
        #: Per-workload reason the degradation ladder must not drop
        #: storage precision (static value-range pass), None when safe.
        self._precision_vetoes: Dict[str, Optional[str]] = {}
        #: Batch-execution memo (active when ``config.batch_memo``): maps
        #: a full execution fingerprint to its :class:`_BatchCost`.  The
        #: key captures everything the simulated cost depends on, so a
        #: memo hit is indistinguishable from re-simulating the batch.
        self._batch_memo: Dict[tuple, _BatchCost] = {}
        #: Per-sample simulation memo backing :meth:`_compose_cost`:
        #: (workload, scene, warmth, policy version, degraded) ->
        #: :class:`_SampleCost`.
        self._sample_memo: Dict[tuple, _SampleCost] = {}

    # ------------------------------------------------------------------ #
    def _admit(self, workload_id: str, model: Module, in_channels: int) -> None:
        """Admission control: statically lint the model for this runtime's
        device/precision and reject error-level findings before any
        replica accepts traffic (the load-time check the static analyzer
        exists for — a bad model should fail admission, not crash
        mid-batch).  Memory-aware admission is unconditional: a model
        whose static weight footprint — a lower bound on any execution's
        resident memory, before a single feature is allocated — already
        exceeds the smallest replica budget can never be served, not even
        by the bottom of the degradation ladder."""
        weights = model_weight_bytes(model, self.precision)
        if weights > self.memory_budget:
            raise AdmissionError(
                f"model for {workload_id!r} rejected at admission: static "
                f"weight footprint {weights / (1 << 30):.3f} GiB exceeds "
                f"the replica memory budget "
                f"{self.memory_budget / (1 << 30):.3f} GiB on "
                f"{self.device.name} (headroom "
                f"{self.config.mem_headroom:.0%})"
            )
        # Static value-range pass: decide once, at admission, whether the
        # degradation ladder may ever take its precision-drop rung for
        # this model (an unsafe drop would overflow fp16 features and
        # break the degraded-results error bound).
        from repro.analyze import precision_drop_veto, trace_model

        try:
            ir = trace_model(model, in_channels=in_channels)
            self._precision_vetoes[workload_id] = precision_drop_veto(ir)
        except Exception:
            # Untraceable model: be conservative, forbid the drop.
            self._precision_vetoes[workload_id] = (
                "value-range pass could not trace the model"
            )
        if not self.config.lint_admission:
            return
        from repro.analyze import Severity, lint_model

        findings = lint_model(
            model,
            in_channels=in_channels,
            device=self.device,
            precision=self.precision,
            collect_trace=True,
        )
        errors = [f for f in findings if f.severity is Severity.ERROR]
        if errors:
            details = "; ".join(
                f"{f.rule} at {f.path}: {f.message}" for f in errors[:3]
            )
            raise AdmissionError(
                f"model for {workload_id!r} rejected at admission with "
                f"{len(errors)} error-level lint finding(s): {details}"
            )

    def model(self, workload_id: str) -> Module:
        if workload_id not in self._models:
            workload = get_workload(workload_id)
            model = workload.build_model()
            model.eval()
            self._admit(
                workload_id, model, workload.dataset_config.in_channels
            )
            self._models[workload_id] = model
        return self._models[workload_id]

    def register_model(
        self, workload_id: str, model: Module, in_channels: int = 4
    ) -> Module:
        """Admit a caller-supplied model (serving stacks deploying custom
        networks); linted like any bundled workload."""
        model.eval()
        self._admit(workload_id, model, in_channels)
        self._models[workload_id] = model
        return model

    def policy_key(self, workload_id: str) -> PolicyKey:
        return PolicyCache.make_key(
            get_workload(workload_id).id, self.device.name, self.precision.value
        )

    def warm_policy(self, workload_id: str, seed_base: int = 9000) -> GroupPolicy:
        """Tune the workload's model now and install the policy (offline
        pre-warming — the ``python -m repro tune`` path, inlined)."""
        from repro.tune.tuner import SparseAutotuner

        workload = get_workload(workload_id)
        from repro.data.datasets import make_sample

        samples = [
            make_sample(
                workload.dataset,
                frames=workload.frames,
                seed=seed_base + i,
                scale=self.config.scene_scale,
            )
            for i in range(self.config.tune_scenes)
        ]
        policy, _ = SparseAutotuner().tune(
            self.model(workload_id), samples, self.device, self.precision
        )
        return self.policy_cache.put(self.policy_key(workload_id), policy)

    def warm_policy_from_file(self, workload_id: str, path) -> GroupPolicy:
        """Install a policy saved by ``python -m repro tune --output``."""
        return self.policy_cache.warm_from_file(self.policy_key(workload_id), path)

    def save_tuning_db(self, path=None) -> None:
        """Persist the online tuner's database (atomic write)."""
        if self.tuning_db is None:
            raise ConfigError(
                "no tuning database active; set ServeConfig.tuning_db"
            )
        target = path if path is not None else self.config.tuning_db
        self.tuning_db.save(target)

    def _tune_online(self, workload_id: str):
        """Run the online tuner for one workload; returns (policy, report).

        Uses a deterministic probe scene (the warm-policy seed) so DB keys
        are stable across runs and replicas."""
        from repro.data.datasets import make_sample

        workload = get_workload(workload_id)
        sample = make_sample(
            workload.dataset,
            frames=workload.frames,
            seed=9000,
            scale=self.config.scene_scale,
        )
        return self.online_tuner.tune_model(
            self.model(workload_id), sample, self.device, self.precision
        )

    # ------------------------------------------------------------------ #
    def _preprocess_us(self, sample: SparseTensor) -> float:
        return self.config.preprocess_us_per_point * sample.num_points

    def _under_pressure(self, batch: Sequence[InferenceRequest], now: float) -> bool:
        return any(
            now - r.arrival_ms > self.config.pressure_fraction * r.deadline_ms
            for r in batch
        )

    def _resolve_policy(
        self, batch: Sequence[InferenceRequest], now: float
    ) -> Tuple[object, bool, bool, float]:
        """Returns (policy, hit, degraded, extra_service_ms)."""
        workload_id = batch[0].workload_id
        key = self.policy_key(workload_id)
        # Background tunes whose virtual deadline has passed install first.
        for pending_key in list(self._bg_tunes):
            completes_at, tuned = self._bg_tunes[pending_key]
            if now >= completes_at:
                self.policy_cache.put(pending_key, tuned)
                del self._bg_tunes[pending_key]
        policy = self.policy_cache.get(key)
        if policy is not None:
            if self.first_tuned_ms is None:
                self.first_tuned_ms = now
            return policy, True, False, 0.0
        if self.online_tuner is not None and key not in self._bg_tunes:
            # Admission-time planning consults the surrogate + tuning DB
            # instead of tracing.  The search itself is cheap (that is the
            # point), so it runs here; only its *verification latency* is
            # modeled, and only for layers the DB could not answer.
            tuned, report = self._tune_online(workload_id)
            if report.db_misses == 0:
                # Fully warm: every group came out of the database — the
                # batch is served tuned with no tuning latency at all.
                self.policy_cache.put(key, tuned)
                if self.first_tuned_ms is None:
                    self.first_tuned_ms = now
                return tuned, False, False, 0.0
            # Cold layers needed real measurements: the tuned policy lands
            # after a background-tuning delay; this batch degrades.
            self.background_tunes += 1
            self._bg_tunes[key] = (
                now + self.config.background_tune_ms, tuned
            )
            return FixedPolicy(self.default_config), False, True, 0.0
        if (
            self.config.autotune_on_miss
            and key not in self._tuned_inline
            and not self._under_pressure(batch, now)
        ):
            # Inline tuning: the replica is occupied for the (simulated)
            # tuner run, then the batch is served with the fresh policy.
            self._tuned_inline.add(key)
            policy = self.warm_policy(workload_id)
            return policy, False, False, self.config.tune_penalty_ms
        # Graceful degradation: serve with the untuned default config.
        return FixedPolicy(self.default_config), False, True, 0.0

    def _execute(
        self,
        batch: Sequence[InferenceRequest],
        now: float,
        replica: DeviceReplica,
        forced_oom: bool = False,
    ) -> Tuple[float, bool, bool, List[bool], Dict[str, float], Tuple[str, ...]]:
        """Run one batch on ``replica``; returns (service_ms, policy_hit,
        degraded, per-request kmap hits, stage-breakdown in us, ladder
        rungs taken).

        Kernel-map reuse is against *the replica's own* cache: a stream's
        warm state helps only the replica that built it.

        Memory enforcement: the batch's modeled peak (resident weights and
        features plus the trace's liveness-aware peak workspace) is checked
        against the replica's budget.  On a simulated OOM — natural or
        injected via ``forced_oom`` — the batch is *recovered in place*:
        the degradation ladder plans a lower-footprint configuration
        (kernel maps stay warm across the retry) and the batch re-executes,
        its requests resolving DEGRADED instead of FAILED.
        """
        workload_id = batch[0].workload_id
        workload = get_workload(workload_id)
        model = self.model(workload_id)
        policy, policy_hit, degraded, extra_ms = self._resolve_policy(batch, now)
        kmap_cache = replica.kmap_cache
        if kmap_cache is None:  # replicas built outside serve(): no reuse
            kmap_cache = KmapCache(capacity=self.config.kmap_cache_size)
            replica.kmap_cache = kmap_cache
        samples = [self.scenes.sample(workload, r) for r in batch]
        scene_keys = tuple(r.scene_key for r in batch)
        # Execution fingerprint: workload + a summary of the scenes and
        # replica cache state the batch's interleaved get/put sequence
        # depends on, the policy-cache content version the resolved policy
        # came from, the degraded flag (selects the FixedPolicy-default
        # path and disables adaptive tiling) and whether an OOM is
        # injected.  On a single stream the scene summary is an unordered
        # multiset — per-scene costs are independent, so any ordering of
        # the same scenes re-simulates to the same totals; with multiple
        # streams launch order shifts sync placement, so the exact
        # sequence stays in the key.  Equal fingerprints provably
        # re-simulate to equal costs, so the memo is lossless.
        fingerprint = kmap_cache.batch_fingerprint(
            scene_keys, ordered=self.config.gpu_streams > 1
        )
        memo_key = (
            workload_id,
            fingerprint,
            self.policy_cache.version,
            degraded,
            forced_oom,
        )
        cost = (
            self._batch_memo.get(memo_key) if self.config.batch_memo else None
        )
        replay = cost is not None
        if (
            cost is None
            and self.config.batch_memo
            and fingerprint[0] == "multiset"
        ):
            # Unseen composition of (possibly) already-seen scenes: compose
            # the batch cost from per-sample memo entries instead of
            # re-simulating the whole batch.  Pure — cache accounting is
            # applied by the replay below, exactly as for a memo hit.
            cost = self._compose_cost(
                batch, samples, kmap_cache, model, workload_id, policy,
                degraded, replica.spec, forced_oom,
            )
            if cost is not None:
                self._batch_memo[memo_key] = cost
                replay = True
        if cost is None:
            cost, kmap_hits = self._execute_cold(
                batch, samples, kmap_cache, model, workload_id, policy,
                degraded, replica.spec, forced_oom,
            )
            if self.config.batch_memo:
                self._batch_memo[memo_key] = cost
        if replay:
            # Memo hit: replay the cold execution's cache sequence (same
            # gets, same fills from the recorded per-scene charge keys),
            # so cache accounting and future warmth are indistinguishable
            # from having re-simulated the batch.
            charge_by_scene = dict(cost.charges)
            kmap_hits = []
            for request, sample in zip(batch, samples):
                entry = kmap_cache.get(request.scene_key)
                hit = entry is not None
                kmap_hits.append(hit)
                if not hit:
                    kmap_cache.put(
                        request.scene_key,
                        KmapEntry(
                            sample=sample,
                            charge_keys=charge_by_scene.get(
                                request.scene_key, frozenset()
                            ),
                        ),
                    )
        if cost.oomed:
            replica.ooms += 1
        stages = dict(cost.stages)
        stages["host/dispatch"] = self.config.dispatch_overhead_us
        if extra_ms:
            stages["host/inline_tune"] = extra_ms * 1e3
        service_ms = (
            cost.service_ms
            + self.config.dispatch_overhead_us / 1e3
            + extra_ms
        )
        return (
            service_ms,
            policy_hit,
            cost.degraded,
            kmap_hits,
            stages,
            cost.ladder,
            cost.sync_events,
        )

    def _compose_cost(
        self,
        batch: Sequence[InferenceRequest],
        samples: List[SparseTensor],
        kmap_cache: KmapCache,
        model: Module,
        workload_id: str,
        policy: object,
        degraded: bool,
        spec: DeviceSpec,
        forced_oom: bool,
    ) -> Optional[_BatchCost]:
        """Compose a batch's :class:`_BatchCost` from per-sample memo
        entries (valid only for "multiset" fingerprints: one GPU stream,
        no eviction possible).  Pure — no cache mutation; the caller
        replays the get/put sequence.  Returns ``None`` when the batch
        needs the full path: an injected OOM, or a modeled peak over
        budget (the degradation ladder re-executes the whole batch).
        """
        if forced_oom:
            return None
        version = self.policy_cache.version
        filled: Dict[tuple, FrozenSet[tuple]] = {}
        charges: List[Tuple[tuple, FrozenSet[tuple]]] = []
        latency_us = 0.0
        stages: Dict[str, float] = {}
        preprocess_us = 0.0
        feature_bytes = 0.0
        peak_workspace = 0.0
        for request, sample in zip(batch, samples):
            key = request.scene_key
            entry = kmap_cache.peek(key)
            warmth = (
                entry.charge_keys if entry is not None else filled.get(key)
            )
            sample_key = (workload_id, key, warmth, version, degraded)
            cost = self._sample_memo.get(sample_key)
            if cost is None:
                cost = self._simulate_sample(
                    sample, model, policy, degraded, warmth
                )
                self._sample_memo[sample_key] = cost
            if entry is None and key not in filled:
                filled[key] = cost.charge
                charges.append((key, cost.charge))
            latency_us += cost.latency_us
            for stage, us in cost.stages:
                stages[stage] = stages.get(stage, 0.0) + us
            preprocess_us += cost.preprocess_us
            feature_bytes += cost.feature_bytes
            peak_workspace = max(peak_workspace, cost.peak_workspace_bytes)
        budget = memory_budget_bytes(spec, self.config.mem_headroom)
        resident = model_weight_bytes(model, self.precision) + feature_bytes
        if peak_workspace + resident > budget:
            return None
        stages["host/preprocess"] = preprocess_us
        return _BatchCost(
            service_ms=(latency_us + preprocess_us) / 1e3,
            stages=tuple(stages.items()),
            ladder=(),
            sync_events=0,
            oomed=False,
            degraded=degraded,
            charges=tuple(charges),
        )

    def _simulate_sample(
        self,
        sample: SparseTensor,
        model: Module,
        policy: object,
        degraded: bool,
        warmth: Optional[FrozenSet[tuple]],
    ) -> _SampleCost:
        """Simulate one sample in a fresh context at the given warmth.

        Scene charge keys are disjoint, so a fresh context pre-charged
        with the scene's own keys reproduces exactly the launches the
        sample would contribute to a shared batch context.
        """
        ctx = ExecutionContext(
            device=self.device,
            precision=self.precision,
            policy=policy,
            simulate_only=True,
            adaptive_tiling=not degraded,
            gpu_streams=self.config.gpu_streams,
        )
        if warmth:
            ctx.precharge(warmth)
        shapes: List[Tuple[int, int, int, int]] = []
        ctx.recorder = lambda signature=None, kmap=None, c_in=0, c_out=0, label="": (
            shapes.append((c_in, c_out, kmap.num_inputs, kmap.num_outputs))
        )
        model(sample, ctx)
        ctx.recorder = None
        itemsize = float(self.precision.itemsize)
        return _SampleCost(
            latency_us=ctx.latency_us(),
            stages=tuple(ctx.breakdown_us().items()),
            preprocess_us=self._preprocess_us(sample),
            feature_bytes=max(
                (itemsize * (ni * ci + no * co) for ci, co, ni, no in shapes),
                default=0.0,
            ),
            peak_workspace_bytes=ctx.trace.summary().peak_workspace_bytes,
            charge=(
                frozenset() if warmth is not None
                else frozenset(ctx.charged_keys())
            ),
        )

    def _execute_cold(
        self,
        batch: Sequence[InferenceRequest],
        samples: List[SparseTensor],
        kmap_cache: KmapCache,
        model: Module,
        workload_id: str,
        policy: object,
        degraded: bool,
        spec: DeviceSpec,
        forced_oom: bool,
    ) -> Tuple[_BatchCost, List[bool]]:
        """Actually simulate one batch; returns (:class:`_BatchCost`,
        per-request kmap hits)."""
        ctx = ExecutionContext(
            device=self.device,
            precision=self.precision,
            policy=policy,
            simulate_only=True,
            adaptive_tiling=not degraded,
            gpu_streams=self.config.gpu_streams,
        )
        charges: List[Tuple[tuple, FrozenSet[tuple]]] = []
        kmap_hits: List[bool] = []
        preprocess_us = 0.0
        feature_bytes = 0.0
        itemsize = float(self.precision.itemsize)
        for request, sample in zip(batch, samples):
            entry = kmap_cache.get(request.scene_key)
            hit = entry is not None
            kmap_hits.append(hit)
            if entry is not None:
                ctx.precharge(entry.charge_keys)
            before = ctx.charged_keys()
            shapes: List[Tuple[int, int, int, int]] = []
            ctx.recorder = lambda signature=None, kmap=None, c_in=0, c_out=0, label="": (
                shapes.append((c_in, c_out, kmap.num_inputs, kmap.num_outputs))
            )
            model(sample, ctx)
            ctx.recorder = None
            if not hit:
                charge = frozenset(ctx.charged_keys() - before)
                charges.append((request.scene_key, charge))
                kmap_cache.put(
                    request.scene_key,
                    KmapEntry(sample=sample, charge_keys=charge),
                )
            preprocess_us += self._preprocess_us(sample)
            # One sample's feature peak: the largest live (input + output)
            # activation pair along the network; batch members co-reside.
            feature_bytes += max(
                (itemsize * (ni * ci + no * co) for ci, co, ni, no in shapes),
                default=0.0,
            )

        budget = memory_budget_bytes(spec, self.config.mem_headroom)
        resident = model_weight_bytes(model, self.precision) + feature_bytes
        ladder_taken: Tuple[str, ...] = ()
        retry_us = 0.0
        retry_sync_events = 0
        oomed = False
        try:
            peak = enforce_memory_budget(
                ctx.trace, spec,
                resident_bytes=resident, budget_bytes=budget,
            )
            if forced_oom:
                raise SimulatedOOMError(
                    f"injected OOM on {spec.name}",
                    peak_bytes=peak, budget_bytes=budget,
                )
        except SimulatedOOMError:
            oomed = True
            memo: Dict[ExecState, float] = {}

            def footprint(state: ExecState) -> float:
                # Warm footprints: the retry reuses the kernel maps the
                # failed attempt already built, so one-shot map
                # construction is not part of any candidate's peak.
                if state not in memo:
                    memo[state] = model_footprint(
                        model,
                        samples,
                        device=spec,
                        precision=state.precision,
                        policy=FixedPolicy(state.config),
                        batch_chunks=state.batch_chunks,
                        warm=True,
                    ).total_bytes
                return memo[state]

            start = ExecState(
                config=self.default_config, precision=self.precision
            )
            effective = budget
            if forced_oom:
                # An injected fault must force real recovery even when the
                # true budget fits: cap it just under the start footprint
                # so at least one strictly-reducing rung is taken.
                effective = min(budget, footprint(start) * (1.0 - 1e-6))
            plan = self.ladder.plan(
                footprint,
                start,
                effective,
                precision_veto=self._precision_vetoes.get(workload_id),
            )
            ladder_taken = plan.taken
            retry = ExecutionContext(
                device=self.device,
                precision=plan.final.precision,
                policy=FixedPolicy(plan.final.config),
                simulate_only=True,
                gpu_streams=self.config.gpu_streams,
            )
            retry.precharge(ctx.charged_keys())  # maps survive the OOM
            for sample in samples:
                model(sample, retry)
            retry_us = retry.latency_us()
            retry_schedule = retry.stream_schedule()
            if retry_schedule is not None:
                retry_sync_events = len(retry_schedule.events)
            degraded = True

        stages = dict(ctx.breakdown_us())
        stages["host/preprocess"] = preprocess_us
        if retry_us:
            stages["resilience/ladder"] = retry_us
        service_ms = (ctx.latency_us() + retry_us + preprocess_us) / 1e3
        sync_events = retry_sync_events
        schedule = ctx.stream_schedule()
        if schedule is not None:
            sync_events += len(schedule.events)
        return (
            _BatchCost(
                service_ms=service_ms,
                stages=tuple(stages.items()),
                ladder=ladder_taken,
                sync_events=sync_events,
                oomed=oomed,
                degraded=degraded,
                charges=tuple(charges),
            ),
            kmap_hits,
        )

    # ------------------------------------------------------------------ #
    def serve(self, requests: Sequence[InferenceRequest]) -> ServeResult:
        """Run the discrete-event serving loop over ``requests``."""
        if not requests:
            raise ConfigError("serve() needs at least one request")
        config = self.config
        balancer = get_balancer(config.balancer)
        plan = config.faults or NO_FAULTS
        first_arrival_ms = min(r.arrival_ms for r in requests)

        def make_breaker() -> Optional[CircuitBreaker]:
            if config.breaker_failures > 0:
                return CircuitBreaker(
                    config.breaker_failures, config.breaker_cooldown_ms
                )
            return None

        autoscaler = (
            Autoscaler(config.autoscale)
            if config.autoscale is not None else None
        )
        initial_replicas = config.replicas
        if config.autoscale is not None:
            initial_replicas = min(
                max(initial_replicas, config.autoscale.min_replicas),
                config.autoscale.max_replicas,
            )
        injector = FaultInjector(plan, initial_replicas)
        replicas = [
            DeviceReplica(
                index=i,
                spec=self.device,
                kmap_cache=KmapCache(capacity=config.kmap_cache_size),
                breaker=make_breaker(),
                provisioned_at_ms=first_arrival_ms,
            )
            for i in range(initial_replicas)
        ]
        replicas_peak = initial_replicas

        # Tenant state: roster (configured tenants plus any tenant names
        # the schedule carries that the roster does not), per-tenant token
        # buckets (only for metered tenants) and retry budgets.
        tenant_specs: Dict[str, TenantSpec] = {
            t.name: t for t in config.tenants
        }
        for request in requests:
            if request.tenant not in tenant_specs:
                tenant_specs[request.tenant] = TenantSpec(
                    name=request.tenant, priority=request.priority
                )
        buckets: Dict[str, TokenBucket] = {
            name: TokenBucket(spec.quota_rps, spec.quota_burst)
            for name, spec in tenant_specs.items()
            if spec.quota_rps > 0
        }
        budgets: Dict[str, RetryBudget] = {
            name: RetryBudget(
                spec.retry_budget if spec.retry_budget >= 0
                else config.retry_budget
            )
            for name, spec in tenant_specs.items()
        }

        # Priority-aware queueing only once it can matter: a roster or a
        # schedule with more than one class.  Single-class runs keep the
        # legacy FIFO queue (identical dispatch order to prior releases).
        multi_class = len({r.priority for r in requests}) > 1
        use_priority = bool(config.tenants) or multi_class
        queue: RequestQueue = (
            PriorityRequestQueue(max_depth=config.queue_depth)
            if use_priority else RequestQueue(max_depth=config.queue_depth)
        )
        shed_by_priority = use_priority and config.priority_shedding
        workload_cache: Dict[str, Workload] = {}
        db_hits_before = self.tuning_db.hits if self.tuning_db else 0
        db_misses_before = self.tuning_db.misses if self.tuning_db else 0
        bg_tunes_before = self.background_tunes

        def scene_points(request: InferenceRequest) -> int:
            workload = workload_cache.setdefault(
                request.workload_id, get_workload(request.workload_id)
            )
            return self.scenes.points(workload, request)

        batcher = DynamicBatcher(
            point_budget=config.point_budget,
            max_batch_requests=config.max_batch_requests,
            window_ms=config.batch_window_ms,
            scene_points=scene_points,
        )

        outcomes: Dict[int, RequestOutcome] = {}
        attempts: Dict[int, int] = {}
        depth_samples: List[Tuple[float, int]] = []
        stage_totals: Dict[str, float] = {}
        events: List[Tuple[float, int, int, object]] = []
        timer_times: set = set()
        seq = 0
        ARRIVAL, FREE, TIMER, RETRY, SCALE = 0, 1, 2, 3, 4
        for request in sorted(requests, key=lambda r: (r.arrival_ms, r.request_id)):
            heapq.heappush(events, (request.arrival_ms, seq, ARRIVAL, request))
            seq += 1
        arrivals_pending = len(requests)
        retries_pending = 0
        batch_counter = 0
        oom_events = 0
        ladder_steps = 0
        sync_events_total = 0

        def push_event(at: float, kind: int, payload: object) -> None:
            nonlocal seq
            heapq.heappush(events, (at, seq, kind, payload))
            seq += 1

        def push_timer(at: float) -> None:
            if at not in timer_times:
                timer_times.add(at)
                push_event(at, TIMER, None)

        if autoscaler is not None:
            push_event(
                first_arrival_ms + config.autoscale.interval_ms, SCALE, None
            )

        def slo_missed(outcome: RequestOutcome) -> bool:
            """Did the request miss the run's latency target?"""
            if not outcome.completed or outcome.finish_ms is None:
                return True
            target = (
                config.slo_ms if config.slo_ms > 0
                else outcome.request.deadline_ms
            )
            return outcome.finish_ms - outcome.request.arrival_ms > target

        def resolve(outcome: RequestOutcome) -> None:
            """Record a terminal outcome; feeds the retry budget (each
            success accrues budget) and the autoscaler's window."""
            outcomes[outcome.request.request_id] = outcome
            if outcome.completed:
                budget = budgets.get(outcome.request.tenant)
                if budget is not None:
                    budget.record_success()
            if autoscaler is not None and outcome.finish_ms is not None:
                autoscaler.observe(
                    outcome.finish_ms,
                    outcome.finish_ms - outcome.request.arrival_ms,
                    outcome.request.priority,
                    slo_missed(outcome),
                )

        def candidates(now: float) -> Tuple[List[DeviceReplica], Optional[float]]:
            """Replicas a batch may be dispatched to, and — when none are
            available — the earliest recovery time to retry at (a stall
            window's end or an open breaker's half-open probe time)."""
            out: List[DeviceReplica] = []
            recover: Optional[float] = None
            for replica in replicas:
                if replica.retired or replica.draining:
                    continue
                until = injector.stalled_until(replica.index, now)
                if until is not None:  # draining: no new work until recovery
                    recover = until if recover is None else min(recover, until)
                    continue
                if replica.breaker is not None and not replica.breaker.allows(now):
                    probe_at = replica.breaker.next_probe_at_ms()
                    if probe_at is not None:
                        recover = (
                            probe_at if recover is None
                            else min(recover, probe_at)
                        )
                    continue
                if replica.inflight >= config.replica_queue_depth:
                    continue
                out.append(replica)
            return out, recover

        def expire_queue(now: float) -> None:
            if config.timeout_ms <= 0:
                return
            for request in queue.expire(now, config.timeout_ms):
                resolve(RequestOutcome(
                    request=request,
                    status=RequestStatus.TIMED_OUT,
                    attempts=attempts.get(request.request_id, 0),
                ))

        def run_attempt(
            batch: List[InferenceRequest], replica: DeviceReplica, now: float
        ) -> _Attempt:
            """Occupy ``replica`` with one copy of ``batch``."""
            nonlocal batch_counter, oom_events, ladder_steps
            nonlocal sync_events_total
            batch_id = batch_counter
            batch_counter += 1
            forced_oom = injector.batch_ooms(batch_id)
            ooms_before = replica.ooms
            (
                service_ms,
                policy_hit,
                degraded,
                kmap_hits,
                stages,
                ladder,
                batch_sync_events,
            ) = self._execute(batch, now, replica, forced_oom=forced_oom)
            sync_events_total += batch_sync_events
            if replica.ooms > ooms_before:
                oom_events += 1
                ladder_steps += len(ladder)
            service_ms *= injector.slow_factor(replica.index)
            failed = injector.batch_fails(batch_id)
            if failed:
                # The attempt errors out partway through; the replica still
                # burned a fraction of the batch's service time.
                service_ms *= plan.fail_cost_fraction
                replica.failures += 1
            start = max(now, replica.free_at_ms)
            finish = start + service_ms
            replica.free_at_ms = finish
            replica.busy_ms += service_ms
            replica.batches += 1
            replica.inflight += 1
            replica.retries_served += sum(
                1 for r in batch if attempts.get(r.request_id, 0) > 1
            )
            if replica.breaker is not None:
                replica.breaker.on_dispatch()
            for stage, us in stages.items():
                stage_totals[stage] = stage_totals.get(stage, 0.0) + us
            push_event(finish, FREE, (replica.index, failed))
            return _Attempt(
                replica=replica,
                batch_id=batch_id,
                start_ms=start,
                finish_ms=finish,
                service_ms=service_ms,
                failed=failed,
                policy_hit=policy_hit,
                degraded=degraded,
                kmap_hits=kmap_hits,
                ladder=ladder,
            )

        def dispatch(batch: List[InferenceRequest], now: float) -> None:
            """Balance, optionally hedge, then resolve or schedule retries."""
            nonlocal retries_pending
            for request in batch:
                attempts[request.request_id] = (
                    attempts.get(request.request_id, 0) + 1
                )
            cands, _ = candidates(now)
            primary = balancer.select(cands, batch, now)
            first = run_attempt(batch, primary, now)
            hedge: Optional[_Attempt] = None
            if config.hedge_ms > 0 and first.service_ms > config.hedge_ms:
                spare = [
                    r for r in cands
                    if r is not primary
                    and r.inflight < config.replica_queue_depth
                ]
                if spare:
                    second = min(
                        spare,
                        key=lambda r: (
                            max(r.free_at_ms - now, 0.0), r.busy_ms, r.index
                        ),
                    )
                    hedge = run_attempt(batch, second, now)
                    second.hedges_served += 1

            tries = [a for a in (first, hedge) if a is not None]
            winners = [a for a in tries if not a.failed]
            if winners:
                winner = min(winners, key=lambda a: (a.finish_ms, a.batch_id))
                for request, kmap_hit in zip(batch, winner.kmap_hits):
                    resolve(RequestOutcome(
                        request=request,
                        status=(
                            RequestStatus.DEGRADED
                            if winner.degraded
                            else RequestStatus.COMPLETED
                        ),
                        start_ms=winner.start_ms,
                        finish_ms=winner.finish_ms,
                        batch_id=winner.batch_id,
                        batch_size=len(batch),
                        replica=winner.replica.index,
                        policy_hit=winner.policy_hit,
                        kmap_hit=kmap_hit,
                        service_ms=winner.service_ms,
                        attempts=attempts[request.request_id],
                        hedged=hedge is not None,
                        hedge_won=hedge is not None and winner is hedge,
                        ladder=winner.ladder,
                    ))
                return
            # Every copy failed: the error surfaces once the last copy
            # resolves; retry after exponential backoff — if the tenant's
            # retry budget grants one — or give up.
            resolved = max(a.finish_ms for a in tries)
            last = max(tries, key=lambda a: (a.finish_ms, a.batch_id))
            for request in batch:
                tried = attempts[request.request_id]
                budget_denied = False
                if tried <= config.max_retries:
                    budget = budgets.get(request.tenant)
                    if budget is None or budget.allow():
                        backoff = config.retry_backoff_ms * (2 ** (tried - 1))
                        if config.retry_jitter:
                            # Seeded per (request, attempt): spreads a
                            # failure wave's retries over [0.5, 1.5) of the
                            # base backoff without losing determinism.
                            backoff *= 0.5 + random.Random(
                                f"{plan.seed}/retryjitter/"
                                f"{request.request_id}/{tried}"
                            ).random()
                        push_event(resolved + backoff, RETRY, request)
                        retries_pending += 1
                        continue
                    budget_denied = True
                resolve(RequestOutcome(
                    request=request,
                    status=RequestStatus.FAILED,
                    start_ms=last.start_ms,
                    finish_ms=resolved,
                    batch_id=last.batch_id,
                    batch_size=len(batch),
                    replica=last.replica.index,
                    service_ms=last.service_ms,
                    attempts=tried,
                    hedged=hedge is not None,
                    budget_exhausted=budget_denied,
                ))

        def try_dispatch(now: float) -> None:
            expire_queue(now)
            while queue:
                cands, recover = candidates(now)
                if not cands:
                    if recover is not None and not any(
                        r.inflight for r in replicas
                    ):
                        push_timer(recover)  # fully stalled: rejoin later
                    break
                more = (arrivals_pending + retries_pending) > 0
                if not batcher.ready(queue, now, more_arrivals=more):
                    break
                batch = batcher.form_batch(queue, now)
                if not batch:
                    break
                dispatch(batch, now)
                depth_samples.append((now, len(queue)))
            if queue and (arrivals_pending + retries_pending) > 0:
                decision = batcher.next_decision_ms(queue)
                if decision is not None and decision > now:
                    push_timer(decision)

        end_ms = first_arrival_ms
        while events:
            now, _, kind, payload = heapq.heappop(events)
            end_ms = max(end_ms, now)
            if kind == ARRIVAL:
                arrivals_pending -= 1
                request = payload
                bucket = buckets.get(request.tenant)
                if bucket is not None and not bucket.take(now):
                    # Over quota: shed at arrival, before queue admission.
                    resolve(RequestOutcome(
                        request=request,
                        status=RequestStatus.SHED,
                        attempts=0,
                        quota_denied=True,
                    ))
                elif shed_by_priority and isinstance(
                    queue, PriorityRequestQueue
                ):
                    victim = queue.admit_displacing(request)
                    if victim is not None:
                        resolve(RequestOutcome(
                            request=victim,
                            status=RequestStatus.SHED,
                            attempts=attempts.get(victim.request_id, 0),
                        ))
                elif not queue.admit(request):
                    resolve(RequestOutcome(
                        request=request, status=RequestStatus.SHED, attempts=0
                    ))
                depth_samples.append((now, len(queue)))
            elif kind == FREE:
                replica_index, attempt_failed = payload
                freed = replicas[replica_index]
                freed.inflight -= 1
                if freed.breaker is not None:
                    # Breakers observe at batch *resolution* time — when
                    # the failure would actually surface to the router.
                    if attempt_failed:
                        freed.breaker.record_failure(now)
                    else:
                        freed.breaker.record_success(now)
                if freed.draining and freed.inflight == 0:
                    freed.draining = False
                    freed.retired_at_ms = now
            elif kind == RETRY:
                retries_pending -= 1
                request = payload
                if (
                    config.timeout_ms > 0
                    and now - request.arrival_ms >= config.timeout_ms
                ):
                    resolve(RequestOutcome(
                        request=request,
                        status=RequestStatus.TIMED_OUT,
                        attempts=attempts.get(request.request_id, 0),
                    ))
                else:
                    queue.requeue(request)
                depth_samples.append((now, len(queue)))
            elif kind == SCALE and autoscaler is not None:
                active = [
                    r for r in replicas if not r.retired and not r.draining
                ]
                busy = sum(
                    1 for r in active
                    if r.inflight > 0 or r.free_at_ms > now
                )
                utilization = busy / len(active) if active else 1.0
                action = autoscaler.decide(
                    now,
                    replicas=len(active),
                    queue_depth=len(queue),
                    utilization=utilization,
                    batch_capacity=config.max_batch_requests,
                )
                if action == "up":
                    # The new replica joins with cold kmap/policy warmth
                    # and is unavailable for warmup_ms (model load, CUDA
                    # context); its early batches pay cold-cache costs on
                    # top — warmup is real, not free capacity.
                    replicas.append(DeviceReplica(
                        index=len(replicas),
                        spec=self.device,
                        kmap_cache=KmapCache(
                            capacity=config.kmap_cache_size
                        ),
                        breaker=make_breaker(),
                        provisioned_at_ms=now,
                        free_at_ms=now + config.autoscale.warmup_ms,
                    ))
                    replicas_peak = max(replicas_peak, len(active) + 1)
                elif action == "down":
                    # Drain the youngest replica (coldest caches on
                    # average); it retires once in-flight work resolves.
                    victim = max(
                        active,
                        key=lambda r: (r.provisioned_at_ms, r.index),
                    )
                    if victim.inflight == 0:
                        victim.retired_at_ms = now
                    else:
                        victim.draining = True
                if (
                    arrivals_pending + retries_pending > 0
                    or len(queue) > 0
                    or any(r.inflight for r in replicas)
                ):
                    push_event(
                        now + config.autoscale.interval_ms, SCALE, None
                    )
            try_dispatch(now)

        ordered = [outcomes[r.request_id] for r in requests]
        kmap_hits = sum(r.kmap_cache.hits for r in replicas)
        kmap_total = kmap_hits + sum(r.kmap_cache.misses for r in replicas)
        autoscaled = autoscaler is not None
        spans = {
            r.index: max(
                (r.retired_at_ms if r.retired_at_ms is not None else end_ms)
                - r.provisioned_at_ms,
                0.0,
            )
            for r in replicas
        }
        per_replica = [
            {
                "replica": float(r.index),
                "batches": float(r.batches),
                "busy_ms": r.busy_ms,
                "kmap_hit_rate": r.kmap_cache.hit_rate,
                "stalls": float(injector.stalls_for(r.index)),
                "failures": float(r.failures),
                "ooms": float(r.ooms),
                "retries_served": float(r.retries_served),
                "hedges_served": float(r.hedges_served),
                "breaker_opens": float(
                    r.breaker.opens if r.breaker is not None else 0
                ),
                "breaker_closes": float(
                    r.breaker.closes if r.breaker is not None else 0
                ),
                "provisioned_ms": spans[r.index] if autoscaled else 0.0,
            }
            for r in replicas
        ]
        breakers = [r.breaker for r in replicas if r.breaker is not None]
        metrics = compute_metrics(
            ordered,
            depth_samples,
            policy_hit_rate=self.policy_cache.hit_rate,
            kmap_hit_rate=kmap_hits / kmap_total if kmap_total else 0.0,
            kmap_evictions=sum(r.kmap_cache.evictions for r in replicas),
            batches=batch_counter,
            replica_busy_ms=sum(r.busy_ms for r in replicas),
            replicas=sum(1 for r in replicas if not r.retired),
            stage_us_totals=stage_totals,
            replica_stalls=injector.stall_windows,
            batch_failures=injector.batch_failures,
            oom_events=oom_events,
            ladder_steps=ladder_steps,
            balancer=config.balancer,
            tuning_db_hits=(
                self.tuning_db.hits - db_hits_before if self.tuning_db else 0
            ),
            tuning_db_misses=(
                self.tuning_db.misses - db_misses_before
                if self.tuning_db else 0
            ),
            background_tunes=self.background_tunes - bg_tunes_before,
            time_to_first_tuned_ms=(
                self.first_tuned_ms if self.first_tuned_ms is not None
                else -1.0
            ),
            sync_events=sync_events_total,
            per_replica=per_replica,
            quota_denied=sum(b.denied for b in buckets.values()),
            retry_budget_exhausted=sum(
                b.exhausted for b in budgets.values()
            ),
            breaker_opens=sum(b.opens for b in breakers),
            breaker_closes=sum(b.closes for b in breakers),
            breaker_probes=sum(b.probes for b in breakers),
            scale_ups=autoscaler.scale_ups if autoscaler is not None else 0,
            scale_downs=(
                autoscaler.scale_downs if autoscaler is not None else 0
            ),
            replicas_peak=replicas_peak,
            provisioned_ms=sum(spans.values()) if autoscaled else 0.0,
            slo_ms=config.slo_ms,
        )
        return ServeResult(config=config, outcomes=ordered, metrics=metrics)
