"""The serving runtime: a deterministic, simulated-clock inference server.

Architecture (one `serve()` call = one serving run):

* a precomputed **request schedule** (from :mod:`repro.serve.arrivals`)
  drives a discrete-event loop — events are request arrivals, device
  completions and batching-window timers, all on one virtual clock;
* a bounded :class:`~repro.serve.batcher.RequestQueue` applies admission
  control (overflowing arrivals are shed), and a
  :class:`~repro.serve.batcher.DynamicBatcher` groups queued requests
  under a point budget and deadline window;
* **N device replicas** (:class:`DeviceReplica`) serve batches; each batch
  executes the workload's model through an
  :class:`~repro.nn.context.ExecutionContext` in ``simulate_only`` mode,
  and :mod:`repro.gpusim` turns the trace into the batch's service time;
* a :class:`~repro.serve.cache.PolicyCache` holds tuned
  :class:`~repro.nn.context.GroupPolicy` objects (pre-warmed from
  ``python -m repro tune`` output or tuned inline), and a
  :class:`~repro.serve.cache.KmapCache` reuses kernel-map state across
  frames of one scene stream;
* when the policy cache misses **under deadline pressure** the batch is
  served with the untuned default :class:`LayerConfig` instead of waiting
  for a tuner run — graceful degradation, counted and reported.

Nothing reads a wall clock: a fixed request schedule yields bit-identical
metrics on every run.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.hw.specs import DeviceSpec, get_device
from repro.models.registry import Workload, get_workload
from repro.nn.context import ExecutionContext, FixedPolicy, GroupPolicy, LayerConfig
from repro.nn.module import Module
from repro.precision import Precision
from repro.serve.batcher import DynamicBatcher, RequestQueue
from repro.serve.cache import KmapCache, KmapEntry, PolicyCache, PolicyKey
from repro.serve.metrics import ServingMetrics, compute_metrics
from repro.serve.request import InferenceRequest, RequestOutcome, RequestStatus
from repro.sparse.tensor import SparseTensor


@dataclasses.dataclass(frozen=True)
class ServeConfig:
    """Configuration of one serving runtime.

    Attributes:
        device / precision: the simulated GPU replicas and numeric
            precision every batch runs at.
        replicas: number of identical device replicas served round-robin
            (earliest-free-first).
        queue_depth: admission-control bound; arrivals past it are shed.
        point_budget / max_batch_requests / batch_window_ms: dynamic
            batching knobs (see :class:`DynamicBatcher`).
        kmap_cache_size: LRU capacity of the kernel-map reuse cache, in
            scenes.
        dispatch_overhead_us: fixed host-side cost per batch dispatch
            (scheduler decision, output routing).
        preprocess_us_per_point: per-request voxelization/feature cost,
            proportional to scene points.
        autotune_on_miss: tune inline on a policy-cache miss (paying
            ``tune_penalty_ms`` of simulated device time) instead of
            degrading to the default config.  Off by default: serving
            stacks pre-warm policies offline.
        tune_penalty_ms: simulated device occupancy of one inline tuner
            run.
        pressure_fraction: a request is under deadline pressure once it
            has waited this fraction of its deadline; pressured batches
            never wait for an inline tuner.
        scene_scale: azimuth-resolution scale of generated scenes — a
            wall-clock knob only (simulated numbers scale with it but
            stay internally consistent; comparisons hold at any scale).
        tune_scenes: sample scenes per inline/warmup tuner run.
    """

    device: str = "a100"
    precision: str = "fp16"
    replicas: int = 1
    queue_depth: int = 32
    point_budget: int = 400_000
    max_batch_requests: int = 8
    batch_window_ms: float = 10.0
    kmap_cache_size: int = 16
    dispatch_overhead_us: float = 150.0
    preprocess_us_per_point: float = 0.002
    autotune_on_miss: bool = False
    tune_penalty_ms: float = 250.0
    pressure_fraction: float = 0.5
    scene_scale: float = 0.25
    tune_scenes: int = 1

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ConfigError(f"replicas must be >= 1, got {self.replicas}")
        if not 0.0 < self.pressure_fraction <= 1.0:
            raise ConfigError(
                f"pressure_fraction must be in (0, 1], got {self.pressure_fraction}"
            )
        if self.dispatch_overhead_us < 0 or self.preprocess_us_per_point < 0:
            raise ConfigError("overheads must be non-negative")
        if self.tune_penalty_ms < 0:
            raise ConfigError("tune_penalty_ms must be non-negative")


@dataclasses.dataclass
class DeviceReplica:
    """One simulated device with its own clock."""

    index: int
    spec: DeviceSpec
    busy_ms: float = 0.0
    batches: int = 0


class SceneProvider:
    """Materialises (and memoises) request scenes.

    Frames of one stream share a ``scene_seed``, so they resolve to the
    *same* :class:`SparseTensor` — its ``MapCache`` then carries kernel
    maps across requests, mirroring an engine that keeps per-stream map
    state resident.
    """

    def __init__(self, scale: float):
        self.scale = scale
        self._samples: Dict[tuple, SparseTensor] = {}

    def sample(self, workload: Workload, request: InferenceRequest) -> SparseTensor:
        key = request.scene_key
        if key not in self._samples:
            from repro.data.datasets import make_sample

            self._samples[key] = make_sample(
                workload.dataset,
                frames=workload.frames,
                seed=request.scene_seed,
                scale=self.scale,
            )
        return self._samples[key]

    def points(self, workload: Workload, request: InferenceRequest) -> int:
        return self.sample(workload, request).num_points


@dataclasses.dataclass
class ServeResult:
    """Everything one serving run produced."""

    config: ServeConfig
    outcomes: List[RequestOutcome]
    metrics: ServingMetrics

    def describe(self) -> str:
        return self.metrics.to_table() + "\n\n" + self.metrics.stage_table()


class ServingRuntime:
    """Request-driven serving over simulated device replicas."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        policy_cache: Optional[PolicyCache] = None,
    ):
        self.config = config or ServeConfig()
        self.device = get_device(self.config.device)
        self.precision = Precision.parse(self.config.precision)
        self.policy_cache = policy_cache or PolicyCache()
        self.kmap_cache = KmapCache(capacity=self.config.kmap_cache_size)
        self.scenes = SceneProvider(scale=self.config.scene_scale)
        self.default_config = LayerConfig()
        self._models: Dict[str, Module] = {}
        self._tuned_inline: set = set()

    # ------------------------------------------------------------------ #
    def model(self, workload_id: str) -> Module:
        if workload_id not in self._models:
            model = get_workload(workload_id).build_model()
            model.eval()
            self._models[workload_id] = model
        return self._models[workload_id]

    def policy_key(self, workload_id: str) -> PolicyKey:
        return PolicyCache.make_key(
            get_workload(workload_id).id, self.device.name, self.precision.value
        )

    def warm_policy(self, workload_id: str, seed_base: int = 9000) -> GroupPolicy:
        """Tune the workload's model now and install the policy (offline
        pre-warming — the ``python -m repro tune`` path, inlined)."""
        from repro.tune.tuner import SparseAutotuner

        workload = get_workload(workload_id)
        from repro.data.datasets import make_sample

        samples = [
            make_sample(
                workload.dataset,
                frames=workload.frames,
                seed=seed_base + i,
                scale=self.config.scene_scale,
            )
            for i in range(self.config.tune_scenes)
        ]
        policy, _ = SparseAutotuner().tune(
            self.model(workload_id), samples, self.device, self.precision
        )
        return self.policy_cache.put(self.policy_key(workload_id), policy)

    def warm_policy_from_file(self, workload_id: str, path) -> GroupPolicy:
        """Install a policy saved by ``python -m repro tune --output``."""
        return self.policy_cache.warm_from_file(self.policy_key(workload_id), path)

    # ------------------------------------------------------------------ #
    def _preprocess_us(self, sample: SparseTensor) -> float:
        return self.config.preprocess_us_per_point * sample.num_points

    def _under_pressure(self, batch: Sequence[InferenceRequest], now: float) -> bool:
        return any(
            now - r.arrival_ms > self.config.pressure_fraction * r.deadline_ms
            for r in batch
        )

    def _resolve_policy(
        self, batch: Sequence[InferenceRequest], now: float
    ) -> Tuple[object, bool, bool, float]:
        """Returns (policy, hit, degraded, extra_service_ms)."""
        workload_id = batch[0].workload_id
        key = self.policy_key(workload_id)
        policy = self.policy_cache.get(key)
        if policy is not None:
            return policy, True, False, 0.0
        if (
            self.config.autotune_on_miss
            and key not in self._tuned_inline
            and not self._under_pressure(batch, now)
        ):
            # Inline tuning: the replica is occupied for the (simulated)
            # tuner run, then the batch is served with the fresh policy.
            self._tuned_inline.add(key)
            policy = self.warm_policy(workload_id)
            return policy, False, False, self.config.tune_penalty_ms
        # Graceful degradation: serve with the untuned default config.
        return FixedPolicy(self.default_config), False, True, 0.0

    def _execute(
        self, batch: Sequence[InferenceRequest], now: float
    ) -> Tuple[float, bool, bool, List[bool], Dict[str, float]]:
        """Run one batch; returns (service_ms, policy_hit, degraded,
        per-request kmap hits, stage-breakdown in us)."""
        workload_id = batch[0].workload_id
        workload = get_workload(workload_id)
        model = self.model(workload_id)
        policy, policy_hit, degraded, extra_ms = self._resolve_policy(batch, now)

        ctx = ExecutionContext(
            device=self.device,
            precision=self.precision,
            policy=policy,
            simulate_only=True,
            adaptive_tiling=not degraded,
        )
        kmap_hits: List[bool] = []
        preprocess_us = 0.0
        for request in batch:
            sample = self.scenes.sample(workload, request)
            entry = self.kmap_cache.get(request.scene_key)
            hit = entry is not None
            kmap_hits.append(hit)
            if hit:
                ctx.precharge(entry.charge_keys)
            before = ctx.charged_keys()
            model(sample, ctx)
            if not hit:
                self.kmap_cache.put(
                    request.scene_key,
                    KmapEntry(
                        sample=sample,
                        charge_keys=ctx.charged_keys() - before,
                    ),
                )
            preprocess_us += self._preprocess_us(sample)

        stages = dict(ctx.breakdown_us())
        stages["host/preprocess"] = preprocess_us
        stages["host/dispatch"] = self.config.dispatch_overhead_us
        if extra_ms:
            stages["host/inline_tune"] = extra_ms * 1e3
        service_ms = (
            ctx.latency_us()
            + preprocess_us
            + self.config.dispatch_overhead_us
        ) / 1e3 + extra_ms
        return service_ms, policy_hit, degraded, kmap_hits, stages

    # ------------------------------------------------------------------ #
    def serve(self, requests: Sequence[InferenceRequest]) -> ServeResult:
        """Run the discrete-event serving loop over ``requests``."""
        if not requests:
            raise ConfigError("serve() needs at least one request")
        config = self.config
        replicas = [
            DeviceReplica(index=i, spec=self.device)
            for i in range(config.replicas)
        ]
        queue = RequestQueue(max_depth=config.queue_depth)
        workload_cache: Dict[str, Workload] = {}

        def scene_points(request: InferenceRequest) -> int:
            workload = workload_cache.setdefault(
                request.workload_id, get_workload(request.workload_id)
            )
            return self.scenes.points(workload, request)

        batcher = DynamicBatcher(
            point_budget=config.point_budget,
            max_batch_requests=config.max_batch_requests,
            window_ms=config.batch_window_ms,
            scene_points=scene_points,
        )

        outcomes: Dict[int, RequestOutcome] = {}
        depth_samples: List[Tuple[float, int]] = []
        stage_totals: Dict[str, float] = {}
        free: List[int] = list(range(config.replicas))
        events: List[Tuple[float, int, int, object]] = []
        seq = 0
        ARRIVAL, FREE, TIMER = 0, 1, 2
        for request in sorted(requests, key=lambda r: (r.arrival_ms, r.request_id)):
            heapq.heappush(events, (request.arrival_ms, seq, ARRIVAL, request))
            seq += 1
        arrivals_pending = len(requests)
        batch_counter = 0

        def try_dispatch(now: float) -> None:
            nonlocal seq, batch_counter
            while (
                free
                and queue
                and batcher.ready(queue, now, more_arrivals=arrivals_pending > 0)
            ):
                batch = batcher.form_batch(queue, now)
                if not batch:
                    break
                replica = replicas[free.pop(0)]
                service_ms, policy_hit, degraded, kmap_hits, stages = (
                    self._execute(batch, now)
                )
                finish = now + service_ms
                replica.busy_ms += service_ms
                replica.batches += 1
                for stage, us in stages.items():
                    stage_totals[stage] = stage_totals.get(stage, 0.0) + us
                for request, kmap_hit in zip(batch, kmap_hits):
                    outcomes[request.request_id] = RequestOutcome(
                        request=request,
                        status=(
                            RequestStatus.DEGRADED
                            if degraded
                            else RequestStatus.COMPLETED
                        ),
                        start_ms=now,
                        finish_ms=finish,
                        batch_id=batch_counter,
                        batch_size=len(batch),
                        replica=replica.index,
                        policy_hit=policy_hit,
                        kmap_hit=kmap_hit,
                        service_ms=service_ms,
                    )
                batch_counter += 1
                depth_samples.append((now, len(queue)))
                heapq.heappush(events, (finish, seq, FREE, replica.index))
                seq += 1
            if free and queue and arrivals_pending > 0:
                decision = batcher.next_decision_ms(queue)
                if decision is not None and decision > now:
                    heapq.heappush(events, (decision, seq, TIMER, None))
                    seq += 1

        while events:
            now, _, kind, payload = heapq.heappop(events)
            if kind == ARRIVAL:
                arrivals_pending -= 1
                request = payload
                if not queue.admit(request):
                    outcomes[request.request_id] = RequestOutcome(
                        request=request, status=RequestStatus.SHED
                    )
                depth_samples.append((now, len(queue)))
            elif kind == FREE:
                free.append(payload)
                free.sort()
            try_dispatch(now)

        ordered = [outcomes[r.request_id] for r in requests]
        metrics = compute_metrics(
            ordered,
            depth_samples,
            policy_hit_rate=self.policy_cache.hit_rate,
            kmap_hit_rate=self.kmap_cache.hit_rate,
            kmap_evictions=self.kmap_cache.evictions,
            batches=batch_counter,
            replica_busy_ms=sum(r.busy_ms for r in replicas),
            replicas=config.replicas,
            stage_us_totals=stage_totals,
        )
        return ServeResult(config=config, outcomes=ordered, metrics=metrics)
