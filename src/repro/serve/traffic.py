"""Trace-driven arrival programs and multi-tenant request generation.

The fixed-rate processes of :mod:`repro.serve.arrivals` model a service
that is always provisioned for its load.  Production sparse-conv serving
is the opposite: traffic follows *programs* — diurnal curves, flash
crowds with a ramp/peak/decay envelope, launch-day step functions — and
the interesting regimes are exactly the ones a static replica count was
not provisioned for.  This module makes the arrival process a first-class
composable object:

* a :class:`TrafficSegment` is one piece of the rate curve — constant,
  linear ramp, or sinusoid — with a duration on the virtual clock;
* a :class:`TrafficTrace` concatenates segments into a rate program
  ``rate_at(t)`` and samples arrival times from it (piecewise-seeded, so
  a fixed spec and seed always yield the identical schedule).  Traces
  cycle: request counts larger than one period replay the program, which
  is what turns one flash-crowd envelope into a sustained stress sweep;
* :func:`parse_traffic` builds a trace from a CLI spec such as
  ``flash:base=20,peak=200,ramp=300,hold=1000,decay=500`` (presets:
  ``steady``, ``flash``, ``diurnal``);
* :func:`generate_traffic_requests` turns a trace plus a tenant roster
  (:class:`~repro.serve.admission.TenantSpec`) into one merged request
  schedule: each arrival is assigned a tenant (seeded, share-weighted), a
  workload drawn from the tenant's mix, a scene stream, a priority class
  and a deadline — the input the overload-robustness layer is judged on.

Everything is a pure function of ``(spec, seed)``; nothing reads a wall
clock.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.serve.admission import DEFAULT_TENANT, TenantSpec
from repro.serve.request import InferenceRequest

#: Arrival-rate floor (requests per simulated second).  A rate program is
#: never allowed to reach zero: sampling draws the next inter-arrival gap
#: from the rate in effect *now*, and a zero rate would stall the clock.
MIN_RATE_PER_S = 1e-3


@dataclasses.dataclass(frozen=True)
class TrafficSegment:
    """One piece of a rate program.

    ``shape`` selects the interpolation between ``start_rate`` and
    ``end_rate`` over ``duration_ms``:

    * ``"const"`` — ``start_rate`` throughout (``end_rate`` ignored);
    * ``"linear"`` — linear ramp from ``start_rate`` to ``end_rate``;
    * ``"sine"`` — half-cosine ease from ``start_rate`` to ``end_rate``
      (smooth diurnal shoulders).
    """

    duration_ms: float
    start_rate: float
    end_rate: float = -1.0
    shape: str = "const"

    def __post_init__(self) -> None:
        if self.duration_ms <= 0:
            raise ConfigError(
                f"segment duration must be positive, got {self.duration_ms}"
            )
        if self.start_rate <= 0:
            raise ConfigError(
                f"segment rate must be positive, got {self.start_rate}"
            )
        if self.shape not in ("const", "linear", "sine"):
            raise ConfigError(
                f"unknown segment shape {self.shape!r}; "
                f"expected const, linear or sine"
            )
        if self.shape == "const" and self.end_rate < 0:
            object.__setattr__(self, "end_rate", self.start_rate)
        if self.end_rate <= 0:
            raise ConfigError(
                f"segment end rate must be positive, got {self.end_rate}"
            )

    def rate_at(self, offset_ms: float) -> float:
        """Rate at ``offset_ms`` into the segment (clamped to bounds)."""
        if self.shape == "const":
            return self.start_rate
        frac = min(max(offset_ms / self.duration_ms, 0.0), 1.0)
        if self.shape == "sine":
            frac = 0.5 * (1.0 - math.cos(math.pi * frac))
        return self.start_rate + (self.end_rate - self.start_rate) * frac


@dataclasses.dataclass(frozen=True)
class TrafficTrace:
    """A rate program: concatenated segments, cycled, seeded sampling.

    The sampling rule matches :class:`~repro.serve.arrivals.BurstyArrivals`:
    the next inter-arrival gap is exponential at the rate in effect when
    the previous request arrived.  Exact enough for a serving benchmark,
    and exactly reproducible — ``times_ms`` is a pure function of
    ``(segments, seed)``.
    """

    segments: Tuple[TrafficSegment, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.segments:
            raise ConfigError("a traffic trace needs at least one segment")

    @property
    def period_ms(self) -> float:
        return sum(s.duration_ms for s in self.segments)

    def rate_at(self, t_ms: float) -> float:
        """Arrival rate (requests/s) at virtual time ``t_ms``."""
        offset = t_ms % self.period_ms
        for segment in self.segments:
            if offset < segment.duration_ms:
                return max(segment.rate_at(offset), MIN_RATE_PER_S)
            offset -= segment.duration_ms
        return max(self.segments[-1].end_rate, MIN_RATE_PER_S)

    def times_ms(self, count: int) -> List[float]:
        """``count`` seeded arrival times sampled from the rate program."""
        if count < 1:
            raise ConfigError(f"count must be >= 1, got {count}")
        rng = np.random.default_rng(self.seed)
        times: List[float] = []
        t = 0.0
        for _ in range(count):
            t += rng.exponential(1000.0 / self.rate_at(t))
            times.append(t)
        return times

    def mean_rate_per_s(self, samples: int = 256) -> float:
        """Time-averaged rate over one period (for provisioning math)."""
        period = self.period_ms
        step = period / samples
        total = sum(self.rate_at(i * step) for i in range(samples))
        return total / samples


# --------------------------------------------------------------------- #
#: Preset spec keys: preset name -> (accepted keys -> default value).
TRAFFIC_PRESETS: Dict[str, Dict[str, float]] = {
    "steady": {"rate": 30.0, "period": 1000.0},
    "flash": {
        "base": 20.0,
        "peak": 200.0,
        "warm": 500.0,
        "ramp": 300.0,
        "hold": 1000.0,
        "decay": 500.0,
        "tail": 1000.0,
    },
    "diurnal": {"base": 10.0, "peak": 60.0, "period": 20000.0},
}


def _preset_segments(name: str, params: Dict[str, float]) -> Tuple[TrafficSegment, ...]:
    if name == "steady":
        return (
            TrafficSegment(duration_ms=params["period"], start_rate=params["rate"]),
        )
    if name == "flash":
        base, peak = params["base"], params["peak"]
        return (
            TrafficSegment(duration_ms=params["warm"], start_rate=base),
            TrafficSegment(
                duration_ms=params["ramp"], start_rate=base,
                end_rate=peak, shape="linear",
            ),
            TrafficSegment(duration_ms=params["hold"], start_rate=peak),
            TrafficSegment(
                duration_ms=params["decay"], start_rate=peak,
                end_rate=base, shape="linear",
            ),
            TrafficSegment(duration_ms=params["tail"], start_rate=base),
        )
    if name == "diurnal":
        base, peak, period = params["base"], params["peak"], params["period"]
        return (
            TrafficSegment(
                duration_ms=period / 2, start_rate=base,
                end_rate=peak, shape="sine",
            ),
            TrafficSegment(
                duration_ms=period / 2, start_rate=peak,
                end_rate=base, shape="sine",
            ),
        )
    raise ConfigError(
        f"unknown traffic preset {name!r}; known presets: "
        f"{', '.join(sorted(TRAFFIC_PRESETS))}"
    )


def parse_traffic(spec: str, seed: int = 0) -> TrafficTrace:
    """Build a :class:`TrafficTrace` from a CLI spec.

    Format: ``preset`` or ``preset:key=value,key=value`` — for example
    ``flash``, ``flash:peak=400,ramp=200`` or ``diurnal:period=60000``.
    Unknown presets, unknown keys and non-numeric values raise
    :class:`~repro.errors.ConfigError` naming the offending token and the
    valid choices.
    """
    name, _, rest = spec.strip().partition(":")
    name = name.strip()
    if name not in TRAFFIC_PRESETS:
        raise ConfigError(
            f"unknown traffic preset {name!r}; known presets: "
            f"{', '.join(sorted(TRAFFIC_PRESETS))}"
        )
    params = dict(TRAFFIC_PRESETS[name])
    for part in filter(None, (p.strip() for p in rest.split(","))):
        if "=" not in part:
            raise ConfigError(
                f"bad traffic spec item {part!r}; expected key=value "
                f"with keys {sorted(params)}"
            )
        key, _, value = part.partition("=")
        key = key.strip()
        if key not in params:
            raise ConfigError(
                f"unknown traffic key {key!r} for preset {name!r}; "
                f"expected one of {sorted(params)}"
            )
        try:
            params[key] = float(value)
        except ValueError:
            raise ConfigError(
                f"bad traffic value {value!r} for key {key!r}"
            ) from None
        if params[key] <= 0:
            raise ConfigError(
                f"traffic key {key!r} must be positive, got {value!r}"
            )
    return TrafficTrace(segments=_preset_segments(name, params), seed=seed)


# --------------------------------------------------------------------- #
def generate_traffic_requests(
    trace: TrafficTrace,
    count: int,
    tenants: Sequence[TenantSpec] = (),
    default_workload: str = "SK-M-1.0",
    deadline_ms: float = 200.0,
    scene_seed_base: int = 0,
    seed: Optional[int] = None,
) -> List[InferenceRequest]:
    """Build one merged multi-tenant request schedule from a rate program.

    Each arrival drawn from ``trace`` is assigned:

    * a **tenant**, sampled share-weighted from ``tenants`` (one default
      tenant serving ``default_workload`` when the roster is empty);
    * a **workload** from the tenant's mix (equal-weighted);
    * a **scene stream**, round-robin over the tenant's ``streams`` —
      streams are tenant-private, so kernel-map warmth never leaks across
      tenants;
    * the tenant's **priority class** and **deadline** (falling back to
      ``deadline_ms``).

    The assignment RNG is seeded separately from the arrival-time RNG
    (``seed`` defaults to ``trace.seed``), so the same tenant roster over
    a different rate program keeps its per-tenant mix.
    """
    from repro.models.registry import get_workload

    if count < 1:
        raise ConfigError(f"count must be >= 1, got {count}")
    roster: List[TenantSpec] = list(tenants) or [
        dataclasses.replace(DEFAULT_TENANT, mix=(default_workload,))
    ]
    shares = np.asarray([t.share for t in roster], dtype=np.float64)
    shares = shares / shares.sum()
    # Resolve workload aliases once (e.g. ``sk-m-1x`` -> ``SK-M-1.0``).
    mixes: List[List[str]] = [
        [get_workload(w).id for w in tenant.mix] for tenant in roster
    ]
    times = trace.times_ms(count)
    assign = np.random.default_rng(
        (trace.seed if seed is None else seed) + 0x5EED
    )
    frame_counters: Dict[Tuple[int, int], int] = {}
    requests: List[InferenceRequest] = []
    for i, t in enumerate(times):
        ti = int(assign.choice(len(roster), p=shares))
        tenant = roster[ti]
        mix = mixes[ti]
        workload_id = mix[int(assign.integers(len(mix)))]
        stream = int(assign.integers(tenant.streams))
        frame = frame_counters.get((ti, stream), 0)
        frame_counters[(ti, stream)] = frame + 1
        requests.append(
            InferenceRequest(
                request_id=i,
                workload_id=workload_id,
                stream_id=stream,
                frame_index=frame,
                scene_seed=scene_seed_base * 10007 + ti * 131 + stream,
                arrival_ms=float(t),
                deadline_ms=(
                    tenant.deadline_ms if tenant.deadline_ms > 0 else deadline_ms
                ),
                tenant=tenant.name,
                priority=tenant.priority,
            )
        )
    return requests
