"""Sparse tensor substrate: coordinates, hashing, kernel maps, bitmasks.

This package implements everything a sparse convolution library needs *below*
the compute kernels:

* :mod:`repro.sparse.coords` — coordinate packing and uniqueness;
* :mod:`repro.sparse.hashmap` — a GPU-style open-addressing hash table with
  probe accounting (mapping cost feeds the performance model);
* :mod:`repro.sparse.quantize` — voxelization of raw point clouds;
* :mod:`repro.sparse.kernel_offsets` — the neighbourhood :math:`\\Delta^D(K)`;
* :mod:`repro.sparse.kmap` — kernel maps in both weight-stationary and
  output-stationary form (Section 2.2 / 4.2 of the paper);
* :mod:`repro.sparse.bitmask` — neighbour bitmasks, sorting, and s-way mask
  splitting (Figures 5, 6 and 10);
* :mod:`repro.sparse.tensor` — the user-facing :class:`SparseTensor`.
"""

from repro.sparse.coords import pack_coords, unique_coords, unpack_coords
from repro.sparse.hashmap import CoordinateHashMap
from repro.sparse.kernel_offsets import kernel_offsets, kernel_volume
from repro.sparse.kmap import KernelMap, build_kernel_map
from repro.sparse.bitmask import (
    compute_bitmasks,
    sort_bitmasks,
    split_offsets,
    MaskReordering,
    warp_mac_slots,
)
from repro.sparse.quantize import sparse_quantize
from repro.sparse.tensor import SparseTensor

__all__ = [
    "pack_coords",
    "unique_coords",
    "unpack_coords",
    "CoordinateHashMap",
    "kernel_offsets",
    "kernel_volume",
    "KernelMap",
    "build_kernel_map",
    "compute_bitmasks",
    "sort_bitmasks",
    "split_offsets",
    "MaskReordering",
    "warp_mac_slots",
    "sparse_quantize",
    "SparseTensor",
]
