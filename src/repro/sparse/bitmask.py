"""Neighbour bitmasks, sorting and mask splitting (Figures 5, 6 and 10).

In the implicit GEMM dataflow every output point carries a ``K^D``-bit mask
marking which neighbours exist.  Because all threads of a warp execute in
lockstep, a warp spends a MAC slot on offset ``k`` for *all* its rows
whenever *any* row has neighbour ``k`` — absent neighbours become redundant
computation.  SpConv v2 sorts the bitmasks (as numbers) so that similar rows
share warps; TorchSparse++ additionally splits the offsets into ``s``
segments sorted independently (Figure 10), trading extra partial-sum traffic
for even less redundancy and more parallelism.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError


def split_offsets(volume: int, num_splits: int) -> List[np.ndarray]:
    """Partition offsets ``0..volume-1`` into balanced contiguous segments."""
    if num_splits < 1:
        raise ConfigError(f"num_splits must be >= 1, got {num_splits}")
    if num_splits > volume:
        raise ConfigError(
            f"cannot split {volume} offsets into {num_splits} segments"
        )
    return [seg for seg in np.array_split(np.arange(volume), num_splits)]


def compute_bitmasks(nbmap: np.ndarray, segment: Optional[np.ndarray] = None) -> np.ndarray:
    """Boolean neighbour-presence matrix ``(N_out, |segment|)``."""
    if segment is None:
        return nbmap >= 0
    return nbmap[:, segment] >= 0


def sort_bitmasks(masks: np.ndarray) -> np.ndarray:
    """Row order sorting bitmasks descending as ``|segment|``-bit numbers.

    Column 0 is the most significant bit, matching Figure 6a where the mask
    is read left to right.  The sort is stable so equal masks keep their
    original relative order (deterministic, like the device radix sort).
    """
    if masks.ndim != 2:
        raise ConfigError(f"masks must be 2-D, got shape {masks.shape}")
    # np.lexsort uses its *last* key as primary; feed columns so that
    # column 0 dominates, negated for descending order.
    keys = tuple(~masks[:, k] for k in range(masks.shape[1] - 1, -1, -1))
    if not keys:
        return np.arange(len(masks))
    return np.lexsort(keys)


@dataclasses.dataclass
class MaskReordering:
    """Computation reordering for split implicit GEMM.

    Attributes:
        segments: offset indices per split.
        orders: per split, the row permutation applied to the map (identity
            when sorting is disabled — the *unsorted* dataflow of Figure 5).
        sorted: whether bitmask sorting was applied.
        sort_key_bits: bits per sort key (for the cost model).
    """

    segments: List[np.ndarray]
    orders: List[np.ndarray]
    sorted: bool

    @property
    def num_splits(self) -> int:
        return len(self.segments)

    def reordered_submaps(self, nbmap: np.ndarray) -> List[np.ndarray]:
        """The per-split reordered output-stationary maps."""
        return [
            nbmap[order][:, segment]
            for segment, order in zip(self.segments, self.orders)
        ]

    @classmethod
    def build(
        cls, nbmap: np.ndarray, num_splits: int = 1, sort: bool = True
    ) -> "MaskReordering":
        """Compute the reordering for ``num_splits`` segments.

        ``sort=False`` with ``num_splits=1`` reproduces the unsorted implicit
        GEMM dataflow ("split 0" in the paper's Table 5 notation).
        """
        segments = split_offsets(nbmap.shape[1], num_splits)
        if sort:
            orders = [
                sort_bitmasks(compute_bitmasks(nbmap, seg)) for seg in segments
            ]
        else:
            identity = np.arange(len(nbmap))
            orders = [identity for _ in segments]
        return cls(segments=segments, orders=orders, sorted=sort)


def warp_mac_slots(masks: np.ndarray, warp_rows: int) -> Tuple[int, int]:
    """Count effective and issued MAC slots at warp granularity.

    Args:
        masks: boolean ``(N, V)`` neighbour-presence matrix, already in
            execution order.
        warp_rows: rows mapped onto one warp (4 in the paper's figures,
            32 on real hardware for a 128-thread CTA with 128x... tiling —
            the model exposes it so tile configs can set it).

    Returns:
        ``(effective, issued)`` MAC slots, in units of
        ``rows x offsets`` (multiply by ``2 * C_in * C_out`` for FLOPs).
        ``issued - effective`` is the redundant computation of Figure 5.
    """
    if warp_rows < 1:
        raise ConfigError(f"warp_rows must be >= 1, got {warp_rows}")
    n, volume = masks.shape
    effective = int(np.count_nonzero(masks))
    pad = (-n) % warp_rows
    if pad:
        masks = np.concatenate(
            [masks, np.zeros((pad, volume), dtype=bool)], axis=0
        )
    grouped = masks.reshape(-1, warp_rows, volume)
    active_warps = grouped.any(axis=1)  # (num_warps, V)
    issued = int(np.count_nonzero(active_warps)) * warp_rows
    return effective, issued


def redundancy_ratio(
    nbmap: np.ndarray, num_splits: int, sort: bool, warp_rows: int = 32
) -> float:
    """``issued / effective`` MAC slots for a given split/sort configuration.

    This is the quantity plotted in Figure 11 (redundant computation vs the
    number of splits).  Returns ``inf`` for an empty map.
    """
    reorder = MaskReordering.build(nbmap, num_splits=num_splits, sort=sort)
    effective_total = 0
    issued_total = 0
    for submap in reorder.reordered_submaps(nbmap):
        effective, issued = warp_mac_slots(submap >= 0, warp_rows)
        effective_total += effective
        issued_total += issued
    if effective_total == 0:
        return float("inf")
    return issued_total / effective_total
