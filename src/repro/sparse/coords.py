"""Coordinate packing and uniqueness.

Coordinates are ``(N, 1 + D)`` int32 arrays whose first column is the batch
index and remaining ``D`` columns are integer voxel coordinates.  For hashing
and uniqueness we pack each row into a single int64 key: 16 bits of batch and
16 bits per spatial dimension (biased to be non-negative), which covers every
workload in the paper (LiDAR grids are at most a few thousand voxels across).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ShapeError

#: Bits allocated per packed field.
_FIELD_BITS = 16
#: Bias added to spatial coordinates so negatives pack cleanly.
_BIAS = 1 << (_FIELD_BITS - 1)
_FIELD_MASK = (1 << _FIELD_BITS) - 1


def _check_coords(coords: np.ndarray) -> np.ndarray:
    if coords.ndim != 2 or coords.shape[1] < 2:
        raise ShapeError(
            f"coords must be (N, 1 + D) with D >= 1, got shape {coords.shape}"
        )
    return coords


def pack_coords(coords: np.ndarray) -> np.ndarray:
    """Pack ``(N, 1 + D)`` integer coordinates into int64 keys.

    The packing is injective for coordinates in ``[-32768, 32767]`` and batch
    indices in ``[0, 65535]``; values outside this range raise ``ShapeError``.
    """
    coords = _check_coords(np.asarray(coords))
    num_fields = coords.shape[1]
    if num_fields * _FIELD_BITS > 64:
        raise ShapeError(
            f"cannot pack {num_fields} fields of {_FIELD_BITS} bits into int64"
        )
    spatial = coords[:, 1:]
    if spatial.size and (
        spatial.min() < -_BIAS or spatial.max() >= _BIAS
    ):
        raise ShapeError(
            "spatial coordinates out of packable range "
            f"[{-_BIAS}, {_BIAS - 1}]: min={spatial.min()}, max={spatial.max()}"
        )
    batch = coords[:, 0]
    if batch.size and (batch.min() < 0 or batch.max() > _FIELD_MASK):
        raise ShapeError("batch index out of packable range [0, 65535]")

    keys = batch.astype(np.int64)
    for dim in range(1, num_fields):
        keys = (keys << _FIELD_BITS) | (
            (coords[:, dim].astype(np.int64) + _BIAS) & _FIELD_MASK
        )
    return keys


def unpack_coords(keys: np.ndarray, num_spatial_dims: int) -> np.ndarray:
    """Inverse of :func:`pack_coords`."""
    keys = np.asarray(keys, dtype=np.int64)
    out = np.empty((len(keys), 1 + num_spatial_dims), dtype=np.int32)
    remaining = keys.copy()
    for dim in range(num_spatial_dims, 0, -1):
        out[:, dim] = (remaining & _FIELD_MASK).astype(np.int32) - _BIAS
        remaining >>= _FIELD_BITS
    out[:, 0] = remaining.astype(np.int32)
    return out


def unique_coords(coords: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Deduplicate coordinate rows.

    Returns ``(unique, inverse)`` where ``unique`` preserves first-occurrence
    order (matching the behaviour of GPU hash-based deduplication, which keeps
    whichever point wins the hash insert — first occurrence here for
    determinism) and ``inverse`` maps each original row to its unique row.
    """
    coords = _check_coords(np.asarray(coords))
    keys = pack_coords(coords)
    _, first_index, inverse = np.unique(keys, return_index=True, return_inverse=True)
    # np.unique sorts by key; re-order to first-occurrence order.
    order = np.argsort(first_index, kind="stable")
    rank = np.empty_like(order)
    rank[order] = np.arange(len(order))
    return coords[np.sort(first_index)], rank[inverse]
