"""GPU-style coordinate hash table.

Sparse convolution libraries build their kernel maps by inserting all input
coordinates into a hash table on the GPU and probing it once per (output
point, kernel offset) pair.  We reproduce that structure — an open-addressing
table with linear probing, vectorised over numpy — rather than using a Python
``dict``, for two reasons:

* the *probe counts* are the dominant cost of mapping operations, which the
  paper shows can be up to 50% of end-to-end runtime (Section 6.3); the table
  reports them so :mod:`repro.gpusim` can charge for them;
* determinism matches real systems: every query is a pure function of the
  inserted key set.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import MapError

#: 64-bit multiplicative hashing constant (Fibonacci hashing).
_HASH_MULT = np.int64(-7046029254386353131)  # 0x9E3779B97F4A7C15 as signed
#: Sentinel for an empty slot.
_EMPTY = np.int64(np.iinfo(np.int64).min)


def _hash_keys(keys: np.ndarray, capacity: int) -> np.ndarray:
    """Map int64 keys to initial probe slots in ``[0, capacity)``.

    ``capacity`` must be a power of two; Fibonacci multiplicative hashing
    takes the top ``log2(capacity)`` bits of the mixed key, which covers
    the whole table uniformly (a partially covered table degrades linear
    probing to long chains).
    """
    log2_capacity = capacity.bit_length() - 1
    mixed = keys * _HASH_MULT
    return mixed.astype(np.uint64) >> np.uint64(64 - log2_capacity)


@dataclasses.dataclass
class HashMapStats:
    """Accounting for one table's lifetime (consumed by the cost model)."""

    inserts: int = 0
    insert_probes: int = 0
    queries: int = 0
    query_probes: int = 0

    def merged_with(self, other: "HashMapStats") -> "HashMapStats":
        return HashMapStats(
            inserts=self.inserts + other.inserts,
            insert_probes=self.insert_probes + other.insert_probes,
            queries=self.queries + other.queries,
            query_probes=self.query_probes + other.query_probes,
        )


class CoordinateHashMap:
    """Open-addressing int64 -> int32 map with linear probing.

    Keys must be unique (coordinate sets are deduplicated before insertion,
    as in real libraries).  Values are the row indices of the coordinates.
    """

    #: Table slots per key (load factor 0.5, typical for GPU hash tables).
    GROWTH_FACTOR = 2

    def __init__(self, keys: np.ndarray):
        keys = np.asarray(keys, dtype=np.int64)
        if keys.ndim != 1:
            raise MapError(f"hash keys must be 1-D, got shape {keys.shape}")
        if len(np.unique(keys)) != len(keys):
            raise MapError("hash keys must be unique; deduplicate coords first")
        if np.any(keys == _EMPTY):
            raise MapError("key collides with the empty-slot sentinel")
        self.stats = HashMapStats()
        # Next power of two at or above GROWTH_FACTOR * N (load <= 0.5).
        wanted = max(4, self.GROWTH_FACTOR * len(keys))
        self._capacity = 1 << (wanted - 1).bit_length()
        self._slots_keys = np.full(self._capacity, _EMPTY, dtype=np.int64)
        self._slots_vals = np.full(self._capacity, -1, dtype=np.int32)
        self._insert(keys, np.arange(len(keys), dtype=np.int32))

    def __len__(self) -> int:
        return int(np.count_nonzero(self._slots_keys != _EMPTY))

    # ------------------------------------------------------------------ #
    def _insert(self, keys: np.ndarray, values: np.ndarray) -> None:
        slots = _hash_keys(keys, self._capacity).astype(np.int64)
        pending = np.arange(len(keys))
        while len(pending):
            at = slots[pending]
            occupied = self._slots_keys[at] != _EMPTY
            free = pending[~occupied]
            if len(free):
                # Among pending keys hashing to the same free slot only the
                # first wins (atomicCAS semantics); keep first occurrence.
                target = slots[free]
                _, winners = np.unique(target, return_index=True)
                chosen = free[winners]
                self._slots_keys[slots[chosen]] = keys[chosen]
                self._slots_vals[slots[chosen]] = values[chosen]
                lost = np.setdiff1d(free, chosen, assume_unique=True)
                pending = np.concatenate([pending[occupied], lost])
            else:
                pending = pending[occupied]
            slots[pending] = (slots[pending] + 1) % self._capacity
            self.stats.insert_probes += len(pending)
        self.stats.inserts += len(keys)
        self.stats.insert_probes += len(keys)  # the successful probe

    # ------------------------------------------------------------------ #
    def query(self, keys: np.ndarray) -> np.ndarray:
        """Look up ``keys``; returns int32 values, ``-1`` for missing keys."""
        keys = np.asarray(keys, dtype=np.int64)
        result = np.full(len(keys), -1, dtype=np.int32)
        slots = _hash_keys(keys, self._capacity).astype(np.int64)
        active = np.arange(len(keys))
        self.stats.queries += len(keys)
        while len(active):
            self.stats.query_probes += len(active)
            at = slots[active]
            slot_keys = self._slots_keys[at]
            hit = slot_keys == keys[active]
            result[active[hit]] = self._slots_vals[at[hit]]
            miss_empty = slot_keys == _EMPTY
            # Continue probing only where the slot is occupied by another key.
            keep = ~hit & ~miss_empty
            active = active[keep]
            slots[active] = (slots[active] + 1) % self._capacity
        return result
