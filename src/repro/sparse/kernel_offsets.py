"""Kernel neighbourhood generation: :math:`\\Delta^D(K)` from Section 2.1.

For odd kernel sizes the neighbourhood is centred
(``Delta^1(3) = {-1, 0, 1}``); for even sizes it is the forward convention
used by SpConv (``Delta^1(2) = {0, 1}``).  Offsets are enumerated with the
last dimension fastest, matching the weight layout ``W[K^D, C_in, C_out]``
used throughout the library.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigError

KernelSize = Union[int, Sequence[int]]


def normalize_kernel_size(kernel_size: KernelSize, ndim: int) -> Tuple[int, ...]:
    """Expand a scalar kernel size to one entry per spatial dimension."""
    if isinstance(kernel_size, int):
        sizes = (kernel_size,) * ndim
    else:
        sizes = tuple(int(k) for k in kernel_size)
        if len(sizes) != ndim:
            raise ConfigError(
                f"kernel_size has {len(sizes)} entries for {ndim} dimensions"
            )
    if any(k < 1 for k in sizes):
        raise ConfigError(f"kernel sizes must be >= 1, got {sizes}")
    return sizes


def _axis_offsets(k: int) -> np.ndarray:
    if k % 2 == 1:
        return np.arange(-(k // 2), k // 2 + 1, dtype=np.int32)
    return np.arange(0, k, dtype=np.int32)


def kernel_offsets(kernel_size: KernelSize, ndim: int = 3) -> np.ndarray:
    """Return the ``(K^D, D)`` int32 offset table for ``Delta^D(K)``."""
    sizes = normalize_kernel_size(kernel_size, ndim)
    grids = np.meshgrid(*[_axis_offsets(k) for k in sizes], indexing="ij")
    return np.stack([g.reshape(-1) for g in grids], axis=1)


def kernel_volume(kernel_size: KernelSize, ndim: int = 3) -> int:
    """``K^D``: the number of weights / kernel offsets."""
    sizes = normalize_kernel_size(kernel_size, ndim)
    return int(np.prod(sizes))


def identity_offset_index(kernel_size: KernelSize, ndim: int = 3) -> int:
    """Index of the all-zero offset, or ``-1`` if absent (even kernels)."""
    offsets = kernel_offsets(kernel_size, ndim)
    hits = np.where(~offsets.any(axis=1))[0]
    return int(hits[0]) if len(hits) else -1
