"""Kernel maps: the input/output mappings at the heart of sparse convolution.

Section 2.2 of the paper defines two storage orders for the maps
:math:`\\mathcal{M}`:

* **weight-stationary** (gather-GEMM-scatter, fetch-on-demand): for each
  kernel offset ``delta`` a list of ``(input_idx, output_idx)`` pairs;
* **output-stationary** (implicit GEMM): a dense ``(N_out, K^D)`` matrix
  ``M`` where ``M[n, k]`` is the input index of output ``n``'s ``k``-th
  neighbour, or ``-1`` when the neighbour is absent (Figure 5).

A :class:`KernelMap` holds the output-stationary form canonically and derives
the weight-stationary form on demand; both views are exact and kernels using
either produce identical results.  Map construction statistics (hash-table
probes, query counts) are retained because mapping cost is a first-class
quantity in the paper's analysis (Tables 3/4, Section 6.3).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import MapError, ShapeError
from repro.sparse.coords import pack_coords, unique_coords
from repro.sparse.hashmap import CoordinateHashMap, HashMapStats
from repro.sparse.kernel_offsets import (
    KernelSize,
    kernel_offsets,
    normalize_kernel_size,
)


@dataclasses.dataclass(frozen=True)
class MapKey:
    """Identity of a kernel map; layers sharing a key share maps (Section 4.2)."""

    kernel_size: Tuple[int, ...]
    stride: Tuple[int, ...]
    tensor_stride: Tuple[int, ...]
    transposed: bool = False


class KernelMap:
    """Input/output mapping for one (kernel size, stride, tensor stride).

    Attributes:
        nbmap: ``(N_out, V)`` int32 output-stationary map (``-1`` = missing).
        offsets: ``(V, D)`` int32 kernel offsets in voxel units.
        num_inputs / num_outputs: point counts on either side.
        out_coords: ``(N_out, 1 + D)`` coordinates of the output tensor.
        build_stats: hash-table accounting from map construction.
        key: the :class:`MapKey` identifying this map for group-based tuning.
    """

    def __init__(
        self,
        nbmap: np.ndarray,
        offsets: np.ndarray,
        num_inputs: int,
        out_coords: np.ndarray,
        build_stats: HashMapStats,
        key: MapKey,
        in_coords: Optional[np.ndarray] = None,
    ):
        nbmap = np.asarray(nbmap, dtype=np.int32)
        if nbmap.ndim != 2:
            raise ShapeError(f"nbmap must be 2-D, got shape {nbmap.shape}")
        if nbmap.shape[1] != len(offsets):
            raise MapError(
                f"nbmap has {nbmap.shape[1]} columns but {len(offsets)} offsets"
            )
        if len(out_coords) != len(nbmap):
            raise MapError("out_coords and nbmap disagree on N_out")
        if nbmap.size and nbmap.max() >= num_inputs:
            raise MapError("nbmap refers to input index out of range")
        self.nbmap = nbmap
        self.offsets = np.asarray(offsets, dtype=np.int32)
        self.num_inputs = int(num_inputs)
        self.out_coords = out_coords
        self.in_coords = in_coords
        self.build_stats = build_stats
        self.key = key
        self._pairs: Optional[List[Tuple[np.ndarray, np.ndarray]]] = None
        #: Memoized mask-reordering analyses keyed by dataflow config —
        #: mirrors real systems, which reorder each map once and reuse it
        #: across every layer in the group (Section 4.2).
        self.analysis_cache: dict = {}
        #: Storage order the map was materialised in.  Hash-built maps are
        #: natively output-stationary (the nbmap); *transposed* maps are
        #: natively weight-stationary (pair lists swap for free, but the
        #: transposed nbmap must be re-scattered).  Converting to the other
        #: order costs a reordering pass (Section 4.2) — the asymmetry that
        #: makes implicit GEMM cheap on downsampling layers and
        #: fetch-on-demand cheap on decoder layers (Figure 18).
        self.native_weight_stationary: bool = False

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_outputs(self) -> int:
        return self.nbmap.shape[0]

    @property
    def volume(self) -> int:
        """Number of kernel offsets ``V = K^D``."""
        return self.nbmap.shape[1]

    @property
    def map_sizes(self) -> np.ndarray:
        """``|M_delta|`` per offset: valid pairs for each weight."""
        return np.count_nonzero(self.nbmap >= 0, axis=0)

    @property
    def total_pairs(self) -> int:
        """``sum_delta |M_delta|``: total gathered rows / effective MAC rows."""
        return int(self.map_sizes.sum())

    @property
    def mean_neighbors(self) -> float:
        """Average neighbours per output point (4-10 in real workloads)."""
        if self.num_outputs == 0:
            return 0.0
        return self.total_pairs / self.num_outputs

    # ------------------------------------------------------------------ #
    # Representations
    # ------------------------------------------------------------------ #
    def pairs(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Weight-stationary view: ``[(in_idx, out_idx)]`` per offset."""
        if self._pairs is None:
            pairs = []
            for k in range(self.volume):
                out_idx = np.where(self.nbmap[:, k] >= 0)[0].astype(np.int32)
                in_idx = self.nbmap[out_idx, k]
                pairs.append((in_idx, out_idx))
            self._pairs = pairs
        return self._pairs

    def padded_nbmap(self, cta_m: int) -> np.ndarray:
        """Output-stationary map padded to a multiple of ``cta_m`` rows.

        Section 3.2: padding removes the boundary check on map loads in the
        innermost loop of the generated kernel.  Padded rows are all ``-1``
        and therefore contribute only zero rows to the implicit GEMM.
        """
        if cta_m <= 0:
            raise ValueError(f"cta_m must be positive, got {cta_m}")
        padded_rows = -(-self.num_outputs // cta_m) * cta_m
        if padded_rows == self.num_outputs:
            return self.nbmap
        padded = np.full((padded_rows, self.volume), -1, dtype=np.int32)
        padded[: self.num_outputs] = self.nbmap
        return padded

    def transposed(self) -> "KernelMap":
        """Map for the transposed convolution (dgrad / inverse conv).

        Swaps the roles of inputs and outputs while keeping the same weight
        index per pair: if ``(p, q)`` is in ``M_delta`` then the transposed
        map contains ``(q, p)`` in its own ``M_delta`` (the dgrad kernel
        multiplies by ``W_delta^T``).  Well-defined because for a fixed
        offset each input matches at most one output.
        """
        t_nbmap = np.full((self.num_inputs, self.volume), -1, dtype=np.int32)
        for k, (in_idx, out_idx) in enumerate(self.pairs()):
            if len(np.unique(in_idx)) != len(in_idx):
                raise MapError(
                    "transposed map ill-defined: duplicate inputs in one offset"
                )
            t_nbmap[in_idx, k] = out_idx
        stats = HashMapStats()  # transposition is free on device (relabeling)
        key = dataclasses.replace(self.key, transposed=not self.key.transposed)
        # The transposed map's outputs are the original inputs and vice
        # versa; coordinates swap accordingly (inverse convolutions in a
        # U-Net decoder land exactly on the encoder's coordinates).
        if self.in_coords is None:
            out_coords = np.zeros(
                (self.num_inputs, self.out_coords.shape[1]), dtype=np.int32
            )
        else:
            out_coords = self.in_coords
        out = KernelMap(
            nbmap=t_nbmap,
            offsets=-self.offsets,
            num_inputs=self.num_outputs,
            out_coords=out_coords,
            build_stats=stats,
            key=key,
            in_coords=self.out_coords,
        )
        out.native_weight_stationary = True
        return out

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        return (
            f"KernelMap(V={self.volume}, in={self.num_inputs}, "
            f"out={self.num_outputs}, pairs={self.total_pairs})"
        )


def downsample_coords(
    coords: np.ndarray, stride: Tuple[int, ...], tensor_stride: Tuple[int, ...]
) -> np.ndarray:
    """Output coordinates of a strided convolution.

    Outputs live on the coarser grid ``tensor_stride * stride``; a cell is
    occupied when it contains at least one input point.
    """
    step = np.asarray(stride, dtype=np.int64) * np.asarray(
        tensor_stride, dtype=np.int64
    )
    out = coords.copy()
    spatial = out[:, 1:].astype(np.int64)
    spatial = np.floor_divide(spatial, step) * step
    out[:, 1:] = spatial.astype(np.int32)
    unique, _ = unique_coords(out)
    return unique


def build_kernel_map(
    in_coords: np.ndarray,
    kernel_size: KernelSize,
    stride: "int | Tuple[int, ...]" = 1,
    tensor_stride: "int | Tuple[int, ...]" = 1,
) -> KernelMap:
    """Construct the kernel map for a convolution layer.

    Args:
        in_coords: ``(N_in, 1 + D)`` int32 input coordinates.
        kernel_size: scalar or per-dimension ``K``.
        stride: convolution stride ``s``; ``1`` selects submanifold
            convolution (outputs == inputs).
        tensor_stride: the input tensor's stride ``t``; kernel offsets are
            dilated by ``t`` so convolutions on downsampled tensors reach
            their true spatial neighbours.
    """
    in_coords = np.asarray(in_coords, dtype=np.int32)
    ndim = in_coords.shape[1] - 1
    sizes = normalize_kernel_size(kernel_size, ndim)
    stride_t = normalize_kernel_size(stride, ndim)  # same validation rules
    tstride = normalize_kernel_size(tensor_stride, ndim)
    offsets = kernel_offsets(sizes, ndim)

    if all(s == 1 for s in stride_t):
        out_coords = in_coords
    else:
        out_coords = downsample_coords(in_coords, stride_t, tstride)

    table = CoordinateHashMap(pack_coords(in_coords))
    num_out = len(out_coords)
    volume = len(offsets)
    nbmap = np.empty((num_out, volume), dtype=np.int32)
    dilated = offsets.astype(np.int64) * np.asarray(tstride, dtype=np.int64)
    # Query all offsets in one vectorised batch, as a fused GPU kernel would.
    queries = np.repeat(out_coords[np.newaxis, :, :], volume, axis=0).astype(np.int64)
    queries[:, :, 1:] += dilated[:, np.newaxis, :]
    flat = queries.reshape(-1, in_coords.shape[1])
    nbmap[:] = table.query(pack_coords(flat.astype(np.int32))).reshape(
        volume, num_out
    ).T

    key = MapKey(
        kernel_size=sizes,
        stride=stride_t,
        tensor_stride=tstride,
        transposed=False,
    )
    return KernelMap(
        nbmap=nbmap,
        offsets=offsets,
        num_inputs=len(in_coords),
        out_coords=out_coords,
        build_stats=table.stats,
        key=key,
        in_coords=in_coords,
    )
