"""Point cloud voxelization (Section 2 of the paper).

Raw LiDAR points are quantized by ``p = floor(p_raw / voxel_size)`` and
deduplicated so at most one point survives per voxel — exactly the
CenterPoint preprocessing the paper describes (0.1 m grid on Waymo).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ShapeError
from repro.sparse.coords import unique_coords

VoxelSize = Union[float, Sequence[float]]


def sparse_quantize(
    points: np.ndarray,
    voxel_size: VoxelSize,
    features: Optional[np.ndarray] = None,
    batch_index: int = 0,
    reduce: str = "first",
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Voxelize raw points into integer coordinates.

    Args:
        points: ``(N, D)`` float array of raw coordinates (metres).
        voxel_size: scalar or per-dimension voxel edge length.
        features: optional ``(N, C)`` per-point features to reduce per voxel.
        batch_index: value written into the batch column of the output.
        reduce: ``"first"`` keeps the first point per voxel (hash-insert
            semantics of GPU libraries); ``"mean"`` averages features.

    Returns:
        ``(coords, feats)`` where ``coords`` is ``(M, 1 + D)`` int32 with the
        batch column prepended and ``feats`` is ``(M, C)`` or ``None``.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ShapeError(f"points must be (N, D), got {points.shape}")
    if reduce not in ("first", "mean"):
        raise ValueError(f"reduce must be 'first' or 'mean', got {reduce!r}")
    voxel = np.broadcast_to(
        np.asarray(voxel_size, dtype=np.float64), (points.shape[1],)
    )
    if np.any(voxel <= 0):
        raise ValueError(f"voxel sizes must be positive, got {voxel}")

    quantized = np.floor(points / voxel).astype(np.int32)
    coords = np.concatenate(
        [
            np.full((len(points), 1), batch_index, dtype=np.int32),
            quantized,
        ],
        axis=1,
    )
    unique, inverse = unique_coords(coords)
    if features is None:
        return unique, None

    features = np.asarray(features)
    if len(features) != len(points):
        raise ShapeError(
            f"features length {len(features)} != points length {len(points)}"
        )
    if reduce == "first":
        first_of = np.full(len(unique), -1, dtype=np.int64)
        # Iterate in reverse so earlier rows overwrite later ones.
        first_of[inverse[::-1]] = np.arange(len(points) - 1, -1, -1)
        reduced = features[first_of]
    else:
        reduced = np.zeros((len(unique), features.shape[1]), dtype=np.float64)
        np.add.at(reduced, inverse, features.astype(np.float64))
        counts = np.bincount(inverse, minlength=len(unique)).reshape(-1, 1)
        reduced = (reduced / counts).astype(features.dtype)
    return unique, reduced
