"""The user-facing :class:`SparseTensor` and its shared kernel-map cache."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ShapeError
from repro.sparse.kmap import KernelMap
from repro.utils.validation import check_2d, check_same_length

CacheKey = Tuple  # (tensor_stride, kernel_size, stride, transposed)


class MapCache:
    """Kernel maps shared across the layers of one network execution.

    Real libraries (TorchSparse, SpConv) key their map cache by
    ``(tensor_stride, kernel_size, stride)``: within a single forward pass a
    tensor stride uniquely identifies a coordinate system, so layers with the
    same key reuse maps.  This reuse is precisely what defines the
    autotuner's layer *groups* (Section 4.2) and why decoder layers are
    cheaper than downsampling layers (Figure 18).
    """

    def __init__(self) -> None:
        self._maps: Dict[CacheKey, KernelMap] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: CacheKey) -> Optional[KernelMap]:
        found = self._maps.get(key)
        if found is not None:
            self.hits += 1
        return found

    def put(self, key: CacheKey, kmap: KernelMap) -> KernelMap:
        self.misses += 1
        self._maps[key] = kmap
        return kmap

    def __len__(self) -> int:
        return len(self._maps)

    def clear(self) -> None:
        self._maps.clear()
        self.hits = 0
        self.misses = 0


class SparseTensor:
    """A batched sparse tensor: integer coordinates plus dense features.

    Attributes:
        coords: ``(N, 1 + D)`` int32; column 0 is the batch index.
        feats: ``(N, C)`` floating-point features.
        stride: the tensor stride ``t`` (per spatial dimension); coordinates
            are multiples of ``t`` after downsampling layers.
        cache: the :class:`MapCache` shared along the network.
    """

    def __init__(
        self,
        coords: np.ndarray,
        feats: np.ndarray,
        stride: "int | Tuple[int, ...]" = 1,
        cache: Optional[MapCache] = None,
    ):
        coords = np.asarray(coords, dtype=np.int32)
        feats = np.asarray(feats)
        check_2d(coords, "coords")
        check_2d(feats, "feats")
        check_same_length(coords, feats, "coords", "feats")
        if not np.issubdtype(feats.dtype, np.floating):
            raise ShapeError(f"feats must be floating point, got {feats.dtype}")
        self.coords = coords
        self.feats = feats
        ndim = coords.shape[1] - 1
        if isinstance(stride, int):
            stride = (stride,) * ndim
        else:
            stride = tuple(int(s) for s in stride)
            if len(stride) != ndim:
                raise ShapeError(
                    f"stride has {len(stride)} entries for {ndim} dimensions"
                )
        self.stride: Tuple[int, ...] = stride
        self.cache = cache if cache is not None else MapCache()

    # ------------------------------------------------------------------ #
    @property
    def num_points(self) -> int:
        return self.coords.shape[0]

    @property
    def num_channels(self) -> int:
        return self.feats.shape[1]

    @property
    def ndim(self) -> int:
        """Number of spatial dimensions D."""
        return self.coords.shape[1] - 1

    @property
    def batch_size(self) -> int:
        if self.num_points == 0:
            return 0
        return int(self.coords[:, 0].max()) + 1

    def with_feats(self, feats: np.ndarray) -> "SparseTensor":
        """Same coordinates and cache, new features (cheap view)."""
        return SparseTensor(self.coords, feats, stride=self.stride, cache=self.cache)

    def dense(self, shape: Optional[Tuple[int, ...]] = None) -> np.ndarray:
        """Materialise as a dense array ``(B, *spatial, C)`` (testing aid)."""
        if self.num_points == 0:
            raise ShapeError("cannot densify an empty sparse tensor")
        spatial = self.coords[:, 1:]
        mins = spatial.min(axis=0)
        if shape is None:
            extent = spatial.max(axis=0) - mins + 1
        else:
            extent = np.asarray(shape, dtype=np.int64)
        dense = np.zeros(
            (self.batch_size, *extent.tolist(), self.num_channels),
            dtype=self.feats.dtype,
        )
        index = (self.coords[:, 0],) + tuple(
            (spatial[:, d] - mins[d]) for d in range(self.ndim)
        )
        dense[index] = self.feats
        return dense

    def __repr__(self) -> str:
        return (
            f"SparseTensor(points={self.num_points}, channels="
            f"{self.num_channels}, stride={self.stride})"
        )


def batch_sparse_tensors(tensors: "list[SparseTensor]") -> SparseTensor:
    """Concatenate single-sample tensors into one batch.

    Each input must have batch column 0; sample ``i`` is assigned batch
    index ``i`` in the result.
    """
    if not tensors:
        raise ShapeError("cannot batch an empty list of tensors")
    coords = []
    feats = []
    for i, tensor in enumerate(tensors):
        if tensor.stride != tensors[0].stride:
            raise ShapeError("all tensors in a batch must share a stride")
        c = tensor.coords.copy()
        c[:, 0] = i
        coords.append(c)
        feats.append(tensor.feats)
    return SparseTensor(
        np.concatenate(coords, axis=0),
        np.concatenate(feats, axis=0),
        stride=tensors[0].stride,
    )
