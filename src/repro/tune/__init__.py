"""The Sparse Autotuner (Section 4 of the paper).

Enlarges the sparse convolution design space (Figure 9) — dataflow choice,
unsorted implicit GEMM, arbitrary mask splits, tile sizes — and searches it
with group-based configuration tuning: layers sharing kernel maps form one
group and must share a dataflow (their map storage orders differ between
dataflows), and groups are tuned greedily against *end-to-end* simulated
latency, mapping overhead included.  The training tuner adds partial
parameter binding across forward/dgrad/wgrad kernels (Figure 13).
"""

from repro.tune.space import (
    DesignSpace,
    SPCONV2_SPACE,
    TORCHSPARSEPP_SPACE,
    TORCHSPARSEPP_IG_ONLY_SPACE,
)
from repro.tune.groups import LayerRecord, discover_groups
from repro.tune.tuner import SparseAutotuner, TuningReport
from repro.tune.training import BindingScheme, TrainingTuner, pick_binding_scheme
from repro.tune.cache import load_policy, save_policy

__all__ = [
    "DesignSpace",
    "SPCONV2_SPACE",
    "TORCHSPARSEPP_SPACE",
    "TORCHSPARSEPP_IG_ONLY_SPACE",
    "LayerRecord",
    "discover_groups",
    "SparseAutotuner",
    "TuningReport",
    "BindingScheme",
    "TrainingTuner",
    "pick_binding_scheme",
    "load_policy",
    "save_policy",
]
