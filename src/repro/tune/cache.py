"""Serialization of tuned policies.

A tuned schedule "could be reused for millions of scenes in real-world ADAS
applications" (Section 4.2) — so it must survive the process.  Policies are
stored as JSON keyed by the string form of each map signature.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

from repro.kernels.base import KernelSchedule
from repro.kernels.implicit_gemm import ImplicitGemmConfig
from repro.kernels.registry import Dataflow
from repro.nn.context import GroupPolicy, LayerConfig, Role, Signature


def config_to_dict(config: LayerConfig) -> dict:
    return {
        "dataflow": config.dataflow.value,
        "tile": [config.schedule.tile_m, config.schedule.tile_n,
                 config.schedule.tile_k],
        "warp_rows": config.schedule.warp_rows,
        "num_splits": config.ig_config.num_splits,
        "sort": config.ig_config.sort,
        "offline_reorder": config.ig_config.offline_reorder,
        "tensor_cores": config.tensor_cores,
        "gs_chunks": config.gs_chunks,
    }


def config_from_dict(data: dict) -> LayerConfig:
    tile_m, tile_n, tile_k = data["tile"]
    return LayerConfig(
        dataflow=Dataflow(data["dataflow"]),
        schedule=KernelSchedule(
            tile_m=tile_m, tile_n=tile_n, tile_k=tile_k,
            warp_rows=min(data["warp_rows"], tile_m),
        ),
        ig_config=ImplicitGemmConfig(
            num_splits=data["num_splits"],
            sort=data["sort"],
            offline_reorder=data["offline_reorder"],
        ),
        tensor_cores=data["tensor_cores"],
        # Policies written before gs_chunks existed omit the key; they were
        # tuned at the default (no chunking).
        gs_chunks=data.get("gs_chunks", 1),
    )


#: Backward-compatible aliases (the public names are preferred).
_config_to_dict = config_to_dict
_config_from_dict = config_from_dict


def _signature_to_key(signature: Signature) -> str:
    return repr(tuple(signature))


def save_policy(policy: GroupPolicy, path: "str | Path") -> None:
    """Write a tuned policy to JSON."""
    payload: Dict[str, dict] = {}
    for signature, by_role in policy.items():
        payload[_signature_to_key(signature)] = {
            role.value: _config_to_dict(config)
            for role, config in by_role.items()
        }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_policy(path: "str | Path") -> GroupPolicy:
    """Load a policy saved by :func:`save_policy`.

    Signatures round-trip through ``repr``/``eval`` of plain tuples of ints
    and bools (no arbitrary code: the payload is validated to contain only
    tuple/int/bool literals).
    """
    import ast

    payload = json.loads(Path(path).read_text())
    assignments = {}
    for key, by_role in payload.items():
        signature = ast.literal_eval(key)
        assignments[signature] = {
            Role(role): _config_from_dict(cfg) for role, cfg in by_role.items()
        }
    return GroupPolicy(assignments)
