"""Layer-group discovery (Section 4.2, Figure 12).

Layers that use the same kernel maps — identified by their *map signature*
``(tensor_stride, kernel_size, stride, transposed)`` — form one group and
must share a dataflow, because weight-stationary and output-stationary
dataflows need the maps in different storage orders.  A probe forward pass
records every convolution layer; records are then grouped by signature in
first-appearance order.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.nn.context import ExecutionContext, Signature
from repro.nn.module import Module
from repro.sparse.kmap import KernelMap
from repro.sparse.tensor import SparseTensor


@dataclasses.dataclass
class LayerRecord:
    """One convolution layer observed during the probe pass."""

    signature: Signature
    kmap: KernelMap
    c_in: int
    c_out: int
    label: str

    @property
    def macs(self) -> float:
        """Effective multiply-accumulates of the layer."""
        return float(self.kmap.total_pairs) * self.c_in * self.c_out


def discover_groups(
    model: Module,
    sample: SparseTensor,
    ctx: ExecutionContext,
) -> Tuple[List[Signature], Dict[Signature, List[LayerRecord]]]:
    """Run one probe forward and group conv layers by map signature.

    Returns ``(ordered_signatures, records_by_signature)``.  The context's
    trace is reset afterwards so probe cost never leaks into measurements;
    kernel maps built during the probe stay in the sample's cache (the
    tuner reuses them, as the real system does).
    """
    records: List[LayerRecord] = []

    def record(signature, kmap, c_in, c_out, label):
        records.append(LayerRecord(signature, kmap, c_in, c_out, label))

    previous_recorder = ctx.recorder
    ctx.recorder = record
    try:
        model(sample, ctx)
    finally:
        ctx.recorder = previous_recorder
        ctx.reset_trace()

    ordered: List[Signature] = []
    by_signature: Dict[Signature, List[LayerRecord]] = {}
    for rec in records:
        if rec.signature not in by_signature:
            ordered.append(rec.signature)
            by_signature[rec.signature] = []
        by_signature[rec.signature].append(rec)
    return ordered, by_signature
