"""Design spaces (Figure 9).

The TorchSparse++ space is a strict superset of SpConv v2's: it adds the
unsorted implicit GEMM dataflow, mask splits beyond 2, the fetch-on-demand
dataflow, and per-workload tile sizes (adaptive tiling handles the tile
axis at execution time; the space enumerates the dataflow axis).
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

from repro.kernels.base import (
    DEFAULT_SCHEDULE,
    LARGE_TILE,
    SMALL_TILE,
    KernelSchedule,
)
from repro.kernels.implicit_gemm import ImplicitGemmConfig
from repro.kernels.registry import Dataflow
from repro.nn.context import LayerConfig


@dataclasses.dataclass(frozen=True)
class DesignSpace:
    """A named list of candidate layer configurations."""

    name: str
    candidates: Tuple[LayerConfig, ...]

    def __len__(self) -> int:
        return len(self.candidates)

    def __iter__(self):
        return iter(self.candidates)


def _ig(split: int, schedule: KernelSchedule) -> LayerConfig:
    return LayerConfig(
        dataflow=Dataflow.IMPLICIT_GEMM,
        schedule=schedule,
        ig_config=ImplicitGemmConfig.from_paper_notation(split),
    )


def implicit_gemm_candidates(
    splits: Sequence[int],
    schedules: Sequence[KernelSchedule] = (
        LARGE_TILE,
        DEFAULT_SCHEDULE,
        SMALL_TILE,
    ),
) -> List[LayerConfig]:
    """Implicit GEMM configs over split values (0 = unsorted) and tiles."""
    return [_ig(split, sched) for split in splits for sched in schedules]


#: SpConv v2's restricted space: sorted implicit GEMM with one split
#: (Section 6.1: "the default setting (split=1) in SpConv v2").
SPCONV2_SPACE = DesignSpace(
    name="spconv2",
    candidates=tuple(implicit_gemm_candidates(splits=(1,))),
)

#: TorchSparse++ without fetch-on-demand (used by ablations).
TORCHSPARSEPP_IG_ONLY_SPACE = DesignSpace(
    name="torchsparsepp-ig",
    candidates=tuple(implicit_gemm_candidates(splits=(0, 1, 2, 3, 4))),
)

#: The full TorchSparse++ space (Figure 9): implicit GEMM with splits
#: {0 (unsorted), 1, 2, 3, 4}, plus block-fused fetch-on-demand.
TORCHSPARSEPP_SPACE = DesignSpace(
    name="torchsparsepp",
    candidates=tuple(
        implicit_gemm_candidates(splits=(0, 1, 2, 3, 4))
        + [
            LayerConfig(dataflow=Dataflow.FETCH_ON_DEMAND, schedule=sched)
            for sched in (LARGE_TILE, DEFAULT_SCHEDULE, SMALL_TILE)
        ]
    ),
)


def split_space(splits: Sequence[int], name: str = "splits") -> DesignSpace:
    """An implicit-GEMM-only space over the given split set (Table 5)."""
    return DesignSpace(
        name=name, candidates=tuple(implicit_gemm_candidates(splits))
    )
